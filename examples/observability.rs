//! Observability end to end: run a faulty multi-site editing session and a
//! crash-prone hosting node with one live telemetry registry, then read the
//! run back two ways — the metrics snapshot (counters, gauges, histogram
//! percentiles) and the per-site trace timeline the ring buffer retained.
//!
//! Run with `cargo run --example observability`.

use rand::rngs::StdRng;
use rand::SeedableRng;
use treedoc_repro::prelude::*;
use treedoc_repro::sim::{run_with, Zipf};

fn main() {
    // One registry observes everything; every subsystem handle is resolved
    // from it. The ring keeps the last 256 span/event records.
    let registry = Registry::with_trace_capacity(256);
    let telemetry = registry.handle();

    // -- Act 1: a lossy, crash-prone replicated session ---------------------
    // Site 2 crashes at round 4 and recovers from its store at round 8,
    // while the network drops and duplicates messages. The instrumented run
    // produces the exact same report as an uninstrumented one — telemetry
    // observes, it never steers.
    let scenario = Scenario::crash_faulty(1, 4, 8);
    let report = run_with(&scenario, &telemetry);
    println!(
        "faulty session: {} ops, {} dropped msgs, {} retransmitted, crash recovered {} WAL records",
        report.ops_generated,
        report.messages_dropped,
        report.retransmissions,
        report.wal_records_replayed
    );

    // -- Act 2: a hosting node under Zipf load with a tiny resident set ----
    // 60 sessions over 100 documents with room for only 6 warm ones: the
    // cold tail is repeatedly evicted and faulted back in, which is exactly
    // the traffic the `node.*` instruments and trace events record.
    let config = NodeConfig {
        shards: 2,
        max_resident: 6,
        site: 7,
    };
    let mut node = HostingNode::new(config);
    node.set_telemetry(&telemetry);
    let zipf = Zipf::new(100, 1.1);
    let mut rng = StdRng::seed_from_u64(11);
    for session_no in 0..60 {
        let doc = zipf.sample(&mut rng) as DocId;
        let session = node.connect(&format!("user-{session_no}"), doc).unwrap();
        let len = node.contents(doc).unwrap().chars().count();
        for (i, ch) in "edit".chars().enumerate() {
            node.insert(session, len + i, ch).unwrap();
        }
        node.disconnect(session).unwrap();
        if session_no % 8 == 7 {
            node.commit().unwrap();
        }
    }
    node.commit().unwrap();
    println!(
        "hosting node: {} docs hosted, {} resident, {} evictions",
        node.hosted_count(),
        node.resident_count(),
        node.stats().evictions
    );
    println!();

    // -- Reading the run back: the metrics snapshot -------------------------
    let snapshot = registry.snapshot();
    println!("metrics snapshot ({} counters):", snapshot.counters.len());
    for name in [
        "replica.ops_stamped",
        "replica.ops_received",
        "sim.wire_bytes",
        "sim.retransmission_bytes",
        "node.ops",
        "node.evictions",
        "node.fault_ins",
        "store.wal_appends",
        "gwal.flush_records",
    ] {
        println!("  {name:<26} {}", snapshot.counter(name).unwrap_or(0));
    }
    println!("latency histograms (µs):");
    for name in [
        "replica.stamp_micros",
        "node.op_micros",
        "node.fault_in_micros",
    ] {
        let h = snapshot.histogram(name).expect("recorded during the run");
        println!(
            "  {name:<26} count={:<6} p50={} p90={} p99={}",
            h.count, h.p50, h.p90, h.p99
        );
    }
    println!();

    // The whole snapshot serialises to JSON — this is what bench bins write
    // with `--telemetry-out` and what CI uploads as an artifact.
    println!(
        "snapshot JSON is {} bytes; first 120: {}…",
        snapshot.to_json().len(),
        &snapshot.to_json()[..120]
    );
    println!();

    // -- Reading the run back: the per-site trace timeline ------------------
    // The ring exports JSONL; `parse_jsonl` tolerates truncation, so a dump
    // cut mid-line still yields every intact event.
    let tracer = telemetry.tracer();
    let events = parse_jsonl(&tracer.to_jsonl());
    println!(
        "trace ring retained {} events ({} evicted):",
        events.len(),
        tracer.dropped()
    );
    let mut sites: Vec<u64> = events.iter().map(|e| e.site).collect();
    sites.sort_unstable();
    sites.dedup();
    for site in sites {
        println!("  site {site}:");
        for event in events.iter().filter(|e| e.site == site).take(6) {
            println!(
                "    #{:<4} {:<16} doc={:<10} epoch={} lsn={} bytes={} micros={}",
                event.seq, event.kind, event.doc, event.epoch, event.lsn, event.bytes, event.micros
            );
        }
        let shown = events.iter().filter(|e| e.site == site).count().min(6);
        let total = events.iter().filter(|e| e.site == site).count();
        if total > shown {
            println!("    … and {} more", total - shown);
        }
    }
}
