//! A multi-document hosting node by hand: boot a node, admit three users
//! onto two documents, watch the group-commit WAL batch both documents'
//! edits into shared segment writes, then evict a cold document and fault
//! it back in — the same recover path a crash would use.
//!
//! Run with `cargo run --example hosting_node`.

use treedoc_repro::prelude::*;

fn type_text(node: &mut HostingNode, session: SessionId, text: &str) {
    for (i, ch) in text.chars().enumerate() {
        node.insert(session, i, ch).unwrap();
    }
}

fn main() {
    // Boot: 2 shards, room for plenty of resident documents. In-memory
    // backends here; `FileBackend::open_shard(dir, i)` gives each shard a
    // `shard-00i/` directory with the same API.
    let config = NodeConfig {
        shards: 2,
        max_resident: 8,
        site: 1,
    };
    let mut node = HostingNode::new(config);

    // Three users, two documents: alice and bob share the meeting notes,
    // carol keeps a journal of her own.
    let alice = node.connect("alice", 10).unwrap();
    let bob = node.connect("bob", 10).unwrap();
    let carol = node.connect("carol", 11).unwrap();
    println!(
        "admitted {} sessions over {} documents",
        node.session_count(),
        node.hosted_count()
    );

    type_text(&mut node, alice, "agenda: ");
    let len = node.contents(10).unwrap().chars().count();
    for (i, ch) in "ship the node".chars().enumerate() {
        node.insert(bob, len + i, ch).unwrap();
    }
    type_text(&mut node, carol, "dear diary");
    println!("doc 10: {:?}", node.contents(10).unwrap());
    println!("doc 11: {:?}", node.contents(11).unwrap());

    // All of those edits are queued in the shard group WALs; one commit
    // makes every document durable with one segment append per shard.
    let flushed = node.commit().unwrap();
    println!(
        "commit: {} records durable in {} backend segment appends",
        flushed,
        node.segment_appends()
    );

    // Evict carol's journal by hand: checkpoint to a snapshot, drop the
    // in-memory tree. The document is cold but not gone.
    let before = node.digest(11).unwrap();
    node.evict(11).unwrap();
    println!(
        "evicted doc 11: resident={}, resident_bytes={}",
        node.is_resident(11),
        node.resident_bytes()
    );

    // First touch faults it back in through the ordinary recover path —
    // snapshot plus this document's WAL tail, nobody else's records.
    let text = node.contents(11).unwrap();
    assert_eq!(node.digest(11).unwrap(), before);
    println!("faulted doc 11 back in: {text:?} (digest intact)");
    assert_eq!(node.stats().fault_ins, 1);

    // The same machinery survives a node-wide crash: keep the shard
    // backends, drop the node, restart — every document comes back.
    let backends = node.backends();
    drop(node);
    let mut node = HostingNode::restart(config, backends).unwrap();
    println!(
        "restarted: {} documents rediscovered, {} resident",
        node.hosted_count(),
        node.resident_count()
    );
    assert_eq!(node.digest(11).unwrap(), before);
    assert_eq!(node.contents(10).unwrap(), "agenda: ship the node");
    println!("doc 10 after restart: {:?}", node.contents(10).unwrap());
}
