//! Offline editing and re-synchronisation, plus an agreed structural
//! clean-up: a laptop edits while disconnected, reconnects, both sides
//! converge, and then the replicas run the §4.2.1 commitment protocol to
//! flatten the document (which aborts if anyone is still editing).
//!
//! Run with `cargo run --example offline_sync`.

use treedoc_repro::commit::{run_two_phase, CommitOutcome, FlattenProposal, TreedocParticipant};
use treedoc_repro::prelude::*;

fn main() {
    let seed: Vec<String> = (1..=8).map(|i| format!("section {i}")).collect();
    let mut desktop: Treedoc<String, Udis> = Treedoc::from_atoms(SiteId::from_u64(1), &seed);
    let mut laptop: Treedoc<String, Udis> = Treedoc::from_atoms(SiteId::from_u64(2), &seed);

    // The laptop goes offline and keeps editing; the desktop edits too.
    let mut laptop_outbox = Vec::new();
    for k in 0..5 {
        laptop_outbox.push(
            laptop
                .local_insert(3 + k, format!("offline note {k}"))
                .unwrap(),
        );
    }
    laptop_outbox.push(laptop.local_delete(0).unwrap());

    let mut desktop_outbox = vec![desktop
        .local_insert(8, "online appendix".to_string())
        .unwrap()];
    desktop_outbox.push(desktop.local_delete(1).unwrap());

    println!("desktop before sync: {} atoms", desktop.len());
    println!("laptop  before sync: {} atoms", laptop.len());

    // Reconnection: exchange the buffered operations (any order works, the
    // operations were concurrent).
    for op in &laptop_outbox {
        desktop.apply(op).unwrap();
    }
    for op in &desktop_outbox {
        laptop.apply(op).unwrap();
    }
    assert_eq!(desktop.to_vec(), laptop.to_vec());
    println!(
        "after sync, both replicas hold {} atoms and identical content",
        desktop.len()
    );

    // Now that the session is quiescent, agree on a flatten with 2PC.
    let proposal = FlattenProposal {
        proposer: SiteId::from_u64(1),
        subtree: Vec::new(),
        base_revision: desktop.revision(),
        txn: 1,
    };
    let nodes_before = desktop.node_count();
    {
        let mut docs = [&mut desktop, &mut laptop];
        let mut participants: Vec<_> = docs
            .iter_mut()
            .map(|d| TreedocParticipant::new(d))
            .collect();
        let (outcome, stats) = run_two_phase(&proposal, &mut participants);
        println!(
            "flatten commitment: {outcome:?} in {} messages over {} phases",
            stats.total_messages(),
            stats.phases
        );
        assert_eq!(outcome, CommitOutcome::Committed);
    }
    assert_eq!(desktop.to_vec(), laptop.to_vec());
    println!(
        "flatten compacted {} -> {} stored nodes; documents still identical",
        nodes_before,
        desktop.node_count()
    );

    // A second proposal while someone is editing gets vetoed.
    let stale = FlattenProposal {
        proposer: SiteId::from_u64(1),
        subtree: Vec::new(),
        base_revision: desktop.revision(),
        txn: 2,
    };
    laptop.next_revision();
    laptop
        .local_insert(0, "still typing...".to_string())
        .unwrap();
    let mut docs = [&mut desktop, &mut laptop];
    let mut participants: Vec<_> = docs
        .iter_mut()
        .map(|d| TreedocParticipant::new(d))
        .collect();
    let (outcome, _) = run_two_phase(&stale, &mut participants);
    println!("flatten proposed during active editing: {outcome:?} (edits take precedence)");
    assert!(matches!(outcome, CommitOutcome::Aborted { .. }));
}
