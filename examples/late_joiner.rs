//! A brand-new collaborator joins an editing session already in progress:
//! instead of replaying the whole operation history, the newcomer receives a
//! snapshot of the donor's state (chunked `SnapshotOffer`/`SnapshotChunk`
//! envelopes), then runs one anti-entropy session so it also adopts the
//! donor's causal clock — after which it edits as a first-class peer and any
//! late copies of already-absorbed operations are discardable duplicates.
//!
//! The first half drives the replica API by hand; the second half runs the
//! same shape as a full simulated scenario and prints its wire accounting.
//!
//! Run with `cargo run --example late_joiner`.

use treedoc_repro::prelude::*;

type Doc = Treedoc<String, Udis>;
type Env = Envelope<<Doc as treedoc_repro::replication::ReplicatedDocument>::Op>;

/// Ping-pongs one anti-entropy session between `a` and `b` until a round
/// ends with equal root digests, returning the encoded bytes it cost.
fn sync_session(replicas: &mut [Replica<Doc>], a: usize, b: usize, config: &SyncConfig) -> usize {
    let mut bytes = 0;
    loop {
        let mut queue: Vec<(usize, Env)> = vec![(b, replicas[a].sync_probe())];
        let mut converged = false;
        while let Some((to, env)) = queue.pop() {
            let wire = encode_envelope(&env);
            bytes += wire.len();
            let env: Env = decode_envelope(&wire).expect("sync envelope round-trips");
            let effect = replicas[to].receive_sync(env, config);
            converged |= effect.converged;
            let reply_to = if to == a { b } else { a };
            queue.extend(effect.replies.into_iter().map(|e| (reply_to, e)));
        }
        if converged {
            return bytes;
        }
    }
}

/// Broadcasts one stamped operation envelope from `from` to every other
/// replica through the wire codec.
fn broadcast(replicas: &mut [Replica<Doc>], from: usize, env: Env) {
    let wire = encode_envelope(&env);
    for (to, replica) in replicas.iter_mut().enumerate() {
        if to != from {
            let env: Env = decode_envelope(&wire).expect("op envelope round-trips");
            replica.receive_envelope(env);
        }
    }
}

fn main() {
    let config = SyncConfig::default();
    let seed: Vec<String> = (1..=12).map(|i| format!("paragraph {i}")).collect();

    // Two veterans share the seeded document; the newcomer starts empty and
    // hears nothing until it joins.
    let mut replicas: Vec<Replica<Doc>> = vec![
        Replica::new(
            SiteId::from_u64(1),
            Doc::from_atoms(SiteId::from_u64(1), &seed),
        ),
        Replica::new(
            SiteId::from_u64(2),
            Doc::from_atoms(SiteId::from_u64(2), &seed),
        ),
        Replica::new(SiteId::from_u64(3), Doc::new(SiteId::from_u64(3))),
    ];

    // The session is already busy before the newcomer shows up.
    for k in 0..6 {
        let editor = k % 2;
        let op = replicas[editor]
            .doc_mut()
            .local_insert(k, format!("early edit {k}"))
            .expect("index in range");
        let env = replicas[editor].stamp_envelope(op);
        // Only the veterans hear each other at this point.
        let wire = encode_envelope(&env);
        let other = 1 - editor;
        let env: Env = decode_envelope(&wire).expect("op envelope round-trips");
        replicas[other].receive_envelope(env);
    }
    assert_eq!(replicas[0].doc().to_vec(), replicas[1].doc().to_vec());
    println!(
        "veterans converged on {} atoms; newcomer still holds {}",
        replicas[0].doc().len(),
        replicas[2].doc().len()
    );

    // Join, step 1 — snapshot bootstrap: the donor chunks its document state
    // and the newcomer assembles it, checksummed end to end.
    let chunks = replicas[0].snapshot_envelopes(&config);
    let mut snapshot_bytes = 0;
    let mut bootstrapped = false;
    for env in chunks {
        let wire = encode_envelope(&env);
        snapshot_bytes += wire.len();
        let env: Env = decode_envelope(&wire).expect("snapshot envelope round-trips");
        bootstrapped |= replicas[2].receive_sync(env, &config).bootstrapped;
    }
    assert!(bootstrapped, "snapshot bootstrap must complete");
    println!(
        "newcomer bootstrapped {} atoms from a {snapshot_bytes}-byte snapshot",
        replicas[2].doc().len()
    );

    // Join, step 2 — one sync session transfers the donor's causal clock, so
    // stragglers re-delivering pre-join operations become cheap duplicates.
    let sync_bytes = sync_session(&mut replicas, 0, 2, &config);
    assert_eq!(replicas[0].doc().to_vec(), replicas[2].doc().to_vec());
    println!("clock transfer + digest check cost {sync_bytes} bytes");

    // From here on the newcomer is a first-class peer: everyone edits,
    // everyone hears everyone, and all three replicas converge.
    for (i, text) in ["alice", "bob", "carol"].iter().enumerate() {
        let op = replicas[i]
            .doc_mut()
            .local_insert(0, format!("signed, {text}"))
            .expect("index in range");
        let env = replicas[i].stamp_envelope(op);
        broadcast(&mut replicas, i, env);
    }
    let reference = replicas[0].doc().to_vec();
    assert!(replicas.iter().all(|r| r.doc().to_vec() == reference));
    println!(
        "after post-join edits, all {} replicas hold {} identical atoms",
        replicas.len(),
        reference.len()
    );

    // The same shape as a full simulated scenario: three sites, the last one
    // joining mid-run, with every message through the lossless wire codec.
    let report = treedoc_repro::sim::run(&Scenario::late_joiner(3));
    assert!(report.converged);
    println!(
        "\nsimulated late join: {} ops, {} pre-join messages discarded,\n\
         {}-byte snapshot + {} bytes of sync traffic over {} session(s)",
        report.ops_generated,
        report.messages_before_join,
        report.snapshot_bytes,
        report.sync_bytes,
        report.sync_sessions,
    );
}
