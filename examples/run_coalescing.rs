//! Run coalescing: why sequential typing is cheap.
//!
//! A typing session inserts atoms one after another at the cursor, so the
//! allocator hands out identifiers that share a prefix and differ by one
//! final branch — a *spine*. The document store recognises the pattern and
//! keeps the whole run as **one** record (shared prefix + offset range +
//! live bitmap) instead of one tree node per character, and the wire codec
//! ships a continuation of the same run as a single side byte instead of a
//! full identifier.
//!
//! Run with `cargo run --example run_coalescing`.

use treedoc_repro::prelude::*;

type Doc = Treedoc<char, Sdis>;

fn causal(doc_site: SiteId, seq: u64, op: Op<char, Sdis>) -> CausalMessage<Op<char, Sdis>> {
    let mut clock = VectorClock::new();
    clock.observe(doc_site, seq);
    CausalMessage {
        sender: doc_site,
        clock,
        payload: op,
    }
}

fn main() {
    let site = SiteId::from_u64(1);
    let mut doc = Doc::new(site);

    // One paragraph of sequential typing.
    let text = "Run coalescing stores a burst of sequential typing as a \
                single record: one shared identifier prefix, one offset \
                range, one liveness bitmap.";
    let mut msgs = Vec::new();
    for (i, ch) in text.chars().enumerate() {
        let op = doc.local_insert(i, ch).unwrap();
        msgs.push(causal(site, i as u64 + 1, op));
    }

    let store = doc.store();
    println!("{} characters typed sequentially:", doc.len());
    println!("  coalesced runs : {:>6}", store.run_count());
    println!("  store nodes    : {:>6}", store.node_count());
    println!(
        "  index bytes    : {:>6}  ({:.1} B/char)",
        doc.index_bytes(),
        doc.index_bytes() as f64 / doc.len() as f64
    );

    // The whole run travels as one batch: the head entry carries its full
    // identifier, every continuation collapses to flags + side + atom.
    let entries: Vec<(u64, CausalMessage<Op<char, Sdis>>)> =
        msgs.iter().map(|m| (0u64, m.clone())).collect();
    let batch = encode_envelope(&Envelope::OpBatch(OpBatch {
        entries: entries.clone(),
    }));
    let per_op: usize = msgs
        .iter()
        .map(|m| {
            encode_envelope(&Envelope::Op {
                epoch: 0,
                msg: m.clone(),
            })
            .len()
        })
        .sum();
    println!();
    println!("The same session on the wire:");
    println!(
        "  {} per-op envelopes : {:>6} B  ({:.1} B/op)",
        msgs.len(),
        per_op,
        per_op as f64 / msgs.len() as f64
    );
    println!(
        "  one run-step batch  : {:>6} B  ({:.1} B/op)",
        batch.len(),
        batch.len() as f64 / msgs.len() as f64
    );

    // A remote replica decodes the batch back to the identical operations.
    let decoded: Envelope<Op<char, Sdis>> = decode_envelope(&batch).unwrap();
    let Envelope::OpBatch(decoded) = decoded else {
        unreachable!("encoded as a batch")
    };
    assert_eq!(decoded.entries, entries);
    let mut remote = Doc::new(SiteId::from_u64(2));
    for (_, msg) in &decoded.entries {
        remote.apply(&msg.payload).unwrap();
    }
    assert_eq!(remote.to_string(), doc.to_string());
    println!();
    println!("Remote replica converged from the batch alone.");

    // An edit in the middle of the run splits it: the store trades one run
    // for three (prefix, the edited cell's neighbourhood, suffix) and keeps
    // every identifier stable.
    let cut = text.len() / 2;
    doc.local_delete(cut).unwrap();
    doc.local_insert(cut, '*').unwrap();
    let store = doc.store();
    println!();
    println!("After one mid-run delete + insert:");
    println!("  coalesced runs : {:>6}", store.run_count());
    println!("  document       : …{}…", {
        let s: String = doc.to_vec().into_iter().collect();
        s[cut - 10..cut + 10].to_string()
    });

    doc.check_invariants().unwrap();
    remote.check_invariants().unwrap();
}
