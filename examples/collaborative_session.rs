//! A multi-site cooperative editing session over a simulated network with
//! latency, reordering and a temporary partition — the scenario the paper's
//! introduction motivates (optimistic local edits, background convergence).
//!
//! Run with `cargo run --example collaborative_session`.

use treedoc_repro::sim::{run, Scenario};

fn main() {
    let scenarios = [
        (
            "3 sites, fully connected",
            Scenario {
                sites: 3,
                edits_per_site: 200,
                ..Default::default()
            },
        ),
        (
            "5 sites, delete-heavy",
            Scenario {
                sites: 5,
                edits_per_site: 120,
                delete_ratio: 0.5,
                ..Default::default()
            },
        ),
        (
            "4 sites, one partitioned for a third of the session",
            Scenario {
                sites: 4,
                edits_per_site: 150,
                partition_first_site: true,
                ..Default::default()
            },
        ),
        (
            "3 sites with balanced identifier allocation",
            Scenario {
                sites: 3,
                edits_per_site: 200,
                balancing: true,
                ..Default::default()
            },
        ),
    ];

    for (label, scenario) in scenarios {
        let report = run(&scenario);
        println!("{label}:");
        println!(
            "  converged: {}   final length: {} atoms   ops: {}   messages: {}",
            report.converged, report.final_len, report.ops_generated, report.messages_delivered
        );
        println!(
            "  network payload: {} bytes   max causal hold-back: {}   simulated time: {} ms",
            report.network_bytes, report.max_pending, report.sim_time_ms
        );
        assert!(report.converged, "every scenario must converge");
    }
    println!("all scenarios converged");
}
