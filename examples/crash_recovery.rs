//! Crash and recovery of a durable replica: two sites edit together, one
//! dies mid-session (losing its entire in-memory state), restarts from its
//! `DocStore` — checksummed WAL + verified epoch snapshot — and converges.
//!
//! Run with `cargo run --example crash_recovery`.

use treedoc_repro::prelude::*;

type Doc = Treedoc<String, Sdis>;

fn main() {
    let alice = SiteId::from_u64(1);
    let bob = SiteId::from_u64(2);
    let seed: Vec<String> = (1..=4).map(|i| format!("chapter {i}")).collect();
    let mut a = Replica::new(alice, Doc::from_atoms(alice, &seed));
    let mut b = Replica::new(bob, Doc::from_atoms(bob, &seed));
    a.enable_at_least_once(&[alice, bob]);
    b.enable_at_least_once(&[alice, bob]);

    // Both replicas journal through a durable store (in-memory backend here;
    // `FileBackend::open(dir)` gives the same API on real files).
    a.attach_store(DocStore::in_memory()).unwrap();
    b.attach_store(DocStore::in_memory()).unwrap();

    // A collaborative session: each side edits, messages flow both ways.
    let mut to_b = Vec::new();
    for k in 0..3 {
        let len = a.doc().len();
        let op = a
            .doc_mut()
            .local_insert(len, format!("alice edit {k}"))
            .unwrap();
        to_b.push(a.stamp(op));
    }
    for m in to_b.drain(..) {
        b.receive(m);
    }
    let op = b
        .doc_mut()
        .local_insert(0, "bob's preface".to_string())
        .unwrap();
    a.receive(b.stamp(op));
    a.receive_envelope(b.ack_envelope());
    b.receive_envelope(a.ack_envelope());
    println!(
        "session in progress: both replicas hold {} atoms",
        a.doc().len()
    );

    // Bob types one more line — and his process dies before anyone hears of
    // it. The only copies of that edit are his send log and his WAL.
    let len = b.doc().len();
    let op = b
        .doc_mut()
        .local_insert(len, "bob's unsent conclusion".to_string())
        .unwrap();
    let _lost_in_the_crash = b.stamp(op);

    let store = b.detach_store().expect("bob journals");
    drop(b); // the crash: clock, send log, document — all gone
    println!(
        "bob crashed ({} atoms only alice still has live)",
        a.doc().len()
    );

    // Alice keeps working while bob is down.
    let len = a.doc().len();
    let op = a
        .doc_mut()
        .local_insert(len, "alice, meanwhile".to_string())
        .unwrap();
    let while_down = a.stamp(op);

    // Restart: bob rebuilds himself from the store — newest verified
    // snapshot plus a replay of the WAL tail.
    let (mut b, report) = Replica::<Doc>::recover(store).expect("recovery succeeds");
    println!(
        "bob recovered: snapshot epoch {}, {} WAL records replayed, {} bytes read back",
        report.snapshot_epoch, report.wal_records_replayed, report.bytes_recovered
    );
    assert!(report.snapshot_hit);
    assert!(report.wal_records_replayed > 0);

    // Resynchronisation: what alice missed, bob's recovered send log still
    // holds; what bob missed, alice retransmits.
    b.receive(while_down);
    a.receive_envelope(b.ack_envelope());
    for m in b.unacked_for(alice) {
        a.receive(m);
    }
    b.receive_envelope(a.ack_envelope());

    assert_eq!(a.doc().to_vec(), b.doc().to_vec());
    assert_eq!(a.digest(), b.digest());
    assert!(!a.has_unacked() && !b.has_unacked());
    assert!(a
        .doc()
        .to_vec()
        .iter()
        .any(|line| line == "bob's unsent conclusion"));
    println!(
        "converged after recovery: {} atoms, digests match",
        a.doc().len()
    );
    println!("final document:");
    for line in a.doc().to_vec() {
        println!("  | {line}");
    }
}
