//! Quickstart: two users editing the same document concurrently.
//!
//! Run with `cargo run --example quickstart`.

use treedoc_repro::prelude::*;

fn main() {
    // Both replicas start from the same seed document (the canonical
    // metadata-free `explode` layout, so the identifiers agree).
    let seed: Vec<String> = ["# Shopping list", "- bread", "- milk"]
        .into_iter()
        .map(String::from)
        .collect();
    let mut alice: Treedoc<String, Sdis> = Treedoc::from_atoms(SiteId::from_u64(1), &seed);
    let mut bob: Treedoc<String, Sdis> = Treedoc::from_atoms(SiteId::from_u64(2), &seed);

    // Alice and Bob edit *concurrently*: neither has seen the other's change.
    let from_alice: Vec<Op<String, Sdis>> = vec![
        alice.local_insert(3, "- eggs".to_string()).unwrap(),
        alice.local_insert(4, "- butter".to_string()).unwrap(),
    ];
    let from_bob: Vec<Op<String, Sdis>> = vec![
        bob.local_delete(2).unwrap(), // Bob removes "- milk"
        bob.local_insert(2, "- oat milk".to_string()).unwrap(),
    ];

    // The operations cross on the network and are replayed at the other
    // replica. Order does not matter for concurrent operations: the data type
    // is a CRDT, so both replicas converge.
    for op in &from_bob {
        alice.apply(op).unwrap();
    }
    for op in &from_alice {
        bob.apply(op).unwrap();
    }

    println!("Alice sees:");
    for line in alice.to_vec() {
        println!("  {line}");
    }
    println!("Bob sees:");
    for line in bob.to_vec() {
        println!("  {line}");
    }
    assert_eq!(alice.to_vec(), bob.to_vec(), "replicas must converge");

    // Identifier overhead is visible through the stats API, and a structural
    // clean-up (flatten) removes it once the replicas agree to run it.
    let before = alice.stats();
    alice.flatten_all().unwrap();
    let after = alice.stats();
    println!(
        "identifier overhead: {} -> {} bits total ({} tombstones removed)",
        before.pos_ids.total_bits,
        after.pos_ids.total_bits,
        before.tombstones - after.tombstones
    );
}
