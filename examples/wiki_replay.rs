//! Replays the synthetic twin of a Wikipedia revision history against
//! Treedoc (with and without flattening) and against the Logoot baseline,
//! printing the §5-style overhead measurements — a miniature of the paper's
//! evaluation that runs in a couple of seconds.
//!
//! Run with `cargo run --release --example wiki_replay`.

use treedoc_repro::trace::{paper_corpus, replay_logoot, replay_treedoc, DisChoice, ReplayConfig};

fn main() {
    let spec = paper_corpus()
        .into_iter()
        .find(|s| s.name == "Grey Owl")
        .expect("corpus contains the Grey Owl twin");
    println!(
        "Replaying the '{}' twin: {} revisions, ~{} paragraphs, ~{} bytes",
        spec.name, spec.revisions, spec.final_units, spec.target_bytes
    );
    let history = spec.generate();

    for config in [
        ReplayConfig {
            dis: DisChoice::Sdis,
            balancing: false,
            flatten_every: None,
        },
        ReplayConfig {
            dis: DisChoice::Sdis,
            balancing: false,
            flatten_every: Some(2),
        },
        ReplayConfig {
            dis: DisChoice::Udis,
            balancing: false,
            flatten_every: None,
        },
        ReplayConfig {
            dis: DisChoice::Sdis,
            balancing: true,
            flatten_every: Some(2),
        },
    ] {
        let report = replay_treedoc(&history, config);
        println!(
            "  {:<22} nodes: {:>5}  live: {:>4}  max/avg PosID: {:>4}/{:>6.1} bits  mem ovhd: {:>5.2}x  disk: {:>6} B  ({:?})",
            config.label(),
            report.final_stats.total_nodes,
            report.final_stats.live_atoms,
            report.final_stats.pos_ids.max_bits,
            report.avg_pos_id_bits(),
            report.memory_overhead_ratio(),
            report.disk_overhead_bytes,
            report.elapsed,
        );
    }

    let logoot = replay_logoot(&history);
    println!(
        "  {:<22} atoms: {:>5}  total id bytes: {:>6}  avg id: {:>5.1} bytes  ({:?})",
        "Logoot baseline",
        logoot.final_stats.atoms,
        logoot.total_id_bytes(),
        logoot.final_stats.avg_id_bytes(),
        logoot.elapsed,
    );
}
