//! # treedoc-repro
//!
//! Umbrella crate of the reproduction of *"A Commutative Replicated Data Type
//! for Cooperative Editing"* (Preguiça, Marquès, Shapiro, Leția — ICDCS
//! 2009).
//!
//! It re-exports every sub-crate of the workspace so the examples and
//! integration tests can reach the whole system through a single dependency:
//!
//! * [`core`] (`treedoc-core`) — the Treedoc CRDT itself,
//! * [`replication`] (`treedoc-replication`) — vector clocks, causal
//!   delivery, the simulated network,
//! * [`commit`] (`treedoc-commit`) — 2PC/3PC agreement for `flatten`,
//! * [`storage`] (`treedoc-storage`) — the on-disk heap-array format,
//! * [`trace`] (`treedoc-trace`) — diffs, synthetic corpora and the replay
//!   harness behind the paper's evaluation,
//! * [`sim`] (`treedoc-sim`) — multi-site cooperative-editing scenarios,
//! * [`node`] (`treedoc-node`) — the multi-document hosting node (sharded
//!   stores, cold eviction, group-commit WAL),
//! * [`telemetry`] (`treedoc-telemetry`) — counters, gauges, log-bucketed
//!   histograms and the bounded trace ring every subsystem records into,
//! * [`logoot`] — the Logoot baseline CRDT of §5.3.
//!
//! See `README.md` for a tour and `EXPERIMENTS.md` for the reproduction of
//! every table and figure.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use logoot;
pub use treedoc_commit as commit;
pub use treedoc_core as core;
pub use treedoc_node as node;
pub use treedoc_replication as replication;
pub use treedoc_sim as sim;
pub use treedoc_storage as storage;
pub use treedoc_telemetry as telemetry;
pub use treedoc_trace as trace;

/// Convenience prelude with the types most programs need.
pub mod prelude {
    pub use treedoc_commit::{CommitOutcome, CommitProtocol, FlattenProposal, Vote};
    pub use treedoc_core::{
        codec, Op, PosId, Sdis, SiteId, Treedoc, TreedocConfig, Udis, WireAtom, WireDis,
        WirePayload,
    };
    pub use treedoc_node::{DocId, HostingNode, NodeConfig, NodeError, SessionId};
    pub use treedoc_replication::{
        decode_envelope, encode_envelope, BatchPolicy, CausalBuffer, CausalMessage, Envelope,
        FlattenCoordinator, LinkConfig, OpBatch, PersistentDocument, RecoverError, RecoveryReport,
        Replica, SimNetwork, SyncConfig, SyncDocument, SyncEffect, VectorClock, WalCodec,
        WireError,
    };
    pub use treedoc_sim::{
        crash_recovery_demo, partitioned_commit_demo, CrashRecoveryReport, CrashSchedule,
        PartitionedCommitReport, Scenario, ScenarioMatrix, SimReport,
    };
    pub use treedoc_storage::{
        DiskImage, DocStore, FileBackend, GroupWal, MemoryBackend, NamespacedBackend,
        SharedBackend, Snapshot, StorageBackend,
    };
    pub use treedoc_telemetry::{
        parse_jsonl, Counter, Gauge, Histogram, Registry, RegistrySnapshot, Telemetry, TraceEvent,
        Tracer,
    };
}
