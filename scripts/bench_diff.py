#!/usr/bin/env python3
"""Diff a fresh bench run against a committed BENCH_*.json baseline.

Usage: bench_diff.py BASELINE CURRENT [--out DIFF_JSON]

Walks both JSON documents in parallel and compares every numeric leaf.
Rows inside arrays are keyed by their "case" / "transport" / "protocol"
field when they have one, so reordering or adding cases never misaligns
the comparison. Each metric's direction is inferred from its name:
throughput-like names ("*_per_sec", "ratio") should go up, cost-like
names ("*bytes*", "*micros*", "*nanos*", "*_us"/"*_ms", "height", "*rounds*", the
hosting node's latency percentiles "*p50*"/"*p99*", "*latency*",
"*resident*" memory and "segment_appends") should go down, and anything
else (op counts, configured sizes) is reported but never judged.

A metric that moves more than THRESHOLD in its bad direction prints a
GitHub `::warning` annotation; the full comparison is written to the
`--out` file for the artifact upload. The exit status is always 0 — the
CI job is a tripwire, not a gate (timing metrics are noisy on shared
runners, which is also why the threshold is as loose as 25%).
"""

import json
import re
import sys

THRESHOLD = 0.25

HIGHER_BETTER = re.compile(r"(_per_sec|^ratio)$")
LOWER_BETTER = re.compile(
    r"(bytes|micros|nanos|height|rounds|blocked|p50|p99|latency|resident|segment_appends"
    r"|overhead|_us$|_ms$)",
    re.IGNORECASE,
)
# Telemetry overhead percentages hover around zero (negative values are
# measurement noise), so a relative diff is meaningless — judge those on
# absolute percentage points instead.
ABS_POINTS = re.compile(r"overhead_pct$")
ABS_THRESHOLD = 2.0
ROW_KEYS = ("case", "transport", "protocol")


def leaves(node, path=""):
    """Yields (dot.path, number) for every numeric leaf under `node`."""
    if isinstance(node, bool):
        return
    if isinstance(node, (int, float)):
        yield path, float(node)
    elif isinstance(node, dict):
        for key, value in node.items():
            yield from leaves(value, f"{path}.{key}" if path else key)
    elif isinstance(node, list):
        for index, value in enumerate(node):
            label = str(index)
            if isinstance(value, dict):
                tags = [str(value[k]) for k in ROW_KEYS if k in value]
                if tags:
                    label = "/".join(tags)
            yield from leaves(value, f"{path}[{label}]")


def direction(path):
    metric = path.rsplit(".", 1)[-1]
    if HIGHER_BETTER.search(metric):
        return "higher"
    if LOWER_BETTER.search(metric):
        return "lower"
    return None


def main():
    argv = list(sys.argv[1:])
    out_path = None
    if "--out" in argv:
        at = argv.index("--out")
        out_path = argv[at + 1]
        del argv[at : at + 2]
    baseline_path, current_path = argv

    # A missing baseline file is not an error: the first run after a new
    # bench binary lands has nothing to diff against, so every current
    # metric is reported as "new" and the exit stays 0 (commit the fresh
    # JSON as the baseline to start judging it).
    try:
        with open(baseline_path) as f:
            baseline = dict(leaves(json.load(f)))
    except FileNotFoundError:
        print(f"{baseline_path}: no baseline yet, reporting all metrics as new")
        baseline = {}
    with open(current_path) as f:
        current = dict(leaves(json.load(f)))

    rows = []
    regressions = 0
    for path, base in sorted(baseline.items()):
        if path not in current:
            rows.append({"metric": path, "status": "removed", "baseline": base})
            continue
        now = current[path]
        change = (now - base) / base if base else 0.0
        sense = direction(path)
        if ABS_POINTS.search(path.rsplit(".", 1)[-1]):
            worse = (now - base) > ABS_THRESHOLD
        else:
            worse = sense == "higher" and change < -THRESHOLD
            worse = worse or (sense == "lower" and change > THRESHOLD)
        status = "regressed" if worse else "ok" if sense else "info"
        rows.append(
            {
                "metric": path,
                "status": status,
                "baseline": base,
                "current": now,
                "change_pct": round(change * 100, 1),
            }
        )
        if worse:
            regressions += 1
            print(
                f"::warning file={baseline_path}::{path} regressed "
                f"{abs(change) * 100:.0f}% ({base:g} -> {now:g})"
            )
    for path in sorted(set(current) - set(baseline)):
        rows.append({"metric": path, "status": "new", "current": current[path]})

    report = {
        "baseline": baseline_path,
        "metrics": len(rows),
        "regressions": regressions,
        "rows": rows,
    }
    if out_path:
        with open(out_path, "w") as f:
            json.dump(report, f, indent=2)
            f.write("\n")
    judged = sum(1 for r in rows if r["status"] in ("ok", "regressed"))
    print(
        f"{baseline_path}: {judged} judged metrics, "
        f"{regressions} past the {THRESHOLD:.0%} tripwire"
    )


if __name__ == "__main__":
    main()
