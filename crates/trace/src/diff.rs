//! Line diff between two consecutive revisions.
//!
//! The paper's methodology (§5): "for each revision, we compute the
//! differences from the previous version, and execute an equivalent sequence
//! of insert and delete operations". This module computes a longest-common-
//! subsequence diff and expresses it as hunks that a replay harness can apply
//! with a single forward cursor: `Keep(n)` advances over unchanged atoms,
//! `Delete(n)` removes the next `n` atoms, `Insert(lines)` inserts a run of
//! new atoms at the cursor. Modified atoms therefore show up as a delete
//! followed by an insert, exactly as the paper models them.

use std::collections::HashMap;

/// One hunk of a diff, relative to a forward cursor over the document being
/// transformed from the old to the new revision.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DiffHunk {
    /// The next `n` atoms are unchanged: advance the cursor.
    Keep(usize),
    /// Delete the next `n` atoms at the cursor.
    Delete(usize),
    /// Insert these atoms at the cursor (the cursor ends up after them).
    Insert(Vec<String>),
}

/// Computes the diff from `old` to `new` as a sequence of hunks.
///
/// The result always satisfies: applying the hunks to `old` yields `new`,
/// and `Keep` hunks only cover positions where both sides are identical.
pub fn diff_lines(old: &[String], new: &[String]) -> Vec<DiffHunk> {
    // Intern lines first so the LCS table compares small integers instead of
    // whole strings.
    let mut interner: HashMap<&str, u32> = HashMap::new();
    let old_ids: Vec<u32> = old.iter().map(|s| intern(&mut interner, s)).collect();
    let new_ids: Vec<u32> = new.iter().map(|s| intern(&mut interner, s)).collect();

    let lcs = lcs_table(&old_ids, &new_ids);
    let mut hunks: Vec<DiffHunk> = Vec::new();
    let (mut i, mut j) = (0usize, 0usize);
    let n = old_ids.len();
    let m = new_ids.len();
    while i < n && j < m {
        if old_ids[i] == new_ids[j] {
            push_keep(&mut hunks, 1);
            i += 1;
            j += 1;
        } else if lcs[i + 1][j] >= lcs[i][j + 1] {
            push_delete(&mut hunks, 1);
            i += 1;
        } else {
            push_insert(&mut hunks, new[j].clone());
            j += 1;
        }
    }
    if i < n {
        push_delete(&mut hunks, n - i);
    }
    while j < m {
        push_insert(&mut hunks, new[j].clone());
        j += 1;
    }
    hunks
}

/// Applies a diff to a vector (reference implementation used by tests and by
/// consumers that only need the resulting content).
pub fn apply_diff(old: &[String], hunks: &[DiffHunk]) -> Vec<String> {
    let mut out: Vec<String> = old.to_vec();
    let mut cursor = 0usize;
    for hunk in hunks {
        match hunk {
            DiffHunk::Keep(n) => cursor += n,
            DiffHunk::Delete(n) => {
                out.drain(cursor..cursor + n);
            }
            DiffHunk::Insert(lines) => {
                for (k, line) in lines.iter().enumerate() {
                    out.insert(cursor + k, line.clone());
                }
                cursor += lines.len();
            }
        }
    }
    out
}

/// Counts the edit operations a diff will generate (inserts, deletes).
pub fn op_counts(hunks: &[DiffHunk]) -> (usize, usize) {
    let mut inserts = 0;
    let mut deletes = 0;
    for hunk in hunks {
        match hunk {
            DiffHunk::Keep(_) => {}
            DiffHunk::Delete(n) => deletes += n,
            DiffHunk::Insert(lines) => inserts += lines.len(),
        }
    }
    (inserts, deletes)
}

fn push_keep(hunks: &mut Vec<DiffHunk>, n: usize) {
    if let Some(DiffHunk::Keep(k)) = hunks.last_mut() {
        *k += n;
    } else {
        hunks.push(DiffHunk::Keep(n));
    }
}

fn push_delete(hunks: &mut Vec<DiffHunk>, n: usize) {
    if let Some(DiffHunk::Delete(k)) = hunks.last_mut() {
        *k += n;
    } else {
        hunks.push(DiffHunk::Delete(n));
    }
}

fn push_insert(hunks: &mut Vec<DiffHunk>, line: String) {
    if let Some(DiffHunk::Insert(lines)) = hunks.last_mut() {
        lines.push(line);
    } else {
        hunks.push(DiffHunk::Insert(vec![line]));
    }
}

/// LCS length table: `lcs[i][j]` = length of the LCS of `old[i..]` and
/// `new[j..]`.
fn lcs_table(old: &[u32], new: &[u32]) -> Vec<Vec<u32>> {
    let n = old.len();
    let m = new.len();
    let mut table = vec![vec![0u32; m + 1]; n + 1];
    for i in (0..n).rev() {
        for j in (0..m).rev() {
            table[i][j] = if old[i] == new[j] {
                table[i + 1][j + 1] + 1
            } else {
                table[i + 1][j].max(table[i][j + 1])
            };
        }
    }
    table
}

/// Maps each distinct line to a small integer.
fn intern<'a>(map: &mut HashMap<&'a str, u32>, line: &'a str) -> u32 {
    if let Some(&id) = map.get(line) {
        return id;
    }
    let id = map.len() as u32;
    map.insert(line, id);
    id
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lines(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn identical_revisions_produce_only_keeps() {
        let a = lines(&["x", "y", "z"]);
        let hunks = diff_lines(&a, &a);
        assert_eq!(hunks, vec![DiffHunk::Keep(3)]);
        assert_eq!(op_counts(&hunks), (0, 0));
    }

    #[test]
    fn pure_insert_and_pure_delete() {
        let a = lines(&["x", "y"]);
        let b = lines(&["x", "new", "y"]);
        let hunks = diff_lines(&a, &b);
        assert_eq!(apply_diff(&a, &hunks), b);
        assert_eq!(op_counts(&hunks), (1, 0));

        let hunks = diff_lines(&b, &a);
        assert_eq!(apply_diff(&b, &hunks), a);
        assert_eq!(op_counts(&hunks), (0, 1));
    }

    #[test]
    fn modification_is_delete_plus_insert() {
        let a = lines(&["keep", "old line", "keep2"]);
        let b = lines(&["keep", "new line", "keep2"]);
        let hunks = diff_lines(&a, &b);
        assert_eq!(apply_diff(&a, &hunks), b);
        let (ins, del) = op_counts(&hunks);
        assert_eq!(
            (ins, del),
            (1, 1),
            "a modified atom costs one delete and one insert"
        );
    }

    #[test]
    fn empty_edge_cases() {
        let empty: Vec<String> = Vec::new();
        let a = lines(&["x"]);
        assert_eq!(apply_diff(&empty, &diff_lines(&empty, &a)), a);
        assert_eq!(apply_diff(&a, &diff_lines(&a, &empty)), empty);
        assert!(diff_lines(&empty, &empty).is_empty());
    }

    #[test]
    fn repeated_lines_are_handled() {
        let a = lines(&["dup", "dup", "x", "dup"]);
        let b = lines(&["dup", "x", "dup", "dup", "y"]);
        let hunks = diff_lines(&a, &b);
        assert_eq!(apply_diff(&a, &hunks), b);
    }

    #[test]
    fn keeps_are_maximised_for_large_common_parts() {
        let a: Vec<String> = (0..100).map(|i| format!("line {i}")).collect();
        let mut b = a.clone();
        b[50] = "changed".to_string();
        b.insert(80, "inserted".to_string());
        let hunks = diff_lines(&a, &b);
        assert_eq!(apply_diff(&a, &hunks), b);
        let (ins, del) = op_counts(&hunks);
        assert_eq!((ins, del), (2, 1));
        let kept: usize = hunks
            .iter()
            .map(|h| if let DiffHunk::Keep(n) = h { *n } else { 0 })
            .sum();
        assert_eq!(kept, 99);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        fn arb_doc() -> impl Strategy<Value = Vec<String>> {
            proptest::collection::vec("[a-d]{0,3}", 0..40)
        }

        proptest! {
            /// Applying the diff always reproduces the target revision.
            #[test]
            fn patch_reconstructs_target(old in arb_doc(), new in arb_doc()) {
                let hunks = diff_lines(&old, &new);
                prop_assert_eq!(apply_diff(&old, &hunks), new);
            }

            /// The diff of a document with itself performs no edits.
            #[test]
            fn self_diff_is_empty(doc in arb_doc()) {
                let hunks = diff_lines(&doc, &doc);
                prop_assert_eq!(op_counts(&hunks), (0, 0));
            }

            /// Edit counts are bounded by the document sizes.
            #[test]
            fn op_counts_are_bounded(old in arb_doc(), new in arb_doc()) {
                let (ins, del) = op_counts(&diff_lines(&old, &new));
                prop_assert!(ins <= new.len());
                prop_assert!(del <= old.len());
            }
        }
    }
}
