//! # treedoc-trace
//!
//! The edit-trace substrate used by the evaluation (§5 of the paper).
//!
//! The paper replays co-operative edit sessions extracted from existing
//! repositories (Wikipedia page histories, KDE SVN C++ files, private SVN
//! LaTeX/Java files). Those repositories are not available offline, so this
//! crate provides:
//!
//! * [`history`] — revision histories as plain data (`Vec` of versions, each
//!   a list of lines or paragraphs);
//! * [`diff`] — an LCS line diff that converts two consecutive revisions into
//!   the insert/delete operations the paper's methodology prescribes (a
//!   modified atom is modelled as a delete followed by an insert);
//! * [`corpus`] — deterministic synthetic *twins* of the six documents the
//!   paper reports on, parameterised to match their published size, revision
//!   count and edit behaviour (Table 1 / Table 2), including Wikipedia-style
//!   vandalism episodes;
//! * [`replay`] — the measurement harness: replays a history against a
//!   Treedoc replica (SDIS or UDIS, balancing on or off, flatten heuristics)
//!   or against the Logoot baseline, recording the per-revision node counts
//!   (Figure 6) and the final overhead statistics (Tables 1, 3, 4, 5).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod corpus;
pub mod diff;
pub mod history;
pub mod replay;

pub use corpus::{latex_corpus, paper_corpus, DocumentKind, DocumentSpec};
pub use diff::{diff_lines, DiffHunk};
pub use history::{History, Revision};
pub use replay::{
    replay_logoot, replay_logoot_with, replay_treedoc, DisChoice, LogootParams, LogootReport,
    ReplayConfig, ReplayReport, RevisionPoint,
};
