//! Revision histories.

use serde::{Deserialize, Serialize};

/// One version of a document: its atoms (lines for LaTeX / source code,
/// paragraphs for wiki pages) in order.
pub type Revision = Vec<String>;

/// A whole edit history: the successive versions of one document.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct History {
    /// Document name (e.g. `acf.tex`).
    pub name: String,
    /// The successive versions, oldest first.
    pub revisions: Vec<Revision>,
}

impl History {
    /// Creates a history.
    pub fn new(name: impl Into<String>, revisions: Vec<Revision>) -> Self {
        History {
            name: name.into(),
            revisions,
        }
    }

    /// Number of revisions (versions) in the history.
    pub fn revision_count(&self) -> usize {
        self.revisions.len()
    }

    /// Number of atoms in the first version.
    pub fn initial_len(&self) -> usize {
        self.revisions.first().map(Vec::len).unwrap_or(0)
    }

    /// Number of atoms in the last version.
    pub fn final_len(&self) -> usize {
        self.revisions.last().map(Vec::len).unwrap_or(0)
    }

    /// Size in bytes of the final version's content.
    pub fn final_bytes(&self) -> usize {
        self.revisions
            .last()
            .map(|r| r.iter().map(String::len).sum())
            .unwrap_or(0)
    }

    /// The summary row of Table 2 of the paper: revisions, initial and final
    /// number of atoms.
    pub fn summary(&self) -> (usize, usize, usize) {
        (self.revision_count(), self.initial_len(), self.final_len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_reports_revisions_and_sizes() {
        let h = History::new(
            "doc",
            vec![
                vec!["a".into(), "b".into()],
                vec!["a".into(), "b".into(), "c".into()],
                vec!["a".into(), "c".into()],
            ],
        );
        assert_eq!(h.revision_count(), 3);
        assert_eq!(h.initial_len(), 2);
        assert_eq!(h.final_len(), 2);
        assert_eq!(h.final_bytes(), 2);
        assert_eq!(h.summary(), (3, 2, 2));
    }

    #[test]
    fn empty_history() {
        let h = History::new("empty", vec![]);
        assert_eq!(h.summary(), (0, 0, 0));
        assert_eq!(h.final_bytes(), 0);
    }
}
