//! The replay / measurement harness (§5 of the paper).
//!
//! [`replay_treedoc`] rebuilds a revision history on a Treedoc replica: the
//! first revision becomes the initial document, then every later revision is
//! diffed against its predecessor and the resulting insert/delete operations
//! are applied (a modified atom = delete + insert). The harness records the
//! per-revision node counts (Figure 6) and the final overhead statistics
//! (Tables 1, 3, 4), including the on-disk size computed by
//! `treedoc-storage`.
//!
//! [`replay_logoot`] replays the same history on the Logoot baseline and
//! reports its identifier sizes (Table 5).

use std::time::{Duration, Instant};

use serde::{Deserialize, Serialize};

use logoot::{AllocationStrategy, LogootDoc, LogootStats};
use treedoc_core::{
    Disambiguator, DocStats, HasSource, MemoryModel, Sdis, SiteId, Treedoc, TreedocConfig, Udis,
};
use treedoc_storage::{DisCodec, DiskImage};

use crate::diff::{diff_lines, DiffHunk};
use crate::history::History;

/// Which disambiguator design to replay with (§3.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DisChoice {
    /// Site-only disambiguators; deletes leave tombstones.
    Sdis,
    /// (counter, site) disambiguators; deletes discard nodes eagerly.
    Udis,
}

/// Replay configuration: one cell of the paper's evaluation grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReplayConfig {
    /// Disambiguator design.
    pub dis: DisChoice,
    /// §4.1 balancing strategies on or off.
    pub balancing: bool,
    /// Flatten heuristic: compact cold regions every `k` revisions
    /// (`None` = never flatten). The paper evaluates `None`, 1, 2 and 8.
    pub flatten_every: Option<usize>,
}

impl Default for ReplayConfig {
    fn default() -> Self {
        ReplayConfig {
            dis: DisChoice::Sdis,
            balancing: false,
            flatten_every: None,
        }
    }
}

impl ReplayConfig {
    /// Compact human-readable label (used by the bench harness output).
    pub fn label(&self) -> String {
        format!(
            "{}{}{}",
            match self.dis {
                DisChoice::Sdis => "SDIS",
                DisChoice::Udis => "UDIS",
            },
            if self.balancing { "+bal" } else { "" },
            match self.flatten_every {
                None => "/no-flatten".to_string(),
                Some(k) => format!("/flatten-{k}"),
            }
        )
    }
}

/// One point of the Figure 6 time series.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RevisionPoint {
    /// Revision number (0-based).
    pub revision: usize,
    /// Occupied tree slots after replaying the revision.
    pub total_nodes: usize,
    /// Live atoms.
    pub live_nodes: usize,
    /// Tombstones.
    pub tombstones: usize,
    /// Maximum identifier size so far, in bits.
    pub max_pos_id_bits: usize,
}

/// Everything measured while replaying one history under one configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ReplayReport {
    /// Document name.
    pub name: String,
    /// The configuration replayed.
    pub config: ReplayConfig,
    /// Per-revision time series (Figure 6).
    pub timeline: Vec<RevisionPoint>,
    /// Final-state statistics (Table 1, 3, 4 inputs).
    pub final_stats: DocStats,
    /// Total insert operations executed.
    pub inserts: usize,
    /// Total delete operations executed.
    pub deletes: usize,
    /// Number of flatten rounds that actually compacted something.
    pub flattens: usize,
    /// On-disk structure size of the final state, in bytes (Table 1
    /// "On-disk overhead").
    pub disk_overhead_bytes: usize,
    /// Final document content size in bytes.
    pub document_bytes: usize,
    /// Wall-clock time spent replaying (the paper's §5.2 CPU-cost claim).
    pub elapsed: Duration,
}

impl ReplayReport {
    /// In-memory overhead in bytes under the paper's 26-byte node model.
    pub fn memory_bytes(&self) -> usize {
        self.final_stats.total_nodes * 26
    }

    /// In-memory overhead relative to the document size (Table 1 "Mem ovhd").
    pub fn memory_overhead_ratio(&self) -> f64 {
        if self.document_bytes == 0 {
            0.0
        } else {
            self.memory_bytes() as f64 / self.document_bytes as f64
        }
    }

    /// On-disk overhead relative to the document size (Table 1 "% doc").
    pub fn disk_overhead_ratio(&self) -> f64 {
        if self.document_bytes == 0 {
            0.0
        } else {
            self.disk_overhead_bytes as f64 / self.document_bytes as f64
        }
    }

    /// Fraction of non-tombstone nodes (Table 1 "% non-Tomb").
    pub fn non_tombstone_fraction(&self) -> f64 {
        self.final_stats.non_tombstone_fraction()
    }

    /// Identifier overhead per live atom, in bits (Table 4 "overhead/atom").
    pub fn overhead_per_atom_bits(&self) -> f64 {
        self.final_stats.pos_ids.overhead_per_atom_bits()
    }

    /// Average identifier size over stored nodes, in bits (Table 1 / 4).
    pub fn avg_pos_id_bits(&self) -> f64 {
        self.final_stats.pos_ids.avg_bits()
    }

    /// Total identifier bytes over live atoms (the quantity compared against
    /// Logoot in Table 5).
    pub fn live_pos_id_bytes(&self) -> usize {
        self.final_stats.pos_ids.live_bits.div_ceil(8)
    }

    /// In-memory overhead under an arbitrary model.
    pub fn memory_bytes_model(&self, model: MemoryModel) -> usize {
        match self.config.dis {
            DisChoice::Sdis => self.final_stats.memory_bytes::<Sdis>(model),
            DisChoice::Udis => self.final_stats.memory_bytes::<Udis>(model),
        }
    }
}

/// Replays `history` on a Treedoc replica under `config`.
pub fn replay_treedoc(history: &History, config: ReplayConfig) -> ReplayReport {
    match config.dis {
        DisChoice::Sdis => replay_generic::<Sdis>(history, config),
        DisChoice::Udis => replay_generic::<Udis>(history, config),
    }
}

fn replay_generic<D: Disambiguator + HasSource + DisCodec>(
    history: &History,
    config: ReplayConfig,
) -> ReplayReport {
    let start = Instant::now();
    let site = SiteId::from_u64(1);
    let doc_config = if config.balancing {
        TreedocConfig::balanced()
    } else {
        TreedocConfig::default()
    };
    let empty: Vec<String> = Vec::new();
    let initial = history.revisions.first().unwrap_or(&empty);
    let mut doc: Treedoc<String, D> = Treedoc::from_atoms_with_config(site, initial, doc_config);

    let mut report = ReplayReport {
        name: history.name.clone(),
        config,
        timeline: Vec::with_capacity(history.revision_count()),
        final_stats: doc.stats(),
        inserts: initial.len(),
        deletes: 0,
        flattens: 0,
        disk_overhead_bytes: 0,
        document_bytes: 0,
        elapsed: Duration::ZERO,
    };
    record_point(&mut report, 0, &doc);

    for (rev_index, window) in history.revisions.windows(2).enumerate() {
        let revision = rev_index + 1;
        doc.next_revision();
        let hunks = diff_lines(&window[0], &window[1]);
        apply_hunks(&mut doc, &hunks, &mut report);

        if let Some(every) = config.flatten_every {
            if every > 0 && revision % every == 0 {
                let threshold = doc.revision().saturating_sub(every as u64);
                let outcomes = doc.flatten_cold(threshold, 2);
                report.flattens += outcomes
                    .iter()
                    .filter(|o| matches!(o, treedoc_core::FlattenOutcome::Flattened { .. }))
                    .count();
            }
        }

        record_point(&mut report, revision, &doc);
        debug_assert_eq!(
            doc.to_vec(),
            window[1],
            "replayed content must match the revision"
        );
    }

    report.final_stats = doc.stats();
    report.document_bytes = report.final_stats.document_bytes;
    let image = DiskImage::encode(&doc.tree());
    report.disk_overhead_bytes = image.structure_bytes();
    report.elapsed = start.elapsed();
    report
}

fn apply_hunks<D: Disambiguator + HasSource>(
    doc: &mut Treedoc<String, D>,
    hunks: &[DiffHunk],
    report: &mut ReplayReport,
) {
    let mut cursor = 0usize;
    for hunk in hunks {
        match hunk {
            DiffHunk::Keep(n) => cursor += n,
            DiffHunk::Delete(n) => {
                for _ in 0..*n {
                    doc.local_delete(cursor).expect("diff cursor within bounds");
                    report.deletes += 1;
                }
            }
            DiffHunk::Insert(lines) => {
                doc.local_insert_batch(cursor, lines)
                    .expect("diff cursor within bounds");
                report.inserts += lines.len();
                cursor += lines.len();
            }
        }
    }
}

fn record_point<D: Disambiguator + HasSource>(
    report: &mut ReplayReport,
    revision: usize,
    doc: &Treedoc<String, D>,
) {
    let stats = doc.stats();
    report.timeline.push(RevisionPoint {
        revision,
        total_nodes: stats.total_nodes,
        live_nodes: stats.live_atoms,
        tombstones: stats.tombstones,
        max_pos_id_bits: stats.pos_ids.max_bits,
    });
}

/// Allocation parameters for the Logoot baseline.
///
/// The Treedoc paper fixes the *size* of a Logoot unique identifier at 10
/// bytes (the same as UDIS) but not the per-level digit base of the Logoot
/// implementation it measured. The default here uses a small per-level space
/// (the original Logoot design allocates within a bounded per-level base, not
/// a full 32-bit word) together with the boundary strategy, which is what
/// makes Logoot identifiers deepen — and therefore grow — under localized
/// editing; see EXPERIMENTS.md for the sensitivity of Table 5 to this choice.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LogootParams {
    /// Digit allocation strategy.
    pub strategy: AllocationStrategy,
    /// Per-level digit base.
    pub digit_span: u32,
}

impl Default for LogootParams {
    fn default() -> Self {
        LogootParams {
            strategy: AllocationStrategy::Boundary(16),
            digit_span: 4096,
        }
    }
}

/// Result of replaying a history on the Logoot baseline.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LogootReport {
    /// Document name.
    pub name: String,
    /// Final identifier statistics.
    pub final_stats: LogootStats,
    /// Total insert operations executed.
    pub inserts: usize,
    /// Total delete operations executed.
    pub deletes: usize,
    /// Wall-clock replay time.
    pub elapsed: Duration,
}

impl LogootReport {
    /// Total identifier bytes over live atoms (Table 5 numerator).
    pub fn total_id_bytes(&self) -> usize {
        self.final_stats.total_id_bytes
    }
}

/// Replays `history` on a Logoot replica with the default comparison
/// parameters (Table 5's baseline).
pub fn replay_logoot(history: &History) -> LogootReport {
    replay_logoot_with(history, LogootParams::default())
}

/// Replays `history` on a Logoot replica with explicit allocation parameters.
pub fn replay_logoot_with(history: &History, params: LogootParams) -> LogootReport {
    let start = Instant::now();
    let mut doc: LogootDoc<String> = LogootDoc::with_params(1, params.strategy, params.digit_span);
    let empty: Vec<String> = Vec::new();
    let initial = history.revisions.first().unwrap_or(&empty);
    for (i, line) in initial.iter().enumerate() {
        doc.local_insert(i, line.clone());
    }
    let mut inserts = initial.len();
    let mut deletes = 0;

    for window in history.revisions.windows(2) {
        let hunks = diff_lines(&window[0], &window[1]);
        let mut cursor = 0usize;
        for hunk in &hunks {
            match hunk {
                DiffHunk::Keep(n) => cursor += n,
                DiffHunk::Delete(n) => {
                    for _ in 0..*n {
                        doc.local_delete(cursor).expect("diff cursor within bounds");
                        deletes += 1;
                    }
                }
                DiffHunk::Insert(lines) => {
                    for (k, line) in lines.iter().enumerate() {
                        doc.local_insert(cursor + k, line.clone())
                            .expect("cursor within bounds");
                        inserts += 1;
                    }
                    cursor += lines.len();
                }
            }
        }
        debug_assert_eq!(doc.to_vec(), window[1]);
    }

    LogootReport {
        name: history.name.clone(),
        final_stats: doc.stats(),
        inserts,
        deletes,
        elapsed: start.elapsed(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::{paper_corpus, DocumentKind, DocumentSpec};

    fn small_spec() -> DocumentSpec {
        DocumentSpec {
            name: "small.tex".into(),
            kind: DocumentKind::Latex,
            initial_units: 20,
            final_units: 60,
            revisions: 12,
            target_bytes: 2_400,
            vandalism: false,
            seed: 99,
        }
    }

    #[test]
    fn replay_reproduces_the_final_revision() {
        let history = small_spec().generate();
        for config in [
            ReplayConfig::default(),
            ReplayConfig {
                dis: DisChoice::Udis,
                ..Default::default()
            },
            ReplayConfig {
                balancing: true,
                flatten_every: Some(2),
                ..Default::default()
            },
            ReplayConfig {
                dis: DisChoice::Udis,
                balancing: true,
                flatten_every: Some(1),
            },
        ] {
            let report = replay_treedoc(&history, config);
            assert_eq!(
                report.final_stats.live_atoms,
                history.final_len(),
                "config {}",
                config.label()
            );
            assert_eq!(report.timeline.len(), history.revision_count());
            assert!(report.inserts >= history.final_len());
        }
    }

    #[test]
    fn sdis_without_flatten_accumulates_tombstones() {
        let history = small_spec().generate();
        let report = replay_treedoc(&history, ReplayConfig::default());
        assert!(report.final_stats.tombstones > 0);
        assert!(report.non_tombstone_fraction() < 1.0);
    }

    #[test]
    fn udis_never_stores_tombstones() {
        let history = small_spec().generate();
        let report = replay_treedoc(
            &history,
            ReplayConfig {
                dis: DisChoice::Udis,
                ..Default::default()
            },
        );
        assert_eq!(report.final_stats.tombstones, 0);
    }

    #[test]
    fn aggressive_flattening_reduces_overhead() {
        let history = small_spec().generate();
        let none = replay_treedoc(&history, ReplayConfig::default());
        let aggressive = replay_treedoc(
            &history,
            ReplayConfig {
                flatten_every: Some(1),
                ..Default::default()
            },
        );
        assert!(aggressive.flattens > 0);
        assert!(
            aggressive.final_stats.total_nodes <= none.final_stats.total_nodes,
            "flatten-1 must not store more nodes than no-flatten"
        );
        assert!(aggressive.avg_pos_id_bits() <= none.avg_pos_id_bits());
    }

    #[test]
    fn balancing_shortens_identifiers() {
        let history = small_spec().generate();
        let plain = replay_treedoc(&history, ReplayConfig::default());
        let balanced = replay_treedoc(
            &history,
            ReplayConfig {
                balancing: true,
                ..Default::default()
            },
        );
        assert!(
            balanced.final_stats.pos_ids.max_bits <= plain.final_stats.pos_ids.max_bits,
            "balancing must not lengthen the worst identifier"
        );
    }

    #[test]
    fn logoot_replay_matches_content_and_reports_sizes() {
        let history = small_spec().generate();
        let report = replay_logoot(&history);
        assert_eq!(report.final_stats.atoms, history.final_len());
        assert!(report.total_id_bytes() >= history.final_len() * 10);
        assert!(report.inserts > 0);
    }

    #[test]
    fn logoot_identifiers_deepen_under_localized_insertion() {
        // A run of lines repeatedly inserted into the same gap exhausts the
        // per-level digit space and forces extra Logoot layers; Treedoc pays
        // one extra *bit* per level instead. This is the mechanism behind the
        // Table 5 comparison (the full-corpus numbers are produced by the
        // bench harness).
        let base: Vec<String> = (0..10).map(|i| format!("base {i}")).collect();
        let mut burst = base.clone();
        for k in 0..300 {
            burst.insert(5 + k, format!("burst {k}"));
        }
        let history = History::new("burst", vec![base, burst]);
        let logoot = replay_logoot(&history);
        let per_atom = logoot.total_id_bytes() as f64 / logoot.final_stats.atoms as f64;
        assert!(
            per_atom > 15.0,
            "expected multi-layer Logoot identifiers, got {per_atom:.1} bytes/atom"
        );
        // Treedoc with balancing keeps the same burst logarithmic.
        let treedoc = replay_treedoc(
            &history,
            ReplayConfig {
                dis: DisChoice::Udis,
                balancing: true,
                flatten_every: None,
            },
        );
        assert!(
            (treedoc.live_pos_id_bytes() as f64) < logoot.total_id_bytes() as f64,
            "Treedoc {} bytes vs Logoot {} bytes",
            treedoc.live_pos_id_bytes(),
            logoot.total_id_bytes()
        );
    }

    #[test]
    fn timeline_tracks_flatten_drops() {
        // A deterministic history where a whole region is deleted early and
        // editing then moves elsewhere: once the deleted region goes cold the
        // flatten heuristic reclaims its tombstones, which must show up as a
        // drop in the Figure 6 time series.
        let rev0: Vec<String> = (0..40).map(|i| format!("line {i}")).collect();
        let rev1: Vec<String> = rev0[20..].to_vec(); // delete the first half
        let mut revisions = vec![rev0, rev1.clone()];
        let mut tail = rev1;
        for r in 0..6 {
            tail.push(format!("appended {r}"));
            revisions.push(tail.clone());
        }
        let history = History::new("cold-prefix", revisions);
        let report = replay_treedoc(
            &history,
            ReplayConfig {
                flatten_every: Some(2),
                ..Default::default()
            },
        );
        let drops = report
            .timeline
            .windows(2)
            .filter(|w| w[1].total_nodes < w[0].total_nodes)
            .count();
        assert!(
            drops > 0,
            "expected at least one compaction drop in the timeline"
        );
        assert!(report.flattens > 0);
    }

    #[test]
    fn config_labels_are_readable() {
        assert_eq!(ReplayConfig::default().label(), "SDIS/no-flatten");
        let c = ReplayConfig {
            dis: DisChoice::Udis,
            balancing: true,
            flatten_every: Some(8),
        };
        assert_eq!(c.label(), "UDIS+bal/flatten-8");
    }

    #[test]
    #[ignore = "full corpus replay is exercised by the bench harness; run explicitly with --ignored"]
    fn full_corpus_replays_cleanly() {
        for spec in paper_corpus() {
            let history = spec.generate();
            let report = replay_treedoc(&history, ReplayConfig::default());
            assert_eq!(report.final_stats.live_atoms, history.final_len());
        }
    }
}
