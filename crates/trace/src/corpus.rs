//! Synthetic twins of the documents studied in the paper.
//!
//! The paper's evaluation replays the revision histories of three Wikipedia
//! pages (paragraph-granularity atoms) and three LaTeX source files
//! (line-granularity atoms); Table 1 and Table 2 give their sizes, byte
//! counts and revision counts. Those repositories are not redistributable, so
//! this module generates *deterministic synthetic histories* with the same
//! published characteristics:
//!
//! * initial and final number of atoms, final byte size, revision count
//!   (Table 1 captions / Table 2);
//! * localized edits around moving hot spots, appends, and modifications
//!   (delete + insert of the same position);
//! * for wiki documents, occasional vandalism episodes — a large fraction of
//!   the page is deleted and restored in the following revision — which the
//!   paper singles out as the cause of the unusually high delete counts.
//!
//! Every measured quantity in the paper (identifier length, node counts,
//! tombstone fraction, on-disk size) is a function of the *positions* of the
//! replayed inserts and deletes only, so reproducing these statistics is what
//! matters for the shape of the results, not the actual prose.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::history::{History, Revision};

/// The two document families studied in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DocumentKind {
    /// Wikipedia page: paragraph atoms, vandalism episodes.
    Wiki,
    /// LaTeX (or source-code) file: line atoms, no vandalism.
    Latex,
}

/// Parameters of one synthetic document twin.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DocumentSpec {
    /// Document name as used in Table 1.
    pub name: String,
    /// Document family.
    pub kind: DocumentKind,
    /// Atoms in the first revision.
    pub initial_units: usize,
    /// Atoms in the final revision.
    pub final_units: usize,
    /// Number of revisions in the history.
    pub revisions: usize,
    /// Approximate byte size of the final revision.
    pub target_bytes: usize,
    /// Whether vandalism episodes occur (wiki pages only).
    pub vandalism: bool,
    /// RNG seed (fixed per document so every run regenerates the same twin).
    pub seed: u64,
}

impl DocumentSpec {
    /// Average atom size needed to hit the byte target.
    fn unit_bytes(&self) -> usize {
        (self.target_bytes / self.final_units.max(1)).max(8)
    }

    /// Generates the synthetic history for this specification.
    pub fn generate(&self) -> History {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let unit_bytes = self.unit_bytes();
        let mut counter = 0usize;
        let mut fresh_unit = |rng: &mut StdRng, rev: usize| -> String {
            counter += 1;
            synth_unit(rng, rev, counter, unit_bytes)
        };

        let mut revisions: Vec<Revision> = Vec::with_capacity(self.revisions);
        let mut current: Revision = (0..self.initial_units)
            .map(|_| fresh_unit(&mut rng, 0))
            .collect();
        revisions.push(current.clone());

        // Net growth needed per revision to reach the final size.
        let steps = self.revisions.saturating_sub(1).max(1);
        let growth_per_rev = (self.final_units as f64 - self.initial_units as f64) / steps as f64;

        let mut hot_spot = current.len() / 2;
        let mut pre_vandalism: Option<Revision> = None;

        for rev in 1..self.revisions {
            // A vandalised revision is followed by a restore of the previous
            // content (plus nothing else), as on real wiki pages.
            if let Some(saved) = pre_vandalism.take() {
                current = saved;
                revisions.push(current.clone());
                continue;
            }

            if self.vandalism && current.len() > 20 && rng.gen_bool(0.012) {
                // Vandalism: blank out a large fraction of the page.
                pre_vandalism = Some(current.clone());
                let keep = current.len() / rng.gen_range(4..10);
                current.truncate(keep.max(1));
                revisions.push(current.clone());
                continue;
            }

            // Ordinary revision: a burst of localized edits. Source-code
            // commits touch many more lines per revision than wiki edits
            // touch paragraphs (compare the node counts of Table 1: ~36
            // inserts per revision for the LaTeX files versus ~3 for the
            // Wikipedia pages).
            let expected_len = self.initial_units as f64 + growth_per_rev * rev as f64;
            let deficit = expected_len - current.len() as f64;
            let inserts = if deficit > 0.0 {
                deficit.ceil() as usize + rng.gen_range(0..=2usize)
            } else {
                rng.gen_range(0..=1usize)
            };
            let modifications = match self.kind {
                DocumentKind::Wiki => rng.gen_range(0..=2usize),
                DocumentKind::Latex => rng.gen_range(18..=40usize),
            };
            // Delete whatever would overshoot the expected length curve.
            let deletions = ((current.len() + inserts) as f64 - expected_len)
                .max(0.0)
                .round() as usize;

            // Move the hot spot occasionally; most edits cluster around it.
            if rng.gen_bool(0.3) || hot_spot >= current.len() {
                hot_spot = if current.is_empty() {
                    0
                } else {
                    rng.gen_range(0..current.len())
                };
            }

            for _ in 0..modifications {
                if current.is_empty() {
                    break;
                }
                let idx = clamp_near(&mut rng, hot_spot, current.len());
                current[idx] = fresh_unit(&mut rng, rev);
            }
            for _ in 0..deletions {
                if current.len() <= 2 {
                    break;
                }
                let idx = clamp_near(&mut rng, hot_spot, current.len());
                current.remove(idx);
            }
            for _ in 0..inserts {
                // Appends are common in practice (both wiki pages and LaTeX
                // files mostly grow at the end); mix appends and hot-spot
                // inserts.
                let idx = if rng.gen_bool(0.4) {
                    current.len()
                } else {
                    clamp_near(&mut rng, hot_spot, current.len() + 1)
                };
                let unit = fresh_unit(&mut rng, rev);
                current.insert(idx.min(current.len()), unit);
            }

            revisions.push(current.clone());
        }

        History::new(self.name.clone(), revisions)
    }
}

/// A pseudo-random index near `center`, clamped to `len`.
fn clamp_near(rng: &mut StdRng, center: usize, len: usize) -> usize {
    if len == 0 {
        return 0;
    }
    let spread = (len / 8).max(2);
    let offset = rng.gen_range(0..=spread * 2) as isize - spread as isize;
    let idx = center as isize + offset;
    idx.clamp(0, len as isize - 1) as usize
}

/// A synthetic atom (line or paragraph) of roughly `bytes` bytes whose text
/// is unique to this (revision, counter) pair, so modified atoms never
/// collide with the text they replace.
fn synth_unit(rng: &mut StdRng, rev: usize, counter: usize, bytes: usize) -> String {
    let mut s = format!("r{rev} u{counter}");
    const WORDS: [&str; 12] = [
        "replica",
        "commute",
        "identifier",
        "buffer",
        "editing",
        "tree",
        "atom",
        "merge",
        "concurrent",
        "site",
        "path",
        "convergence",
    ];
    while s.len() < bytes {
        s.push(' ');
        s.push_str(WORDS[rng.gen_range(0..WORDS.len())]);
    }
    s.truncate(bytes.max(4));
    s
}

/// The six documents of Table 1, with the sizes and revision counts the paper
/// reports (wiki sizes are in paragraphs, LaTeX sizes in lines).
pub fn paper_corpus() -> Vec<DocumentSpec> {
    vec![
        DocumentSpec {
            name: "Distributed Computing".into(),
            kind: DocumentKind::Wiki,
            initial_units: 9,
            final_units: 171,
            revisions: 870,
            target_bytes: 19_686,
            vandalism: true,
            seed: 0xD15C0,
        },
        DocumentSpec {
            name: "IBM POWER".into(),
            kind: DocumentKind::Wiki,
            initial_units: 28,
            final_units: 184,
            revisions: 401,
            target_bytes: 24_651,
            vandalism: true,
            seed: 0x1B4,
        },
        DocumentSpec {
            name: "Grey Owl".into(),
            kind: DocumentKind::Wiki,
            initial_units: 18,
            final_units: 110,
            revisions: 242,
            target_bytes: 12_388,
            vandalism: true,
            seed: 0x62E7,
        },
        DocumentSpec {
            name: "acf.tex".into(),
            kind: DocumentKind::Latex,
            initial_units: 99,
            final_units: 332,
            revisions: 51,
            target_bytes: 14_048,
            vandalism: false,
            seed: 0xACF,
        },
        DocumentSpec {
            name: "algorithms.tex".into(),
            kind: DocumentKind::Latex,
            initial_units: 121,
            final_units: 396,
            revisions: 58,
            target_bytes: 15_186,
            vandalism: false,
            seed: 0xA160,
        },
        DocumentSpec {
            name: "propagation.tex".into(),
            kind: DocumentKind::Latex,
            initial_units: 150,
            final_units: 481,
            revisions: 68,
            target_bytes: 22_170,
            vandalism: false,
            seed: 0x9209,
        },
    ]
}

/// The LaTeX subset of the corpus (Tables 3 and 4 report on LaTeX documents
/// only).
pub fn latex_corpus() -> Vec<DocumentSpec> {
    paper_corpus()
        .into_iter()
        .filter(|s| s.kind == DocumentKind::Latex)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_matches_published_characteristics() {
        for spec in paper_corpus() {
            let history = spec.generate();
            assert_eq!(history.revision_count(), spec.revisions, "{}", spec.name);
            assert_eq!(history.initial_len(), spec.initial_units, "{}", spec.name);
            let final_len = history.final_len();
            let tolerance = (spec.final_units as f64 * 0.25).max(12.0) as usize;
            assert!(
                final_len.abs_diff(spec.final_units) <= tolerance,
                "{}: final size {} too far from target {}",
                spec.name,
                final_len,
                spec.final_units
            );
            let bytes = history.final_bytes();
            assert!(
                bytes.abs_diff(spec.target_bytes) <= spec.target_bytes / 2,
                "{}: final bytes {} too far from target {}",
                spec.name,
                bytes,
                spec.target_bytes
            );
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let spec = &paper_corpus()[3];
        assert_eq!(spec.generate(), spec.generate());
    }

    #[test]
    fn different_documents_differ() {
        let corpus = paper_corpus();
        assert_ne!(
            corpus[3].generate().revisions,
            corpus[4].generate().revisions
        );
    }

    #[test]
    fn wiki_documents_contain_vandalism_episodes() {
        let spec = paper_corpus()
            .into_iter()
            .find(|s| s.name == "Distributed Computing")
            .unwrap();
        let history = spec.generate();
        // A vandalism episode shows up as a revision dramatically smaller
        // than its predecessor, followed by a restore.
        let mut found = false;
        for w in history.revisions.windows(3) {
            if w[1].len() * 2 < w[0].len() && w[2].len() >= w[0].len() {
                found = true;
                break;
            }
        }
        assert!(found, "expected at least one vandalism + restore episode");
    }

    #[test]
    fn latex_corpus_is_the_latex_subset() {
        let latex = latex_corpus();
        assert_eq!(latex.len(), 3);
        assert!(latex.iter().all(|s| s.kind == DocumentKind::Latex));
    }

    #[test]
    fn table2_summary_shape_holds() {
        // Table 2: the most active document has many revisions and grows from
        // a small start; the least active one has few revisions.
        let corpus = paper_corpus();
        let revisions: Vec<usize> = corpus.iter().map(|s| s.revisions).collect();
        assert_eq!(*revisions.iter().max().unwrap(), 870);
        assert_eq!(*revisions.iter().min().unwrap(), 51);
    }
}
