//! Two-phase commit over the flatten participants.

use serde::{Deserialize, Serialize};

use crate::participant::{FlattenParticipant, FlattenProposal, Vote};

/// Result of a commitment round.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CommitOutcome {
    /// Every participant voted "Yes": the flatten was applied everywhere.
    Committed,
    /// At least one participant voted "No": nothing changed anywhere.
    Aborted {
        /// How many participants voted "No".
        no_votes: usize,
    },
}

/// Message accounting of one protocol run, used by the benchmark harness to
/// report the cost of a distributed flatten (which the paper leaves
/// unevaluated).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct CommitStats {
    /// Messages sent by the coordinator (requests).
    pub coordinator_messages: usize,
    /// Messages sent by participants (votes / acknowledgements).
    pub participant_messages: usize,
    /// Number of protocol phases executed.
    pub phases: usize,
}

impl CommitStats {
    /// Total messages exchanged.
    pub fn total_messages(&self) -> usize {
        self.coordinator_messages + self.participant_messages
    }
}

/// Runs classic two-phase commit: a prepare round collecting votes, then a
/// commit or abort round. The coordinator is assumed reliable (the paper
/// defers fault tolerance to Gray & Lamport's protocol; see also
/// [`run_three_phase`](crate::run_three_phase) for the non-blocking variant).
pub fn run_two_phase<P: FlattenParticipant>(
    proposal: &FlattenProposal,
    participants: &mut [P],
) -> (CommitOutcome, CommitStats) {
    let mut stats = CommitStats::default();
    // Phase 1: prepare / vote.
    stats.phases += 1;
    let mut no_votes = 0;
    for p in participants.iter_mut() {
        stats.coordinator_messages += 1;
        let vote = p.prepare(proposal);
        stats.participant_messages += 1;
        if vote == Vote::No {
            no_votes += 1;
        }
    }
    // Phase 2: commit or abort.
    stats.phases += 1;
    if no_votes == 0 {
        for p in participants.iter_mut() {
            stats.coordinator_messages += 1;
            p.commit(proposal);
            stats.participant_messages += 1; // acknowledgement
        }
        (CommitOutcome::Committed, stats)
    } else {
        for p in participants.iter_mut() {
            stats.coordinator_messages += 1;
            p.abort(proposal);
            stats.participant_messages += 1;
        }
        (CommitOutcome::Aborted { no_votes }, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::participant::TreedocParticipant;
    use treedoc_core::{Sdis, SiteId, Treedoc};

    fn doc(site: u64, len: usize) -> Treedoc<char, Sdis> {
        let mut d = Treedoc::new(SiteId::from_u64(site));
        for i in 0..len {
            d.local_insert(i, 'x').unwrap();
        }
        d
    }

    fn proposal() -> FlattenProposal {
        FlattenProposal {
            proposer: SiteId::from_u64(1),
            subtree: Vec::new(),
            base_revision: 0,
            txn: 7,
        }
    }

    #[test]
    fn all_yes_commits_everywhere() {
        let mut docs: Vec<_> = (1..=3).map(|s| doc(s, 20)).collect();
        let heights_before: Vec<_> = docs.iter().map(|d| d.height()).collect();
        {
            let mut participants: Vec<_> = docs.iter_mut().map(TreedocParticipant::new).collect();
            let (outcome, stats) = run_two_phase(&proposal(), &mut participants);
            assert_eq!(outcome, CommitOutcome::Committed);
            assert_eq!(stats.phases, 2);
            // 3 prepares + 3 votes + 3 commits + 3 acks.
            assert_eq!(stats.total_messages(), 12);
        }
        for (d, before) in docs.iter().zip(heights_before) {
            assert!(d.height() < before, "every replica flattened");
            assert_eq!(d.len(), 20);
        }
    }

    #[test]
    fn single_no_vote_aborts_everywhere() {
        let mut docs: Vec<_> = (1..=3).map(|s| doc(s, 20)).collect();
        // Replica 2 keeps editing the subtree after the proposal's base
        // revision: it must veto the flatten.
        docs[1].next_revision();
        docs[1].local_insert(0, 'y').unwrap();
        let heights_before: Vec<_> = docs.iter().map(|d| d.height()).collect();
        {
            let mut participants: Vec<_> = docs.iter_mut().map(TreedocParticipant::new).collect();
            let (outcome, stats) = run_two_phase(&proposal(), &mut participants);
            assert_eq!(outcome, CommitOutcome::Aborted { no_votes: 1 });
            assert_eq!(stats.total_messages(), 12);
        }
        for (d, before) in docs.iter().zip(heights_before) {
            assert_eq!(d.height(), before, "abort leaves every replica untouched");
        }
    }

    #[test]
    fn empty_participant_set_commits_trivially() {
        let mut participants: Vec<TreedocParticipant<'_, char, Sdis>> = Vec::new();
        let (outcome, stats) = run_two_phase(&proposal(), &mut participants);
        assert_eq!(outcome, CommitOutcome::Committed);
        assert_eq!(stats.total_messages(), 0);
    }
}
