//! Participants of the flatten commitment protocol.

use serde::{Deserialize, Serialize};
use treedoc_core::{Atom, Disambiguator, HasSource, Side, SiteId, Treedoc};

/// A vote on a flatten proposal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Vote {
    /// No conflicting activity observed: the flatten may proceed.
    Yes,
    /// A concurrent edit (or another flatten) touched the subtree: abort.
    No,
}

/// Which commitment protocol a distributed flatten runs under ("any
/// distributed commitment protocol from the literature will do", §4.2.1).
/// The two classic choices trade message cost against blocking behaviour:
/// 2PC blocks prepared participants while the coordinator is unreachable,
/// 3PC adds a pre-commit round that lets them terminate on their own.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CommitProtocol {
    /// Classic two-phase commit: vote, then decide.
    TwoPhase,
    /// Three-phase commit: vote, pre-commit, then decide (non-blocking).
    ThreePhase,
}

impl CommitProtocol {
    /// Short label used in reports and benchmark output.
    pub fn label(&self) -> &'static str {
        match self {
            CommitProtocol::TwoPhase => "2pc",
            CommitProtocol::ThreePhase => "3pc",
        }
    }
}

/// A proposed structural clean-up: flatten the subtree rooted at `subtree`
/// provided no replica has observed an edit in it after `base_revision`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FlattenProposal {
    /// Identifier of the proposing site.
    pub proposer: SiteId,
    /// Plain bit path of the subtree to compact (empty = whole document).
    pub subtree: Vec<Side>,
    /// The revision the proposer observed when selecting the subtree as
    /// cold; a participant votes [`Vote::No`] if its replica has seen any
    /// activity in the subtree after this revision.
    pub base_revision: u64,
    /// Transaction identifier (unique per proposal).
    pub txn: u64,
}

/// The behaviour each replica contributes to the commitment protocol.
pub trait FlattenParticipant {
    /// Phase 1: vote on the proposal.
    fn prepare(&mut self, proposal: &FlattenProposal) -> Vote;
    /// Phase 2 (commit path): apply the flatten locally.
    fn commit(&mut self, proposal: &FlattenProposal);
    /// Phase 2 (abort path): discard any prepared state.
    fn abort(&mut self, proposal: &FlattenProposal);
}

/// A [`FlattenParticipant`] wrapping a Treedoc replica: it votes "No"
/// whenever the replica has observed activity in the proposed subtree after
/// the proposal's base revision (edits take precedence over clean-up), and
/// applies the deterministic flatten on commit.
#[derive(Debug)]
pub struct TreedocParticipant<'a, A: Atom, D: Disambiguator + HasSource> {
    doc: &'a mut Treedoc<A, D>,
    prepared: Option<u64>,
    /// Number of flattens actually applied (for tests and metrics).
    pub committed: usize,
    /// Number of proposals aborted at this replica.
    pub aborted: usize,
}

impl<'a, A: Atom, D: Disambiguator + HasSource> TreedocParticipant<'a, A, D> {
    /// Wraps a replica.
    pub fn new(doc: &'a mut Treedoc<A, D>) -> Self {
        TreedocParticipant {
            doc,
            prepared: None,
            committed: 0,
            aborted: 0,
        }
    }

    /// The wrapped replica.
    pub fn doc(&self) -> &Treedoc<A, D> {
        &*self.doc
    }
}

impl<A: Atom, D: Disambiguator + HasSource> FlattenParticipant for TreedocParticipant<'_, A, D> {
    fn prepare(&mut self, proposal: &FlattenProposal) -> Vote {
        let tree = self.doc.tree();
        let subtree = tree.subtree(&proposal.subtree);
        let vote = match subtree {
            // The subtree does not even exist here (e.g. it was emptied by
            // edits the proposer has not seen): conflicting activity.
            None => Vote::No,
            Some(node) => {
                if node.hot_rev() > proposal.base_revision {
                    Vote::No
                } else {
                    Vote::Yes
                }
            }
        };
        if vote == Vote::Yes {
            self.prepared = Some(proposal.txn);
        }
        vote
    }

    fn commit(&mut self, proposal: &FlattenProposal) {
        debug_assert_eq!(self.prepared, Some(proposal.txn), "commit without prepare");
        // The flatten is deterministic and every participant holds the same
        // subtree content (no replica observed a concurrent edit), so local
        // application keeps the replicas convergent.
        let _ = self.doc.flatten(&proposal.subtree);
        self.prepared = None;
        self.committed += 1;
    }

    fn abort(&mut self, _proposal: &FlattenProposal) {
        self.prepared = None;
        self.aborted += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use treedoc_core::Sdis;

    fn doc(site: u64, text: &str) -> Treedoc<char, Sdis> {
        let mut d = Treedoc::new(SiteId::from_u64(site));
        for (i, c) in text.chars().enumerate() {
            d.local_insert(i, c).unwrap();
        }
        d
    }

    fn proposal(rev: u64) -> FlattenProposal {
        FlattenProposal {
            proposer: SiteId::from_u64(1),
            subtree: Vec::new(),
            base_revision: rev,
            txn: 1,
        }
    }

    #[test]
    fn quiescent_replica_votes_yes_and_flattens_on_commit() {
        let mut d = doc(1, "hello world");
        let rev = d.revision();
        let nodes_before = d.node_count();
        let mut p = TreedocParticipant::new(&mut d);
        let prop = proposal(rev);
        assert_eq!(p.prepare(&prop), Vote::Yes);
        p.commit(&prop);
        assert_eq!(p.committed, 1);
        assert!(d.node_count() <= nodes_before);
        assert_eq!(d.to_string(), "hello world");
    }

    #[test]
    fn replica_with_concurrent_edit_votes_no() {
        let mut d = doc(1, "hello");
        let base = d.revision();
        // An edit after the proposal's base revision makes the subtree hot.
        d.next_revision();
        d.local_insert(0, '!').unwrap();
        let mut p = TreedocParticipant::new(&mut d);
        let prop = proposal(base);
        assert_eq!(p.prepare(&prop), Vote::No);
        p.abort(&prop);
        assert_eq!(p.aborted, 1);
        assert_eq!(
            d.to_string(),
            "!hello",
            "abort leaves the document untouched"
        );
    }

    #[test]
    fn missing_subtree_votes_no() {
        let mut d = doc(1, "x");
        let mut p = TreedocParticipant::new(&mut d);
        let prop = FlattenProposal {
            proposer: SiteId::from_u64(1),
            subtree: vec![Side::Right, Side::Right, Side::Right, Side::Right],
            base_revision: 10,
            txn: 2,
        };
        assert_eq!(p.prepare(&prop), Vote::No);
    }
}
