//! Three-phase commit: the non-blocking variant.
//!
//! 2PC blocks if the coordinator fails between the vote and the decision.
//! 3PC inserts a *pre-commit* phase so that participants can deduce the
//! decision among themselves; the paper merely notes that "any distributed
//! commitment protocol from the literature will do" — this module provides
//! the variant so the benchmark harness can compare their message costs.

use crate::participant::{FlattenParticipant, FlattenProposal, Vote};
use crate::two_phase::{CommitOutcome, CommitStats};

/// Runs three-phase commit: vote, pre-commit, commit (or abort after the
/// vote). Message accounting matches the structure of
/// [`run_two_phase`](crate::run_two_phase) plus the extra round.
pub fn run_three_phase<P: FlattenParticipant>(
    proposal: &FlattenProposal,
    participants: &mut [P],
) -> (CommitOutcome, CommitStats) {
    let mut stats = CommitStats::default();
    // Phase 1: canCommit? / vote.
    stats.phases += 1;
    let mut no_votes = 0;
    for p in participants.iter_mut() {
        stats.coordinator_messages += 1;
        if p.prepare(proposal) == Vote::No {
            no_votes += 1;
        }
        stats.participant_messages += 1;
    }
    if no_votes > 0 {
        stats.phases += 1;
        for p in participants.iter_mut() {
            stats.coordinator_messages += 1;
            p.abort(proposal);
            stats.participant_messages += 1;
        }
        return (CommitOutcome::Aborted { no_votes }, stats);
    }
    // Phase 2: preCommit — participants acknowledge that the decision is
    // "commit" but do not apply it yet. With the in-process participant
    // model this is a pure message-accounting round.
    stats.phases += 1;
    for _ in participants.iter() {
        stats.coordinator_messages += 1;
        stats.participant_messages += 1;
    }
    // Phase 3: doCommit.
    stats.phases += 1;
    for p in participants.iter_mut() {
        stats.coordinator_messages += 1;
        p.commit(proposal);
        stats.participant_messages += 1;
    }
    (CommitOutcome::Committed, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::participant::TreedocParticipant;
    use crate::two_phase::run_two_phase;
    use treedoc_core::{Sdis, SiteId, Treedoc};

    fn doc(site: u64, len: usize) -> Treedoc<char, Sdis> {
        let mut d = Treedoc::new(SiteId::from_u64(site));
        for i in 0..len {
            d.local_insert(i, 'x').unwrap();
        }
        d
    }

    fn proposal() -> FlattenProposal {
        FlattenProposal {
            proposer: SiteId::from_u64(1),
            subtree: Vec::new(),
            base_revision: 0,
            txn: 9,
        }
    }

    #[test]
    fn commits_when_everyone_votes_yes() {
        let mut docs: Vec<_> = (1..=4).map(|s| doc(s, 16)).collect();
        let mut participants: Vec<_> = docs.iter_mut().map(TreedocParticipant::new).collect();
        let (outcome, stats) = run_three_phase(&proposal(), &mut participants);
        assert_eq!(outcome, CommitOutcome::Committed);
        assert_eq!(stats.phases, 3);
        // 4 participants × 2 messages × 3 phases.
        assert_eq!(stats.total_messages(), 24);
    }

    #[test]
    fn aborts_after_the_vote_round() {
        let mut docs: Vec<_> = (1..=4).map(|s| doc(s, 16)).collect();
        docs[2].next_revision();
        docs[2].local_delete(0).unwrap();
        let mut participants: Vec<_> = docs.iter_mut().map(TreedocParticipant::new).collect();
        let (outcome, stats) = run_three_phase(&proposal(), &mut participants);
        assert_eq!(outcome, CommitOutcome::Aborted { no_votes: 1 });
        assert_eq!(
            stats.phases, 2,
            "abort skips the pre-commit and commit rounds"
        );
    }

    #[test]
    fn three_phase_costs_more_messages_than_two_phase() {
        let mut docs_a: Vec<_> = (1..=5).map(|s| doc(s, 8)).collect();
        let mut docs_b: Vec<_> = (1..=5).map(|s| doc(s + 10, 8)).collect();
        let mut pa: Vec<_> = docs_a.iter_mut().map(TreedocParticipant::new).collect();
        let mut pb: Vec<_> = docs_b.iter_mut().map(TreedocParticipant::new).collect();
        let (_, two) = run_two_phase(&proposal(), &mut pa);
        let (_, three) = run_three_phase(&proposal(), &mut pb);
        assert!(three.total_messages() > two.total_messages());
    }
}
