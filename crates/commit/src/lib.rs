//! # treedoc-commit
//!
//! Distributed commitment for Treedoc's structural clean-up (§4.2.1 of the
//! paper).
//!
//! `flatten` renames identifiers, so it does not commute with concurrent
//! edits. The paper resolves this by giving edits precedence: a flatten is
//! proposed to every replica, each replica votes "No" if it has observed an
//! insert, delete or flatten inside the subtree since the proposal's base
//! revision, and the flatten takes effect only if **all** replicas vote
//! "Yes" ("Any distributed commitment protocol from the literature will do").
//!
//! This crate provides:
//!
//! * [`FlattenProposal`] — what is being agreed on (which subtree, against
//!   which observed state);
//! * [`FlattenParticipant`] — the per-replica voting/commit/abort behaviour,
//!   implemented for [`Treedoc`](treedoc_core::Treedoc) by
//!   [`TreedocParticipant`];
//! * [`two_phase`] / [`three_phase`] — classic 2PC and 3PC coordinators with
//!   message accounting, so the protocol cost the paper leaves unevaluated
//!   ("We cannot yet evaluate the cost of a distributed flatten") can be
//!   measured by the benchmark harness.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod participant;
pub mod three_phase;
pub mod two_phase;

pub use participant::{
    CommitProtocol, FlattenParticipant, FlattenProposal, TreedocParticipant, Vote,
};
pub use three_phase::run_three_phase;
pub use two_phase::{run_two_phase, CommitOutcome, CommitStats};
