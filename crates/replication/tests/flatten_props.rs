//! Property tests for the distributed flatten commitment protocol under the
//! faulty delivery schedules of [`treedoc_replication::testkit`].
//!
//! The invariant the §4.2.1 agreement must uphold: **a committed distributed
//! flatten never diverges replica content**, whatever the network did to the
//! edit traffic before, during or after the proposal — and an aborted one
//! leaves every replica exactly as it was.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use treedoc_commit::{CommitOutcome, CommitProtocol, Vote};
use treedoc_core::{Op, Sdis, SiteId, Treedoc};
use treedoc_replication::testkit::faulty_schedule;
use treedoc_replication::{CausalMessage, Envelope, FlattenCoordinator, Replica};

type Doc = Treedoc<char, Sdis>;
type Msg = CausalMessage<Op<char, Sdis>>;
type Env = Envelope<Op<char, Sdis>>;

fn site(n: u64) -> SiteId {
    SiteId::from_u64(n)
}

/// Builds `sites` at-least-once replicas and a shared emission history of
/// seeded random edits (each op broadcast-stamped by its initiator).
fn edited_replicas(
    sites: usize,
    edits_per_site: usize,
    seed: u64,
) -> (Vec<Replica<Doc>>, Vec<Msg>) {
    let site_ids: Vec<SiteId> = (1..=sites as u64).map(site).collect();
    let mut replicas: Vec<Replica<Doc>> = site_ids
        .iter()
        .map(|&s| Replica::new(s, Doc::new(s)))
        .collect();
    for r in replicas.iter_mut() {
        r.enable_at_least_once(&site_ids);
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut history = Vec::new();
    for k in 0..edits_per_site {
        for r in replicas.iter_mut() {
            let len = r.doc().len();
            let op = if len > 1 && rng.gen_bool(0.3) {
                let idx = rng.gen_range(0..len);
                r.doc_mut().local_delete(idx).expect("index in range")
            } else {
                let idx = rng.gen_range(0..=len);
                let atom = char::from(b'a' + (k % 26) as u8);
                r.doc_mut().local_insert(idx, atom).expect("index in range")
            };
            history.push(r.stamp(op));
        }
    }
    (replicas, history)
}

/// Runs one proposal from replica 0 to completion over direct (loss-free)
/// message exchange, returning the outcome. Panics if the coordinator never
/// finishes — the protocol must terminate, not hang.
fn run_commitment(replicas: &mut [Replica<Doc>], protocol: CommitProtocol) -> CommitOutcome {
    let site_ids: Vec<SiteId> = replicas.iter().map(|r| r.site()).collect();
    let Some(propose) = replicas[0].propose_flatten(Vec::new(), protocol) else {
        return CommitOutcome::Aborted { no_votes: 1 };
    };
    let txn = propose.proposal.txn;
    let mut coordinator = FlattenCoordinator::new(propose, site_ids[1..].to_vec());
    for _ in 0..300 {
        let out: Vec<(SiteId, Env)> = coordinator.tick();
        for (to, env) in out {
            let idx = site_ids.iter().position(|&s| s == to).expect("known site");
            let (_, reply) = replicas[idx].receive_any(env);
            if let Some(Envelope::FlattenVote(vote)) = reply {
                coordinator.on_vote(vote);
            }
        }
        if coordinator.is_done() {
            let outcome = coordinator.outcome().expect("done implies outcome");
            replicas[0].finish_flatten(txn, outcome == CommitOutcome::Committed);
            return outcome;
        }
    }
    panic!("flatten commitment did not terminate");
}

/// At-least-once recovery over direct exchange: acks, then retransmissions
/// (epoch-tagged), until every log is acknowledged and every queue drained.
fn recover(replicas: &mut [Replica<Doc>]) {
    let site_ids: Vec<SiteId> = replicas.iter().map(|r| r.site()).collect();
    for _ in 0..50 {
        if replicas
            .iter()
            .all(|r| !r.has_unacked() && r.pending() == 0)
        {
            return;
        }
        let acks: Vec<(SiteId, Env)> = replicas
            .iter()
            .map(|r| (r.site(), r.ack_envelope()))
            .collect();
        for r in replicas.iter_mut() {
            for (from, ack) in &acks {
                if *from != r.site() {
                    r.receive_envelope(ack.clone());
                }
            }
        }
        let mut retransmissions: Vec<(usize, Env)> = Vec::new();
        for (i, r) in replicas.iter_mut().enumerate() {
            for (j, &peer) in site_ids.iter().enumerate() {
                if i == j {
                    continue;
                }
                for env in r.unacked_envelopes_for(peer) {
                    retransmissions.push((j, env));
                }
            }
        }
        for (j, env) in retransmissions {
            replicas[j].receive_envelope(env);
        }
    }
    panic!("at-least-once recovery did not drain");
}

proptest! {
    /// The end-to-end property: random concurrent edits scrambled by a
    /// faulty schedule, a mid-flight proposal that must resolve without
    /// wedging (committing only if every replica has identical state), full
    /// recovery, and a final proposal that commits and leaves every replica
    /// identical, tombstone-free and in the same epoch.
    #[test]
    fn committed_distributed_flatten_never_diverges(
        sites in 2usize..5,
        edits_per_site in 1usize..11,
        seed in 0u64..1_000,
        drop_prob in 0.0f64..0.4,
        duplicate_prob in 0.0f64..0.4,
        three_phase in any::<bool>(),
    ) {
        let protocol = if three_phase {
            CommitProtocol::ThreePhase
        } else {
            CommitProtocol::TwoPhase
        };
        let (mut replicas, history) = edited_replicas(sites, edits_per_site, seed);

        // Scramble the shared history independently per receiver: drops,
        // duplicates, full shuffle.
        for (i, r) in replicas.iter_mut().enumerate() {
            let incoming: Vec<Msg> = history
                .iter()
                .filter(|m| m.sender != r.site())
                .cloned()
                .collect();
            let schedule = faulty_schedule(&incoming, seed ^ (i as u64) << 8, drop_prob, duplicate_prob);
            for m in schedule {
                r.receive(m);
            }
        }

        // A proposal taken mid-flight must terminate, and may commit only
        // when every replica has already seen everything (equal clocks).
        let epochs_before: Vec<u64> = replicas.iter().map(|r| r.flatten_epoch()).collect();
        let outcome = run_commitment(&mut replicas, protocol);
        match outcome {
            CommitOutcome::Committed => {
                let reference = replicas[0].doc().to_vec();
                for r in &replicas {
                    prop_assert_eq!(r.doc().to_vec(), reference.clone());
                    prop_assert_eq!(r.flatten_epoch(), 1);
                }
            }
            CommitOutcome::Aborted { .. } => {
                for (r, before) in replicas.iter().zip(&epochs_before) {
                    prop_assert_eq!(r.flatten_epoch(), *before, "an abort changes nothing");
                    prop_assert!(!r.is_flatten_prepared(), "aborts must release the lock");
                }
            }
        }

        // After full recovery the final proposal always commits…
        recover(&mut replicas);
        let outcome = run_commitment(&mut replicas, protocol);
        prop_assert_eq!(outcome, CommitOutcome::Committed);

        // …and every replica ends identical, compact and unlocked.
        let reference = replicas[0].doc().to_vec();
        let epoch = replicas[0].flatten_epoch();
        for r in &replicas {
            prop_assert_eq!(r.doc().to_vec(), reference.clone());
            prop_assert_eq!(r.flatten_epoch(), epoch);
            prop_assert!(!r.is_flatten_prepared());
            prop_assert_eq!(r.pending(), 0);
            prop_assert_eq!(
                r.doc().node_count(),
                r.doc().len(),
                "a committed whole-document flatten leaves no tombstones"
            );
        }
    }

    /// A replica that has seen strictly more than the proposer (or less)
    /// votes No: edits take precedence over clean-up.
    #[test]
    fn behind_or_ahead_replicas_veto(
        sites in 2usize..5,
        edits_per_site in 1usize..7,
        seed in 0u64..1_000,
    ) {
        let (mut replicas, history) = edited_replicas(sites, edits_per_site, seed);
        // Deliver everything to everyone except the last replica, which
        // misses the proposer's final message: its clock stays strictly
        // behind the proposal's base clock.
        let n = replicas.len();
        let proposer = replicas[0].site();
        let missing = history
            .iter()
            .rposition(|m| m.sender == proposer)
            .expect("the proposer emitted at least one message");
        for (i, r) in replicas.iter_mut().enumerate() {
            let behind = i == n - 1;
            let own = r.site();
            for (k, m) in history.iter().enumerate() {
                if m.sender == own || (behind && k == missing) {
                    continue;
                }
                r.receive(m.clone());
            }
        }
        let outcome = run_commitment(&mut replicas, CommitProtocol::TwoPhase);
        prop_assert!(matches!(outcome, CommitOutcome::Aborted { .. }));
        for r in &replicas {
            prop_assert_eq!(r.flatten_epoch(), 0);
            prop_assert!(!r.is_flatten_prepared());
        }
        let _ = Vote::Yes;
    }
}
