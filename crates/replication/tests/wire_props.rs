//! Property tests for the binary wire codec: arbitrary envelopes, operation
//! batches and WAL records round-trip exactly, and arbitrary byte soup never
//! panics a decoder.

use proptest::prelude::*;
use treedoc_commit::{CommitProtocol, FlattenProposal, Vote};
use treedoc_core::{Op, PathElem, PosId, Sdis, Side, SiteId};
use treedoc_replication::wire;
use treedoc_replication::{
    decode_envelope, encode_envelope, CausalMessage, Envelope, OpBatch, VectorClock, WalRecord,
};

type TestOp = Op<String, Sdis>;
type Env = Envelope<TestOp>;

fn site(n: u64) -> SiteId {
    SiteId::from_u64(n)
}

fn arb_posid() -> impl Strategy<Value = PosId<Sdis>> {
    proptest::collection::vec((0u8..2, proptest::option::of(0u64..6)), 0..10).prop_map(|elems| {
        PosId::from_elems(
            elems
                .into_iter()
                .map(|(bit, dis)| PathElem {
                    side: Side::from_bit(bit),
                    dis: dis.map(|d| Sdis::new(site(d))),
                })
                .collect(),
        )
    })
}

fn arb_op() -> impl Strategy<Value = TestOp> {
    (arb_posid(), proptest::option::of("[a-zA-Z0-9 _-]{0,24}")).prop_map(|(id, atom)| match atom {
        Some(atom) => Op::Insert { id, atom },
        None => Op::Delete { id },
    })
}

fn arb_clock() -> impl Strategy<Value = VectorClock> {
    proptest::collection::vec((0u64..8, 1u64..1000), 0..6).prop_map(|entries| {
        let mut clock = VectorClock::new();
        for (s, v) in entries {
            clock.observe(site(s), v);
        }
        clock
    })
}

fn arb_msg() -> impl Strategy<Value = CausalMessage<TestOp>> {
    (0u64..8, arb_clock(), arb_op()).prop_map(|(sender, clock, payload)| CausalMessage {
        sender: site(sender),
        clock,
        payload,
    })
}

/// A batch whose clocks form the monotone chain real stamping produces:
/// each entry's clock dominates its predecessor's (the sender increments
/// its own counter, possibly after observing other sites' progress).
fn arb_batch() -> impl Strategy<Value = OpBatch<TestOp>> {
    (
        arb_clock(),
        proptest::collection::vec(
            (
                0u64..8,
                proptest::collection::vec((0u64..8, 1u64..20), 0..3),
                arb_op(),
                0u64..4,
            ),
            0..12,
        ),
    )
        .prop_map(|(base, steps)| {
            let mut clock = base;
            let entries = steps
                .into_iter()
                .map(|(sender, observes, op, epoch)| {
                    for (s, bump) in observes {
                        let current = clock.get(site(s));
                        clock.observe(site(s), current + bump);
                    }
                    clock.increment(site(sender));
                    (
                        epoch,
                        CausalMessage {
                            sender: site(sender),
                            clock: clock.clone(),
                            payload: op,
                        },
                    )
                })
                .collect();
            OpBatch { entries }
        })
}

fn arb_envelope() -> impl Strategy<Value = Env> {
    prop_oneof![
        (0u64..4, arb_msg()).prop_map(|(epoch, msg)| Envelope::Op { epoch, msg }),
        arb_batch().prop_map(Envelope::OpBatch),
        (0u64..8, arb_clock()).prop_map(|(from, clock)| Envelope::Ack {
            from: site(from),
            clock,
        }),
        (
            0u64..8,
            proptest::collection::vec(0u8..2, 0..8),
            any::<u64>(),
            any::<u64>(),
            any::<bool>(),
            arb_clock(),
            0u64..4,
        )
            .prop_map(
                |(proposer, subtree, base_revision, txn, three, base_clock, epoch)| {
                    Envelope::FlattenPropose(wire_propose(
                        site(proposer),
                        subtree.into_iter().map(Side::from_bit).collect(),
                        base_revision,
                        txn,
                        three,
                        base_clock,
                        epoch,
                    ))
                }
            ),
        (any::<u64>(), 0u64..8, any::<bool>(), 0u8..3).prop_map(|(txn, from, yes, stage)| {
            Envelope::FlattenVote(treedoc_replication::FlattenVote {
                txn,
                from: site(from),
                vote: if yes { Vote::Yes } else { Vote::No },
                stage: match stage {
                    0 => treedoc_replication::VoteStage::Vote,
                    1 => treedoc_replication::VoteStage::AckPreCommit,
                    _ => treedoc_replication::VoteStage::AckDecision,
                },
            })
        }),
        (any::<u64>(), 0u8..3).prop_map(|(txn, kind)| {
            Envelope::FlattenDecision(treedoc_replication::FlattenDecision {
                txn,
                kind: match kind {
                    0 => treedoc_replication::DecisionKind::PreCommit,
                    1 => treedoc_replication::DecisionKind::Commit,
                    _ => treedoc_replication::DecisionKind::Abort,
                },
            })
        }),
    ]
}

#[allow(clippy::too_many_arguments)]
fn wire_propose(
    proposer: SiteId,
    subtree: Vec<Side>,
    base_revision: u64,
    txn: u64,
    three: bool,
    base_clock: VectorClock,
    epoch: u64,
) -> treedoc_replication::FlattenPropose {
    treedoc_replication::FlattenPropose {
        proposal: FlattenProposal {
            proposer,
            subtree,
            base_revision,
            txn,
        },
        protocol: if three {
            CommitProtocol::ThreePhase
        } else {
            CommitProtocol::TwoPhase
        },
        base_clock,
        epoch,
    }
}

fn arb_wal_record() -> impl Strategy<Value = WalRecord<TestOp>> {
    prop_oneof![
        (0u64..4, arb_msg()).prop_map(|(epoch, msg)| WalRecord::Stamped { epoch, msg }),
        arb_envelope().prop_map(|envelope| WalRecord::Received { envelope }),
        proptest::collection::vec(0u64..8, 0..6).prop_map(|peers| WalRecord::PeersEnabled {
            peers: peers.into_iter().map(site).collect(),
        }),
        (proptest::collection::vec(0u8..2, 0..8), any::<bool>()).prop_map(|(subtree, three)| {
            WalRecord::Proposed {
                subtree: subtree.into_iter().map(Side::from_bit).collect(),
                protocol: if three {
                    CommitProtocol::ThreePhase
                } else {
                    CommitProtocol::TwoPhase
                },
            }
        }),
        (any::<u64>(), any::<bool>(), any::<bool>()).prop_map(|(txn, committed, unilateral)| {
            WalRecord::Finished {
                txn,
                committed,
                unilateral,
            }
        }),
    ]
}

proptest! {
    /// Every envelope — including batches with realistic monotone clock
    /// chains — survives the encode/decode round trip bit-exactly.
    #[test]
    fn envelopes_round_trip(env in arb_envelope()) {
        let bytes = encode_envelope(&env);
        let back: Env = decode_envelope(&bytes).expect("round trip decodes");
        prop_assert_eq!(back, env);
    }

    /// Every WAL record survives the binary round trip.
    #[test]
    fn wal_records_round_trip(record in arb_wal_record()) {
        let bytes = wire::encode_wal_record(&record);
        let back: WalRecord<TestOp> = wire::decode_wal_record(&bytes).expect("round trip decodes");
        prop_assert_eq!(back, record);
    }

    /// Truncating a valid envelope anywhere yields an error, never a panic
    /// or a silent mis-decode of the full value.
    #[test]
    fn truncated_envelopes_fail_cleanly(env in arb_envelope(), frac in 0.0f64..1.0) {
        let bytes = encode_envelope(&env);
        let cut = ((bytes.len() as f64) * frac) as usize;
        if cut < bytes.len() {
            prop_assert!(decode_envelope::<TestOp>(&bytes[..cut]).is_err());
        }
    }

    /// Arbitrary byte soup never panics either decoder.
    #[test]
    fn garbage_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = decode_envelope::<TestOp>(&bytes);
        let _ = wire::decode_wal_record::<TestOp>(&bytes);
    }
}
