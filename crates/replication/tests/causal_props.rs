//! Property tests: the causal hold-back queue under randomly duplicated,
//! reordered and lost-then-retransmitted delivery schedules.
//!
//! Each case builds a ground-truth emission history (several senders that
//! occasionally observe each other, creating cross-sender dependencies),
//! scrambles it into a faulty delivery schedule, feeds the schedule through a
//! [`CausalBuffer`] and checks the §2.2 delivery contract:
//!
//! * every released message is released exactly when it is next-deliverable
//!   (causal order),
//! * no message is ever stuck: after a final full retransmission the queue is
//!   drained and every unique message was delivered exactly once,
//! * every redundant copy is discarded and counted.

use proptest::prelude::*;
use treedoc_replication::testkit::{emit_history, faulty_schedule};
use treedoc_replication::{CausalBuffer, CausalMessage, VectorClock};

/// Feeds messages into the buffer, checking causal order of every release
/// with an independent validator clock. Returns the number delivered.
fn feed_checked(
    buf: &mut CausalBuffer<u64>,
    validator: &mut VectorClock,
    messages: &[CausalMessage<u64>],
) -> Result<usize, TestCaseError> {
    let mut delivered = 0usize;
    for m in messages {
        for released in buf.receive(m.clone()) {
            prop_assert!(
                validator.is_next_deliverable(released.sender, &released.clock),
                "released {} from {} out of causal order (validator {})",
                released.payload,
                released.sender,
                validator
            );
            validator.merge(&released.clock);
            delivered += 1;
        }
    }
    Ok(delivered)
}

proptest! {
    /// Random faulty schedules never wedge the queue: after the final
    /// retransmission everything is delivered exactly once, in causal order,
    /// and the hold-back queue is empty.
    #[test]
    fn faulty_schedules_drain_completely(
        seed in 0u64..1_000_000,
        senders in 1usize..5,
        per_sender in 1usize..16,
        drop_pct in 0u32..40,
        duplicate_pct in 0u32..40,
    ) {
        let history = emit_history(seed, senders, per_sender, 0.3);
        let schedule = faulty_schedule(
            &history,
            seed,
            f64::from(drop_pct) / 100.0,
            f64::from(duplicate_pct) / 100.0,
        );

        let mut buf = CausalBuffer::new();
        let mut validator = VectorClock::new();
        let mut delivered = feed_checked(&mut buf, &mut validator, &schedule)?;
        // The final retransmission: every message again, in emission order
        // (an at-least-once sender replays its whole unacknowledged log).
        delivered += feed_checked(&mut buf, &mut validator, &history)?;

        prop_assert_eq!(
            delivered,
            history.len(),
            "every unique message is delivered exactly once"
        );
        prop_assert_eq!(buf.pending_len(), 0, "no message may remain stuck");
        let stats = buf.stats();
        prop_assert_eq!(stats.delivered, history.len() as u64);
        // Everything fed beyond the unique messages must have been discarded:
        // of `schedule.len() + history.len()` receives, exactly
        // `history.len()` were fresh deliveries.
        prop_assert_eq!(
            stats.duplicates_discarded,
            schedule.len() as u64,
            "every redundant copy is discarded and counted"
        );
    }

    /// Without faults, any per-sender-FIFO interleaving of the history
    /// delivers everything immediately or after a bounded hold-back.
    #[test]
    fn clean_interleavings_deliver_everything(
        seed in 0u64..1_000_000,
        senders in 1usize..5,
        per_sender in 1usize..16,
    ) {
        let history = emit_history(seed, senders, per_sender, 0.3);
        let schedule = faulty_schedule(&history, seed, 0.0, 0.0);
        let mut buf = CausalBuffer::new();
        let mut validator = VectorClock::new();
        let delivered = feed_checked(&mut buf, &mut validator, &schedule)?;
        prop_assert_eq!(delivered, history.len());
        prop_assert_eq!(buf.pending_len(), 0);
        prop_assert_eq!(buf.stats().duplicates_discarded, 0);
    }
}
