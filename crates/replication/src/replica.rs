//! A replica = a document + a causal delivery layer.
//!
//! [`Replica`] owns any document implementing [`ReplicatedDocument`], stamps
//! the operations it initiates with the replica's vector clock, and replays
//! remote operations through a [`CausalBuffer`] so that happened-before order
//! is always respected — the only delivery requirement the CRDT needs (§2.2).

use treedoc_core::{Atom, Disambiguator, HasSource, Op, SiteId, Treedoc};

use crate::causal::{CausalBuffer, CausalMessage};
use crate::clock::VectorClock;

/// A document type that can be driven by a [`Replica`].
pub trait ReplicatedDocument {
    /// The operation type exchanged between replicas.
    type Op: Clone;

    /// Replays one remote operation.
    fn replay(&mut self, op: &Self::Op);

    /// A cheap digest of the document content, used by the test harness and
    /// the simulator to check convergence without comparing full documents.
    fn digest(&self) -> u64;
}

impl<A, D> ReplicatedDocument for Treedoc<A, D>
where
    A: Atom + std::hash::Hash,
    D: Disambiguator + HasSource,
{
    type Op = Op<A, D>;

    fn replay(&mut self, op: &Op<A, D>) {
        // Replay of a CRDT operation cannot fail under causal delivery; a
        // failure here indicates a broken delivery layer, which the
        // simulator's tests want to hear about loudly.
        self.apply(op)
            .expect("causally delivered operation must replay cleanly");
    }

    fn digest(&self) -> u64 {
        use std::hash::Hasher;
        let mut hasher = std::collections::hash_map::DefaultHasher::new();
        for atom in self.to_vec() {
            atom.hash(&mut hasher);
        }
        hasher.finish()
    }
}

/// A document plus the machinery to exchange its operations causally.
#[derive(Debug)]
pub struct Replica<Doc: ReplicatedDocument> {
    site: SiteId,
    doc: Doc,
    buffer: CausalBuffer<Doc::Op>,
    ops_sent: u64,
    ops_applied: u64,
}

impl<Doc: ReplicatedDocument> Replica<Doc> {
    /// Wraps a document.
    pub fn new(site: SiteId, doc: Doc) -> Self {
        Replica {
            site,
            doc,
            buffer: CausalBuffer::new(),
            ops_sent: 0,
            ops_applied: 0,
        }
    }

    /// The replica's site.
    pub fn site(&self) -> SiteId {
        self.site
    }

    /// Read access to the document.
    pub fn doc(&self) -> &Doc {
        &self.doc
    }

    /// Write access to the document, for *local* edits only (the returned
    /// operations must then be wrapped with [`stamp`](Self::stamp) and
    /// broadcast).
    pub fn doc_mut(&mut self) -> &mut Doc {
        &mut self.doc
    }

    /// The replica's current causal clock.
    pub fn clock(&self) -> &VectorClock {
        self.buffer.delivered_clock()
    }

    /// Number of operations this replica initiated.
    pub fn ops_sent(&self) -> u64 {
        self.ops_sent
    }

    /// Number of remote operations applied.
    pub fn ops_applied(&self) -> u64 {
        self.ops_applied
    }

    /// Stamps a locally initiated operation with this replica's clock,
    /// producing the message to broadcast.
    pub fn stamp(&mut self, op: Doc::Op) -> CausalMessage<Doc::Op> {
        let clock = self.buffer.record_local(self.site);
        self.ops_sent += 1;
        CausalMessage {
            sender: self.site,
            clock,
            payload: op,
        }
    }

    /// Receives a message from the network; buffered messages that become
    /// deliverable are replayed immediately, in causal order.
    pub fn receive(&mut self, message: CausalMessage<Doc::Op>) -> usize {
        let deliverable = self.buffer.receive(message);
        let count = deliverable.len();
        for m in deliverable {
            self.doc.replay(&m.payload);
            self.ops_applied += 1;
        }
        count
    }

    /// Number of messages still waiting for causal predecessors.
    pub fn pending(&self) -> usize {
        self.buffer.pending_len()
    }

    /// Content digest, for convergence checks.
    pub fn digest(&self) -> u64 {
        self.doc.digest()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use treedoc_core::Sdis;

    type Doc = Treedoc<char, Sdis>;

    fn site(n: u64) -> SiteId {
        SiteId::from_u64(n)
    }

    fn replica(n: u64) -> Replica<Doc> {
        Replica::new(site(n), Doc::new(site(n)))
    }

    #[test]
    fn stamp_and_receive_round_trip() {
        let mut a = replica(1);
        let mut b = replica(2);
        let op = a.doc_mut().local_insert(0, 'x').unwrap();
        let msg = a.stamp(op);
        assert_eq!(a.ops_sent(), 1);
        assert_eq!(b.receive(msg), 1);
        assert_eq!(b.doc().to_string(), "x");
        assert_eq!(b.ops_applied(), 1);
        assert_eq!(a.digest(), b.digest());
    }

    #[test]
    fn causally_dependent_messages_wait_for_their_predecessors() {
        let mut a = replica(1);
        let mut b = replica(2);
        // a inserts then deletes the same atom: the delete depends on the
        // insert.
        let ins = a.doc_mut().local_insert(0, 'x').unwrap();
        let m_ins = a.stamp(ins);
        let del = a.doc_mut().local_delete(0).unwrap();
        let m_del = a.stamp(del);
        // b receives them out of order: the delete must be held back.
        assert_eq!(b.receive(m_del), 0);
        assert_eq!(b.pending(), 1);
        assert_eq!(b.receive(m_ins), 2);
        assert_eq!(b.pending(), 0);
        assert!(b.doc().is_empty());
        assert_eq!(a.digest(), b.digest());
    }

    #[test]
    fn three_replicas_converge_with_concurrent_edits() {
        let mut replicas = [replica(1), replica(2), replica(3)];
        // Each replica types its own text concurrently.
        let mut messages = Vec::new();
        for (i, r) in replicas.iter_mut().enumerate() {
            for (j, c) in "abc".chars().enumerate() {
                let op = r
                    .doc_mut()
                    .local_insert(j, char::from(b'a' + (i as u8 * 3) + j as u8))
                    .unwrap();
                let _ = c;
                messages.push((r.site(), r.stamp(op)));
            }
        }
        // Deliver everything to everyone else, in an arbitrary (but causal
        // per sender, since we kept emission order) order.
        for (sender, msg) in &messages {
            for r in replicas.iter_mut() {
                if r.site() != *sender {
                    r.receive(msg.clone());
                }
            }
        }
        let d0 = replicas[0].digest();
        assert!(replicas.iter().all(|r| r.digest() == d0));
        assert_eq!(replicas[0].doc().len(), 9);
    }
}
