//! A replica = a document + a causal delivery layer.
//!
//! [`Replica`] owns any document implementing [`ReplicatedDocument`], stamps
//! the operations it initiates with the replica's vector clock, and replays
//! remote operations through a [`CausalBuffer`] so that happened-before order
//! is always respected — the only delivery requirement the CRDT needs (§2.2).
//!
//! On a lossy transport causal delivery must be built from **at-least-once**
//! delivery: the replica keeps a log of the messages it stamped, peers
//! acknowledge cumulatively (an [`Envelope::Ack`] carrying their delivered
//! clock), and anything a peer has not acknowledged can be retransmitted with
//! [`Replica::unacked_for`]. The duplicate-safe [`CausalBuffer`] discards the
//! redundant copies this produces, so the pair yields exactly-once *delivery*
//! on top of at-least-once *transmission*.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};
use treedoc_core::{Atom, Disambiguator, HasSource, Op, SiteId, Treedoc};

use crate::causal::{CausalBuffer, CausalMessage};
use crate::clock::VectorClock;

/// A document type that can be driven by a [`Replica`].
pub trait ReplicatedDocument {
    /// The operation type exchanged between replicas.
    type Op: Clone;

    /// Replays one remote operation.
    fn replay(&mut self, op: &Self::Op);

    /// A cheap digest of the document content, used by the test harness and
    /// the simulator to check convergence without comparing full documents.
    fn digest(&self) -> u64;
}

impl<A, D> ReplicatedDocument for Treedoc<A, D>
where
    A: Atom + std::hash::Hash,
    D: Disambiguator + HasSource,
{
    type Op = Op<A, D>;

    fn replay(&mut self, op: &Op<A, D>) {
        // Replay of a CRDT operation cannot fail under causal delivery; a
        // failure here indicates a broken delivery layer, which the
        // simulator's tests want to hear about loudly.
        self.apply(op)
            .expect("causally delivered operation must replay cleanly");
    }

    fn digest(&self) -> u64 {
        use std::hash::Hasher;
        let mut hasher = std::collections::hash_map::DefaultHasher::new();
        for atom in self.to_vec() {
            atom.hash(&mut hasher);
        }
        hasher.finish()
    }
}

/// Wire format between replicas when at-least-once delivery is enabled:
/// either an operation (possibly a retransmission) or a cumulative
/// acknowledgement.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Envelope<Op> {
    /// A (possibly retransmitted) causally stamped operation.
    Op(CausalMessage<Op>),
    /// Cumulative acknowledgement: `from` has delivered everything described
    /// by `clock` (in particular, `clock.get(receiver)` messages of the
    /// receiving replica).
    Ack {
        /// The acknowledging site.
        from: SiteId,
        /// Its delivered clock at acknowledgement time.
        clock: VectorClock,
    },
}

/// The sender-side retransmission state of at-least-once mode.
#[derive(Debug)]
struct AtLeastOnce<Op> {
    /// Every stamped-but-not-fully-acknowledged message, keyed by this
    /// replica's own sequence number.
    send_log: BTreeMap<u64, CausalMessage<Op>>,
    /// Highest sequence number of ours each peer has cumulatively
    /// acknowledged.
    peer_acked: BTreeMap<SiteId, u64>,
    /// Messages handed out again via [`Replica::unacked_for`].
    retransmissions: u64,
}

impl<Op> AtLeastOnce<Op> {
    fn new(site: SiteId, peers: &[SiteId]) -> Self {
        AtLeastOnce {
            send_log: BTreeMap::new(),
            peer_acked: peers
                .iter()
                .copied()
                .filter(|&p| p != site)
                .map(|p| (p, 0))
                .collect(),
            retransmissions: 0,
        }
    }

    /// Drops log entries every peer has acknowledged.
    fn prune(&mut self) {
        let fully_acked = self.peer_acked.values().copied().min().unwrap_or(0);
        self.send_log = self.send_log.split_off(&(fully_acked + 1));
    }
}

/// A document plus the machinery to exchange its operations causally.
#[derive(Debug)]
pub struct Replica<Doc: ReplicatedDocument> {
    site: SiteId,
    doc: Doc,
    buffer: CausalBuffer<Doc::Op>,
    ops_sent: u64,
    ops_applied: u64,
    at_least_once: Option<AtLeastOnce<Doc::Op>>,
}

impl<Doc: ReplicatedDocument> Replica<Doc> {
    /// Wraps a document.
    pub fn new(site: SiteId, doc: Doc) -> Self {
        Replica {
            site,
            doc,
            buffer: CausalBuffer::new(),
            ops_sent: 0,
            ops_applied: 0,
            at_least_once: None,
        }
    }

    /// The replica's site.
    pub fn site(&self) -> SiteId {
        self.site
    }

    /// Read access to the document.
    pub fn doc(&self) -> &Doc {
        &self.doc
    }

    /// Write access to the document, for *local* edits only (the returned
    /// operations must then be wrapped with [`stamp`](Self::stamp) and
    /// broadcast).
    pub fn doc_mut(&mut self) -> &mut Doc {
        &mut self.doc
    }

    /// The replica's current causal clock.
    pub fn clock(&self) -> &VectorClock {
        self.buffer.delivered_clock()
    }

    /// Number of operations this replica initiated.
    pub fn ops_sent(&self) -> u64 {
        self.ops_sent
    }

    /// Number of remote operations applied.
    pub fn ops_applied(&self) -> u64 {
        self.ops_applied
    }

    /// Stale or duplicate messages the causal buffer discarded.
    pub fn duplicates_discarded(&self) -> u64 {
        self.buffer.stats().duplicates_discarded
    }

    /// Largest hold-back queue observed so far.
    pub fn high_water_mark(&self) -> usize {
        self.buffer.high_water_mark()
    }

    /// Switches the replica to at-least-once mode: every message stamped from
    /// now on is kept in a send log until all `peers` (the sender itself is
    /// ignored if listed) have acknowledged it, and can be retransmitted with
    /// [`unacked_for`](Self::unacked_for).
    pub fn enable_at_least_once(&mut self, peers: &[SiteId]) {
        self.at_least_once = Some(AtLeastOnce::new(self.site, peers));
    }

    /// `true` when at-least-once mode is on.
    pub fn at_least_once_enabled(&self) -> bool {
        self.at_least_once.is_some()
    }

    /// Messages handed out for retransmission so far.
    pub fn retransmissions(&self) -> u64 {
        self.at_least_once
            .as_ref()
            .map_or(0, |alo| alo.retransmissions)
    }

    /// `true` while some stamped message has not been acknowledged by every
    /// peer (always `false` outside at-least-once mode).
    pub fn has_unacked(&self) -> bool {
        self.at_least_once
            .as_ref()
            .is_some_and(|alo| !alo.send_log.is_empty())
    }

    /// The acknowledgement envelope this replica would broadcast right now.
    pub fn ack_envelope(&self) -> Envelope<Doc::Op> {
        Envelope::Ack {
            from: self.site,
            clock: self.buffer.delivered_clock().clone(),
        }
    }

    /// Records a peer's cumulative acknowledgement (its delivered clock) and
    /// prunes the send log of everything all peers have now seen.
    ///
    /// The peer set is fixed by
    /// [`enable_at_least_once`](Self::enable_at_least_once):
    /// acknowledgements from sites outside it are ignored, because the send
    /// log is pruned against the registered peers only — honouring an
    /// unregistered peer here would pretend the log can still serve it
    /// after pruning already discarded entries it never acknowledged.
    pub fn record_ack(&mut self, peer: SiteId, clock: &VectorClock) {
        let acked = clock.get(self.site);
        if let Some(alo) = self.at_least_once.as_mut() {
            if let Some(entry) = alo.peer_acked.get_mut(&peer) {
                *entry = (*entry).max(acked);
                alo.prune();
            }
        }
    }

    /// Clones every logged message `peer` has not acknowledged yet, counting
    /// them as retransmissions. Returns an empty vector outside
    /// at-least-once mode.
    ///
    /// # Panics
    ///
    /// If `peer` was not registered in
    /// [`enable_at_least_once`](Self::enable_at_least_once): the send log
    /// is pruned by the registered peers' acknowledgements alone, so it
    /// cannot be relied on to still hold what an unregistered peer is
    /// missing — silently returning a partial log would lose messages.
    pub fn unacked_for(&mut self, peer: SiteId) -> Vec<CausalMessage<Doc::Op>> {
        let Some(alo) = self.at_least_once.as_mut() else {
            return Vec::new();
        };
        let acked = alo
            .peer_acked
            .get(&peer)
            .copied()
            .unwrap_or_else(|| panic!("site {peer} is not a registered at-least-once peer"));
        let missing: Vec<CausalMessage<Doc::Op>> = alo
            .send_log
            .range(acked + 1..)
            .map(|(_, m)| m.clone())
            .collect();
        alo.retransmissions += missing.len() as u64;
        missing
    }

    /// Stamps a locally initiated operation with this replica's clock,
    /// producing the message to broadcast. In at-least-once mode the message
    /// is also retained for retransmission until every peer acknowledges it.
    pub fn stamp(&mut self, op: Doc::Op) -> CausalMessage<Doc::Op> {
        let clock = self.buffer.record_local(self.site);
        self.ops_sent += 1;
        let message = CausalMessage {
            sender: self.site,
            clock,
            payload: op,
        };
        if let Some(alo) = self.at_least_once.as_mut() {
            alo.send_log.insert(message.seq(), message.clone());
        }
        message
    }

    /// Receives a message from the network; buffered messages that become
    /// deliverable are replayed immediately, in causal order. Duplicates are
    /// discarded (see [`Replica::duplicates_discarded`]).
    pub fn receive(&mut self, message: CausalMessage<Doc::Op>) -> usize {
        let deliverable = self.buffer.receive(message);
        let count = deliverable.len();
        for m in deliverable {
            self.doc.replay(&m.payload);
            self.ops_applied += 1;
        }
        count
    }

    /// Handles a full [`Envelope`]: operations go through causal delivery,
    /// acknowledgements update the retransmission state. Returns the number
    /// of operations applied.
    pub fn receive_envelope(&mut self, envelope: Envelope<Doc::Op>) -> usize {
        match envelope {
            Envelope::Op(message) => self.receive(message),
            Envelope::Ack { from, clock } => {
                self.record_ack(from, &clock);
                0
            }
        }
    }

    /// Number of messages still waiting for causal predecessors.
    pub fn pending(&self) -> usize {
        self.buffer.pending_len()
    }

    /// Content digest, for convergence checks.
    pub fn digest(&self) -> u64 {
        self.doc.digest()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use treedoc_core::Sdis;

    type Doc = Treedoc<char, Sdis>;

    fn site(n: u64) -> SiteId {
        SiteId::from_u64(n)
    }

    fn replica(n: u64) -> Replica<Doc> {
        Replica::new(site(n), Doc::new(site(n)))
    }

    #[test]
    fn stamp_and_receive_round_trip() {
        let mut a = replica(1);
        let mut b = replica(2);
        let op = a.doc_mut().local_insert(0, 'x').unwrap();
        let msg = a.stamp(op);
        assert_eq!(a.ops_sent(), 1);
        assert_eq!(b.receive(msg), 1);
        assert_eq!(b.doc().to_string(), "x");
        assert_eq!(b.ops_applied(), 1);
        assert_eq!(a.digest(), b.digest());
    }

    #[test]
    fn causally_dependent_messages_wait_for_their_predecessors() {
        let mut a = replica(1);
        let mut b = replica(2);
        // a inserts then deletes the same atom: the delete depends on the
        // insert.
        let ins = a.doc_mut().local_insert(0, 'x').unwrap();
        let m_ins = a.stamp(ins);
        let del = a.doc_mut().local_delete(0).unwrap();
        let m_del = a.stamp(del);
        // b receives them out of order: the delete must be held back.
        assert_eq!(b.receive(m_del), 0);
        assert_eq!(b.pending(), 1);
        assert_eq!(b.receive(m_ins), 2);
        assert_eq!(b.pending(), 0);
        assert!(b.doc().is_empty());
        assert_eq!(a.digest(), b.digest());
    }

    #[test]
    fn three_replicas_converge_with_concurrent_edits() {
        let mut replicas = [replica(1), replica(2), replica(3)];
        // Each replica types its own text concurrently.
        let mut messages = Vec::new();
        for (i, r) in replicas.iter_mut().enumerate() {
            for (j, c) in "abc".chars().enumerate() {
                let op = r
                    .doc_mut()
                    .local_insert(j, char::from(b'a' + (i as u8 * 3) + j as u8))
                    .unwrap();
                let _ = c;
                messages.push((r.site(), r.stamp(op)));
            }
        }
        // Deliver everything to everyone else, in an arbitrary (but causal
        // per sender, since we kept emission order) order.
        for (sender, msg) in &messages {
            for r in replicas.iter_mut() {
                if r.site() != *sender {
                    r.receive(msg.clone());
                }
            }
        }
        let d0 = replicas[0].digest();
        assert!(replicas.iter().all(|r| r.digest() == d0));
        assert_eq!(replicas[0].doc().len(), 9);
    }

    #[test]
    fn redelivered_messages_are_applied_once() {
        let mut a = replica(1);
        let mut b = replica(2);
        let op = a.doc_mut().local_insert(0, 'x').unwrap();
        let msg = a.stamp(op);
        assert_eq!(b.receive(msg.clone()), 1);
        assert_eq!(b.receive(msg.clone()), 0, "duplicate must not re-apply");
        assert_eq!(b.receive(msg), 0);
        assert_eq!(b.ops_applied(), 1);
        assert_eq!(b.duplicates_discarded(), 2);
        assert_eq!(b.pending(), 0, "duplicates must not linger in pending");
        assert_eq!(b.doc().to_string(), "x");
    }

    #[test]
    fn at_least_once_retransmits_until_acked() {
        let sites = [site(1), site(2)];
        let mut a = replica(1);
        let mut b = replica(2);
        a.enable_at_least_once(&sites);

        let op = a.doc_mut().local_insert(0, 'x').unwrap();
        let _lost = a.stamp(op);
        assert!(a.has_unacked());

        // The first transmission is "lost": b never sees it. A later
        // retransmission round recovers it.
        let again = a.unacked_for(site(2));
        assert_eq!(again.len(), 1);
        assert_eq!(a.retransmissions(), 1);
        for m in again {
            b.receive(m);
        }
        assert_eq!(b.doc().to_string(), "x");

        // b acknowledges; a prunes its log and stops retransmitting.
        let ack = b.ack_envelope();
        assert_eq!(a.receive_envelope(ack), 0);
        assert!(!a.has_unacked());
        assert!(a.unacked_for(site(2)).is_empty());
        assert_eq!(a.retransmissions(), 1);
    }

    #[test]
    fn acks_are_cumulative_and_per_peer() {
        let sites = [site(1), site(2), site(3)];
        let mut a = replica(1);
        let mut b = replica(2);
        let mut c = replica(3);
        a.enable_at_least_once(&sites);

        let mut msgs = Vec::new();
        for ch in ['x', 'y', 'z'] {
            let len = a.doc().len();
            let op = a.doc_mut().local_insert(len, ch).unwrap();
            msgs.push(a.stamp(op));
        }
        // b gets everything, c only the first message.
        for m in &msgs {
            b.receive(m.clone());
        }
        c.receive(msgs[0].clone());

        a.receive_envelope(b.ack_envelope());
        a.receive_envelope(c.ack_envelope());
        assert!(a.has_unacked(), "c still misses two messages");
        assert!(a.unacked_for(site(2)).is_empty());
        let for_c = a.unacked_for(site(3));
        assert_eq!(for_c.len(), 2);
        for m in for_c {
            c.receive(m);
        }
        a.receive_envelope(c.ack_envelope());
        assert!(!a.has_unacked());
        assert_eq!(a.digest(), c.digest());
    }

    #[test]
    #[should_panic(expected = "not a registered at-least-once peer")]
    fn retransmitting_to_an_unregistered_peer_is_rejected() {
        // The send log is pruned by registered peers' acks only, so it could
        // already be missing what an unregistered peer needs — asking for
        // such a peer's backlog must fail loudly, not return a partial log.
        let mut a = replica(1);
        a.enable_at_least_once(&[site(1), site(2)]);
        let op = a.doc_mut().local_insert(0, 'x').unwrap();
        let _ = a.stamp(op);
        let _ = a.unacked_for(site(3));
    }

    #[test]
    fn acks_from_unregistered_sites_do_not_unblock_pruning() {
        let mut a = replica(1);
        let mut b = replica(2);
        let mut c = replica(3);
        a.enable_at_least_once(&[site(1), site(2), site(3)]);
        let op = a.doc_mut().local_insert(0, 'x').unwrap();
        let msg = a.stamp(op);
        b.receive(msg.clone());
        c.receive(msg);

        // An ack from an unknown site 9 must not shrink the prune floor or
        // widen the peer set.
        let mut stranger = VectorClock::new();
        stranger.observe(site(1), 1);
        a.record_ack(site(9), &stranger);
        assert!(a.has_unacked(), "registered peers have not acked yet");

        a.receive_envelope(b.ack_envelope());
        assert!(a.has_unacked(), "site 3 is still missing its ack");
        a.receive_envelope(c.ack_envelope());
        assert!(!a.has_unacked());
    }

    #[test]
    fn lost_then_retransmitted_with_duplicates_converges() {
        let sites = [site(1), site(2)];
        let mut a = replica(1);
        let mut b = replica(2);
        a.enable_at_least_once(&sites);

        let mut msgs = Vec::new();
        for k in 0..5u8 {
            let len = a.doc().len();
            let op = a.doc_mut().local_insert(len, char::from(b'a' + k)).unwrap();
            msgs.push(a.stamp(op));
        }
        // Only messages 0 and 3 arrive, 3 twice (a network duplicate).
        b.receive(msgs[0].clone());
        b.receive(msgs[3].clone());
        b.receive(msgs[3].clone());
        assert_eq!(b.pending(), 1);
        a.receive_envelope(b.ack_envelope());

        // Retransmit whatever b has not acknowledged (messages 2..=5 by
        // cumulative ack, including the buffered one, which b discards).
        let again = a.unacked_for(site(2));
        assert_eq!(again.len(), 4);
        for m in again {
            b.receive(m);
        }
        a.receive_envelope(b.ack_envelope());
        assert!(!a.has_unacked());
        assert_eq!(b.pending(), 0);
        assert_eq!(b.doc().to_string(), "abcde");
        assert!(b.duplicates_discarded() >= 2);
    }
}
