//! A replica = a document + a causal delivery layer.
//!
//! [`Replica`] owns any document implementing [`ReplicatedDocument`], stamps
//! the operations it initiates with the replica's vector clock, and replays
//! remote operations through a [`CausalBuffer`] so that happened-before order
//! is always respected — the only delivery requirement the CRDT needs (§2.2).
//!
//! On a lossy transport causal delivery must be built from **at-least-once**
//! delivery: the replica keeps a log of the messages it stamped, peers
//! acknowledge cumulatively (an [`Envelope::Ack`] carrying their delivered
//! clock), and anything a peer has not acknowledged can be retransmitted with
//! [`Replica::unacked_for`]. The duplicate-safe [`CausalBuffer`] discards the
//! redundant copies this produces, so the pair yields exactly-once *delivery*
//! on top of at-least-once *transmission*.

use std::collections::BTreeMap;

use serde::{de::DeserializeOwned, Deserialize, Serialize};
use treedoc_commit::{CommitProtocol, FlattenProposal, Vote};
use treedoc_core::{Atom, Disambiguator, HasSource, Op, Side, SiteId, Treedoc};
use treedoc_storage::{DocStore, Snapshot, StorageError};
use treedoc_telemetry::{Counter, Gauge, Histogram, Telemetry};

use crate::causal::{CausalBuffer, CausalBufferImage, CausalMessage};
use crate::clock::VectorClock;
use crate::flatten::{DecisionKind, FlattenDecision, FlattenPropose, FlattenVote, VoteStage};
use crate::persist::{
    self, PersistentDocument, RecoverError, RecoveryReport, WalCodec, WalRecord, SECTION_REPLICA,
};
use crate::sync::{
    SnapshotChunk, SnapshotOffer, SyncConfig, SyncDigests, SyncDocument, SyncRoot, SyncRuns,
};

/// A document type that can be driven by a [`Replica`].
pub trait ReplicatedDocument {
    /// The operation type exchanged between replicas.
    type Op: Clone;

    /// Replays one remote operation.
    fn replay(&mut self, op: &Self::Op);

    /// A cheap digest of the document content, used by the test harness and
    /// the simulator to check convergence without comparing full documents.
    fn digest(&self) -> u64;
}

impl<A, D> ReplicatedDocument for Treedoc<A, D>
where
    A: Atom + std::hash::Hash,
    D: Disambiguator + HasSource,
{
    type Op = Op<A, D>;

    fn replay(&mut self, op: &Op<A, D>) {
        // Replay of a CRDT operation cannot fail under causal delivery; a
        // failure here indicates a broken delivery layer, which the
        // simulator's tests want to hear about loudly.
        self.apply(op)
            .expect("causally delivered operation must replay cleanly");
    }

    fn digest(&self) -> u64 {
        // The store's incremental merkle digest: O(1) to read, covers every
        // stored cell (live, tombstone, ghost) and is independent of how the
        // store fragmented — the same digest the anti-entropy protocol
        // compares, so "converged" means the same thing everywhere.
        self.merkle_digest()
    }
}

/// A run of causally consecutive stamped operations from one sender, shipped
/// as a single envelope. Produced by the sender-side flush policy
/// ([`Replica::stamp_batched`]) and by retransmission coalescing
/// ([`Replica::unacked_batch_for`]); the binary wire codec delta-encodes the
/// entries against each other (shared-prefix position identifiers, clock
/// diffs), so a batch costs far fewer bytes than its operations shipped one
/// envelope each.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct OpBatch<Op> {
    /// `(stamped flatten epoch, message)` pairs in stamp order.
    pub entries: Vec<(u64, CausalMessage<Op>)>,
}

impl<Op> OpBatch<Op> {
    /// Number of operations in the batch.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when the batch holds no operations.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// Wire format between replicas: causally stamped operations (tagged with
/// the sender's flatten epoch), operation batches, cumulative
/// acknowledgements for at-least-once delivery, and the three
/// flatten-commitment messages of §4.2.1 (see [`crate::flatten`]).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Envelope<Op> {
    /// A (possibly retransmitted) causally stamped operation.
    Op {
        /// The sender's flatten epoch when the operation was stamped. A
        /// receiver in an older epoch holds the message back until its own
        /// flatten commits; a receiver in a newer epoch counts it as late
        /// pre-flatten traffic (always a duplicate — see the module docs of
        /// [`crate::flatten`]) and lets the causal buffer discard it.
        epoch: u64,
        /// The stamped operation.
        msg: CausalMessage<Op>,
    },
    /// A batch of stamped operations, each tagged with its own epoch.
    /// Receiving a batch is exactly receiving its entries in order.
    OpBatch(OpBatch<Op>),
    /// Cumulative acknowledgement: `from` has delivered everything described
    /// by `clock` (in particular, `clock.get(receiver)` messages of the
    /// receiving replica).
    Ack {
        /// The acknowledging site.
        from: SiteId,
        /// Its delivered clock at acknowledgement time.
        clock: VectorClock,
    },
    /// Coordinator → participant: vote request for a flatten proposal.
    FlattenPropose(FlattenPropose),
    /// Participant → coordinator: a vote or phase acknowledgement.
    FlattenVote(FlattenVote),
    /// Coordinator → participant: pre-commit, commit or abort.
    FlattenDecision(FlattenDecision),
    /// Anti-entropy: root digest probe / echo (see [`crate::sync`]).
    SyncRoot(SyncRoot),
    /// Anti-entropy: sub-range digests of the merkle walk.
    SyncDigests(SyncDigests),
    /// Anti-entropy: the cells of a diverging leaf range.
    SyncRuns(SyncRuns),
    /// Bootstrap: announces a snapshot transfer to a joining site.
    SnapshotOffer(SnapshotOffer),
    /// Bootstrap: one piece of the offered snapshot.
    SnapshotChunk(SnapshotChunk),
}

/// The per-replica participant role of the flatten commitment protocol (see
/// [`crate::flatten`]): voting, the prepared lock, epoch tracking and the
/// counters the simulator reports.
#[derive(Debug, Default)]
struct FlattenRole {
    /// Number of flattens committed at this replica so far; every operation
    /// envelope is tagged with the epoch it was stamped in.
    epoch: u64,
    /// The proposal this replica has voted Yes on and not yet seen decided.
    prepared: Option<PreparedFlatten>,
    /// Votes already cast, per transaction (re-answered idempotently when a
    /// proposal is retransmitted). Retained for the replica's lifetime: one
    /// small entry per proposal ever observed, bounded by the run length
    /// (a long-lived deployment would prune entries from settled epochs).
    voted: BTreeMap<u64, Vote>,
    /// Concluded transactions (`true` = committed), for idempotent decision
    /// handling under network duplication. Same retention as `voted`.
    decided: BTreeMap<u64, bool>,
    /// Local transaction counter for proposals initiated here.
    next_txn: u64,
    commits: u64,
    aborts: u64,
    votes_cast: u64,
    unilateral_commits: u64,
    blocked_ticks: u64,
    late_epoch_ops: u64,
}

/// State of a proposal this replica has voted Yes on: the replica is locked
/// (no edits in the subtree) until the decision arrives.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct PreparedFlatten {
    txn: u64,
    proposal: FlattenProposal,
    /// 3PC only: the pre-commit round was acknowledged, so the decision is
    /// known to be commit and the replica may terminate unilaterally.
    pre_committed: bool,
    /// Ticks spent waiting since preparing (reset by the pre-commit).
    ticks_waiting: u64,
}

/// The durable form of [`FlattenRole`].
#[derive(Debug, Clone, Serialize, Deserialize)]
struct FlattenImage {
    epoch: u64,
    voted: Vec<(u64, Vote)>,
    decided: Vec<(u64, bool)>,
    next_txn: u64,
    commits: u64,
    aborts: u64,
    votes_cast: u64,
    unilateral_commits: u64,
    blocked_ticks: u64,
    late_epoch_ops: u64,
    prepared: Option<PreparedFlatten>,
}

impl FlattenRole {
    fn export_image(&self) -> FlattenImage {
        FlattenImage {
            epoch: self.epoch,
            voted: self.voted.iter().map(|(&t, &v)| (t, v)).collect(),
            decided: self.decided.iter().map(|(&t, &d)| (t, d)).collect(),
            next_txn: self.next_txn,
            commits: self.commits,
            aborts: self.aborts,
            votes_cast: self.votes_cast,
            unilateral_commits: self.unilateral_commits,
            blocked_ticks: self.blocked_ticks,
            late_epoch_ops: self.late_epoch_ops,
            prepared: self.prepared.clone(),
        }
    }

    fn from_image(image: FlattenImage) -> Self {
        FlattenRole {
            epoch: image.epoch,
            prepared: image.prepared,
            voted: image.voted.into_iter().collect(),
            decided: image.decided.into_iter().collect(),
            next_txn: image.next_txn,
            commits: image.commits,
            aborts: image.aborts,
            votes_cast: image.votes_cast,
            unilateral_commits: image.unilateral_commits,
            blocked_ticks: image.blocked_ticks,
            late_epoch_ops: image.late_epoch_ops,
        }
    }
}

/// A document that can take part in distributed flatten commitment: it can
/// vote on a proposal and apply a committed one. Implemented for
/// [`Treedoc`]; the clock-equality half of the vote lives on
/// [`Replica`] itself.
pub trait FlattenDocument: ReplicatedDocument {
    /// Votes on the proposal from the document's point of view: No when the
    /// subtree is missing or has activity after the proposal's base
    /// revision.
    ///
    /// Note that revisions are **local bookkeeping** (nothing in the wire
    /// path advances them), so in distributed runs this guard only rejects
    /// missing subtrees — the live concurrency veto there is the
    /// clock-equality test on [`Replica`]. The revision check matters for
    /// in-process use, where [`Treedoc::next_revision`] is driven by the
    /// embedding application (see `treedoc-commit`'s participants).
    fn flatten_vote(&self, proposal: &FlattenProposal) -> Vote;
    /// Applies a committed flatten (deterministic, so every committing
    /// replica produces the same structure).
    fn apply_flatten(&mut self, proposal: &FlattenProposal);
    /// The revision a proposal initiated at this replica is based on.
    fn base_revision(&self) -> u64;
}

impl<A, D> FlattenDocument for Treedoc<A, D>
where
    A: Atom + std::hash::Hash,
    D: Disambiguator + HasSource,
{
    fn flatten_vote(&self, proposal: &FlattenProposal) -> Vote {
        let tree = self.tree();
        match tree.subtree(&proposal.subtree) {
            None => Vote::No,
            Some(node) if node.hot_rev() > proposal.base_revision => Vote::No,
            Some(_) => Vote::Yes,
        }
    }

    fn apply_flatten(&mut self, proposal: &FlattenProposal) {
        let _ = self.flatten(&proposal.subtree);
    }

    fn base_revision(&self) -> u64 {
        self.revision()
    }
}

/// Sender-side flush policy for operation batching: a batch is emitted as
/// soon as it holds `max_ops` operations **or** its binary encoding reaches
/// `max_bytes`, whichever comes first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BatchPolicy {
    /// Maximum operations per batch (≥ 1).
    pub max_ops: usize,
    /// Maximum encoded payload bytes per batch.
    pub max_bytes: usize,
}

impl Default for BatchPolicy {
    fn default() -> Self {
        BatchPolicy {
            max_ops: 16,
            max_bytes: 16 * 1024,
        }
    }
}

/// One buffered batch entry: `(stamped flatten epoch, message)`.
type BatchEntry<Op> = (u64, CausalMessage<Op>);

/// The sender-side operation batcher: buffers stamped messages until the
/// flush policy triggers. The encoded size is measured through a
/// monomorphised hook captured where the codec bounds hold (same trick as
/// [`Journal`]), so the buffering call sites need none.
struct Batcher<Op> {
    policy: BatchPolicy,
    pending: Vec<BatchEntry<Op>>,
    /// Encoded bytes of `pending` so far (each entry measured delta-encoded
    /// against its predecessor, exactly as the wire will ship it).
    pending_bytes: usize,
    /// Encoded size of one batch entry given its predecessor.
    entry_bytes: fn(&BatchEntry<Op>, Option<&BatchEntry<Op>>) -> usize,
    batches_flushed: u64,
}

impl<Op> std::fmt::Debug for Batcher<Op> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Batcher")
            .field("policy", &self.policy)
            .field("pending", &self.pending.len())
            .field("pending_bytes", &self.pending_bytes)
            .field("batches_flushed", &self.batches_flushed)
            .finish()
    }
}

/// The sender-side retransmission state of at-least-once mode.
#[derive(Debug)]
struct AtLeastOnce<Op> {
    /// Every stamped-but-not-fully-acknowledged message, keyed by this
    /// replica's own sequence number, together with the flatten epoch it was
    /// stamped in (so retransmissions keep their original epoch tag).
    send_log: BTreeMap<u64, (u64, CausalMessage<Op>)>,
    /// Highest sequence number of ours each peer has cumulatively
    /// acknowledged.
    peer_acked: BTreeMap<SiteId, u64>,
    /// Messages handed out again via [`Replica::unacked_for`].
    retransmissions: u64,
    /// Cap on messages per [`Replica::unacked_batch_for`] call (`None` =
    /// whole window). See [`Replica::set_retransmit_window`].
    window: Option<usize>,
}

impl<Op> AtLeastOnce<Op> {
    fn new(site: SiteId, peers: &[SiteId]) -> Self {
        AtLeastOnce {
            send_log: BTreeMap::new(),
            peer_acked: peers
                .iter()
                .copied()
                .filter(|&p| p != site)
                .map(|p| (p, 0))
                .collect(),
            retransmissions: 0,
            window: None,
        }
    }

    /// Registers additional peers without touching acknowledgements already
    /// received (see [`Replica::enable_at_least_once`]).
    fn add_peers(&mut self, site: SiteId, peers: &[SiteId]) {
        for &p in peers {
            if p != site {
                self.peer_acked.entry(p).or_insert(0);
            }
        }
    }

    /// Drops log entries every peer has acknowledged.
    fn prune(&mut self) {
        let fully_acked = self.peer_acked.values().copied().min().unwrap_or(0);
        self.send_log = self.send_log.split_off(&(fully_acked + 1));
    }

    fn export_image(&self) -> AtLeastOnceImage<Op>
    where
        Op: Clone,
    {
        AtLeastOnceImage {
            send_log: self
                .send_log
                .iter()
                .map(|(&seq, (epoch, msg))| (seq, *epoch, msg.clone()))
                .collect(),
            peer_acked: self.peer_acked.iter().map(|(&p, &a)| (p, a)).collect(),
            retransmissions: self.retransmissions,
            window: self.window,
        }
    }

    fn from_image(image: AtLeastOnceImage<Op>) -> Self {
        AtLeastOnce {
            send_log: image
                .send_log
                .into_iter()
                .map(|(seq, epoch, msg)| (seq, (epoch, msg)))
                .collect(),
            peer_acked: image.peer_acked.into_iter().collect(),
            retransmissions: image.retransmissions,
            window: image.window,
        }
    }
}

/// The durable form of the at-least-once retransmission state.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct AtLeastOnceImage<Op> {
    /// `(own sequence number, stamped epoch, message)` triples.
    send_log: Vec<(u64, u64, CausalMessage<Op>)>,
    peer_acked: Vec<(SiteId, u64)>,
    retransmissions: u64,
    /// Absent in images written before the window cap existed.
    #[serde(default)]
    window: Option<usize>,
}

/// The durable form of a whole [`Replica`] minus the document (which has its
/// own snapshot sections — see [`PersistentDocument`]).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ReplicaImage<Op> {
    site: SiteId,
    buffer: CausalBufferImage<Op>,
    ops_sent: u64,
    ops_applied: u64,
    epoch_held: Vec<(u64, CausalMessage<Op>)>,
    at_least_once: Option<AtLeastOnceImage<Op>>,
    flatten: FlattenImage,
}

/// The journaling half of an attached [`DocStore`]: the store plus the
/// monomorphised serialisation hooks (captured where the `Serialize` bounds
/// hold, so the journaling call sites need none).
struct Journal<Doc: ReplicatedDocument> {
    store: DocStore,
    encode: fn(&WalRecord<Doc::Op>) -> Vec<u8>,
    make_snapshot: fn(&Replica<Doc>) -> Snapshot,
    /// `true` while `Replica::recover` replays the WAL: suppresses re-logging
    /// and re-checkpointing of events that are already durable.
    replaying: bool,
}

impl<Doc: ReplicatedDocument> std::fmt::Debug for Journal<Doc> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Journal")
            .field("store", &self.store)
            .field("replaying", &self.replaying)
            .finish()
    }
}

/// Telemetry instruments of one replica: stamp/receive volume and latency,
/// batching, the causal/epoch hold-back depth, and sync-session traffic.
/// Inert by default; bound by [`Replica::set_telemetry`].
#[derive(Debug, Clone, Default)]
struct ReplicaMetrics {
    /// The bound handle, kept so a store attached later inherits it.
    telemetry: Telemetry,
    ops_stamped: Counter,
    stamp_micros: Histogram,
    ops_received: Counter,
    receive_micros: Histogram,
    batches_flushed: Counter,
    batch_ops: Counter,
    holdback_depth: Gauge,
    sync_digests_rx: Counter,
    sync_runs_rx: Counter,
    sync_echo_bytes: Counter,
    sync_cells_integrated: Counter,
}

impl ReplicaMetrics {
    fn resolve(telemetry: &Telemetry) -> Self {
        ReplicaMetrics {
            telemetry: telemetry.clone(),
            ops_stamped: telemetry.counter("replica.ops_stamped"),
            stamp_micros: telemetry.histogram("replica.stamp_micros"),
            ops_received: telemetry.counter("replica.ops_received"),
            receive_micros: telemetry.histogram("replica.receive_micros"),
            batches_flushed: telemetry.counter("replica.batches_flushed"),
            batch_ops: telemetry.counter("replica.batch_ops"),
            holdback_depth: telemetry.gauge("replica.holdback_depth"),
            sync_digests_rx: telemetry.counter("sync.digests_rx"),
            sync_runs_rx: telemetry.counter("sync.runs_rx"),
            sync_echo_bytes: telemetry.counter("sync.echo_bytes"),
            sync_cells_integrated: telemetry.counter("sync.cells_integrated"),
        }
    }
}

/// A document plus the machinery to exchange its operations causally.
#[derive(Debug)]
pub struct Replica<Doc: ReplicatedDocument> {
    site: SiteId,
    doc: Doc,
    buffer: CausalBuffer<Doc::Op>,
    ops_sent: u64,
    ops_applied: u64,
    at_least_once: Option<AtLeastOnce<Doc::Op>>,
    flatten: FlattenRole,
    /// Operations stamped in a flatten epoch this replica has not reached
    /// yet (their identifiers live in the post-flatten tree), held back until
    /// the local flatten commits.
    epoch_held: Vec<(u64, CausalMessage<Doc::Op>)>,
    /// The attached durable store, when persistence is on (see
    /// [`attach_store`](Replica::attach_store)).
    journal: Option<Journal<Doc>>,
    /// The sender-side operation batcher, when batching is on (see
    /// [`enable_batching`](Replica::enable_batching)).
    batcher: Option<Batcher<Doc::Op>>,
    /// Chunks of an in-flight snapshot bootstrap (transient: a crash simply
    /// restarts the transfer).
    bootstrap: Option<BootstrapAssembly>,
    metrics: ReplicaMetrics,
}

/// Collects the chunks of one snapshot transfer until all have arrived.
#[derive(Debug)]
struct BootstrapAssembly {
    from: SiteId,
    digest: u64,
    total_bytes: u64,
    chunks: u64,
    received: BTreeMap<u64, Vec<u8>>,
}

impl<Doc: ReplicatedDocument> Replica<Doc> {
    /// Wraps a document.
    pub fn new(site: SiteId, doc: Doc) -> Self {
        Replica {
            site,
            doc,
            buffer: CausalBuffer::new(),
            ops_sent: 0,
            ops_applied: 0,
            at_least_once: None,
            flatten: FlattenRole::default(),
            epoch_held: Vec::new(),
            journal: None,
            batcher: None,
            bootstrap: None,
            metrics: ReplicaMetrics::default(),
        }
    }

    /// Points this replica's instruments (stamp/receive counters and
    /// latency, batching, hold-back depth, sync traffic) at `telemetry`, and
    /// forwards the handle to the attached store if any. A disabled handle
    /// reverts everything to no-ops.
    pub fn set_telemetry(&mut self, telemetry: &Telemetry) {
        self.metrics = ReplicaMetrics::resolve(telemetry);
        if let Some(journal) = self.journal.as_mut() {
            journal.store.set_telemetry(telemetry);
        }
    }

    /// `true` while journaling is live (a store is attached and the replica
    /// is not replaying its own log).
    fn journaling(&self) -> bool {
        self.journal.as_ref().is_some_and(|j| !j.replaying)
    }

    /// Appends one WAL record, constructed lazily so the non-durable path
    /// pays nothing. Persistence is load-bearing: a backend failure here is
    /// fatal rather than silently forgotten.
    fn journal_with(&mut self, record: impl FnOnce() -> WalRecord<Doc::Op>) {
        if !self.journaling() {
            return;
        }
        let record = record();
        let journal = self.journal.as_mut().expect("journaling() checked");
        let bytes = (journal.encode)(&record);
        journal
            .store
            .append(self.flatten.epoch, &bytes)
            .expect("WAL append failed; durability cannot be guaranteed");
    }

    /// Checkpoints through the attached journal (no-op without one, or while
    /// replaying). Factored out so the flatten-commit path — which has no
    /// persistence bounds — can call it through the stored hook.
    fn checkpoint_via_journal(&mut self) {
        let Some(mut journal) = self.journal.take() else {
            return;
        };
        if !journal.replaying {
            let snapshot = (journal.make_snapshot)(self);
            journal
                .store
                .checkpoint(self.flatten.epoch, &snapshot)
                .expect("checkpoint failed; durability cannot be guaranteed");
        }
        self.journal = Some(journal);
    }

    /// The replica's site.
    pub fn site(&self) -> SiteId {
        self.site
    }

    /// Read access to the document.
    pub fn doc(&self) -> &Doc {
        &self.doc
    }

    /// Write access to the document, for *local* edits only (the returned
    /// operations must then be wrapped with [`stamp`](Self::stamp) and
    /// broadcast).
    pub fn doc_mut(&mut self) -> &mut Doc {
        &mut self.doc
    }

    /// The replica's current causal clock.
    pub fn clock(&self) -> &VectorClock {
        self.buffer.delivered_clock()
    }

    /// Number of operations this replica initiated.
    pub fn ops_sent(&self) -> u64 {
        self.ops_sent
    }

    /// Number of remote operations applied.
    pub fn ops_applied(&self) -> u64 {
        self.ops_applied
    }

    /// Stale or duplicate messages the causal buffer discarded.
    pub fn duplicates_discarded(&self) -> u64 {
        self.buffer.stats().duplicates_discarded
    }

    /// Largest hold-back queue observed so far.
    pub fn high_water_mark(&self) -> usize {
        self.buffer.high_water_mark()
    }

    /// Switches the replica to at-least-once mode: every message stamped from
    /// now on is kept in a send log until all `peers` (the sender itself is
    /// ignored if listed) have acknowledged it, and can be retransmitted with
    /// [`unacked_for`](Self::unacked_for).
    ///
    /// Calling this again is **idempotent and merging**: peers already
    /// registered keep the acknowledgements they have sent (so nothing
    /// already acked is spuriously retransmitted), and peers new to the set
    /// are registered from zero. A peer added mid-run is only guaranteed the
    /// log entries that have not yet been pruned by the original peer set's
    /// acknowledgements.
    pub fn enable_at_least_once(&mut self, peers: &[SiteId]) {
        self.journal_with(|| WalRecord::PeersEnabled {
            peers: peers.to_vec(),
        });
        match self.at_least_once.as_mut() {
            Some(alo) => alo.add_peers(self.site, peers),
            None => self.at_least_once = Some(AtLeastOnce::new(self.site, peers)),
        }
    }

    /// `true` when at-least-once mode is on.
    pub fn at_least_once_enabled(&self) -> bool {
        self.at_least_once.is_some()
    }

    /// Messages handed out for retransmission so far.
    pub fn retransmissions(&self) -> u64 {
        self.at_least_once
            .as_ref()
            .map_or(0, |alo| alo.retransmissions)
    }

    /// `true` while some stamped message has not been acknowledged by every
    /// peer (always `false` outside at-least-once mode).
    pub fn has_unacked(&self) -> bool {
        self.at_least_once
            .as_ref()
            .is_some_and(|alo| !alo.send_log.is_empty())
    }

    /// The acknowledgement envelope this replica would broadcast right now.
    pub fn ack_envelope(&self) -> Envelope<Doc::Op> {
        Envelope::Ack {
            from: self.site,
            clock: self.buffer.delivered_clock().clone(),
        }
    }

    /// Records a peer's cumulative acknowledgement (its delivered clock) and
    /// prunes the send log of everything all peers have now seen.
    ///
    /// The peer set is fixed by
    /// [`enable_at_least_once`](Self::enable_at_least_once):
    /// acknowledgements from sites outside it are ignored, because the send
    /// log is pruned against the registered peers only — honouring an
    /// unregistered peer here would pretend the log can still serve it
    /// after pruning already discarded entries it never acknowledged.
    pub fn record_ack(&mut self, peer: SiteId, clock: &VectorClock) {
        let acked = clock.get(self.site);
        if let Some(alo) = self.at_least_once.as_mut() {
            if let Some(entry) = alo.peer_acked.get_mut(&peer) {
                *entry = (*entry).max(acked);
                alo.prune();
            }
        }
    }

    /// Clones every logged message `peer` has not acknowledged yet, counting
    /// them as retransmissions. Returns an empty vector outside
    /// at-least-once mode.
    ///
    /// # Panics
    ///
    /// If `peer` was not registered in
    /// [`enable_at_least_once`](Self::enable_at_least_once): the send log
    /// is pruned by the registered peers' acknowledgements alone, so it
    /// cannot be relied on to still hold what an unregistered peer is
    /// missing — silently returning a partial log would lose messages.
    pub fn unacked_for(&mut self, peer: SiteId) -> Vec<CausalMessage<Doc::Op>> {
        self.unacked_envelopes_for(peer)
            .into_iter()
            .map(|env| match env {
                Envelope::Op { msg, .. } => msg,
                _ => unreachable!("the send log only holds operations"),
            })
            .collect()
    }

    /// Like [`unacked_for`](Self::unacked_for), but returns full envelopes
    /// carrying the flatten epoch each message was **stamped** in, so a
    /// pre-flatten operation retransmitted after a committed flatten is
    /// still recognisable as late pre-flatten traffic by the receiver.
    pub fn unacked_envelopes_for(&mut self, peer: SiteId) -> Vec<Envelope<Doc::Op>> {
        let Some(alo) = self.at_least_once.as_mut() else {
            return Vec::new();
        };
        let acked = alo
            .peer_acked
            .get(&peer)
            .copied()
            .unwrap_or_else(|| panic!("site {peer} is not a registered at-least-once peer"));
        let missing: Vec<Envelope<Doc::Op>> = alo
            .send_log
            .range(acked + 1..)
            .map(|(_, (epoch, m))| Envelope::Op {
                epoch: *epoch,
                msg: m.clone(),
            })
            .collect();
        alo.retransmissions += missing.len() as u64;
        missing
    }

    /// Caps how many messages one [`unacked_batch_for`](Self::unacked_batch_for)
    /// call re-ships (`None` restores the unbounded default). Without a cap,
    /// every retransmission round re-sends a lagging peer its **entire**
    /// unacked window — on a lossy link the same prefix crosses the wire
    /// round after round, quadratically. With a cap, each round re-ships at
    /// most `window` messages from the front of the window; cumulative
    /// acknowledgements advance it, so a live peer still catches up while
    /// the per-round cost stays bounded.
    pub fn set_retransmit_window(&mut self, window: Option<usize>) {
        if let Some(alo) = self.at_least_once.as_mut() {
            alo.window = window;
        }
    }

    /// Like [`unacked_envelopes_for`](Self::unacked_envelopes_for), but
    /// coalesces the peer's unacked window into a **single**
    /// [`Envelope::OpBatch`] (entries keep their stamped epochs), so a
    /// retransmission round costs one envelope instead of one per message.
    /// A configured [`set_retransmit_window`](Self::set_retransmit_window)
    /// caps the batch to the front of the window. Every entry still counts
    /// as a retransmission. `None` when the peer is fully acknowledged.
    ///
    /// # Panics
    ///
    /// Like [`unacked_envelopes_for`](Self::unacked_envelopes_for), if
    /// `peer` was not registered.
    pub fn unacked_batch_for(&mut self, peer: SiteId) -> Option<Envelope<Doc::Op>> {
        let alo = self.at_least_once.as_mut()?;
        let acked = alo
            .peer_acked
            .get(&peer)
            .copied()
            .unwrap_or_else(|| panic!("site {peer} is not a registered at-least-once peer"));
        let entries: Vec<(u64, CausalMessage<Doc::Op>)> = alo
            .send_log
            .range(acked + 1..)
            .take(alo.window.unwrap_or(usize::MAX))
            .map(|(_, (epoch, m))| (*epoch, m.clone()))
            .collect();
        if entries.is_empty() {
            return None;
        }
        alo.retransmissions += entries.len() as u64;
        Some(Envelope::OpBatch(OpBatch { entries }))
    }

    /// Stamps a locally initiated operation with this replica's clock,
    /// producing the message to broadcast. In at-least-once mode the message
    /// is also retained for retransmission until every peer acknowledges it.
    pub fn stamp(&mut self, op: Doc::Op) -> CausalMessage<Doc::Op> {
        let span = self.metrics.stamp_micros.start();
        self.metrics.ops_stamped.inc();
        let clock = self.buffer.record_local(self.site);
        self.ops_sent += 1;
        let message = CausalMessage {
            sender: self.site,
            clock,
            payload: op,
        };
        if let Some(alo) = self.at_least_once.as_mut() {
            alo.send_log
                .insert(message.seq(), (self.flatten.epoch, message.clone()));
        }
        // Persist before the message can leave the replica: a crash after
        // this point finds the operation (and the local edit it implies) in
        // the log, so the recovered replica can still retransmit it.
        let epoch = self.flatten.epoch;
        self.journal_with(|| WalRecord::Stamped {
            epoch,
            msg: message.clone(),
        });
        span.stop();
        message
    }

    /// Stamps a locally initiated operation and wraps it in an
    /// [`Envelope::Op`] tagged with the replica's current flatten epoch —
    /// the broadcast form the simulator sends.
    pub fn stamp_envelope(&mut self, op: Doc::Op) -> Envelope<Doc::Op> {
        let epoch = self.flatten.epoch;
        Envelope::Op {
            epoch,
            msg: self.stamp(op),
        }
    }

    /// Switches the replica to batched sending: operations stamped through
    /// [`stamp_batched`](Self::stamp_batched) are buffered and emitted as
    /// [`Envelope::OpBatch`]es when `policy` triggers. Journaling and the
    /// at-least-once send log are unaffected (both act at stamp time), so a
    /// crash can only lose an unflushed batch the retransmission protocol
    /// recovers anyway.
    pub fn enable_batching(&mut self, policy: BatchPolicy)
    where
        Doc::Op: treedoc_core::WirePayload,
    {
        assert!(policy.max_ops >= 1, "a batch holds at least one operation");
        self.batcher = Some(Batcher {
            policy,
            pending: Vec::new(),
            pending_bytes: 0,
            entry_bytes: crate::wire::batch_entry_bytes::<Doc::Op>,
            batches_flushed: 0,
        });
    }

    /// `true` when batched sending is on.
    pub fn batching_enabled(&self) -> bool {
        self.batcher.is_some()
    }

    /// Stamps a locally initiated operation into the current batch. Returns
    /// the batch envelope to broadcast when the flush policy triggered, or
    /// `None` while the batch is still filling. Without
    /// [`enable_batching`](Self::enable_batching) this behaves exactly like
    /// [`stamp_envelope`](Self::stamp_envelope) (every op flushes
    /// immediately), so drivers need a single call site for both modes.
    pub fn stamp_batched(&mut self, op: Doc::Op) -> Option<Envelope<Doc::Op>> {
        let epoch = self.flatten.epoch;
        let msg = self.stamp(op);
        let Some(batcher) = self.batcher.as_mut() else {
            return Some(Envelope::Op { epoch, msg });
        };
        let entry = (epoch, msg);
        batcher.pending_bytes += (batcher.entry_bytes)(&entry, batcher.pending.last());
        batcher.pending.push(entry);
        if batcher.pending.len() >= batcher.policy.max_ops
            || batcher.pending_bytes >= batcher.policy.max_bytes
        {
            self.flush_batch()
        } else {
            None
        }
    }

    /// Emits whatever the batcher holds, regardless of the flush policy
    /// (drivers call this at round boundaries and before quiescence checks).
    /// `None` when the batch is empty or batching is off.
    pub fn flush_batch(&mut self) -> Option<Envelope<Doc::Op>> {
        let batcher = self.batcher.as_mut()?;
        if batcher.pending.is_empty() {
            return None;
        }
        batcher.pending_bytes = 0;
        batcher.batches_flushed += 1;
        let entries = std::mem::take(&mut batcher.pending);
        self.metrics.batches_flushed.inc();
        self.metrics.batch_ops.add(entries.len() as u64);
        Some(Envelope::OpBatch(OpBatch { entries }))
    }

    /// Operations buffered in the current (unflushed) batch.
    pub fn pending_batch_len(&self) -> usize {
        self.batcher.as_ref().map_or(0, |b| b.pending.len())
    }

    /// Batches emitted so far (flush-policy triggers and explicit flushes).
    pub fn batches_flushed(&self) -> u64 {
        self.batcher.as_ref().map_or(0, |b| b.batches_flushed)
    }

    /// Receives a message from the network; buffered messages that become
    /// deliverable are replayed immediately, in causal order. Duplicates are
    /// discarded (see [`Replica::duplicates_discarded`]).
    ///
    /// With a store attached the message is persisted (as an epoch-tagged
    /// operation envelope) before delivery.
    pub fn receive(&mut self, message: CausalMessage<Doc::Op>) -> usize {
        let span = self.metrics.receive_micros.start();
        self.metrics.ops_received.inc();
        self.journal_received_op(self.flatten.epoch, &message);
        let applied = self.receive_unjournaled(message);
        span.stop();
        self.note_holdback_depth();
        applied
    }

    /// Publishes the hold-back depth (causally blocked plus epoch-held
    /// messages) to the `replica.holdback_depth` gauge. One branch when
    /// telemetry is off.
    fn note_holdback_depth(&self) {
        if self.metrics.holdback_depth.is_enabled() {
            self.metrics.holdback_depth.set(self.pending() as u64);
        }
    }

    /// The persist-before-deliver guard for incoming operations, shared by
    /// [`receive`](Self::receive) and the envelope path so the two can never
    /// drift apart: journals the message unless it is a read-only-detectable
    /// duplicate (whose replay would be a no-op anyway).
    fn journal_received_op(&mut self, epoch: u64, msg: &CausalMessage<Doc::Op>) {
        if self.journaling() && !self.op_is_known_duplicate(epoch, msg) {
            let msg = msg.clone();
            self.journal_with(|| WalRecord::Received {
                envelope: Envelope::Op { epoch, msg },
            });
        }
    }

    /// The persist-before-deliver guard for incoming batches: journals the
    /// batch with its known-duplicate entries filtered out (their replay
    /// would be a no-op), as one `Received` record. A batch that is
    /// duplicates throughout — the common case under retransmission
    /// coalescing, where the whole unacked window is re-sent — costs no WAL
    /// record at all.
    fn journal_received_batch(&mut self, batch: &OpBatch<Doc::Op>) {
        if !self.journaling() {
            return;
        }
        let fresh: Vec<(u64, CausalMessage<Doc::Op>)> = batch
            .entries
            .iter()
            .filter(|(epoch, msg)| !self.op_is_known_duplicate(*epoch, msg))
            .cloned()
            .collect();
        if !fresh.is_empty() {
            self.journal_with(|| WalRecord::Received {
                envelope: Envelope::OpBatch(OpBatch { entries: fresh }),
            });
        }
    }

    /// Read-only check whether an incoming operation would be discarded as a
    /// duplicate (by the causal buffer, or by the epoch hold-back dedup).
    /// Such a message is side-effect-free on replay, so the journal skips
    /// it — under retransmission-heavy schedules this trims the WAL (and
    /// the recovery bill) by roughly the duplicate rate.
    fn op_is_known_duplicate(&self, epoch: u64, msg: &CausalMessage<Doc::Op>) -> bool {
        if epoch > self.flatten.epoch {
            self.epoch_held
                .iter()
                .any(|(_, held)| held.sender == msg.sender && held.seq() == msg.seq())
        } else {
            self.buffer.is_duplicate(msg.sender, msg.seq())
        }
    }

    /// `true` when recording this acknowledgement would change nothing:
    /// at-least-once is off, the peer is unregistered, or the cumulative
    /// watermark is not advanced. Such acks are not worth a WAL record.
    fn ack_is_noop(&self, peer: SiteId, clock: &VectorClock) -> bool {
        let acked = clock.get(self.site);
        match self.at_least_once.as_ref() {
            Some(alo) => alo
                .peer_acked
                .get(&peer)
                .is_none_or(|&current| acked <= current),
            None => true,
        }
    }

    /// The delivery path proper, shared by [`receive`](Self::receive) and the
    /// envelope/hold-back paths (whose arrivals were already journaled).
    fn receive_unjournaled(&mut self, message: CausalMessage<Doc::Op>) -> usize {
        let deliverable = self.buffer.receive(message);
        let count = deliverable.len();
        for m in deliverable {
            self.doc.replay(&m.payload);
            self.ops_applied += 1;
        }
        count
    }

    /// Handles an operation or acknowledgement [`Envelope`]: operations go
    /// through epoch filtering and causal delivery, acknowledgements update
    /// the retransmission state. Returns the number of operations applied.
    ///
    /// Flatten-commitment envelopes are **ignored** here because answering
    /// them needs a voting document; route complete traffic through
    /// [`receive_any`](Self::receive_any) (available when the document
    /// implements [`FlattenDocument`]).
    pub fn receive_envelope(&mut self, envelope: Envelope<Doc::Op>) -> usize {
        match envelope {
            Envelope::Op { epoch, msg } => {
                let span = self.metrics.receive_micros.start();
                self.metrics.ops_received.inc();
                self.journal_received_op(epoch, &msg);
                let applied = self.receive_op(epoch, msg);
                span.stop();
                self.note_holdback_depth();
                applied
            }
            Envelope::OpBatch(batch) => {
                let span = self.metrics.receive_micros.start();
                self.metrics.ops_received.add(batch.entries.len() as u64);
                self.journal_received_batch(&batch);
                let applied = batch
                    .entries
                    .into_iter()
                    .map(|(epoch, msg)| self.receive_op(epoch, msg))
                    .sum();
                span.stop();
                self.note_holdback_depth();
                applied
            }
            Envelope::Ack { from, clock } => {
                if self.journaling() && !self.ack_is_noop(from, &clock) {
                    let clock2 = clock.clone();
                    self.journal_with(|| WalRecord::Received {
                        envelope: Envelope::Ack {
                            from,
                            clock: clock2,
                        },
                    });
                }
                self.record_ack(from, &clock);
                0
            }
            Envelope::FlattenPropose(_)
            | Envelope::FlattenVote(_)
            | Envelope::FlattenDecision(_) => 0,
            // Sync traffic needs a SyncDocument; route it through
            // [`receive_sync`](Self::receive_sync).
            Envelope::SyncRoot(_)
            | Envelope::SyncDigests(_)
            | Envelope::SyncRuns(_)
            | Envelope::SnapshotOffer(_)
            | Envelope::SnapshotChunk(_) => 0,
        }
    }

    /// Epoch-aware operation receipt: future-epoch operations (stamped on a
    /// flattened tree this replica has not committed yet) are held back —
    /// duplicate copies (network duplication, retransmission) of an
    /// already-held message are discarded so the hold-back stays one entry
    /// per message; past-epoch operations are counted as late pre-flatten
    /// traffic and offered to the duplicate-safe buffer, which discards them
    /// as stale.
    fn receive_op(&mut self, epoch: u64, msg: CausalMessage<Doc::Op>) -> usize {
        if epoch > self.flatten.epoch {
            let already_held = self
                .epoch_held
                .iter()
                .any(|(_, held)| held.sender == msg.sender && held.seq() == msg.seq());
            if !already_held {
                self.epoch_held.push((epoch, msg));
            }
            return 0;
        }
        if epoch < self.flatten.epoch {
            self.flatten.late_epoch_ops += 1;
        }
        self.receive_unjournaled(msg)
    }

    /// Number of messages still waiting for causal predecessors (including
    /// operations held back for a future flatten epoch).
    pub fn pending(&self) -> usize {
        self.buffer.pending_len() + self.epoch_held.len()
    }

    /// Content digest, for convergence checks.
    pub fn digest(&self) -> u64 {
        self.doc.digest()
    }

    // ------------------------------------------------------------------
    // Flatten commitment: epoch and counters (any document)
    // ------------------------------------------------------------------

    /// Number of flattens committed at this replica (the epoch every
    /// operation envelope is tagged with).
    pub fn flatten_epoch(&self) -> u64 {
        self.flatten.epoch
    }

    /// `true` while this replica has voted Yes on a proposal whose decision
    /// has not arrived: the subtree is locked against local edits.
    pub fn is_flatten_prepared(&self) -> bool {
        self.flatten.prepared.is_some()
    }

    /// Flattens applied through the commitment protocol.
    pub fn flatten_commits(&self) -> u64 {
        self.flatten.commits
    }

    /// Proposals this replica saw aborted.
    pub fn flatten_aborts(&self) -> u64 {
        self.flatten.aborts
    }

    /// Votes this replica has cast (local proposals included).
    pub fn flatten_votes_cast(&self) -> u64 {
        self.flatten.votes_cast
    }

    /// Commits applied unilaterally by the 3PC termination rule (pre-commit
    /// acknowledged, then the coordinator went silent past the timeout).
    pub fn flatten_unilateral_commits(&self) -> u64 {
        self.flatten.unilateral_commits
    }

    /// Ticks this replica spent locked in the prepared state.
    pub fn flatten_blocked_ticks(&self) -> u64 {
        self.flatten.blocked_ticks
    }

    /// Operations that arrived tagged with an epoch older than this
    /// replica's (late pre-flatten traffic, discarded as duplicates).
    pub fn late_epoch_ops(&self) -> u64 {
        self.flatten.late_epoch_ops
    }

    /// Concludes the coordinator's **own** prepared state once its
    /// [`FlattenCoordinator`](crate::flatten::FlattenCoordinator) reaches an
    /// outcome: applies the flatten on commit, discards the lock on abort.
    /// Returns the number of held-back operations applied as a result.
    pub fn finish_flatten(&mut self, txn: u64, committed: bool) -> usize
    where
        Doc: FlattenDocument,
    {
        if self.flatten.prepared.as_ref().is_none_or(|p| p.txn != txn) {
            return 0;
        }
        self.journal_with(|| WalRecord::Finished {
            txn,
            committed,
            unilateral: false,
        });
        if committed {
            self.commit_prepared()
        } else {
            self.flatten.prepared = None;
            self.flatten.aborts += 1;
            self.flatten.decided.insert(txn, false);
            0
        }
    }

    /// Applies the prepared flatten, bumps the epoch and releases any
    /// held-back future-epoch operations that became applicable.
    fn commit_prepared(&mut self) -> usize
    where
        Doc: FlattenDocument,
    {
        let prepared = self
            .flatten
            .prepared
            .take()
            .expect("commit_prepared requires a prepared proposal");
        self.doc.apply_flatten(&prepared.proposal);
        self.flatten.epoch += 1;
        self.flatten.commits += 1;
        self.flatten.decided.insert(prepared.txn, true);
        let applied = self.drain_epoch_held();
        // The committed epoch is the natural log-compaction point (§4.2.1):
        // checkpoint the flattened replica and truncate the pre-epoch WAL.
        self.checkpoint_via_journal();
        applied
    }

    /// Re-offers held-back operations whose epoch the replica has reached.
    fn drain_epoch_held(&mut self) -> usize
    where
        Doc: FlattenDocument,
    {
        let epoch = self.flatten.epoch;
        let (ready, held): (Vec<_>, Vec<_>) = std::mem::take(&mut self.epoch_held)
            .into_iter()
            .partition(|(e, _)| *e <= epoch);
        self.epoch_held = held;
        let mut applied = 0;
        for (_, msg) in ready {
            // Held-back messages were journaled when they arrived; replaying
            // the log reconstructs the hold-back and re-drains it the same
            // way, so no second record is written here.
            applied += self.receive_unjournaled(msg);
        }
        applied
    }
}

/// What handling one sync envelope produced (see
/// [`Replica::receive_sync`]).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SyncEffect<Op> {
    /// Envelopes to send back to the peer the handled envelope came from.
    pub replies: Vec<Envelope<Op>>,
    /// Cells that changed this replica's store.
    pub cells_integrated: usize,
    /// Held-back operations released (and replayed) by a clock
    /// fast-forward.
    pub ops_released: usize,
    /// `true` when a root comparison found the two states equal (the clock
    /// was fast-forwarded; the session is over).
    pub converged: bool,
    /// `true` when a snapshot bootstrap completed and this replica adopted
    /// the transferred state.
    pub bootstrapped: bool,
}

impl<Op> SyncEffect<Op> {
    fn empty() -> Self {
        SyncEffect {
            replies: Vec::new(),
            cells_integrated: 0,
            ops_released: 0,
            converged: false,
            bootstrapped: false,
        }
    }
}

/// State-based anti-entropy (see [`crate::sync`] for the protocol). Sync
/// traffic is idempotent and therefore **not journaled**: a crash loses at
/// most an in-flight session, which the next session repairs; integrated
/// cells and fast-forwarded clocks become durable together at the next
/// checkpoint.
impl<Doc: SyncDocument> Replica<Doc> {
    /// The opening probe of a sync session: this replica's root digest,
    /// cell count and delivered clock.
    pub fn sync_probe(&self) -> Envelope<Doc::Op> {
        self.sync_root_envelope(true)
    }

    fn sync_root_envelope(&self, reply: bool) -> Envelope<Doc::Op> {
        let (digest, cells) = self.doc.sync_root();
        Envelope::SyncRoot(SyncRoot {
            from: self.site,
            digest,
            cells,
            clock: self.buffer.delivered_clock().clone(),
            reply,
        })
    }

    /// Merges a peer's clock after a state comparison proved the documents
    /// equal, replaying anything the merge unblocks and discarding held-back
    /// traffic the state transfer already covered. Released operations go
    /// through the idempotent [`SyncDocument::sync_replay`]: a prior session
    /// may have integrated their cells ahead of clock coverage.
    fn sync_fast_forward(&mut self, remote: &VectorClock) -> usize {
        let released = self.buffer.fast_forward(remote);
        let count = released.len();
        for m in released {
            self.doc.sync_replay(&m.payload);
            self.ops_applied += 1;
        }
        count
    }

    /// Handles one sync envelope, producing the replies of the digest walk.
    /// Operation/ack/flatten envelopes passed here are delegated to
    /// [`receive_envelope`](Self::receive_envelope) (their applied count is
    /// reported as `ops_released`).
    pub fn receive_sync(
        &mut self,
        envelope: Envelope<Doc::Op>,
        config: &SyncConfig,
    ) -> SyncEffect<Doc::Op> {
        match envelope {
            Envelope::SyncRoot(root) => self.on_sync_root(root, config),
            Envelope::SyncDigests(digests) => {
                self.metrics.sync_digests_rx.inc();
                self.on_sync_digests(digests, config)
            }
            Envelope::SyncRuns(runs) => {
                self.metrics.sync_runs_rx.inc();
                self.on_sync_runs(runs)
            }
            Envelope::SnapshotOffer(offer) => {
                self.bootstrap = Some(BootstrapAssembly {
                    from: offer.from,
                    digest: offer.digest,
                    total_bytes: offer.total_bytes,
                    chunks: offer.chunks,
                    received: BTreeMap::new(),
                });
                SyncEffect::empty()
            }
            Envelope::SnapshotChunk(chunk) => self.on_snapshot_chunk(chunk),
            other => SyncEffect {
                ops_released: self.receive_envelope(other),
                ..SyncEffect::empty()
            },
        }
    }

    fn on_sync_root(&mut self, root: SyncRoot, config: &SyncConfig) -> SyncEffect<Doc::Op> {
        let (my_digest, my_cells) = self.doc.sync_root();
        let mut effect = SyncEffect::empty();
        if root.digest == my_digest && root.cells == my_cells {
            // Equal states: everything the peer delivered is reflected here,
            // so its clock coverage is safe to adopt.
            effect.ops_released = self.sync_fast_forward(&root.clock);
            effect.converged = true;
            if root.reply {
                effect.replies.push(self.sync_root_envelope(false));
            }
            return effect;
        }
        if !root.reply {
            // A mismatched echo: the session's repair phase is (still)
            // running; the next probe will re-compare.
            return effect;
        }
        if my_cells as usize <= config.leaf_cells || root.cells as usize <= config.leaf_cells {
            // One side is small enough that digest rounds cost more than the
            // cells themselves: exchange them outright.
            if let Some((cells, count)) = self.doc.sync_cells(&[], &[]) {
                effect.replies.push(Envelope::SyncRuns(SyncRuns {
                    from: self.site,
                    lo: Vec::new(),
                    hi: Vec::new(),
                    count,
                    cells,
                    reply: true,
                }));
            }
        } else if let Some(ranges) = self.doc.sync_split(&[], &[], config.fanout) {
            effect.replies.push(Envelope::SyncDigests(SyncDigests {
                from: self.site,
                ranges,
            }));
        }
        effect
    }

    fn on_sync_digests(
        &mut self,
        digests: SyncDigests,
        config: &SyncConfig,
    ) -> SyncEffect<Doc::Op> {
        let mut effect = SyncEffect::empty();
        let mut narrowed = Vec::new();
        for range in digests.ranges {
            let Some((my_digest, my_cells)) = self.doc.sync_range(&range.lo, &range.hi) else {
                continue; // malformed bounds: drop the range
            };
            if my_digest == range.digest && my_cells == range.cells {
                continue; // this range already agrees
            }
            if my_cells as usize <= config.leaf_cells || range.cells as usize <= config.leaf_cells {
                if let Some((cells, count)) = self.doc.sync_cells(&range.lo, &range.hi) {
                    effect.replies.push(Envelope::SyncRuns(SyncRuns {
                        from: self.site,
                        lo: range.lo,
                        hi: range.hi,
                        count,
                        cells,
                        reply: true,
                    }));
                }
            } else if let Some(split) = self.doc.sync_split(&range.lo, &range.hi, config.fanout) {
                narrowed.extend(split);
            }
        }
        if !narrowed.is_empty() {
            effect.replies.push(Envelope::SyncDigests(SyncDigests {
                from: self.site,
                ranges: narrowed,
            }));
        }
        effect
    }

    fn on_sync_runs(&mut self, runs: SyncRuns) -> SyncEffect<Doc::Op> {
        let mut effect = SyncEffect::empty();
        // Compute the echo *before* integrating, and echo only the cells the
        // peer provably lacks — absent from its list, or outranked by ours —
        // so a leaf exchange costs bytes proportional to the divergence, not
        // to the range population.
        let mine = if runs.reply {
            self.doc
                .sync_cells_absent_from(&runs.lo, &runs.hi, &runs.cells)
        } else {
            None
        };
        effect.cells_integrated = self.doc.sync_integrate(&runs.cells).unwrap_or(0);
        self.metrics
            .sync_cells_integrated
            .add(effect.cells_integrated as u64);
        if let Some((cells, count)) = mine {
            if count > 0 {
                self.metrics.sync_echo_bytes.add(cells.len() as u64);
                effect.replies.push(Envelope::SyncRuns(SyncRuns {
                    from: self.site,
                    lo: runs.lo,
                    hi: runs.hi,
                    count,
                    cells,
                    reply: false,
                }));
            }
        }
        effect
    }

    fn on_snapshot_chunk(&mut self, chunk: SnapshotChunk) -> SyncEffect<Doc::Op> {
        let mut effect = SyncEffect::empty();
        let Some(assembly) = self.bootstrap.as_mut() else {
            return effect; // chunk without an offer: drop
        };
        if chunk.from != assembly.from || chunk.total != assembly.chunks {
            return effect; // from a different transfer
        }
        assembly.received.insert(chunk.index, chunk.data);
        if (assembly.received.len() as u64) < assembly.chunks {
            return effect;
        }
        let assembly = self.bootstrap.take().expect("assembly just observed");
        let bytes: Vec<u8> = assembly.received.into_values().flatten().collect();
        if bytes.len() as u64 != assembly.total_bytes {
            return effect; // chunk indices lied about coverage
        }
        if self.doc.adopt_bootstrap(&bytes).is_some() && self.doc.digest() == assembly.digest {
            effect.bootstrapped = true;
            effect.cells_integrated = self.doc.sync_root().1 as usize;
        }
        effect
    }

    /// The donor side of the bootstrap path: the whole document encoded as
    /// a [`SnapshotOffer`] followed by its [`SnapshotChunk`]s, for a joining
    /// site to adopt (the joiner then runs a normal sync session to pick up
    /// its causal clock).
    pub fn snapshot_envelopes(&self, config: &SyncConfig) -> Vec<Envelope<Doc::Op>> {
        let bytes = self.doc.encode_bootstrap();
        let chunk_bytes = config.chunk_bytes.max(1);
        let pieces: Vec<&[u8]> = if bytes.is_empty() {
            vec![&[]]
        } else {
            bytes.chunks(chunk_bytes).collect()
        };
        let total = pieces.len() as u64;
        let mut out = Vec::with_capacity(pieces.len() + 1);
        out.push(Envelope::SnapshotOffer(SnapshotOffer {
            from: self.site,
            digest: self.doc.digest(),
            total_bytes: bytes.len() as u64,
            chunks: total,
        }));
        for (index, piece) in pieces.into_iter().enumerate() {
            out.push(Envelope::SnapshotChunk(SnapshotChunk {
                from: self.site,
                index: index as u64,
                total,
                data: piece.to_vec(),
            }));
        }
        out
    }
}

impl<Doc: FlattenDocument> Replica<Doc> {
    /// Handles **any** envelope: operations and acknowledgements as in
    /// [`receive_envelope`](Self::receive_envelope), plus the flatten
    /// commitment messages, which may produce an immediate reply addressed
    /// to the envelope's sender. Returns `(operations applied, reply)`.
    pub fn receive_any(
        &mut self,
        envelope: Envelope<Doc::Op>,
    ) -> (usize, Option<Envelope<Doc::Op>>) {
        match envelope {
            Envelope::FlattenPropose(p) => {
                if self.journaling() {
                    let p2 = p.clone();
                    self.journal_with(|| WalRecord::Received {
                        envelope: Envelope::FlattenPropose(p2),
                    });
                }
                (0, self.on_flatten_propose(p))
            }
            Envelope::FlattenDecision(d) => {
                self.journal_with(|| WalRecord::Received {
                    envelope: Envelope::FlattenDecision(d),
                });
                self.on_flatten_decision(d)
            }
            // Votes carry no participant state: nothing to persist.
            Envelope::FlattenVote(_) => (0, None),
            other => (self.receive_envelope(other), None),
        }
    }

    /// Initiates a flatten proposal at this replica (the coordinator side):
    /// votes locally, locks itself prepared and returns the
    /// [`FlattenPropose`] to distribute (via
    /// [`FlattenCoordinator`](crate::flatten::FlattenCoordinator)). Returns
    /// `None` — counting a local abort — when this replica's own vote is No
    /// or it is already part of another proposal.
    pub fn propose_flatten(
        &mut self,
        subtree: Vec<Side>,
        protocol: CommitProtocol,
    ) -> Option<FlattenPropose> {
        // Journaled before evaluation: the whole method is deterministic in
        // the replica state, so replay re-derives the same vote, lock and
        // transaction id.
        if self.journaling() {
            let subtree2 = subtree.clone();
            self.journal_with(|| WalRecord::Proposed {
                subtree: subtree2,
                protocol,
            });
        }
        if self.flatten.prepared.is_some() {
            return None;
        }
        self.flatten.next_txn += 1;
        // Globally unique as long as site ids and per-site proposal counts
        // fit 32 bits each — far beyond what a run can produce; asserted so
        // a violation cannot silently corrupt the vote/decision dedup maps.
        debug_assert!(
            self.site.as_u64() < (1 << 32) && self.flatten.next_txn < (1 << 32),
            "transaction id packing overflow"
        );
        let txn = (self.site.as_u64() << 32) | self.flatten.next_txn;
        let proposal = FlattenProposal {
            proposer: self.site,
            subtree,
            base_revision: self.doc.base_revision(),
            txn,
        };
        self.flatten.votes_cast += 1;
        if self.doc.flatten_vote(&proposal) != Vote::Yes {
            self.flatten.aborts += 1;
            self.flatten.decided.insert(txn, false);
            return None;
        }
        self.flatten.voted.insert(txn, Vote::Yes);
        self.flatten.prepared = Some(PreparedFlatten {
            txn,
            proposal: proposal.clone(),
            pre_committed: false,
            ticks_waiting: 0,
        });
        Some(FlattenPropose {
            proposal,
            protocol,
            base_clock: self.buffer.delivered_clock().clone(),
            epoch: self.flatten.epoch,
        })
    }

    /// Advances the participant's clock one round while prepared, counting
    /// blocked time. A replica that has acknowledged a 3PC pre-commit and
    /// waited `pre_commit_timeout` ticks without hearing the decision
    /// commits unilaterally (the decision is known to be commit) — the
    /// non-blocking property 2PC lacks. Returns held-back operations applied
    /// by such a commit.
    pub fn flatten_tick(&mut self, pre_commit_timeout: u64) -> usize {
        let Some(prepared) = self.flatten.prepared.as_mut() else {
            return 0;
        };
        self.flatten.blocked_ticks += 1;
        prepared.ticks_waiting += 1;
        if prepared.pre_committed && prepared.ticks_waiting >= pre_commit_timeout {
            let txn = prepared.txn;
            // Ticks are not journaled (they are wall-clock, not input), so
            // the unilateral decision itself must be: replay re-commits from
            // this record instead of re-waiting a timeout it cannot see.
            self.journal_with(|| WalRecord::Finished {
                txn,
                committed: true,
                unilateral: true,
            });
            self.flatten.unilateral_commits += 1;
            return self.commit_prepared();
        }
        0
    }

    fn vote_reply(&self, txn: u64, vote: Vote, stage: VoteStage) -> Option<Envelope<Doc::Op>> {
        Some(Envelope::FlattenVote(FlattenVote {
            txn,
            from: self.site,
            vote,
            stage,
        }))
    }

    /// Participant half of the vote round (see the module docs of
    /// [`crate::flatten`] for the soundness argument behind the
    /// clock-equality test).
    fn on_flatten_propose(&mut self, propose: FlattenPropose) -> Option<Envelope<Doc::Op>> {
        let txn = propose.proposal.txn;
        if self.flatten.decided.contains_key(&txn) {
            // Late duplicate of a concluded transaction: re-acknowledge so a
            // coordinator that missed our ack can finish.
            return self.vote_reply(txn, Vote::Yes, VoteStage::AckDecision);
        }
        if let Some(&vote) = self.flatten.voted.get(&txn) {
            // Retransmitted proposal: repeat the recorded vote.
            return self.vote_reply(txn, vote, VoteStage::Vote);
        }
        let vote = if propose.epoch != self.flatten.epoch {
            Vote::No
        } else if self.flatten.prepared.is_some() {
            // Already locked by a concurrent proposal.
            Vote::No
        } else if self.buffer.delivered_clock() != &propose.base_clock {
            // Concurrent activity the proposer has not seen (or activity the
            // proposer saw that we have not): edits take precedence.
            Vote::No
        } else {
            self.doc.flatten_vote(&propose.proposal)
        };
        if vote == Vote::Yes {
            self.flatten.prepared = Some(PreparedFlatten {
                txn,
                proposal: propose.proposal.clone(),
                pre_committed: false,
                ticks_waiting: 0,
            });
        }
        self.flatten.voted.insert(txn, vote);
        self.flatten.votes_cast += 1;
        self.vote_reply(txn, vote, VoteStage::Vote)
    }

    /// Participant half of the pre-commit and decision rounds, idempotent
    /// under duplication and retransmission.
    fn on_flatten_decision(
        &mut self,
        decision: FlattenDecision,
    ) -> (usize, Option<Envelope<Doc::Op>>) {
        let txn = decision.txn;
        if self.flatten.decided.contains_key(&txn) {
            // Duplicate (or a decision overtaken by a unilateral commit):
            // just re-acknowledge.
            return (0, self.vote_reply(txn, Vote::Yes, VoteStage::AckDecision));
        }
        let prepared_for_txn = self.flatten.prepared.as_ref().is_some_and(|p| p.txn == txn);
        match decision.kind {
            DecisionKind::PreCommit => {
                if prepared_for_txn {
                    let prepared = self.flatten.prepared.as_mut().expect("checked above");
                    prepared.pre_committed = true;
                    prepared.ticks_waiting = 0;
                    (0, self.vote_reply(txn, Vote::Yes, VoteStage::AckPreCommit))
                } else {
                    // Pre-commit for a proposal we voted No on (or never
                    // saw): the coordinator cannot have committed it with
                    // our No vote, so this is stray traffic — ignore.
                    (0, None)
                }
            }
            DecisionKind::Commit => {
                if prepared_for_txn {
                    let applied = self.commit_prepared();
                    (
                        applied,
                        self.vote_reply(txn, Vote::Yes, VoteStage::AckDecision),
                    )
                } else {
                    debug_assert!(
                        false,
                        "commit for a transaction this replica never prepared"
                    );
                    (0, None)
                }
            }
            DecisionKind::Abort => {
                if prepared_for_txn {
                    self.flatten.prepared = None;
                }
                self.flatten.aborts += 1;
                self.flatten.decided.insert(txn, false);
                (0, self.vote_reply(txn, Vote::Yes, VoteStage::AckDecision))
            }
        }
    }
}

impl<Doc: ReplicatedDocument> Replica<Doc> {
    /// Exports the replication-level state for a snapshot (the document has
    /// its own sections).
    fn export_image(&self) -> ReplicaImage<Doc::Op> {
        ReplicaImage {
            site: self.site,
            buffer: self.buffer.export_image(),
            ops_sent: self.ops_sent,
            ops_applied: self.ops_applied,
            epoch_held: self.epoch_held.clone(),
            at_least_once: self.at_least_once.as_ref().map(|a| a.export_image()),
            flatten: self.flatten.export_image(),
        }
    }

    /// Rebuilds a replica around a recovered document and image (the journal
    /// is attached separately by [`recover`](Replica::recover)).
    fn from_image(doc: Doc, image: ReplicaImage<Doc::Op>) -> Self {
        Replica {
            site: image.site,
            doc,
            buffer: CausalBuffer::from_image(image.buffer),
            ops_sent: image.ops_sent,
            ops_applied: image.ops_applied,
            at_least_once: image.at_least_once.map(AtLeastOnce::from_image),
            flatten: FlattenRole::from_image(image.flatten),
            epoch_held: image.epoch_held,
            journal: None,
            batcher: None,
            bootstrap: None,
            metrics: ReplicaMetrics::default(),
        }
    }

    /// Hands the attached store back (e.g. to survive the death of this
    /// replica object in the simulator's crash fault). The store keeps its
    /// blobs and counters; the replica stops journaling.
    pub fn detach_store(&mut self) -> Option<DocStore> {
        self.journal.take().map(|j| j.store)
    }

    /// The attached store, for diagnostics and tests (WAL and snapshot
    /// inspection).
    pub fn store(&self) -> Option<&DocStore> {
        self.journal.as_ref().map(|j| &j.store)
    }

    /// `true` when a store is attached.
    pub fn has_store(&self) -> bool {
        self.journal.is_some()
    }
}

/// Durability: attaching a store, checkpointing and crash recovery. The
/// bounds are those of [`PersistentDocument`] plus serialisable operations;
/// they are only needed here — a replica without a store carries none of
/// this machinery.
impl<Doc> Replica<Doc>
where
    Doc: PersistentDocument + FlattenDocument,
    Doc::Op: Serialize + DeserializeOwned + treedoc_core::WirePayload,
{
    /// Builds the full snapshot of this replica (document sections plus the
    /// replication image).
    fn build_snapshot(replica: &Replica<Doc>) -> Snapshot {
        let mut snapshot = Snapshot::new();
        replica.doc.encode_sections(&mut snapshot);
        snapshot.push_section(
            SECTION_REPLICA,
            persist::to_json_bytes(&replica.export_image()),
        );
        snapshot
    }

    /// Attaches a durable store: writes a baseline snapshot (so the store
    /// can always recover, even before the first WAL record) and starts
    /// journaling every subsequent event — stamped operations, received
    /// envelopes, commitment steps — *before* the replica acts on them.
    /// Committed flattens checkpoint automatically, truncating the pre-epoch
    /// WAL. New records are written in the compact binary format
    /// ([`WalCodec::BinaryV2`]); recovery reads both format generations.
    pub fn attach_store(&mut self, store: DocStore) -> Result<(), StorageError> {
        self.attach_store_with(store, WalCodec::default())
    }

    /// Like [`attach_store`](Self::attach_store) with an explicit WAL record
    /// format — used to produce legacy (JSON v1) logs for upgrade tests and
    /// to keep pre-upgrade tooling readable stores. The choice is transport
    /// policy, not durable state: a plain [`recover`](Self::recover) resumes
    /// in the default (binary) format, so a process that must *stay* on v1
    /// across restarts recovers with [`recover_with`](Self::recover_with).
    pub fn attach_store_with(
        &mut self,
        store: DocStore,
        codec: WalCodec,
    ) -> Result<(), StorageError> {
        let mut journal = Journal {
            store,
            encode: codec.encoder::<Doc::Op>(),
            make_snapshot: Self::build_snapshot,
            replaying: false,
        };
        journal.store.set_telemetry(&self.metrics.telemetry);
        let snapshot = Self::build_snapshot(self);
        journal.store.checkpoint(self.flatten.epoch, &snapshot)?;
        self.journal = Some(journal);
        Ok(())
    }

    /// Writes a checkpoint now (snapshot + WAL truncation). Called on a
    /// cadence by the simulator; committed flattens checkpoint on their own.
    /// No-op without an attached store.
    pub fn persist_checkpoint(&mut self) -> Result<(), StorageError> {
        let Some(mut journal) = self.journal.take() else {
            return Ok(());
        };
        let snapshot = (journal.make_snapshot)(self);
        let result = journal.store.checkpoint(self.flatten.epoch, &snapshot);
        self.journal = Some(journal);
        result
    }

    /// Rebuilds a replica from its durable store: loads the newest snapshot
    /// that passes hash verification, replays the valid WAL tail through the
    /// same handlers that processed the events live, and re-attaches the
    /// store (journaling resumes with the existing log — recovery itself
    /// writes nothing).
    ///
    /// The recovered replica rejoins with its document, vector clock,
    /// pending hold-back, epoch state and unacked send log intact; anything
    /// peers sent while it was down is recovered by the at-least-once
    /// retransmission protocol, exactly as if the messages had been lost in
    /// flight.
    pub fn recover(store: DocStore) -> Result<(Self, RecoveryReport), RecoverError> {
        Self::recover_with(store, WalCodec::default())
    }

    /// Like [`recover`](Self::recover), but journaling resumes writing new
    /// records in the given format (recovery itself reads both format
    /// generations regardless). For operators who attached with
    /// [`WalCodec::JsonV1`] and need the log to stay v1-readable across a
    /// restart.
    pub fn recover_with(
        store: DocStore,
        codec: WalCodec,
    ) -> Result<(Self, RecoveryReport), RecoverError> {
        let recovered = store.recover()?;
        let (_, snapshot) = recovered.snapshot.ok_or(RecoverError::NoSnapshot)?;
        let doc = Doc::decode_sections(&snapshot)?;
        let image: ReplicaImage<Doc::Op> =
            persist::from_json_bytes("replica section", snapshot.require(SECTION_REPLICA)?)?;
        let mut replica = Replica::from_image(doc, image);
        // Journaling resumes in `codec`; records already in the log keep
        // whatever format they were written in — recovery dispatches per
        // record.
        replica.journal = Some(Journal {
            store,
            encode: codec.encoder::<Doc::Op>(),
            make_snapshot: Self::build_snapshot,
            replaying: true,
        });
        let mut replayed = 0usize;
        for entry in &recovered.wal {
            let record: WalRecord<Doc::Op> = persist::decode_wal_record(&entry.payload)?;
            replica.replay_record(record);
            replayed += 1;
        }
        if let Some(journal) = replica.journal.as_mut() {
            journal.replaying = false;
        }
        let report = RecoveryReport {
            snapshot_hit: recovered.stats.snapshot_hit,
            snapshot_epoch: recovered.stats.snapshot_epoch,
            corrupt_snapshots_skipped: recovered.stats.corrupt_snapshots_skipped,
            wal_records_replayed: replayed,
            bytes_recovered: recovered.stats.bytes_recovered,
            torn_tail_bytes: recovered.stats.torn_tail_bytes,
        };
        Ok((replica, report))
    }

    /// Redoes one logged event through the live handlers (journaling is
    /// suppressed by the `replaying` flag while this runs).
    fn replay_record(&mut self, record: WalRecord<Doc::Op>) {
        match record {
            WalRecord::Stamped { epoch, msg } => {
                let clock = self.buffer.record_local(self.site);
                debug_assert_eq!(
                    clock, msg.clock,
                    "WAL replay must reproduce the stamped clock"
                );
                self.ops_sent += 1;
                self.doc.replay_logged_local(&msg.payload);
                if let Some(alo) = self.at_least_once.as_mut() {
                    alo.send_log.insert(msg.seq(), (epoch, msg));
                }
            }
            WalRecord::Received { envelope } => {
                // Replies were already sent pre-crash; a peer that missed one
                // retransmits its request and is re-answered idempotently.
                let _ = self.receive_any(envelope);
            }
            WalRecord::PeersEnabled { peers } => self.enable_at_least_once(&peers),
            WalRecord::Proposed { subtree, protocol } => {
                let _ = self.propose_flatten(subtree, protocol);
            }
            WalRecord::Finished {
                txn,
                committed,
                unilateral,
            } => {
                if unilateral {
                    self.flatten.unilateral_commits += 1;
                }
                let _ = self.finish_flatten(txn, committed);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use treedoc_core::Sdis;

    type Doc = Treedoc<char, Sdis>;

    fn site(n: u64) -> SiteId {
        SiteId::from_u64(n)
    }

    fn replica(n: u64) -> Replica<Doc> {
        Replica::new(site(n), Doc::new(site(n)))
    }

    #[test]
    fn stamp_and_receive_round_trip() {
        let mut a = replica(1);
        let mut b = replica(2);
        let op = a.doc_mut().local_insert(0, 'x').unwrap();
        let msg = a.stamp(op);
        assert_eq!(a.ops_sent(), 1);
        assert_eq!(b.receive(msg), 1);
        assert_eq!(b.doc().to_string(), "x");
        assert_eq!(b.ops_applied(), 1);
        assert_eq!(a.digest(), b.digest());
    }

    /// Runs one complete sync session between `a` and `b`: probe from `a`,
    /// ping-pong every reply until both sides go quiet, then a closing probe
    /// so both clocks fast-forward. Returns (total cells integrated, digest
    /// messages, run messages).
    fn sync_session(a: &mut Replica<Doc>, b: &mut Replica<Doc>) -> (usize, usize, usize) {
        let config = SyncConfig::default();
        let (mut cells, mut digest_msgs, mut run_msgs) = (0, 0, 0);
        for _round in 0..64 {
            // `true` in the queue = envelope addressed to `a`.
            let mut queue: Vec<(bool, Envelope<<Doc as ReplicatedDocument>::Op>)> =
                vec![(false, a.sync_probe())];
            let mut converged = false;
            while let Some((to_a, envelope)) = queue.pop() {
                match &envelope {
                    Envelope::SyncDigests(_) => digest_msgs += 1,
                    Envelope::SyncRuns(_) => run_msgs += 1,
                    _ => {}
                }
                let effect = if to_a {
                    a.receive_sync(envelope, &config)
                } else {
                    b.receive_sync(envelope, &config)
                };
                cells += effect.cells_integrated;
                converged |= effect.converged;
                queue.extend(effect.replies.into_iter().map(|e| (!to_a, e)));
            }
            if converged {
                return (cells, digest_msgs, run_msgs);
            }
        }
        panic!("sync session did not converge");
    }

    #[test]
    fn sync_session_repairs_a_diverged_replica() {
        let mut a = replica(1);
        let mut b = replica(2);
        // Shared prefix both sides applied.
        for i in 0..300 {
            let op = a
                .doc_mut()
                .local_insert(i, char::from(b'a' + (i % 26) as u8))
                .unwrap();
            let msg = a.stamp(op);
            b.receive(msg);
        }
        // A suffix b never saw (e.g. lost on the network).
        for i in 300..340 {
            let op = a
                .doc_mut()
                .local_insert(i, char::from(b'a' + (i % 26) as u8))
                .unwrap();
            let _lost = a.stamp(op);
        }
        assert_ne!(a.digest(), b.digest());
        let (cells, digest_msgs, run_msgs) = sync_session(&mut a, &mut b);
        assert_eq!(a.digest(), b.digest(), "states converged");
        assert_eq!(a.doc().to_string(), b.doc().to_string());
        assert!(cells >= 40, "the 40 missing cells crossed ({cells})");
        assert!(cells < 340, "the shared prefix did not cross ({cells})");
        assert!(digest_msgs > 0 && run_msgs > 0);
        // The fast-forward lets b discard late copies of the synced ops as
        // duplicates instead of replaying them (which would panic).
        assert_eq!(
            b.clock().get(site(1)),
            a.clock().get(site(1)),
            "b's clock covers everything the sync transferred"
        );
    }

    #[test]
    fn sync_session_between_equal_replicas_only_probes() {
        let mut a = replica(1);
        let mut b = replica(2);
        for i in 0..100 {
            let op = a.doc_mut().local_insert(i, 'x').unwrap();
            let msg = a.stamp(op);
            b.receive(msg);
        }
        let (cells, digest_msgs, run_msgs) = sync_session(&mut a, &mut b);
        assert_eq!((cells, digest_msgs, run_msgs), (0, 0, 0));
    }

    #[test]
    fn sync_handles_concurrent_divergence_on_both_sides() {
        let mut a = replica(1);
        let mut b = replica(2);
        for i in 0..200 {
            let op = a.doc_mut().local_insert(i, 'x').unwrap();
            let msg = a.stamp(op);
            b.receive(msg);
        }
        // Both sides edit concurrently; nothing is exchanged.
        for i in 0..25 {
            let op = a.doc_mut().local_insert(i * 3, 'A').unwrap();
            a.stamp(op);
            let op = b.doc_mut().local_insert(i * 5, 'B').unwrap();
            b.stamp(op);
        }
        // Deletes diverge too (tombstones must cross).
        let op = a.doc_mut().local_delete(10).unwrap();
        a.stamp(op);
        let (cells, _digests, _runs) = sync_session(&mut a, &mut b);
        assert_eq!(a.digest(), b.digest(), "both directions repaired");
        assert_eq!(a.doc().to_string(), b.doc().to_string());
        assert!(cells >= 51, "both sides' edits crossed ({cells})");
    }

    #[test]
    fn snapshot_bootstrap_brings_up_an_empty_joiner() {
        let mut donor = replica(1);
        for i in 0..500 {
            let op = donor
                .doc_mut()
                .local_insert(i, char::from(b'a' + (i % 26) as u8))
                .unwrap();
            donor.stamp(op);
        }
        let op = donor.doc_mut().local_delete(123).unwrap();
        donor.stamp(op);

        let mut joiner = replica(9);
        let config = SyncConfig {
            chunk_bytes: 512, // force several chunks
            ..SyncConfig::default()
        };
        let envelopes = donor.snapshot_envelopes(&config);
        assert!(envelopes.len() > 3, "offer plus several chunks");
        let mut bootstrapped = false;
        for envelope in envelopes {
            bootstrapped |= joiner.receive_sync(envelope, &config).bootstrapped;
        }
        assert!(bootstrapped);
        assert_eq!(joiner.digest(), donor.digest());
        assert_eq!(joiner.doc().to_string(), donor.doc().to_string());
        assert_eq!(joiner.doc().site(), site(9), "joiner keeps its identity");

        // A closing sync round transfers the causal clock, so late copies of
        // the donor's ops are recognised as duplicates.
        let (cells, _d, _r) = sync_session(&mut donor, &mut joiner);
        assert_eq!(cells, 0, "states were already equal");
        assert_eq!(joiner.clock().get(site(1)), donor.clock().get(site(1)));

        // The joiner can edit immediately and the donor applies it.
        let op = joiner.doc_mut().local_insert(0, '!').unwrap();
        let msg = joiner.stamp(op);
        donor.receive(msg);
        assert_eq!(joiner.digest(), donor.digest());
    }

    #[test]
    fn retransmit_window_caps_each_batch_and_still_converges() {
        let mut a = replica(1);
        let mut b = replica(2);
        a.enable_at_least_once(&[site(2)]);
        a.set_retransmit_window(Some(8));
        let mut messages = Vec::new();
        for i in 0..30 {
            let op = a.doc_mut().local_insert(i, 'x').unwrap();
            messages.push(a.stamp(op));
        }
        // Every original transmission was lost; retransmission rounds are
        // capped at 8 messages each, advanced by cumulative acks.
        let mut rounds = 0;
        while a.has_unacked() {
            rounds += 1;
            assert!(rounds <= 10, "window must advance via acks");
            if let Some(Envelope::OpBatch(batch)) = a.unacked_batch_for(site(2)) {
                assert!(batch.len() <= 8, "cap respected, got {}", batch.len());
                b.receive_envelope(Envelope::OpBatch(batch));
            }
            if let Envelope::Ack { from, clock } = b.ack_envelope() {
                a.record_ack(from, &clock);
            }
        }
        assert_eq!(rounds, 4, "30 messages in capped rounds of 8");
        assert_eq!(a.digest(), b.digest());
        assert_eq!(a.retransmissions(), 30, "every op re-shipped exactly once");
    }

    #[test]
    fn causally_dependent_messages_wait_for_their_predecessors() {
        let mut a = replica(1);
        let mut b = replica(2);
        // a inserts then deletes the same atom: the delete depends on the
        // insert.
        let ins = a.doc_mut().local_insert(0, 'x').unwrap();
        let m_ins = a.stamp(ins);
        let del = a.doc_mut().local_delete(0).unwrap();
        let m_del = a.stamp(del);
        // b receives them out of order: the delete must be held back.
        assert_eq!(b.receive(m_del), 0);
        assert_eq!(b.pending(), 1);
        assert_eq!(b.receive(m_ins), 2);
        assert_eq!(b.pending(), 0);
        assert!(b.doc().is_empty());
        assert_eq!(a.digest(), b.digest());
    }

    #[test]
    fn three_replicas_converge_with_concurrent_edits() {
        let mut replicas = [replica(1), replica(2), replica(3)];
        // Each replica types its own text concurrently.
        let mut messages = Vec::new();
        for (i, r) in replicas.iter_mut().enumerate() {
            for (j, c) in "abc".chars().enumerate() {
                let op = r
                    .doc_mut()
                    .local_insert(j, char::from(b'a' + (i as u8 * 3) + j as u8))
                    .unwrap();
                let _ = c;
                messages.push((r.site(), r.stamp(op)));
            }
        }
        // Deliver everything to everyone else, in an arbitrary (but causal
        // per sender, since we kept emission order) order.
        for (sender, msg) in &messages {
            for r in replicas.iter_mut() {
                if r.site() != *sender {
                    r.receive(msg.clone());
                }
            }
        }
        let d0 = replicas[0].digest();
        assert!(replicas.iter().all(|r| r.digest() == d0));
        assert_eq!(replicas[0].doc().len(), 9);
    }

    #[test]
    fn redelivered_messages_are_applied_once() {
        let mut a = replica(1);
        let mut b = replica(2);
        let op = a.doc_mut().local_insert(0, 'x').unwrap();
        let msg = a.stamp(op);
        assert_eq!(b.receive(msg.clone()), 1);
        assert_eq!(b.receive(msg.clone()), 0, "duplicate must not re-apply");
        assert_eq!(b.receive(msg), 0);
        assert_eq!(b.ops_applied(), 1);
        assert_eq!(b.duplicates_discarded(), 2);
        assert_eq!(b.pending(), 0, "duplicates must not linger in pending");
        assert_eq!(b.doc().to_string(), "x");
    }

    #[test]
    fn stamp_batched_flushes_on_the_op_count_policy() {
        let mut a = replica(1);
        let mut b = replica(2);
        a.enable_batching(BatchPolicy {
            max_ops: 3,
            max_bytes: usize::MAX,
        });
        let mut flushed = Vec::new();
        for k in 0..7 {
            let op = a
                .doc_mut()
                .local_insert(k, char::from(b'a' + k as u8))
                .unwrap();
            if let Some(env) = a.stamp_batched(op) {
                flushed.push(env);
            }
        }
        assert_eq!(flushed.len(), 2, "two full batches of three");
        assert_eq!(a.pending_batch_len(), 1, "one op still buffering");
        flushed.extend(a.flush_batch());
        assert_eq!(a.batches_flushed(), 3);
        assert!(a.flush_batch().is_none(), "nothing left to flush");

        for env in flushed {
            match &env {
                Envelope::OpBatch(batch) => assert!(!batch.is_empty()),
                other => panic!("expected a batch, got {other:?}"),
            }
            b.receive_envelope(env);
        }
        assert_eq!(b.doc().to_string(), "abcdefg");
        assert_eq!(a.digest(), b.digest());
    }

    #[test]
    fn stamp_batched_flushes_on_the_byte_policy() {
        let mut a = replica(1);
        a.enable_batching(BatchPolicy {
            max_ops: usize::MAX,
            max_bytes: 40,
        });
        let mut flushes = 0;
        for k in 0..20 {
            let op = a.doc_mut().local_insert(k, 'x').unwrap();
            if a.stamp_batched(op).is_some() {
                flushes += 1;
            }
        }
        assert!(
            flushes >= 2,
            "40-byte batches must flush well before 20 ops"
        );
        assert!(
            a.pending_batch_len() < 20,
            "the byte policy kept batches small"
        );
    }

    #[test]
    fn without_batching_stamp_batched_degenerates_to_single_envelopes() {
        let mut a = replica(1);
        let op = a.doc_mut().local_insert(0, 'x').unwrap();
        let env = a.stamp_batched(op).expect("flushes immediately");
        assert!(matches!(env, Envelope::Op { .. }));
        assert_eq!(a.pending_batch_len(), 0);
    }

    #[test]
    fn duplicate_batches_are_discarded_per_entry() {
        let mut a = replica(1);
        let mut b = replica(2);
        a.enable_at_least_once(&[site(1), site(2)]);
        a.enable_batching(BatchPolicy {
            max_ops: 4,
            max_bytes: usize::MAX,
        });
        for k in 0..4 {
            let op = a
                .doc_mut()
                .local_insert(k, char::from(b'a' + k as u8))
                .unwrap();
            let _ = a.stamp_batched(op);
        }
        let batch = a.flush_batch();
        assert!(batch.is_none(), "policy already flushed at 4 ops");
        // Reconstruct the same window as a retransmission batch, twice.
        let env = a.unacked_batch_for(site(2)).expect("whole window unacked");
        assert_eq!(b.receive_envelope(env.clone()), 4);
        assert_eq!(
            b.receive_envelope(env),
            0,
            "duplicate batch re-applies nothing"
        );
        assert_eq!(b.duplicates_discarded(), 4);
        assert_eq!(b.doc().to_string(), "abcd");
    }

    #[test]
    fn unacked_batch_coalesces_the_window_and_counts_retransmissions() {
        let sites = [site(1), site(2)];
        let mut a = replica(1);
        let mut b = replica(2);
        a.enable_at_least_once(&sites);
        for k in 0..5 {
            let op = a
                .doc_mut()
                .local_insert(k, char::from(b'a' + k as u8))
                .unwrap();
            let _ = a.stamp(op); // every first transmission is "lost"
        }
        let env = a.unacked_batch_for(site(2)).expect("five unacked");
        assert_eq!(a.retransmissions(), 5);
        assert_eq!(b.receive_envelope(env), 5);
        assert_eq!(b.doc().to_string(), "abcde");

        let ack = b.ack_envelope();
        a.receive_envelope(ack);
        assert!(a.unacked_batch_for(site(2)).is_none(), "fully acked");
    }

    #[test]
    fn at_least_once_retransmits_until_acked() {
        let sites = [site(1), site(2)];
        let mut a = replica(1);
        let mut b = replica(2);
        a.enable_at_least_once(&sites);

        let op = a.doc_mut().local_insert(0, 'x').unwrap();
        let _lost = a.stamp(op);
        assert!(a.has_unacked());

        // The first transmission is "lost": b never sees it. A later
        // retransmission round recovers it.
        let again = a.unacked_for(site(2));
        assert_eq!(again.len(), 1);
        assert_eq!(a.retransmissions(), 1);
        for m in again {
            b.receive(m);
        }
        assert_eq!(b.doc().to_string(), "x");

        // b acknowledges; a prunes its log and stops retransmitting.
        let ack = b.ack_envelope();
        assert_eq!(a.receive_envelope(ack), 0);
        assert!(!a.has_unacked());
        assert!(a.unacked_for(site(2)).is_empty());
        assert_eq!(a.retransmissions(), 1);
    }

    #[test]
    fn acks_are_cumulative_and_per_peer() {
        let sites = [site(1), site(2), site(3)];
        let mut a = replica(1);
        let mut b = replica(2);
        let mut c = replica(3);
        a.enable_at_least_once(&sites);

        let mut msgs = Vec::new();
        for ch in ['x', 'y', 'z'] {
            let len = a.doc().len();
            let op = a.doc_mut().local_insert(len, ch).unwrap();
            msgs.push(a.stamp(op));
        }
        // b gets everything, c only the first message.
        for m in &msgs {
            b.receive(m.clone());
        }
        c.receive(msgs[0].clone());

        a.receive_envelope(b.ack_envelope());
        a.receive_envelope(c.ack_envelope());
        assert!(a.has_unacked(), "c still misses two messages");
        assert!(a.unacked_for(site(2)).is_empty());
        let for_c = a.unacked_for(site(3));
        assert_eq!(for_c.len(), 2);
        for m in for_c {
            c.receive(m);
        }
        a.receive_envelope(c.ack_envelope());
        assert!(!a.has_unacked());
        assert_eq!(a.digest(), c.digest());
    }

    #[test]
    fn re_enabling_at_least_once_keeps_received_acks() {
        // Regression: a second `enable_at_least_once` call (e.g. with a
        // grown peer set) used to rebuild the ack table from zero, so
        // everything already acknowledged was retransmitted again.
        let mut a = replica(1);
        let mut b = replica(2);
        a.enable_at_least_once(&[site(1), site(2), site(3)]);
        // b delivers and acks; c stays silent, keeping the entry in the log.
        let op = a.doc_mut().local_insert(0, 'x').unwrap();
        let msg = a.stamp(op);
        b.receive(msg);
        a.receive_envelope(b.ack_envelope());
        assert!(a.has_unacked(), "c has not acked yet");

        // Site 4 joins: re-enable with the grown peer set.
        a.enable_at_least_once(&[site(1), site(2), site(3), site(4)]);
        assert!(
            a.unacked_for(site(2)).is_empty(),
            "b's earlier ack must survive the re-enable (no spurious \
             retransmission of already-acked entries)"
        );
        assert_eq!(
            a.unacked_for(site(3)).len(),
            1,
            "the still-silent peer keeps its backlog"
        );
        assert_eq!(
            a.unacked_for(site(4)).len(),
            1,
            "the new peer is tracked from zero and served what is still logged"
        );
    }

    #[test]
    fn re_enabling_is_idempotent_for_the_same_peer_set() {
        let sites = [site(1), site(2)];
        let mut a = replica(1);
        let mut b = replica(2);
        a.enable_at_least_once(&sites);
        let op = a.doc_mut().local_insert(0, 'x').unwrap();
        b.receive(a.stamp(op));
        a.receive_envelope(b.ack_envelope());
        a.enable_at_least_once(&sites);
        assert!(!a.has_unacked(), "re-enabling must not resurrect the log");
        assert!(a.unacked_for(site(2)).is_empty());
    }

    #[test]
    fn future_epoch_ops_are_held_until_the_local_flatten_commits() {
        use crate::flatten::{DecisionKind, FlattenDecision};
        use treedoc_commit::CommitProtocol;

        // a and b hold the same two-atom document.
        let mut a = replica(1);
        let mut b = replica(2);
        for (i, ch) in ['x', 'y'].into_iter().enumerate() {
            let op = a.doc_mut().local_insert(i, ch).unwrap();
            b.receive(a.stamp(op));
        }
        let ack = Envelope::Ack {
            from: b.site(),
            clock: b.clock().clone(),
        };
        a.receive_envelope(ack);

        // a proposes, b votes Yes; a commits locally, b has not yet.
        let propose = a
            .propose_flatten(Vec::new(), CommitProtocol::TwoPhase)
            .expect("quiescent proposer votes Yes");
        let txn = propose.proposal.txn;
        let (_, reply) = b.receive_any(Envelope::FlattenPropose(propose));
        assert!(matches!(reply, Some(Envelope::FlattenVote(_))));
        assert!(b.is_flatten_prepared());
        a.finish_flatten(txn, true);
        assert_eq!(a.flatten_epoch(), 1);

        // a edits the flattened tree and broadcasts: b must hold the op back
        // (applying it on the unflattened tree would diverge).
        let op = a.doc_mut().local_insert(0, 'z').unwrap();
        let env = a.stamp_envelope(op);
        assert_eq!(b.receive_envelope(env), 0);
        assert_eq!(b.pending(), 1, "future-epoch op is held, not applied");

        // The decision arrives: b flattens, drains the held op and matches a.
        let (applied, reply) = b.receive_any(Envelope::FlattenDecision(FlattenDecision {
            txn,
            kind: DecisionKind::Commit,
        }));
        assert_eq!(applied, 1, "the held op is applied after the flatten");
        assert!(matches!(reply, Some(Envelope::FlattenVote(_))));
        assert_eq!(b.flatten_epoch(), 1);
        assert_eq!(b.pending(), 0);
        assert_eq!(a.doc().to_string(), "zxy");
        assert_eq!(a.digest(), b.digest());
    }

    #[test]
    fn pre_flatten_ops_arriving_late_are_detected_and_discarded() {
        use crate::flatten::{DecisionKind, FlattenDecision};
        use treedoc_commit::CommitProtocol;

        let sites = [site(1), site(2)];
        let mut a = replica(1);
        let mut b = replica(2);
        a.enable_at_least_once(&sites);

        // a's op reaches b (so clocks agree) but b's ack never reaches a:
        // the op stays in a's send log across the flatten.
        let op = a.doc_mut().local_insert(0, 'x').unwrap();
        let env = a.stamp_envelope(op);
        b.receive_envelope(env);

        let propose = a
            .propose_flatten(Vec::new(), CommitProtocol::TwoPhase)
            .expect("proposer votes Yes");
        let txn = propose.proposal.txn;
        let (_, _) = b.receive_any(Envelope::FlattenPropose(propose));
        a.finish_flatten(txn, true);
        let _ = b.receive_any(Envelope::FlattenDecision(FlattenDecision {
            txn,
            kind: DecisionKind::Commit,
        }));

        // The lost-ack retransmission arrives after both flattened: it is
        // tagged with the pre-flatten epoch, detected, and discarded as the
        // duplicate it must be.
        let retransmitted = a.unacked_envelopes_for(site(2));
        assert_eq!(retransmitted.len(), 1);
        assert!(matches!(retransmitted[0], Envelope::Op { epoch: 0, .. }));
        for env in retransmitted {
            assert_eq!(b.receive_envelope(env), 0);
        }
        assert_eq!(b.late_epoch_ops(), 1);
        assert_eq!(b.pending(), 0);
        assert_eq!(a.digest(), b.digest());
    }

    #[test]
    fn participant_votes_no_on_unequal_clocks() {
        use crate::flatten::FlattenVote;
        use treedoc_commit::{CommitProtocol, Vote};

        let mut a = replica(1);
        let mut b = replica(2);
        let op = a.doc_mut().local_insert(0, 'x').unwrap();
        b.receive(a.stamp(op));
        // b edits concurrently: its clock exceeds a's proposal base clock.
        let op = b.doc_mut().local_insert(1, 'y').unwrap();
        let _ = b.stamp(op);

        let propose = a
            .propose_flatten(Vec::new(), CommitProtocol::TwoPhase)
            .expect("proposer votes Yes");
        let (_, reply) = b.receive_any(Envelope::FlattenPropose(propose));
        let Some(Envelope::FlattenVote(FlattenVote { vote, .. })) = reply else {
            panic!("expected a vote reply, got {reply:?}");
        };
        assert_eq!(vote, Vote::No, "edits take precedence over clean-up");
        assert!(!b.is_flatten_prepared());
    }

    #[test]
    fn recovered_replica_matches_the_crashed_one() {
        let sites = [site(1), site(2)];
        let mut a = replica(1);
        let mut b = replica(2);
        a.enable_at_least_once(&sites);
        a.attach_store(DocStore::in_memory()).unwrap();

        // Mixed traffic: local edits, remote ops, an ack.
        for (i, ch) in ['x', 'y', 'z'].into_iter().enumerate() {
            let op = a.doc_mut().local_insert(i, ch).unwrap();
            b.receive(a.stamp(op));
        }
        let op = b.doc_mut().local_insert(0, 'r').unwrap();
        a.receive(b.stamp(op));
        a.receive_envelope(b.ack_envelope());

        let digest = a.digest();
        let clock = a.clock().clone();
        let unacked = a.unacked_for(site(2)).len();
        let retrans = a.retransmissions();

        // Crash: the replica object dies, the store survives.
        let store = a.detach_store().unwrap();
        drop(a);
        let (mut a2, report) = Replica::<Doc>::recover(store).unwrap();
        assert!(report.snapshot_hit);
        assert!(report.wal_records_replayed >= 5, "{report:?}");
        assert_eq!(a2.digest(), digest, "document recovered");
        assert_eq!(a2.clock(), &clock, "vector clock recovered");
        assert_eq!(a2.site(), site(1));
        assert_eq!(
            a2.unacked_for(site(2)).len(),
            unacked,
            "unacked send log recovered"
        );
        assert_eq!(a2.retransmissions(), retrans + unacked as u64);

        // The recovered replica keeps working: edit, exchange, converge.
        let op = a2.doc_mut().local_insert(0, 'n').unwrap();
        b.receive(a2.stamp(op));
        assert_eq!(a2.digest(), b.digest());
    }

    #[test]
    fn recovery_replays_the_wal_tail_on_top_of_a_checkpoint() {
        let mut a = replica(1);
        a.attach_store(DocStore::in_memory()).unwrap();
        for i in 0..4 {
            let op = a
                .doc_mut()
                .local_insert(i, char::from(b'a' + i as u8))
                .unwrap();
            let _ = a.stamp(op);
        }
        a.persist_checkpoint().unwrap();
        assert_eq!(
            a.store().unwrap().wal_len().unwrap(),
            0,
            "checkpoint truncates"
        );
        for i in 0..3 {
            let op = a
                .doc_mut()
                .local_insert(0, char::from(b'p' + i as u8))
                .unwrap();
            let _ = a.stamp(op);
        }
        let digest = a.digest();
        let store = a.detach_store().unwrap();
        let (a2, report) = Replica::<Doc>::recover(store).unwrap();
        assert_eq!(report.wal_records_replayed, 3, "only the tail replays");
        assert_eq!(a2.digest(), digest);
    }

    #[test]
    fn recovered_holdback_queue_still_drains() {
        let mut a = replica(1);
        let mut b = replica(2);
        b.attach_store(DocStore::in_memory()).unwrap();
        let ins = a.doc_mut().local_insert(0, 'x').unwrap();
        let m_ins = a.stamp(ins);
        let del = a.doc_mut().local_delete(0).unwrap();
        let m_del = a.stamp(del);
        // Only the dependent delete arrives before the crash.
        assert_eq!(b.receive(m_del), 0);
        assert_eq!(b.pending(), 1);

        let store = b.detach_store().unwrap();
        let (mut b2, _) = Replica::<Doc>::recover(store).unwrap();
        assert_eq!(b2.pending(), 1, "hold-back survived the crash");
        assert_eq!(b2.receive(m_ins), 2, "the missing prefix drains the chain");
        assert!(b2.doc().is_empty());
        assert_eq!(a.digest(), b2.digest());
    }

    #[test]
    fn recovering_an_unused_store_is_a_typed_error() {
        match Replica::<Doc>::recover(DocStore::in_memory()) {
            Err(RecoverError::NoSnapshot) => {}
            other => panic!("expected NoSnapshot, got {other:?}"),
        }
    }

    #[test]
    fn committed_flatten_checkpoints_and_truncates_the_wal() {
        use treedoc_commit::CommitProtocol;

        let mut a = replica(1);
        let mut b = replica(2);
        a.attach_store(DocStore::in_memory()).unwrap();
        b.attach_store(DocStore::in_memory()).unwrap();
        for (i, ch) in ['x', 'y'].into_iter().enumerate() {
            let op = a.doc_mut().local_insert(i, ch).unwrap();
            b.receive(a.stamp(op));
        }
        let ack = Envelope::Ack {
            from: b.site(),
            clock: b.clock().clone(),
        };
        a.receive_envelope(ack);
        assert!(a.store().unwrap().wal_len().unwrap() > 0, "edits journaled");

        let propose = a
            .propose_flatten(Vec::new(), CommitProtocol::TwoPhase)
            .expect("quiescent proposer votes Yes");
        let txn = propose.proposal.txn;
        let _ = b.receive_any(Envelope::FlattenPropose(propose));
        a.finish_flatten(txn, true);
        let _ = b.receive_any(Envelope::FlattenDecision(FlattenDecision {
            txn,
            kind: DecisionKind::Commit,
        }));

        for r in [&a, &b] {
            assert_eq!(r.flatten_epoch(), 1);
            let store = r.store().unwrap();
            assert!(
                store.stats().snapshots_written >= 2,
                "attach baseline + flatten-commit checkpoint"
            );
            assert!(
                store.stats().wal_truncations >= 1,
                "the flatten commit retired the pre-epoch records"
            );
            let replayed = store.wal_entries().unwrap();
            assert!(
                replayed.entries.iter().all(|e| e.epoch >= 1),
                "post-compaction WAL holds only post-epoch records: {replayed:?}"
            );
        }

        // Post-flatten edits journal into the truncated log and recover.
        let op = a.doc_mut().local_insert(0, 'n').unwrap();
        b.receive(a.stamp(op));
        let digest = b.digest();
        let store = b.detach_store().unwrap();
        let (b2, report) = Replica::<Doc>::recover(store).unwrap();
        assert_eq!(
            report.snapshot_epoch, 1,
            "recovered from the epoch snapshot"
        );
        assert_eq!(b2.digest(), digest);
        assert_eq!(b2.flatten_epoch(), 1);
    }

    #[test]
    #[should_panic(expected = "not a registered at-least-once peer")]
    fn retransmitting_to_an_unregistered_peer_is_rejected() {
        // The send log is pruned by registered peers' acks only, so it could
        // already be missing what an unregistered peer needs — asking for
        // such a peer's backlog must fail loudly, not return a partial log.
        let mut a = replica(1);
        a.enable_at_least_once(&[site(1), site(2)]);
        let op = a.doc_mut().local_insert(0, 'x').unwrap();
        let _ = a.stamp(op);
        let _ = a.unacked_for(site(3));
    }

    #[test]
    fn acks_from_unregistered_sites_do_not_unblock_pruning() {
        let mut a = replica(1);
        let mut b = replica(2);
        let mut c = replica(3);
        a.enable_at_least_once(&[site(1), site(2), site(3)]);
        let op = a.doc_mut().local_insert(0, 'x').unwrap();
        let msg = a.stamp(op);
        b.receive(msg.clone());
        c.receive(msg);

        // An ack from an unknown site 9 must not shrink the prune floor or
        // widen the peer set.
        let mut stranger = VectorClock::new();
        stranger.observe(site(1), 1);
        a.record_ack(site(9), &stranger);
        assert!(a.has_unacked(), "registered peers have not acked yet");

        a.receive_envelope(b.ack_envelope());
        assert!(a.has_unacked(), "site 3 is still missing its ack");
        a.receive_envelope(c.ack_envelope());
        assert!(!a.has_unacked());
    }

    #[test]
    fn lost_then_retransmitted_with_duplicates_converges() {
        let sites = [site(1), site(2)];
        let mut a = replica(1);
        let mut b = replica(2);
        a.enable_at_least_once(&sites);

        let mut msgs = Vec::new();
        for k in 0..5u8 {
            let len = a.doc().len();
            let op = a.doc_mut().local_insert(len, char::from(b'a' + k)).unwrap();
            msgs.push(a.stamp(op));
        }
        // Only messages 0 and 3 arrive, 3 twice (a network duplicate).
        b.receive(msgs[0].clone());
        b.receive(msgs[3].clone());
        b.receive(msgs[3].clone());
        assert_eq!(b.pending(), 1);
        a.receive_envelope(b.ack_envelope());

        // Retransmit whatever b has not acknowledged (messages 2..=5 by
        // cumulative ack, including the buffered one, which b discards).
        let again = a.unacked_for(site(2));
        assert_eq!(again.len(), 4);
        for m in again {
            b.receive(m);
        }
        a.receive_envelope(b.ack_envelope());
        assert!(!a.has_unacked());
        assert_eq!(b.pending(), 0);
        assert_eq!(b.doc().to_string(), "abcde");
        assert!(b.duplicates_discarded() >= 2);
    }
}
