//! A deterministic discrete-event network simulator.
//!
//! The paper evaluates Treedoc by replaying serialised edit histories; to
//! exercise the *distributed* behaviour (concurrent edits, delayed and
//! reordered delivery, partitions, the flatten commitment protocol) this
//! crate provides a small discrete-event simulator: messages are enqueued
//! with a delivery time drawn from a per-link latency model, and the
//! simulation advances by repeatedly delivering the earliest message.
//! Everything is seeded, so runs are reproducible.

use std::cmp::Reverse;
use std::collections::{BTreeSet, BinaryHeap};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use treedoc_core::SiteId;

/// Latency model of a link (or of the whole network when no per-link
/// override is registered).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkConfig {
    /// Minimum one-way latency in simulated milliseconds.
    pub min_latency_ms: u64,
    /// Maximum one-way latency in simulated milliseconds.
    pub max_latency_ms: u64,
}

impl Default for LinkConfig {
    fn default() -> Self {
        LinkConfig {
            min_latency_ms: 5,
            max_latency_ms: 50,
        }
    }
}

impl LinkConfig {
    /// A fixed-latency link.
    pub fn fixed(latency_ms: u64) -> Self {
        LinkConfig {
            min_latency_ms: latency_ms,
            max_latency_ms: latency_ms,
        }
    }
}

/// A message in flight.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NetworkEvent<T> {
    /// Simulated delivery time in milliseconds.
    pub deliver_at: u64,
    /// Sending site.
    pub from: SiteId,
    /// Receiving site.
    pub to: SiteId,
    /// The payload.
    pub payload: T,
    /// Monotonic sequence number used to break ties deterministically.
    seq: u64,
}

impl<T: Eq> Ord for NetworkEvent<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.deliver_at, self.seq).cmp(&(other.deliver_at, other.seq))
    }
}

impl<T: Eq> PartialOrd for NetworkEvent<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// The simulated network.
#[derive(Debug)]
pub struct SimNetwork<T> {
    now_ms: u64,
    next_seq: u64,
    default_link: LinkConfig,
    in_flight: BinaryHeap<Reverse<NetworkEvent<T>>>,
    /// Ordered pairs `(from, to)` that are currently partitioned: messages
    /// between them are queued but not delivered until the partition heals.
    partitions: BTreeSet<(SiteId, SiteId)>,
    held: Vec<NetworkEvent<T>>,
    rng: StdRng,
    delivered_count: u64,
    sent_count: u64,
}

impl<T: Eq> SimNetwork<T> {
    /// Creates a network with the given default link model and RNG seed.
    pub fn new(default_link: LinkConfig, seed: u64) -> Self {
        SimNetwork {
            now_ms: 0,
            next_seq: 0,
            default_link,
            in_flight: BinaryHeap::new(),
            partitions: BTreeSet::new(),
            held: Vec::new(),
            rng: StdRng::seed_from_u64(seed),
            delivered_count: 0,
            sent_count: 0,
        }
    }

    /// Current simulated time in milliseconds.
    pub fn now_ms(&self) -> u64 {
        self.now_ms
    }

    /// Number of messages handed to the network so far.
    pub fn sent_count(&self) -> u64 {
        self.sent_count
    }

    /// Number of messages delivered so far.
    pub fn delivered_count(&self) -> u64 {
        self.delivered_count
    }

    /// Number of messages still in flight (including ones blocked by a
    /// partition).
    pub fn in_flight(&self) -> usize {
        self.in_flight.len() + self.held.len()
    }

    /// Sends `payload` from `from` to `to`; it will be delivered after a
    /// link-dependent delay (unless a partition holds it back longer).
    pub fn send(&mut self, from: SiteId, to: SiteId, payload: T) {
        let latency = self.sample_latency();
        let event = NetworkEvent {
            deliver_at: self.now_ms + latency,
            from,
            to,
            payload,
            seq: self.next_seq,
        };
        self.next_seq += 1;
        self.sent_count += 1;
        if self.partitions.contains(&(from, to)) {
            self.held.push(event);
        } else {
            self.in_flight.push(Reverse(event));
        }
    }

    /// Broadcasts `payload` from `from` to every site in `recipients` except
    /// the sender itself.
    pub fn broadcast(&mut self, from: SiteId, recipients: &[SiteId], payload: T)
    where
        T: Clone,
    {
        for &to in recipients {
            if to != from {
                self.send(from, to, payload.clone());
            }
        }
    }

    /// Cuts the directed link `from → to`.
    pub fn partition(&mut self, from: SiteId, to: SiteId) {
        self.partitions.insert((from, to));
    }

    /// Cuts both directions between two sites.
    pub fn partition_both(&mut self, a: SiteId, b: SiteId) {
        self.partition(a, b);
        self.partition(b, a);
    }

    /// Heals the directed link `from → to`; messages held during the
    /// partition are released (with fresh latency from the current time).
    pub fn heal(&mut self, from: SiteId, to: SiteId) {
        self.partitions.remove(&(from, to));
        let (release, keep): (Vec<_>, Vec<_>) = std::mem::take(&mut self.held)
            .into_iter()
            .partition(|e| e.from == from && e.to == to);
        self.held = keep;
        for mut event in release {
            let latency = self.sample_latency();
            event.deliver_at = self.now_ms + latency;
            self.in_flight.push(Reverse(event));
        }
    }

    /// Heals both directions between two sites.
    pub fn heal_both(&mut self, a: SiteId, b: SiteId) {
        self.heal(a, b);
        self.heal(b, a);
    }

    /// Delivers the next message (earliest delivery time), advancing the
    /// simulated clock. Returns `None` when nothing is deliverable (the
    /// network is idle or everything is blocked behind partitions).
    pub fn step(&mut self) -> Option<NetworkEvent<T>> {
        let Reverse(event) = self.in_flight.pop()?;
        self.now_ms = self.now_ms.max(event.deliver_at);
        self.delivered_count += 1;
        Some(event)
    }

    fn sample_latency(&mut self) -> u64 {
        let LinkConfig {
            min_latency_ms,
            max_latency_ms,
        } = self.default_link;
        if max_latency_ms <= min_latency_ms {
            min_latency_ms
        } else {
            self.rng.gen_range(min_latency_ms..=max_latency_ms)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn site(n: u64) -> SiteId {
        SiteId::from_u64(n)
    }

    #[test]
    fn messages_are_delivered_in_time_order() {
        let mut net: SimNetwork<u32> = SimNetwork::new(LinkConfig::default(), 42);
        for i in 0..20 {
            net.send(site(1), site(2), i);
        }
        assert_eq!(net.in_flight(), 20);
        let mut last_time = 0;
        let mut count = 0;
        while let Some(ev) = net.step() {
            assert!(ev.deliver_at >= last_time);
            last_time = ev.deliver_at;
            count += 1;
        }
        assert_eq!(count, 20);
        assert_eq!(net.delivered_count(), 20);
        assert_eq!(net.sent_count(), 20);
    }

    #[test]
    fn variable_latency_reorders_messages() {
        let mut net: SimNetwork<u32> = SimNetwork::new(
            LinkConfig {
                min_latency_ms: 1,
                max_latency_ms: 500,
            },
            7,
        );
        for i in 0..50 {
            net.send(site(1), site(2), i);
        }
        let mut order = Vec::new();
        while let Some(ev) = net.step() {
            order.push(ev.payload);
        }
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(
            order, sorted,
            "with a wide latency range some reordering must occur"
        );
    }

    #[test]
    fn fixed_latency_preserves_order() {
        let mut net: SimNetwork<u32> = SimNetwork::new(LinkConfig::fixed(10), 7);
        for i in 0..10 {
            net.send(site(1), site(2), i);
        }
        let mut order = Vec::new();
        while let Some(ev) = net.step() {
            order.push(ev.payload);
        }
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn broadcast_reaches_everyone_but_the_sender() {
        let sites = [site(1), site(2), site(3)];
        let mut net: SimNetwork<u32> = SimNetwork::new(LinkConfig::fixed(1), 7);
        net.broadcast(site(1), &sites, 9);
        let mut recipients = Vec::new();
        while let Some(ev) = net.step() {
            recipients.push(ev.to);
        }
        assert_eq!(recipients.len(), 2);
        assert!(recipients.contains(&site(2)) && recipients.contains(&site(3)));
    }

    #[test]
    fn partitions_hold_messages_until_healed() {
        let mut net: SimNetwork<u32> = SimNetwork::new(LinkConfig::fixed(1), 7);
        net.partition_both(site(1), site(2));
        net.send(site(1), site(2), 1);
        net.send(site(2), site(1), 2);
        assert!(
            net.step().is_none(),
            "both messages are stuck behind the partition"
        );
        assert_eq!(net.in_flight(), 2);
        net.heal_both(site(1), site(2));
        let mut payloads = Vec::new();
        while let Some(ev) = net.step() {
            payloads.push(ev.payload);
        }
        payloads.sort_unstable();
        assert_eq!(payloads, vec![1, 2]);
    }

    #[test]
    fn seeded_runs_are_reproducible() {
        let run = |seed| {
            let mut net: SimNetwork<u32> = SimNetwork::new(LinkConfig::default(), seed);
            for i in 0..30 {
                net.send(site(1), site(2), i);
            }
            let mut order = Vec::new();
            while let Some(ev) = net.step() {
                order.push(ev.payload);
            }
            order
        };
        assert_eq!(run(3), run(3));
        assert_ne!(run(3), run(4));
    }
}
