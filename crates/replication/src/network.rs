//! A deterministic discrete-event network simulator with fault injection.
//!
//! The paper evaluates Treedoc by replaying serialised edit histories; to
//! exercise the *distributed* behaviour (concurrent edits, delayed and
//! reordered delivery, partitions, the flatten commitment protocol) this
//! crate provides a small discrete-event simulator: messages are enqueued
//! with a delivery time drawn from a per-link latency model, and the
//! simulation advances by repeatedly delivering the earliest message.
//!
//! Real transports are lossier than a latency model: §3/§5.2 assume causal
//! delivery, which transports implement with retransmission — implying
//! duplicates, loss and heavy reordering. [`LinkConfig`] therefore also
//! carries per-link **drop**, **duplicate** and **reorder-burst**
//! probabilities, and [`SimNetwork`] applies them at send time from its
//! seeded RNG, so every faulty run is reproducible.

use std::cmp::Reverse;
use std::collections::{BTreeMap, BTreeSet, BinaryHeap};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use treedoc_core::SiteId;

/// Latency and fault model of a link (or of the whole network when no
/// per-link override is registered).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkConfig {
    /// Minimum one-way latency in simulated milliseconds.
    pub min_latency_ms: u64,
    /// Maximum one-way latency in simulated milliseconds.
    pub max_latency_ms: u64,
    /// Probability that a message is silently lost at send time.
    pub drop_prob: f64,
    /// Probability that a message is delivered twice (the copy gets its own
    /// independently sampled latency).
    pub duplicate_prob: f64,
    /// Probability that a message is delayed by an extra
    /// [`reorder_burst_ms`](Self::reorder_burst_ms), overtaking later
    /// traffic and producing heavy reordering.
    pub reorder_burst_prob: f64,
    /// Extra delay applied to reorder-burst victims, in simulated
    /// milliseconds.
    pub reorder_burst_ms: u64,
}

impl Default for LinkConfig {
    fn default() -> Self {
        LinkConfig {
            min_latency_ms: 5,
            max_latency_ms: 50,
            drop_prob: 0.0,
            duplicate_prob: 0.0,
            reorder_burst_prob: 0.0,
            reorder_burst_ms: 250,
        }
    }
}

impl LinkConfig {
    /// A fixed-latency, fault-free link.
    pub fn fixed(latency_ms: u64) -> Self {
        LinkConfig {
            min_latency_ms: latency_ms,
            max_latency_ms: latency_ms,
            ..LinkConfig::default()
        }
    }

    /// Sets the drop probability.
    pub fn with_drop_prob(mut self, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "drop_prob out of range");
        self.drop_prob = p;
        self
    }

    /// Sets the duplication probability.
    pub fn with_duplicate_prob(mut self, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "duplicate_prob out of range");
        self.duplicate_prob = p;
        self
    }

    /// Sets the reorder-burst probability and extra delay.
    pub fn with_reorder_burst(mut self, p: f64, extra_ms: u64) -> Self {
        assert!((0.0..=1.0).contains(&p), "reorder_burst_prob out of range");
        self.reorder_burst_prob = p;
        self.reorder_burst_ms = extra_ms;
        self
    }

    /// `true` when the link can drop, duplicate or burst-reorder messages.
    pub fn is_faulty(&self) -> bool {
        self.drop_prob > 0.0 || self.duplicate_prob > 0.0 || self.reorder_burst_prob > 0.0
    }
}

/// A message in flight.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NetworkEvent<T> {
    /// Simulated delivery time in milliseconds.
    pub deliver_at: u64,
    /// Sending site.
    pub from: SiteId,
    /// Receiving site.
    pub to: SiteId,
    /// The payload.
    pub payload: T,
    /// Monotonic sequence number used to break ties deterministically.
    seq: u64,
}

impl<T: Eq> Ord for NetworkEvent<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.deliver_at, self.seq).cmp(&(other.deliver_at, other.seq))
    }
}

impl<T: Eq> PartialOrd for NetworkEvent<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// The simulated network.
#[derive(Debug)]
pub struct SimNetwork<T> {
    now_ms: u64,
    next_seq: u64,
    default_link: LinkConfig,
    /// Per-link overrides of the default link model.
    links: BTreeMap<(SiteId, SiteId), LinkConfig>,
    in_flight: BinaryHeap<Reverse<NetworkEvent<T>>>,
    /// Ordered pairs `(from, to)` that are currently partitioned: messages
    /// between them are queued but not delivered until the partition heals.
    partitions: BTreeSet<(SiteId, SiteId)>,
    held: Vec<NetworkEvent<T>>,
    rng: StdRng,
    delivered_count: u64,
    sent_count: u64,
    dropped_count: u64,
    duplicated_count: u64,
}

impl<T: Eq> SimNetwork<T> {
    /// Creates a network with the given default link model and RNG seed.
    pub fn new(default_link: LinkConfig, seed: u64) -> Self {
        SimNetwork {
            now_ms: 0,
            next_seq: 0,
            default_link,
            links: BTreeMap::new(),
            in_flight: BinaryHeap::new(),
            partitions: BTreeSet::new(),
            held: Vec::new(),
            rng: StdRng::seed_from_u64(seed),
            delivered_count: 0,
            sent_count: 0,
            dropped_count: 0,
            duplicated_count: 0,
        }
    }

    /// Current simulated time in milliseconds.
    pub fn now_ms(&self) -> u64 {
        self.now_ms
    }

    /// Number of messages handed to the network so far (dropped ones
    /// included, injected duplicates excluded).
    pub fn sent_count(&self) -> u64 {
        self.sent_count
    }

    /// Number of messages delivered so far (injected duplicates included).
    pub fn delivered_count(&self) -> u64 {
        self.delivered_count
    }

    /// Number of messages silently dropped by fault injection.
    pub fn dropped_count(&self) -> u64 {
        self.dropped_count
    }

    /// Number of extra copies created by fault injection.
    pub fn duplicated_count(&self) -> u64 {
        self.duplicated_count
    }

    /// Number of messages still in flight (including ones blocked by a
    /// partition).
    pub fn in_flight(&self) -> usize {
        self.in_flight.len() + self.held.len()
    }

    /// Overrides the link model for the directed link `from → to`.
    pub fn set_link(&mut self, from: SiteId, to: SiteId, config: LinkConfig) {
        self.links.insert((from, to), config);
    }

    /// Overrides the link model in both directions between two sites.
    pub fn set_link_both(&mut self, a: SiteId, b: SiteId, config: LinkConfig) {
        self.set_link(a, b, config);
        self.set_link(b, a, config);
    }

    /// The effective link model for `from → to`.
    pub fn link(&self, from: SiteId, to: SiteId) -> LinkConfig {
        self.links
            .get(&(from, to))
            .copied()
            .unwrap_or(self.default_link)
    }

    /// Sends `payload` from `from` to `to`; it will be delivered after a
    /// link-dependent delay (unless a partition holds it back longer), and
    /// may be dropped, duplicated or burst-delayed according to the link's
    /// fault model.
    pub fn send(&mut self, from: SiteId, to: SiteId, payload: T)
    where
        T: Clone,
    {
        let link = self.link(from, to);
        self.sent_count += 1;
        if link.drop_prob > 0.0 && self.rng.gen_bool(link.drop_prob) {
            self.dropped_count += 1;
            return;
        }
        let duplicate = link.duplicate_prob > 0.0 && self.rng.gen_bool(link.duplicate_prob);
        self.enqueue(from, to, payload.clone(), &link);
        if duplicate {
            self.duplicated_count += 1;
            self.enqueue(from, to, payload, &link);
        }
    }

    /// Enqueues one copy with a freshly sampled latency (plus an optional
    /// reorder burst).
    fn enqueue(&mut self, from: SiteId, to: SiteId, payload: T, link: &LinkConfig) {
        let mut latency = self.sample_latency(link);
        if link.reorder_burst_prob > 0.0 && self.rng.gen_bool(link.reorder_burst_prob) {
            latency += link.reorder_burst_ms;
        }
        let event = NetworkEvent {
            deliver_at: self.now_ms + latency,
            from,
            to,
            payload,
            seq: self.next_seq,
        };
        self.next_seq += 1;
        if self.partitions.contains(&(from, to)) {
            self.held.push(event);
        } else {
            self.in_flight.push(Reverse(event));
        }
    }

    /// Broadcasts `payload` from `from` to every site in `recipients` except
    /// the sender itself.
    pub fn broadcast(&mut self, from: SiteId, recipients: &[SiteId], payload: T)
    where
        T: Clone,
    {
        for &to in recipients {
            if to != from {
                self.send(from, to, payload.clone());
            }
        }
    }

    /// Cuts the directed link `from → to`.
    pub fn partition(&mut self, from: SiteId, to: SiteId) {
        self.partitions.insert((from, to));
    }

    /// Cuts both directions between two sites.
    pub fn partition_both(&mut self, a: SiteId, b: SiteId) {
        self.partition(a, b);
        self.partition(b, a);
    }

    /// Heals the directed link `from → to`; messages held during the
    /// partition are released (with fresh latency from the current time).
    pub fn heal(&mut self, from: SiteId, to: SiteId) {
        self.partitions.remove(&(from, to));
        let (release, keep): (Vec<_>, Vec<_>) = std::mem::take(&mut self.held)
            .into_iter()
            .partition(|e| e.from == from && e.to == to);
        self.held = keep;
        for mut event in release {
            let link = self.link(from, to);
            let latency = self.sample_latency(&link);
            event.deliver_at = self.now_ms + latency;
            self.in_flight.push(Reverse(event));
        }
    }

    /// Heals both directions between two sites.
    pub fn heal_both(&mut self, a: SiteId, b: SiteId) {
        self.heal(a, b);
        self.heal(b, a);
    }

    /// Delivers the next message (earliest delivery time), advancing the
    /// simulated clock. Returns `None` when nothing is deliverable (the
    /// network is idle or everything is blocked behind partitions).
    pub fn step(&mut self) -> Option<NetworkEvent<T>> {
        let Reverse(event) = self.in_flight.pop()?;
        self.now_ms = self.now_ms.max(event.deliver_at);
        self.delivered_count += 1;
        Some(event)
    }

    fn sample_latency(&mut self, link: &LinkConfig) -> u64 {
        let LinkConfig {
            min_latency_ms,
            max_latency_ms,
            ..
        } = *link;
        if max_latency_ms <= min_latency_ms {
            min_latency_ms
        } else {
            self.rng.gen_range(min_latency_ms..=max_latency_ms)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn site(n: u64) -> SiteId {
        SiteId::from_u64(n)
    }

    #[test]
    fn messages_are_delivered_in_time_order() {
        let mut net: SimNetwork<u32> = SimNetwork::new(LinkConfig::default(), 42);
        for i in 0..20 {
            net.send(site(1), site(2), i);
        }
        assert_eq!(net.in_flight(), 20);
        let mut last_time = 0;
        let mut count = 0;
        while let Some(ev) = net.step() {
            assert!(ev.deliver_at >= last_time);
            last_time = ev.deliver_at;
            count += 1;
        }
        assert_eq!(count, 20);
        assert_eq!(net.delivered_count(), 20);
        assert_eq!(net.sent_count(), 20);
        assert_eq!(net.dropped_count(), 0);
        assert_eq!(net.duplicated_count(), 0);
    }

    #[test]
    fn variable_latency_reorders_messages() {
        let mut net: SimNetwork<u32> = SimNetwork::new(
            LinkConfig {
                min_latency_ms: 1,
                max_latency_ms: 500,
                ..LinkConfig::default()
            },
            7,
        );
        for i in 0..50 {
            net.send(site(1), site(2), i);
        }
        let mut order = Vec::new();
        while let Some(ev) = net.step() {
            order.push(ev.payload);
        }
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(
            order, sorted,
            "with a wide latency range some reordering must occur"
        );
    }

    #[test]
    fn fixed_latency_preserves_order() {
        let mut net: SimNetwork<u32> = SimNetwork::new(LinkConfig::fixed(10), 7);
        for i in 0..10 {
            net.send(site(1), site(2), i);
        }
        let mut order = Vec::new();
        while let Some(ev) = net.step() {
            order.push(ev.payload);
        }
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn broadcast_reaches_everyone_but_the_sender() {
        let sites = [site(1), site(2), site(3)];
        let mut net: SimNetwork<u32> = SimNetwork::new(LinkConfig::fixed(1), 7);
        net.broadcast(site(1), &sites, 9);
        let mut recipients = Vec::new();
        while let Some(ev) = net.step() {
            recipients.push(ev.to);
        }
        assert_eq!(recipients.len(), 2);
        assert!(recipients.contains(&site(2)) && recipients.contains(&site(3)));
    }

    #[test]
    fn partitions_hold_messages_until_healed() {
        let mut net: SimNetwork<u32> = SimNetwork::new(LinkConfig::fixed(1), 7);
        net.partition_both(site(1), site(2));
        net.send(site(1), site(2), 1);
        net.send(site(2), site(1), 2);
        assert!(
            net.step().is_none(),
            "both messages are stuck behind the partition"
        );
        assert_eq!(net.in_flight(), 2);
        net.heal_both(site(1), site(2));
        let mut payloads = Vec::new();
        while let Some(ev) = net.step() {
            payloads.push(ev.payload);
        }
        payloads.sort_unstable();
        assert_eq!(payloads, vec![1, 2]);
    }

    #[test]
    fn seeded_runs_are_reproducible() {
        let run = |seed| {
            let mut net: SimNetwork<u32> = SimNetwork::new(LinkConfig::default(), seed);
            for i in 0..30 {
                net.send(site(1), site(2), i);
            }
            let mut order = Vec::new();
            while let Some(ev) = net.step() {
                order.push(ev.payload);
            }
            order
        };
        assert_eq!(run(3), run(3));
        assert_ne!(run(3), run(4));
    }

    #[test]
    fn drops_lose_roughly_the_configured_fraction() {
        let mut net: SimNetwork<u32> =
            SimNetwork::new(LinkConfig::fixed(1).with_drop_prob(0.3), 11);
        for i in 0..1000 {
            net.send(site(1), site(2), i);
        }
        let dropped = net.dropped_count();
        assert!(
            (200..400).contains(&(dropped as usize)),
            "expected ~300 drops, got {dropped}"
        );
        let mut delivered = 0;
        while net.step().is_some() {
            delivered += 1;
        }
        assert_eq!(delivered + dropped, 1000);
        assert_eq!(net.sent_count(), 1000);
    }

    #[test]
    fn duplicates_add_extra_copies() {
        let mut net: SimNetwork<u32> =
            SimNetwork::new(LinkConfig::fixed(1).with_duplicate_prob(0.5), 13);
        for i in 0..500 {
            net.send(site(1), site(2), i);
        }
        let duplicated = net.duplicated_count();
        assert!(
            (150..350).contains(&(duplicated as usize)),
            "expected ~250 duplicates, got {duplicated}"
        );
        let mut delivered = 0u64;
        while net.step().is_some() {
            delivered += 1;
        }
        assert_eq!(delivered, 500 + duplicated);
    }

    #[test]
    fn reorder_bursts_delay_some_messages_past_later_traffic() {
        let mut net: SimNetwork<u32> =
            SimNetwork::new(LinkConfig::fixed(1).with_reorder_burst(0.2, 10_000), 17);
        for i in 0..200 {
            net.send(site(1), site(2), i);
        }
        let mut order = Vec::new();
        while let Some(ev) = net.step() {
            order.push(ev.payload);
        }
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..200).collect::<Vec<_>>());
        assert_ne!(order, sorted, "bursts must reorder fixed-latency traffic");
    }

    #[test]
    fn per_link_overrides_apply_only_to_their_link() {
        let mut net: SimNetwork<u32> = SimNetwork::new(LinkConfig::fixed(1), 19);
        net.set_link(site(1), site(3), LinkConfig::fixed(1).with_drop_prob(1.0));
        for i in 0..50 {
            net.send(site(1), site(2), i);
            net.send(site(1), site(3), i);
        }
        assert_eq!(net.dropped_count(), 50, "every 1→3 message is dropped");
        let mut to_2 = 0;
        while let Some(ev) = net.step() {
            assert_eq!(ev.to, site(2));
            to_2 += 1;
        }
        assert_eq!(to_2, 50);
    }

    #[test]
    fn faulty_runs_are_reproducible() {
        let run = |seed| {
            let link = LinkConfig::default()
                .with_drop_prob(0.1)
                .with_duplicate_prob(0.1)
                .with_reorder_burst(0.1, 300);
            let mut net: SimNetwork<u32> = SimNetwork::new(link, seed);
            for i in 0..100 {
                net.send(site(1), site(2), i);
            }
            let mut order = Vec::new();
            while let Some(ev) = net.step() {
                order.push(ev.payload);
            }
            (order, net.dropped_count(), net.duplicated_count())
        };
        assert_eq!(run(23), run(23));
        assert_ne!(run(23), run(24));
    }
}
