//! Deterministic generators of causally stamped message histories and
//! faulty delivery schedules, shared by the crate's property tests and the
//! workspace benchmarks (so the stamping rules live in one place).

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use treedoc_core::SiteId;

use crate::causal::CausalMessage;
use crate::clock::VectorClock;

/// Builds an emission history for `senders` sites, `per_sender` messages
/// each, payloads numbered in emission order. With probability
/// `observe_prob` a sender first observes a random earlier message (merging
/// its clock), so later messages can causally depend on other senders'
/// messages — the cross-sender dependencies the hold-back queue exists for.
pub fn emit_history(
    seed: u64,
    senders: usize,
    per_sender: usize,
    observe_prob: f64,
) -> Vec<CausalMessage<u64>> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut clocks: Vec<(SiteId, VectorClock)> = (1..=senders as u64)
        .map(|n| (SiteId::from_u64(n), VectorClock::new()))
        .collect();
    let mut remaining: Vec<usize> = vec![per_sender; senders];
    let mut emitted: Vec<CausalMessage<u64>> = Vec::new();
    let mut payload = 0u64;
    while remaining.iter().any(|&r| r > 0) {
        let pick = rng.gen_range(0..senders);
        if remaining[pick] == 0 {
            continue;
        }
        if !emitted.is_empty() && rng.gen_bool(observe_prob) {
            let seen = &emitted[rng.gen_range(0..emitted.len())];
            if seen.sender != clocks[pick].0 {
                let clock = seen.clock.clone();
                clocks[pick].1.merge(&clock);
            }
        }
        let (site, clock) = &mut clocks[pick];
        clock.increment(*site);
        emitted.push(CausalMessage {
            sender: *site,
            clock: clock.clone(),
            payload,
        });
        payload += 1;
        remaining[pick] -= 1;
    }
    emitted
}

/// Scrambles an emission history into a faulty delivery schedule: every
/// message is dropped with probability `drop_prob` (so only a later
/// retransmission carries it), duplicated with probability `duplicate_prob`,
/// and the surviving copies are fully shuffled.
pub fn faulty_schedule<T: Clone>(
    history: &[CausalMessage<T>],
    seed: u64,
    drop_prob: f64,
    duplicate_prob: f64,
) -> Vec<CausalMessage<T>> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5eed);
    let mut schedule = Vec::with_capacity(history.len() * 2);
    for m in history {
        if rng.gen_bool(drop_prob) {
            continue;
        }
        schedule.push(m.clone());
        if rng.gen_bool(duplicate_prob) {
            schedule.push(m.clone());
        }
    }
    schedule.shuffle(&mut rng);
    schedule
}
