//! Vector clocks: the standard mechanism for tracking the happened-before
//! relation between events of different replicas.

use std::collections::BTreeMap;
use std::fmt;

use serde::{Deserialize, Serialize};
use treedoc_core::SiteId;

/// The relation between two vector clocks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClockOrdering {
    /// Identical clocks.
    Equal,
    /// The left clock happened strictly before the right one.
    Before,
    /// The left clock happened strictly after the right one.
    After,
    /// Neither dominates: the events are concurrent.
    Concurrent,
}

/// A vector clock: one counter per site that has issued events.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct VectorClock {
    entries: BTreeMap<SiteId, u64>,
}

impl VectorClock {
    /// The zero clock.
    pub fn new() -> Self {
        VectorClock::default()
    }

    /// The counter recorded for `site` (0 when absent).
    pub fn get(&self, site: SiteId) -> u64 {
        self.entries.get(&site).copied().unwrap_or(0)
    }

    /// Increments the counter of `site`, returning the new value.
    pub fn increment(&mut self, site: SiteId) -> u64 {
        let e = self.entries.entry(site).or_insert(0);
        *e += 1;
        *e
    }

    /// Sets the counter of `site` to `max(current, value)`.
    pub fn observe(&mut self, site: SiteId, value: u64) {
        let e = self.entries.entry(site).or_insert(0);
        *e = (*e).max(value);
    }

    /// Merges another clock into this one (pointwise maximum).
    pub fn merge(&mut self, other: &VectorClock) {
        for (&site, &v) in &other.entries {
            self.observe(site, v);
        }
    }

    /// `true` if every counter of `other` is ≤ the corresponding counter of
    /// `self` — i.e. this replica has already seen everything `other`
    /// describes.
    pub fn dominates(&self, other: &VectorClock) -> bool {
        other.entries.iter().all(|(&site, &v)| self.get(site) >= v)
    }

    /// The happened-before relation between the events described by the two
    /// clocks.
    pub fn compare(&self, other: &VectorClock) -> ClockOrdering {
        let self_dominates = self.dominates(other);
        let other_dominates = other.dominates(self);
        match (self_dominates, other_dominates) {
            (true, true) => ClockOrdering::Equal,
            (true, false) => ClockOrdering::After,
            (false, true) => ClockOrdering::Before,
            (false, false) => ClockOrdering::Concurrent,
        }
    }

    /// `true` when a message stamped with `message_clock` and sent by
    /// `sender` is the *next* deliverable event from that sender given this
    /// replica's clock: the sender's own counter is exactly one ahead, and
    /// every other counter is already covered.
    pub fn is_next_deliverable(&self, sender: SiteId, message_clock: &VectorClock) -> bool {
        for (&site, &v) in &message_clock.entries {
            if site == sender {
                if v != self.get(site) + 1 {
                    return false;
                }
            } else if v > self.get(site) {
                return false;
            }
        }
        true
    }

    /// Iterates the `(site, counter)` entries in site order.
    pub fn iter(&self) -> impl Iterator<Item = (SiteId, u64)> + '_ {
        self.entries.iter().map(|(&s, &v)| (s, v))
    }

    /// Sets the counter of `site` to exactly `value` (unlike
    /// [`observe`](Self::observe), which clamps to the maximum). Used by the
    /// wire codec to reconstruct a clock entry-for-entry.
    pub(crate) fn set_entry(&mut self, site: SiteId, value: u64) {
        self.entries.insert(site, value);
    }

    /// Number of sites with a non-zero counter.
    pub fn sites(&self) -> usize {
        self.entries.len()
    }

    /// Sum of all counters (total number of events described).
    pub fn total_events(&self) -> u64 {
        self.entries.values().sum()
    }
}

impl fmt::Display for VectorClock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, (site, v)) in self.entries.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{site}:{v}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn site(n: u64) -> SiteId {
        SiteId::from_u64(n)
    }

    #[test]
    fn increment_and_get() {
        let mut c = VectorClock::new();
        assert_eq!(c.get(site(1)), 0);
        assert_eq!(c.increment(site(1)), 1);
        assert_eq!(c.increment(site(1)), 2);
        assert_eq!(c.increment(site(2)), 1);
        assert_eq!(c.get(site(1)), 2);
        assert_eq!(c.sites(), 2);
        assert_eq!(c.total_events(), 3);
    }

    #[test]
    fn merge_takes_pointwise_max() {
        let mut a = VectorClock::new();
        a.increment(site(1));
        a.increment(site(1));
        let mut b = VectorClock::new();
        b.increment(site(1));
        b.increment(site(2));
        a.merge(&b);
        assert_eq!(a.get(site(1)), 2);
        assert_eq!(a.get(site(2)), 1);
    }

    #[test]
    fn compare_detects_causality_and_concurrency() {
        let mut a = VectorClock::new();
        a.increment(site(1));
        let mut b = a.clone();
        b.increment(site(2));
        assert_eq!(a.compare(&b), ClockOrdering::Before);
        assert_eq!(b.compare(&a), ClockOrdering::After);
        assert_eq!(a.compare(&a.clone()), ClockOrdering::Equal);

        let mut c = VectorClock::new();
        c.increment(site(3));
        assert_eq!(a.compare(&c), ClockOrdering::Concurrent);
        assert_eq!(c.compare(&a), ClockOrdering::Concurrent);
    }

    #[test]
    fn deliverability_requires_exactly_the_next_event() {
        // Receiver has seen 2 events from site 1 and 1 from site 2.
        let mut local = VectorClock::new();
        local.observe(site(1), 2);
        local.observe(site(2), 1);

        // Next message from site 1 (its 3rd event) depending only on what we
        // have: deliverable.
        let mut m = VectorClock::new();
        m.observe(site(1), 3);
        m.observe(site(2), 1);
        assert!(local.is_next_deliverable(site(1), &m));

        // A message from site 1 that also depends on a 2nd event of site 3 we
        // have not seen: not deliverable yet.
        let mut m2 = m.clone();
        m2.observe(site(3), 2);
        assert!(!local.is_next_deliverable(site(1), &m2));

        // A message from site 1 skipping ahead (its 4th event): not
        // deliverable (would violate FIFO per sender).
        let mut m3 = VectorClock::new();
        m3.observe(site(1), 4);
        assert!(!local.is_next_deliverable(site(1), &m3));

        // An old duplicate (its 2nd event again): not deliverable.
        let mut m4 = VectorClock::new();
        m4.observe(site(1), 2);
        assert!(!local.is_next_deliverable(site(1), &m4));
    }

    #[test]
    fn display_is_compact() {
        let mut c = VectorClock::new();
        c.increment(site(1));
        assert_eq!(c.to_string(), "{s1:1}");
    }
}
