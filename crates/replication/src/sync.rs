//! State-based anti-entropy: merkle digest walks and late-joiner bootstrap.
//!
//! Operation shipping (the [`Envelope::Op`]/[`Envelope::OpBatch`] path) moves
//! *changes*; this module moves *state*. Two replicas compare their
//! incremental merkle digests (see `treedoc_core::hash`), walk the diverging
//! identifier ranges with `O(log n)` digest exchanges, and ship only the runs
//! of cells that actually differ — so a replica that missed `k` of `m`
//! operations pays `O(k + log m)` wire bytes to catch up, however the misses
//! are distributed, instead of re-receiving a whole retransmission window.
//!
//! ## The protocol
//!
//! Every message is **stateless and idempotent**; neither side keeps a
//! session object, so lost or reordered sync messages degrade to extra
//! rounds, never to corruption.
//!
//! 1. A replica opens with [`Replica::sync_probe`]: a [`SyncRoot`] carrying
//!    its root digest, stored-cell count and vector clock.
//! 2. A receiver whose root matches fast-forwards its causal clock (the
//!    states are equal, so everything the sender delivered is covered) and
//!    answers the probe with its own root, letting the sender fast-forward
//!    too. A receiver whose root differs answers with [`SyncDigests`]: its
//!    digest over each of up to [`SyncConfig::fanout`] sub-ranges tiling the
//!    identifier space.
//! 3. [`SyncDigests`] ranges that match locally are dropped; a mismatched
//!    range is split again (ping-ponging the walk between the peers) until
//!    either side's range population falls under [`SyncConfig::leaf_cells`],
//!    at which point the cells themselves cross as [`SyncRuns`]: the
//!    initiating side sends its cells, the receiver integrates and echoes
//!    back only the **difference** (cells absent from, or outranking, the
//!    incoming list), both applying the tombstone-beats-live-beats-ghost
//!    precedence of `RunTree::integrate_cell`.
//! 4. The driver re-probes; equal roots end the session with the clock
//!    fast-forward of step 2.
//!
//! A brand-new site skips the walk entirely: any peer can send a
//! [`SnapshotOffer`] followed by [`SnapshotChunk`]s — the document's
//! durable snapshot sections, reused verbatim from the storage layer — and
//! the joiner adopts the decoded state under its **own** site identity
//! ([`SyncDocument::adopt_bootstrap`]), then runs one digest round to pick
//! up its clock.
//!
//! Sync traffic is **not journaled**: every message is idempotent and the
//! repaired state is re-derivable, so a crash mid-session simply loses the
//! session — the recovered replica re-syncs. Clock fast-forwards and
//! integrated cells become durable together at the next checkpoint, keeping
//! the recovered clock and content consistent with each other.
//!
//! The walk is sound for tombstone-keeping (SDIS) documents, whose stored
//! cell set only grows; UDIS discards deleted cells, making "deleted"
//! indistinguishable from "never seen" for state comparison — UDIS
//! deployments should stay on operation shipping.
//!
//! [`Envelope::Op`]: crate::replica::Envelope::Op
//! [`Envelope::OpBatch`]: crate::replica::Envelope::OpBatch
//! [`Replica::sync_probe`]: crate::replica::Replica::sync_probe

use serde::{Deserialize, Serialize};
use treedoc_core::codec::{put_pos_id, put_u8, put_varint, WireAtom, WireDis};
use treedoc_core::{
    codec::get_pos_id, Atom, Content, Disambiguator, HasSource, PosId, SiteId, Treedoc,
};
use treedoc_storage::Snapshot;

use crate::clock::VectorClock;
use crate::persist::PersistentDocument;
use crate::replica::ReplicatedDocument;

/// Tuning knobs of the digest walk and the snapshot bootstrap.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SyncConfig {
    /// Sub-ranges a mismatched range is split into per round. Higher fanout
    /// means fewer rounds but larger digest messages.
    pub fanout: usize,
    /// A range whose population (on either side) is at or under this
    /// threshold ships its cells instead of splitting further. Leaf
    /// exchanges ship the range's cells in **both** directions (each side
    /// repairs the other), so a large leaf wastes bytes re-shipping cells
    /// both sides already share: a digest entry costs ~30 B against ~30 B
    /// per cell, which makes a small leaf the cheaper trade until a range
    /// is mostly missing.
    pub leaf_cells: usize,
    /// Payload bytes per [`SnapshotChunk`] of the bootstrap path.
    pub chunk_bytes: usize,
}

impl Default for SyncConfig {
    fn default() -> Self {
        SyncConfig {
            fanout: 8,
            leaf_cells: 16,
            chunk_bytes: 16 * 1024,
        }
    }
}

/// The opening digest probe (and its echo): root digest, stored-cell count
/// and the sender's causal clock.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SyncRoot {
    /// The probing site.
    pub from: SiteId,
    /// Its root merkle digest.
    pub digest: u64,
    /// Its stored-cell count (digest 0 is ambiguous without it).
    pub cells: u64,
    /// Its delivered vector clock, merged by the receiver when the states
    /// turn out equal.
    pub clock: VectorClock,
    /// `true` asks the receiver to answer with its own root (an echo sets
    /// this to `false`, ending the exchange).
    pub reply: bool,
}

/// One sub-range of the digest walk: half-open identifier bounds (encoded —
/// empty bytes mean unbounded) with the sender's digest over it.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RangeDigest {
    /// Encoded inclusive lower bound ([`encode_bound`]); empty = from the
    /// start.
    pub lo: Vec<u8>,
    /// Encoded exclusive upper bound; empty = to the end.
    pub hi: Vec<u8>,
    /// The sender's merkle digest over the range.
    pub digest: u64,
    /// The sender's stored-cell count in the range.
    pub cells: u64,
}

/// A round of the walk: the sender's digests over sub-ranges tiling the part
/// of the identifier space still under suspicion.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SyncDigests {
    /// The sender.
    pub from: SiteId,
    /// Its sub-range digests, in identifier order.
    pub ranges: Vec<RangeDigest>,
}

/// A leaf of the walk: every cell the sender stores in the range, encoded
/// with shared-prefix identifier compression ([`encode_cells`]).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SyncRuns {
    /// The sender.
    pub from: SiteId,
    /// Encoded range bounds (same convention as [`RangeDigest`]).
    pub lo: Vec<u8>,
    /// Encoded exclusive upper bound.
    pub hi: Vec<u8>,
    /// Number of cells in `cells`.
    pub count: u64,
    /// The encoded cell list ([`encode_cells`]).
    pub cells: Vec<u8>,
    /// `true` asks the receiver to send back the same range's **difference**
    /// — only the cells absent from (or outranked by) this message's list,
    /// computed before integrating so freshly learned cells are not echoed.
    pub reply: bool,
}

/// Announces a snapshot transfer to a bootstrapping site: how many
/// [`SnapshotChunk`]s follow and what the assembled state digests to.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SnapshotOffer {
    /// The donor site.
    pub from: SiteId,
    /// Content digest of the offered document state, checked after adoption.
    pub digest: u64,
    /// Total encoded snapshot bytes.
    pub total_bytes: u64,
    /// Number of chunks that follow.
    pub chunks: u64,
}

/// One piece of an offered snapshot.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SnapshotChunk {
    /// The donor site.
    pub from: SiteId,
    /// Zero-based chunk index.
    pub index: u64,
    /// Total chunk count (repeated so a chunk is self-describing).
    pub total: u64,
    /// The chunk's bytes.
    pub data: Vec<u8>,
}

// ---------------------------------------------------------------------------
// Bound and cell-list encodings
// ---------------------------------------------------------------------------

/// Encodes an optional identifier bound: empty bytes for unbounded,
/// otherwise the identifier delta-encoded against the root.
pub fn encode_bound<D: WireDis>(bound: Option<&PosId<D>>) -> Vec<u8> {
    let mut out = Vec::new();
    if let Some(id) = bound {
        put_pos_id(&mut out, id, &PosId::root());
    }
    out
}

/// Decodes a bound written by [`encode_bound`]. `None` means the bytes were
/// malformed (the outer `Option` is the parse result, the inner one the
/// bound itself).
pub fn decode_bound<D: WireDis>(bytes: &[u8]) -> Option<Option<PosId<D>>> {
    if bytes.is_empty() {
        return Some(None);
    }
    let mut cursor = bytes;
    let id = get_pos_id(&mut cursor, &PosId::root())?;
    cursor.is_empty().then_some(Some(id))
}

const CELL_LIVE: u8 = 1;
const CELL_TOMBSTONE: u8 = 2;
const CELL_GHOST: u8 = 3;

/// The integration precedence of a cell's content (the same ordering
/// `RunTree::integrate_cell` applies): absent < ghost < live < tombstone.
fn content_rank<A>(content: &Content<A>) -> u8 {
    match content {
        Content::Absent => 0,
        Content::Ghost => 1,
        Content::Live(_) => 2,
        Content::Tombstone => 3,
    }
}

/// Encodes an ordered cell list: a count, then per cell the identifier
/// (delta-encoded against its predecessor, so runs share their path prefix),
/// a content tag and — for live cells — the atom.
pub fn encode_cells<A: WireAtom, D: WireDis>(cells: &[(PosId<D>, Content<A>)]) -> Vec<u8> {
    let mut out = Vec::new();
    put_varint(&mut out, cells.len() as u64);
    let root = PosId::root();
    let mut prev: &PosId<D> = &root;
    for (id, content) in cells {
        put_pos_id(&mut out, id, prev);
        match content {
            Content::Live(atom) => {
                put_u8(&mut out, CELL_LIVE);
                atom.encode_atom(&mut out);
            }
            Content::Tombstone => put_u8(&mut out, CELL_TOMBSTONE),
            Content::Ghost => put_u8(&mut out, CELL_GHOST),
            // The run store never stores Absent cells; encode it as a ghost
            // (harmless: ghosts are the weakest content rank).
            Content::Absent => put_u8(&mut out, CELL_GHOST),
        }
        prev = id;
    }
    out
}

/// Decodes a cell list written by [`encode_cells`]. Total: malformed input
/// yields `None`, never a panic or oversized allocation.
pub fn decode_cells<A: WireAtom, D: WireDis>(bytes: &[u8]) -> Option<Vec<(PosId<D>, Content<A>)>> {
    let mut cursor = bytes;
    let n = treedoc_core::codec::get_varint(&mut cursor)? as usize;
    // Each cell costs at least 3 bytes (two path varints, a tag).
    if n > cursor.len() / 3 + 1 {
        return None;
    }
    let mut cells = Vec::with_capacity(n);
    let mut prev = PosId::root();
    for _ in 0..n {
        let id = get_pos_id(&mut cursor, &prev)?;
        let content = match treedoc_core::codec::get_u8(&mut cursor)? {
            CELL_LIVE => Content::Live(A::decode_atom(&mut cursor)?),
            CELL_TOMBSTONE => Content::Tombstone,
            CELL_GHOST => Content::Ghost,
            _ => return None,
        };
        prev = id.clone();
        cells.push((id, content));
    }
    cursor.is_empty().then_some(cells)
}

// ---------------------------------------------------------------------------
// The document side of the protocol
// ---------------------------------------------------------------------------

/// A document that can take part in state-based anti-entropy. The range
/// bounds cross the wire opaque ([`encode_bound`]), so the replica layer can
/// stay generic over the document.
pub trait SyncDocument: ReplicatedDocument {
    /// Root merkle digest and stored-cell count.
    fn sync_root(&self) -> (u64, u64);

    /// Digest and cell count over an encoded bound range; `None` when the
    /// bounds are malformed.
    fn sync_range(&self, lo: &[u8], hi: &[u8]) -> Option<(u64, u64)>;

    /// Splits the range into up to `fanout` sub-ranges (tiling it exactly,
    /// partitioned at this document's local cell ranks) with their digests.
    fn sync_split(&self, lo: &[u8], hi: &[u8], fanout: usize) -> Option<Vec<RangeDigest>>;

    /// Encodes every stored cell in the range; returns the bytes and the
    /// cell count.
    fn sync_cells(&self, lo: &[u8], hi: &[u8]) -> Option<(Vec<u8>, u64)>;

    /// Encodes the cells in the range that an `incoming` cell list (the
    /// peer's side of the same range) provably lacks: cells absent from the
    /// list, or present with strictly weaker content under the
    /// ghost < live < tombstone precedence. This is the echo half of a leaf
    /// exchange — shipping only the difference keeps a leaf's cost
    /// proportional to the divergence, not to the range population.
    fn sync_cells_absent_from(
        &self,
        lo: &[u8],
        hi: &[u8],
        incoming: &[u8],
    ) -> Option<(Vec<u8>, u64)>;

    /// Integrates an encoded cell list; returns how many cells changed the
    /// store, or `None` when the bytes are malformed.
    fn sync_integrate(&mut self, cells: &[u8]) -> Option<usize>;

    /// Encodes the whole document as bootstrap bytes (the durable snapshot
    /// sections).
    fn encode_bootstrap(&self) -> Vec<u8>;

    /// Replaces this document's content with a decoded bootstrap state while
    /// keeping the local identity (site, disambiguator source). `None` when
    /// the bytes fail to decode or verify.
    fn adopt_bootstrap(&mut self, bytes: &[u8]) -> Option<()>;

    /// Replays an operation released by a sync fast-forward. Unlike
    /// [`ReplicatedDocument::replay`], this must be **idempotent**: state
    /// transfer can move a cell ahead of clock coverage (a session that
    /// converges asymmetrically leaves one side holding synced cells its
    /// clock does not yet cover), so a released operation's effect may
    /// already be present in the store and must be skipped, not treated as
    /// a delivery-layer bug.
    fn sync_replay(&mut self, op: &Self::Op);
}

impl<A, D> SyncDocument for Treedoc<A, D>
where
    A: Atom + WireAtom + std::hash::Hash,
    D: Disambiguator + WireDis + HasSource + treedoc_storage::DisCodec,
    D::Source: Serialize + serde::de::DeserializeOwned,
{
    fn sync_root(&self) -> (u64, u64) {
        let (digest, cells) = self.store().range_digest(None, None);
        (digest, cells as u64)
    }

    fn sync_range(&self, lo: &[u8], hi: &[u8]) -> Option<(u64, u64)> {
        let lo = decode_bound::<D>(lo)?;
        let hi = decode_bound::<D>(hi)?;
        let (digest, cells) = self.store().range_digest(lo.as_ref(), hi.as_ref());
        Some((digest, cells as u64))
    }

    fn sync_split(&self, lo: &[u8], hi: &[u8], fanout: usize) -> Option<Vec<RangeDigest>> {
        let lo = decode_bound::<D>(lo)?;
        let hi = decode_bound::<D>(hi)?;
        let store = self.store();
        let fanout = fanout.max(2);
        // Rank of the first cell at or after `lo` = how many cells precede
        // it; the range population then yields evenly spaced local split
        // points.
        let start = match lo.as_ref() {
            None => 0,
            Some(l) => store.range_digest(None, Some(l)).1,
        };
        let (_, n) = store.range_digest(lo.as_ref(), hi.as_ref());
        let mut bounds: Vec<Option<PosId<D>>> = vec![lo.clone()];
        for k in 1..fanout {
            let rank = start + k * n / fanout;
            if let Some(id) = store.id_at_rank(rank) {
                // Skip split points that collapse onto the previous bound
                // (small populations) or escape the range.
                let past_lo = bounds
                    .last()
                    .is_none_or(|b| b.as_ref().is_none_or(|p| *p < id));
                let before_hi = hi.as_ref().is_none_or(|h| id < *h);
                if past_lo && before_hi {
                    bounds.push(Some(id));
                }
            }
        }
        bounds.push(hi);
        let mut ranges = Vec::with_capacity(bounds.len() - 1);
        for pair in bounds.windows(2) {
            let (blo, bhi) = (&pair[0], &pair[1]);
            let (digest, cells) = store.range_digest(blo.as_ref(), bhi.as_ref());
            ranges.push(RangeDigest {
                lo: encode_bound(blo.as_ref()),
                hi: encode_bound(bhi.as_ref()),
                digest,
                cells: cells as u64,
            });
        }
        Some(ranges)
    }

    fn sync_cells(&self, lo: &[u8], hi: &[u8]) -> Option<(Vec<u8>, u64)> {
        let lo = decode_bound::<D>(lo)?;
        let hi = decode_bound::<D>(hi)?;
        let cells = self.store().cells_in_range(lo.as_ref(), hi.as_ref());
        let count = cells.len() as u64;
        Some((encode_cells(&cells), count))
    }

    fn sync_cells_absent_from(
        &self,
        lo: &[u8],
        hi: &[u8],
        incoming: &[u8],
    ) -> Option<(Vec<u8>, u64)> {
        let incoming = decode_cells::<A, D>(incoming)?;
        let ranks: std::collections::BTreeMap<PosId<D>, u8> = incoming
            .into_iter()
            .map(|(id, content)| (id, content_rank(&content)))
            .collect();
        let lo = decode_bound::<D>(lo)?;
        let hi = decode_bound::<D>(hi)?;
        let mut cells = self.store().cells_in_range(lo.as_ref(), hi.as_ref());
        // Identifier uniqueness makes equal-rank cells identical (two live
        // cells with one id always hold the same atom), so only a missing id
        // or a strictly weaker peer rank means the peer needs this cell.
        cells.retain(|(id, content)| match ranks.get(id) {
            None => true,
            Some(&rank) => content_rank(content) > rank,
        });
        let count = cells.len() as u64;
        Some((encode_cells(&cells), count))
    }

    fn sync_integrate(&mut self, cells: &[u8]) -> Option<usize> {
        let cells = decode_cells::<A, D>(cells)?;
        self.integrate_cells(cells).ok()
    }

    fn encode_bootstrap(&self) -> Vec<u8> {
        let mut snapshot = Snapshot::new();
        self.encode_sections(&mut snapshot);
        snapshot.encode()
    }

    fn adopt_bootstrap(&mut self, bytes: &[u8]) -> Option<()> {
        let snapshot = Snapshot::decode(bytes).ok()?;
        let donor = <Treedoc<A, D>>::decode_sections(&snapshot).ok()?;
        self.adopt_state(donor);
        Some(())
    }

    fn sync_replay(&mut self, op: &Self::Op) {
        match self.apply(op) {
            Ok(()) => {}
            // The op's effect already reached this store as a synced cell: a
            // duplicate insert (the identifier holds a live atom or a
            // tombstone) or a delete of an atom no longer live. Skipping is
            // sound — integrate_cell's precedence already decided the cell,
            // and the drain re-probes until digests agree.
            Err(treedoc_core::Error::DuplicatePosId { .. })
            | Err(treedoc_core::Error::UnknownPosId { .. }) => {}
            Err(e) => panic!("sync-released operation must replay cleanly: {e}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use treedoc_core::{Sdis, SiteId};

    type Doc = Treedoc<String, Sdis>;

    fn site(n: u64) -> SiteId {
        SiteId::from_u64(n)
    }

    fn doc_with(n: usize) -> Doc {
        let mut doc = Doc::new(site(1));
        for i in 0..n {
            doc.local_insert(i, format!("line {i}")).unwrap();
        }
        doc
    }

    #[test]
    fn bounds_round_trip_including_unbounded() {
        let doc = doc_with(5);
        let id = doc.id_at(3).unwrap();
        let bytes = encode_bound(Some(&id));
        assert_eq!(decode_bound::<Sdis>(&bytes), Some(Some(id)));
        assert_eq!(decode_bound::<Sdis>(&[]), Some(None));
        assert_eq!(decode_bound::<Sdis>(&[0xFF, 0xFF]), None, "malformed");
    }

    #[test]
    fn cell_lists_round_trip() {
        let mut doc = doc_with(10);
        doc.local_delete(4).unwrap(); // leaves a tombstone (SDIS)
        let cells = doc.store().cells_in_range(None, None);
        let bytes = encode_cells(&cells);
        let back = decode_cells::<String, Sdis>(&bytes).expect("decodes");
        assert_eq!(back, cells);
        assert!(
            decode_cells::<String, Sdis>(&bytes[..bytes.len() - 1]).is_none(),
            "truncation is detected"
        );
    }

    #[test]
    fn split_tiles_the_range_and_digests_compose() {
        let doc = doc_with(200);
        let ranges = doc.sync_split(&[], &[], 8).expect("splits");
        assert!(ranges.len() > 1 && ranges.len() <= 8);
        assert!(ranges.first().unwrap().lo.is_empty(), "starts unbounded");
        assert!(ranges.last().unwrap().hi.is_empty(), "ends unbounded");
        let total: u64 = ranges.iter().map(|r| r.cells).sum();
        let (root_digest, root_cells) = doc.sync_root();
        assert_eq!(total, root_cells, "sub-ranges tile the whole space");
        // Adjacent ranges share their boundary.
        for pair in ranges.windows(2) {
            assert_eq!(pair[0].hi, pair[1].lo);
        }
        // Each reported digest matches a fresh range query.
        for r in &ranges {
            let (d, n) = doc.sync_range(&r.lo, &r.hi).unwrap();
            assert_eq!((d, n), (r.digest, r.cells));
        }
        let _ = root_digest;
    }

    #[test]
    fn integrating_synced_cells_repairs_a_gap() {
        let full = doc_with(50);
        let mut partial = doc_with(30); // same site, same prefix of edits
        let (bytes, count) = full.sync_cells(&[], &[]).unwrap();
        assert_eq!(count, full.sync_root().1);
        let changed = partial.sync_integrate(&bytes).expect("integrates");
        assert_eq!(changed, 20, "exactly the missing cells changed");
        assert_eq!(partial.sync_root(), full.sync_root());
        assert_eq!(partial.to_vec(), full.to_vec());
        // Idempotent: a second pass changes nothing.
        assert_eq!(partial.sync_integrate(&bytes), Some(0));
    }

    #[test]
    fn bootstrap_round_trip_keeps_the_joiner_identity() {
        let mut donor = doc_with(40);
        donor.local_delete(7).unwrap();
        let bytes = donor.encode_bootstrap();
        let mut joiner = Doc::new(site(9));
        joiner.adopt_bootstrap(&bytes).expect("adopts");
        assert_eq!(joiner.to_vec(), donor.to_vec());
        assert_eq!(joiner.merkle_digest(), donor.merkle_digest());
        assert_eq!(joiner.site(), site(9), "identity survives adoption");
        // The joiner can edit immediately under its own site.
        let op = joiner.local_insert(0, "joined".into()).unwrap();
        donor.apply(&op).unwrap();
        assert_eq!(joiner.merkle_digest(), donor.merkle_digest());
    }
}
