//! Causal broadcast: messages are delivered only after everything that
//! happened-before them has been delivered.
//!
//! The CRDT property makes *concurrent* operations order-insensitive, but
//! causally related operations (e.g. the insert of an atom and its later
//! delete) must still be replayed in order (§2.2: "Updates received from
//! remote sites may be replayed as soon as received, as long as
//! happened-before order is satisfied"). The [`CausalBuffer`] implements the
//! classic vector-clock hold-back queue that provides exactly that guarantee
//! on top of an unreliable-ordering network.
//!
//! Unlike the textbook version, this buffer is **duplicate-safe**: real
//! transports provide reliable delivery through retransmission, which means
//! the same message can arrive more than once. A message whose clock is
//! already covered by `delivered` (or that is already buffered) is discarded
//! on receipt and counted in [`BufferStats::duplicates_discarded`] instead of
//! sitting in the hold-back queue forever.
//!
//! Internally messages are held in **per-sender FIFO queues keyed by the
//! sender's own sequence number**. Delivery only ever inspects each sender's
//! next-expected message, so a receive costs O(active senders) instead of the
//! O(n²) full-queue re-sweep a flat pending list needs under heavy
//! reordering.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};
use treedoc_core::SiteId;

use crate::clock::VectorClock;

/// A payload stamped with its sender and the sender's vector clock at send
/// time (after incrementing its own entry).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CausalMessage<T> {
    /// The sending site.
    pub sender: SiteId,
    /// The sender's clock, including this message's own event.
    pub clock: VectorClock,
    /// The payload (typically an [`Op`](treedoc_core::Op)).
    pub payload: T,
}

impl<T> CausalMessage<T> {
    /// The sender's sequence number for this message (its own entry in the
    /// message clock): message `n` is the `n`-th event the sender produced.
    pub fn seq(&self) -> u64 {
        self.clock.get(self.sender)
    }
}

/// What happened to the message offered to [`CausalBuffer::receive`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Receipt {
    /// The message was fresh: it was either delivered (possibly releasing
    /// buffered successors) or buffered until its predecessors arrive.
    Fresh,
    /// The message was already delivered, or an identical sequence number
    /// from the same sender is already buffered; it was discarded.
    Duplicate,
}

/// The outcome of one [`CausalBuffer::receive`] call: the messages released
/// in causal order, plus what happened to the offered message itself.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Deliveries<T> {
    /// Messages that became deliverable, in causal order.
    pub messages: Vec<CausalMessage<T>>,
    /// Whether the offered message was fresh or a discarded duplicate.
    pub receipt: Receipt,
}

impl<T> Deliveries<T> {
    /// `true` when no message became deliverable.
    pub fn is_empty(&self) -> bool {
        self.messages.is_empty()
    }

    /// Number of messages released by this receive.
    pub fn len(&self) -> usize {
        self.messages.len()
    }
}

impl<T> IntoIterator for Deliveries<T> {
    type Item = CausalMessage<T>;
    type IntoIter = std::vec::IntoIter<CausalMessage<T>>;

    fn into_iter(self) -> Self::IntoIter {
        self.messages.into_iter()
    }
}

/// Running counters of a [`CausalBuffer`]'s activity.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct BufferStats {
    /// Total messages delivered (released in causal order).
    pub delivered: u64,
    /// Stale or duplicate messages discarded on receipt.
    pub duplicates_discarded: u64,
}

/// The durable form of a [`CausalBuffer`]: everything a crashed replica
/// needs to resume causal delivery exactly where it stopped — the delivered
/// clock, the held-back messages and the counters.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CausalBufferImage<T> {
    /// The delivered clock at snapshot time.
    pub delivered: VectorClock,
    /// Messages that were waiting for causal predecessors.
    pub pending: Vec<CausalMessage<T>>,
    /// Largest hold-back size observed.
    pub high_water_mark: u64,
    /// Delivery / discard counters.
    pub stats: BufferStats,
}

/// A hold-back queue that releases messages in causal order.
#[derive(Debug, Clone, Default)]
pub struct CausalBuffer<T> {
    /// What this replica has already delivered.
    delivered: VectorClock,
    /// Per-sender hold-back queues keyed by the sender's sequence number.
    pending: BTreeMap<SiteId, BTreeMap<u64, CausalMessage<T>>>,
    /// Total messages across all per-sender queues.
    pending_total: usize,
    /// Highest number of simultaneously buffered messages (for diagnostics).
    high_water_mark: usize,
    /// Delivery / discard counters.
    stats: BufferStats,
}

impl<T> CausalBuffer<T> {
    /// An empty buffer.
    pub fn new() -> Self {
        CausalBuffer {
            delivered: VectorClock::new(),
            pending: BTreeMap::new(),
            pending_total: 0,
            high_water_mark: 0,
            stats: BufferStats::default(),
        }
    }

    /// The clock of everything delivered so far.
    pub fn delivered_clock(&self) -> &VectorClock {
        &self.delivered
    }

    /// Number of messages currently held back.
    pub fn pending_len(&self) -> usize {
        self.pending_total
    }

    /// Largest number of messages ever held back at once.
    pub fn high_water_mark(&self) -> usize {
        self.high_water_mark
    }

    /// Delivery and duplicate-discard counters.
    pub fn stats(&self) -> BufferStats {
        self.stats
    }

    /// Read-only duplicate test: `true` when a message with this sender and
    /// sequence number would be discarded by [`receive`](Self::receive)
    /// (already delivered, or an identical copy is already buffered).
    /// Lets callers skip side effects — such as journaling the message to a
    /// durable log — for traffic that cannot change replica state.
    pub fn is_duplicate(&self, sender: SiteId, seq: u64) -> bool {
        seq <= self.delivered.get(sender)
            || self
                .pending
                .get(&sender)
                .is_some_and(|queue| queue.contains_key(&seq))
    }

    /// Records a locally generated event so that later remote messages that
    /// depend on it are recognised as deliverable.
    pub fn record_local(&mut self, site: SiteId) -> VectorClock {
        self.delivered.increment(site);
        self.delivered.clone()
    }

    /// Exports the buffer for a durable snapshot.
    pub fn export_image(&self) -> CausalBufferImage<T>
    where
        T: Clone,
    {
        CausalBufferImage {
            delivered: self.delivered.clone(),
            pending: self
                .pending
                .values()
                .flat_map(|queue| queue.values().cloned())
                .collect(),
            high_water_mark: self.high_water_mark as u64,
            stats: self.stats,
        }
    }

    /// Rebuilds a buffer from a snapshot image.
    pub fn from_image(image: CausalBufferImage<T>) -> Self {
        let mut pending: BTreeMap<SiteId, BTreeMap<u64, CausalMessage<T>>> = BTreeMap::new();
        let mut total = 0usize;
        for message in image.pending {
            pending
                .entry(message.sender)
                .or_default()
                .insert(message.seq(), message);
            total += 1;
        }
        CausalBuffer {
            delivered: image.delivered,
            pending,
            pending_total: total,
            high_water_mark: (image.high_water_mark as usize).max(total),
            stats: image.stats,
        }
    }

    /// Offers a received message; returns every message (the new one and any
    /// previously buffered ones) that becomes deliverable, in causal order.
    ///
    /// Stale messages (already delivered) and duplicates of buffered messages
    /// are discarded and counted, so retransmissions never wedge the queue.
    pub fn receive(&mut self, message: CausalMessage<T>) -> Deliveries<T> {
        let sender = message.sender;
        let seq = message.seq();
        // Stale: the sender's seq is already covered by what we delivered
        // (seq 0 would be a clock that does not even include the sender's own
        // event — treat it as stale rather than buffering it unreleasably).
        if seq <= self.delivered.get(sender) {
            self.stats.duplicates_discarded += 1;
            return Deliveries {
                messages: Vec::new(),
                receipt: Receipt::Duplicate,
            };
        }
        let queue = self.pending.entry(sender).or_default();
        // Duplicate of a message already waiting in the hold-back queue.
        if queue.contains_key(&seq) {
            self.stats.duplicates_discarded += 1;
            return Deliveries {
                messages: Vec::new(),
                receipt: Receipt::Duplicate,
            };
        }
        // A message that merely joins the hold-back queue changes nothing for
        // any other sender, so the cross-sender drain only runs when the
        // arrival itself is deliverable right now.
        let deliverable_now = self.delivered.is_next_deliverable(sender, &message.clock);
        queue.insert(seq, message);
        self.pending_total += 1;
        self.high_water_mark = self.high_water_mark.max(self.pending_total);
        Deliveries {
            messages: if deliverable_now {
                self.drain_deliverable()
            } else {
                Vec::new()
            },
            receipt: Receipt::Fresh,
        }
    }

    /// Fast-forwards the delivered clock to cover `remote`, as justified by
    /// state-based anti-entropy: when two replicas establish that their
    /// document states are equal, everything the peer delivered is — by
    /// construction — reflected here too, so this replica may adopt the
    /// peer's coverage without replaying anything.
    ///
    /// Held-back messages whose sequence number falls under the new clock
    /// are discarded as duplicates (their effects arrived through the state
    /// transfer); messages that the merge newly unblocks are released and
    /// returned in causal order for the caller to replay.
    pub fn fast_forward(&mut self, remote: &VectorClock) -> Vec<CausalMessage<T>> {
        self.delivered.merge(remote);
        // Drop pending traffic the state transfer already covered.
        let senders: Vec<SiteId> = self.pending.keys().copied().collect();
        for sender in senders {
            let covered = self.delivered.get(sender);
            if let Some(queue) = self.pending.get_mut(&sender) {
                let keep = queue.split_off(&(covered + 1));
                let dropped = queue.len();
                *queue = keep;
                self.pending_total -= dropped;
                self.stats.duplicates_discarded += dropped as u64;
                if queue.is_empty() {
                    self.pending.remove(&sender);
                }
            }
        }
        self.drain_deliverable()
    }

    /// Releases every message that has become deliverable, in causal order.
    ///
    /// Only each sender's next-expected message (by sequence number) is ever
    /// examined; delivering one message may unlock other senders, so passes
    /// repeat until a pass makes no progress.
    fn drain_deliverable(&mut self) -> Vec<CausalMessage<T>> {
        let mut released = Vec::new();
        loop {
            let mut progressed = false;
            let senders: Vec<SiteId> = self.pending.keys().copied().collect();
            for sender in senders {
                while let Some(message) = self.take_next_from(sender) {
                    self.delivered.merge(&message.clock);
                    self.stats.delivered += 1;
                    released.push(message);
                    progressed = true;
                }
            }
            if !progressed {
                break;
            }
        }
        released
    }

    /// Removes and returns `sender`'s next-expected message if it is present
    /// and all its cross-sender dependencies are satisfied.
    fn take_next_from(&mut self, sender: SiteId) -> Option<CausalMessage<T>> {
        let next_seq = self.delivered.get(sender) + 1;
        let queue = self.pending.get_mut(&sender)?;
        let ready = {
            let head = queue.get(&next_seq)?;
            self.delivered.is_next_deliverable(sender, &head.clock)
        };
        if !ready {
            return None;
        }
        let message = queue.remove(&next_seq).expect("head just observed");
        if queue.is_empty() {
            self.pending.remove(&sender);
        }
        self.pending_total -= 1;
        Some(message)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn site(n: u64) -> SiteId {
        SiteId::from_u64(n)
    }

    /// Builds the message a sender with clock `clock` would emit.
    fn msg(sender: SiteId, clock: &mut VectorClock, payload: u32) -> CausalMessage<u32> {
        clock.increment(sender);
        CausalMessage {
            sender,
            clock: clock.clone(),
            payload,
        }
    }

    #[test]
    fn in_order_messages_deliver_immediately() {
        let mut sender = VectorClock::new();
        let mut buf = CausalBuffer::new();
        for i in 0..5 {
            let delivered = buf.receive(msg(site(1), &mut sender, i));
            assert_eq!(delivered.len(), 1);
            assert_eq!(delivered.messages[0].payload, i);
            assert_eq!(delivered.receipt, Receipt::Fresh);
        }
        assert_eq!(buf.pending_len(), 0);
        assert_eq!(buf.stats().delivered, 5);
        assert_eq!(buf.stats().duplicates_discarded, 0);
    }

    #[test]
    fn out_of_order_messages_are_held_back() {
        let mut sender = VectorClock::new();
        let m1 = msg(site(1), &mut sender, 1);
        let m2 = msg(site(1), &mut sender, 2);
        let m3 = msg(site(1), &mut sender, 3);

        let mut buf = CausalBuffer::new();
        assert!(buf.receive(m3).is_empty(), "m3 depends on m1 and m2");
        assert!(buf.receive(m2).is_empty(), "m2 depends on m1");
        assert_eq!(buf.pending_len(), 2);
        let delivered = buf.receive(m1);
        assert_eq!(
            delivered
                .messages
                .iter()
                .map(|m| m.payload)
                .collect::<Vec<_>>(),
            vec![1, 2, 3],
            "releasing the missing prefix flushes the whole chain in order"
        );
        assert_eq!(buf.pending_len(), 0);
        assert!(buf.high_water_mark() >= 2);
    }

    #[test]
    fn concurrent_messages_deliver_in_any_order() {
        // Two senders that have not seen each other.
        let mut s1 = VectorClock::new();
        let mut s2 = VectorClock::new();
        let a = msg(site(1), &mut s1, 10);
        let b = msg(site(2), &mut s2, 20);
        let mut buf = CausalBuffer::new();
        assert_eq!(buf.receive(b).len(), 1);
        assert_eq!(buf.receive(a).len(), 1);
    }

    #[test]
    fn cross_site_dependency_is_respected() {
        // Site 1 emits m1; site 2 receives it and then emits m2 (which
        // causally depends on m1). A third replica receiving m2 before m1
        // must hold it back.
        let mut s1 = VectorClock::new();
        let m1 = msg(site(1), &mut s1, 1);
        let mut s2 = VectorClock::new();
        s2.merge(&m1.clock); // site 2 delivered m1
        let m2 = msg(site(2), &mut s2, 2);

        let mut buf = CausalBuffer::new();
        assert!(buf.receive(m2.clone()).is_empty());
        let delivered = buf.receive(m1);
        assert_eq!(
            delivered
                .messages
                .iter()
                .map(|m| m.payload)
                .collect::<Vec<_>>(),
            vec![1, 2]
        );
    }

    #[test]
    fn local_events_count_towards_causality() {
        // A replica that locally generated an event delivers a remote message
        // depending on that event without needing to "receive" its own.
        let mut buf = CausalBuffer::<u32>::new();
        let clock = buf.record_local(site(1));
        assert_eq!(clock.get(site(1)), 1);

        // A remote site saw our event and replies.
        let mut remote = VectorClock::new();
        remote.merge(&clock);
        let m = msg(site(2), &mut remote, 7);
        assert_eq!(buf.receive(m).len(), 1);
    }

    #[test]
    fn redelivered_message_is_discarded_not_buffered() {
        // The headline bug: a duplicate of an already-delivered message used
        // to sit in `pending` forever. It must be dropped and counted.
        let mut sender = VectorClock::new();
        let m1 = msg(site(1), &mut sender, 1);
        let mut buf = CausalBuffer::new();
        assert_eq!(buf.receive(m1.clone()).len(), 1);

        let dup = buf.receive(m1);
        assert!(dup.is_empty());
        assert_eq!(dup.receipt, Receipt::Duplicate);
        assert_eq!(buf.pending_len(), 0, "duplicate must not be buffered");
        assert_eq!(buf.stats().duplicates_discarded, 1);
        assert_eq!(buf.high_water_mark(), 1);
    }

    #[test]
    fn duplicate_of_a_pending_message_is_discarded() {
        let mut sender = VectorClock::new();
        let _m1 = msg(site(1), &mut sender, 1);
        let m2 = msg(site(1), &mut sender, 2);
        let mut buf = CausalBuffer::new();
        assert!(buf.receive(m2.clone()).is_empty(), "m2 waits for m1");
        assert_eq!(buf.pending_len(), 1);

        let dup = buf.receive(m2);
        assert_eq!(dup.receipt, Receipt::Duplicate);
        assert_eq!(buf.pending_len(), 1, "still exactly one copy buffered");
        assert_eq!(buf.stats().duplicates_discarded, 1);
    }

    #[test]
    fn locally_recorded_events_make_remote_copies_stale() {
        let mut buf = CausalBuffer::<u32>::new();
        let clock = buf.record_local(site(1));
        // A (bounced) copy of our own event must be recognised as stale.
        let echo = CausalMessage {
            sender: site(1),
            clock,
            payload: 0,
        };
        let d = buf.receive(echo);
        assert_eq!(d.receipt, Receipt::Duplicate);
        assert_eq!(buf.pending_len(), 0);
    }

    #[test]
    fn fast_forward_discards_covered_messages_and_releases_the_rest() {
        let mut sender = VectorClock::new();
        let m1 = msg(site(1), &mut sender, 1);
        let m2 = msg(site(1), &mut sender, 2);
        let m3 = msg(site(1), &mut sender, 3);
        let m4 = msg(site(1), &mut sender, 4);

        let mut buf = CausalBuffer::new();
        assert!(buf.receive(m2.clone()).is_empty(), "m2 waits for m1");
        assert!(buf.receive(m4.clone()).is_empty(), "m4 waits too");
        assert_eq!(buf.pending_len(), 2);

        // A state sync covered the peer's first three events: m2 must be
        // discarded (its effect arrived via state), m4 becomes deliverable.
        let released = buf.fast_forward(&m3.clock);
        assert_eq!(
            released.iter().map(|m| m.payload).collect::<Vec<_>>(),
            vec![4],
            "the uncovered held-back suffix is released"
        );
        assert_eq!(buf.pending_len(), 0);
        assert_eq!(buf.stats().duplicates_discarded, 1, "m2 was covered");
        assert_eq!(buf.delivered_clock().get(site(1)), 4);

        // Late copies of covered messages are recognised as stale.
        assert_eq!(buf.receive(m1).receipt, Receipt::Duplicate);
        assert_eq!(buf.receive(m2).receipt, Receipt::Duplicate);
    }

    #[test]
    fn image_round_trip_preserves_delivery_behaviour() {
        // Fill a buffer with delivered and held-back traffic, snapshot it,
        // rebuild, and verify the rebuilt buffer releases exactly what the
        // original would have.
        let mut s1 = VectorClock::new();
        let m1 = msg(site(1), &mut s1, 1);
        let m2 = msg(site(1), &mut s1, 2);
        let m3 = msg(site(1), &mut s1, 3);
        let mut buf = CausalBuffer::new();
        assert_eq!(buf.receive(m1.clone()).len(), 1);
        assert!(buf.receive(m3.clone()).is_empty(), "m3 waits for m2");
        assert_eq!(buf.receive(m1).receipt, Receipt::Duplicate);

        let rebuilt = CausalBuffer::from_image(buf.export_image());
        assert_eq!(rebuilt.pending_len(), buf.pending_len());
        assert_eq!(rebuilt.delivered_clock(), buf.delivered_clock());
        assert_eq!(rebuilt.stats(), buf.stats());
        let mut rebuilt = rebuilt;
        let released = rebuilt.receive(m2);
        assert_eq!(
            released
                .messages
                .iter()
                .map(|m| m.payload)
                .collect::<Vec<_>>(),
            vec![2, 3],
            "the held-back m3 survived the snapshot"
        );
        assert_eq!(rebuilt.pending_len(), 0);
    }

    #[test]
    fn heavy_reordering_with_duplicates_drains_completely() {
        // 3 senders × 40 messages, delivered interleaved in reverse per-sender
        // order with every message sent twice: everything must drain and every
        // duplicate must be counted.
        let sites: Vec<SiteId> = (1..=3).map(site).collect();
        let mut clocks: Vec<VectorClock> = sites.iter().map(|_| VectorClock::new()).collect();
        let mut emitted: Vec<CausalMessage<u32>> = Vec::new();
        for k in 0..40u32 {
            for (i, &s) in sites.iter().enumerate() {
                emitted.push(msg(s, &mut clocks[i], k));
            }
        }
        let mut buf = CausalBuffer::new();
        let mut delivered = 0usize;
        for m in emitted.iter().rev() {
            delivered += buf.receive(m.clone()).len();
            delivered += buf.receive(m.clone()).len(); // immediate duplicate
        }
        assert_eq!(delivered, emitted.len());
        assert_eq!(buf.pending_len(), 0);
        assert_eq!(buf.stats().duplicates_discarded, emitted.len() as u64);
        assert_eq!(buf.stats().delivered, emitted.len() as u64);
    }
}
