//! Causal broadcast: messages are delivered only after everything that
//! happened-before them has been delivered.
//!
//! The CRDT property makes *concurrent* operations order-insensitive, but
//! causally related operations (e.g. the insert of an atom and its later
//! delete) must still be replayed in order (§2.2: "Updates received from
//! remote sites may be replayed as soon as received, as long as
//! happened-before order is satisfied"). The [`CausalBuffer`] implements the
//! classic vector-clock hold-back queue that provides exactly that guarantee
//! on top of an unreliable-ordering (but reliable-delivery) network.

use std::collections::VecDeque;

use serde::{Deserialize, Serialize};
use treedoc_core::SiteId;

use crate::clock::VectorClock;

/// A payload stamped with its sender and the sender's vector clock at send
/// time (after incrementing its own entry).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CausalMessage<T> {
    /// The sending site.
    pub sender: SiteId,
    /// The sender's clock, including this message's own event.
    pub clock: VectorClock,
    /// The payload (typically an [`Op`](treedoc_core::Op)).
    pub payload: T,
}

/// A hold-back queue that releases messages in causal order.
#[derive(Debug, Clone, Default)]
pub struct CausalBuffer<T> {
    /// What this replica has already delivered.
    delivered: VectorClock,
    /// Messages waiting for their causal predecessors.
    pending: VecDeque<CausalMessage<T>>,
    /// Highest number of simultaneously buffered messages (for diagnostics).
    high_water_mark: usize,
}

impl<T> CausalBuffer<T> {
    /// An empty buffer.
    pub fn new() -> Self {
        CausalBuffer {
            delivered: VectorClock::new(),
            pending: VecDeque::new(),
            high_water_mark: 0,
        }
    }

    /// The clock of everything delivered so far.
    pub fn delivered_clock(&self) -> &VectorClock {
        &self.delivered
    }

    /// Number of messages currently held back.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// Largest number of messages ever held back at once.
    pub fn high_water_mark(&self) -> usize {
        self.high_water_mark
    }

    /// Records a locally generated event so that later remote messages that
    /// depend on it are recognised as deliverable.
    pub fn record_local(&mut self, site: SiteId) -> VectorClock {
        self.delivered.increment(site);
        self.delivered.clone()
    }

    /// Offers a received message; returns every message (the new one and any
    /// previously buffered ones) that becomes deliverable, in causal order.
    pub fn receive(&mut self, message: CausalMessage<T>) -> Vec<CausalMessage<T>> {
        self.pending.push_back(message);
        self.high_water_mark = self.high_water_mark.max(self.pending.len());
        let mut deliverable = Vec::new();
        // Repeatedly sweep the hold-back queue until no more progress.
        loop {
            let mut progressed = false;
            let mut i = 0;
            while i < self.pending.len() {
                let ready = {
                    let m = &self.pending[i];
                    self.delivered.is_next_deliverable(m.sender, &m.clock)
                };
                if ready {
                    let m = self.pending.remove(i).expect("index in range");
                    self.delivered.merge(&m.clock);
                    deliverable.push(m);
                    progressed = true;
                } else {
                    i += 1;
                }
            }
            if !progressed {
                break;
            }
        }
        deliverable
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn site(n: u64) -> SiteId {
        SiteId::from_u64(n)
    }

    /// Builds the message a sender with clock `clock` would emit.
    fn msg(sender: SiteId, clock: &mut VectorClock, payload: u32) -> CausalMessage<u32> {
        clock.increment(sender);
        CausalMessage {
            sender,
            clock: clock.clone(),
            payload,
        }
    }

    #[test]
    fn in_order_messages_deliver_immediately() {
        let mut sender = VectorClock::new();
        let mut buf = CausalBuffer::new();
        for i in 0..5 {
            let delivered = buf.receive(msg(site(1), &mut sender, i));
            assert_eq!(delivered.len(), 1);
            assert_eq!(delivered[0].payload, i);
        }
        assert_eq!(buf.pending_len(), 0);
    }

    #[test]
    fn out_of_order_messages_are_held_back() {
        let mut sender = VectorClock::new();
        let m1 = msg(site(1), &mut sender, 1);
        let m2 = msg(site(1), &mut sender, 2);
        let m3 = msg(site(1), &mut sender, 3);

        let mut buf = CausalBuffer::new();
        assert!(buf.receive(m3).is_empty(), "m3 depends on m1 and m2");
        assert!(buf.receive(m2).is_empty(), "m2 depends on m1");
        assert_eq!(buf.pending_len(), 2);
        let delivered = buf.receive(m1);
        assert_eq!(
            delivered.iter().map(|m| m.payload).collect::<Vec<_>>(),
            vec![1, 2, 3],
            "releasing the missing prefix flushes the whole chain in order"
        );
        assert_eq!(buf.pending_len(), 0);
        assert!(buf.high_water_mark() >= 2);
    }

    #[test]
    fn concurrent_messages_deliver_in_any_order() {
        // Two senders that have not seen each other.
        let mut s1 = VectorClock::new();
        let mut s2 = VectorClock::new();
        let a = msg(site(1), &mut s1, 10);
        let b = msg(site(2), &mut s2, 20);
        let mut buf = CausalBuffer::new();
        assert_eq!(buf.receive(b).len(), 1);
        assert_eq!(buf.receive(a).len(), 1);
    }

    #[test]
    fn cross_site_dependency_is_respected() {
        // Site 1 emits m1; site 2 receives it and then emits m2 (which
        // causally depends on m1). A third replica receiving m2 before m1
        // must hold it back.
        let mut s1 = VectorClock::new();
        let m1 = msg(site(1), &mut s1, 1);
        let mut s2 = VectorClock::new();
        s2.merge(&m1.clock); // site 2 delivered m1
        let m2 = msg(site(2), &mut s2, 2);

        let mut buf = CausalBuffer::new();
        assert!(buf.receive(m2.clone()).is_empty());
        let delivered = buf.receive(m1);
        assert_eq!(
            delivered.iter().map(|m| m.payload).collect::<Vec<_>>(),
            vec![1, 2]
        );
    }

    #[test]
    fn local_events_count_towards_causality() {
        // A replica that locally generated an event delivers a remote message
        // depending on that event without needing to "receive" its own.
        let mut buf = CausalBuffer::<u32>::new();
        let clock = buf.record_local(site(1));
        assert_eq!(clock.get(site(1)), 1);

        // A remote site saw our event and replies.
        let mut remote = VectorClock::new();
        remote.merge(&clock);
        let m = msg(site(2), &mut remote, 7);
        assert_eq!(buf.receive(m).len(), 1);
    }
}
