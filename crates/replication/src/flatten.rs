//! Distributed flatten commitment over the wire (§4.2.1).
//!
//! The paper's structural clean-up renames identifiers, so it only takes
//! effect if **every** replica agrees no concurrent edit touched the subtree
//! ("Any distributed commitment protocol from the literature will do"). The
//! in-process coordinators of `treedoc-commit` measure the protocol shape;
//! this module runs the same agreement as **real messages** — the
//! [`Envelope`] variants `FlattenPropose`, `FlattenVote` and
//! `FlattenDecision` — so proposals contend with the drops, duplicates,
//! reordering and partitions of [`SimNetwork`](crate::network::SimNetwork).
//!
//! The pieces:
//!
//! * [`FlattenPropose`] / [`FlattenVote`] / [`FlattenDecision`] — the wire
//!   payloads. Their cost is **measured**: drivers encode each message with
//!   [`crate::wire::encode_envelope`] and count the bytes, so the protocol
//!   cost the paper leaves unevaluated is reported from real encodings;
//! * [`FlattenCoordinator`] — a round-based 2PC/3PC coordinator state
//!   machine. It owns no transport: [`tick`](FlattenCoordinator::tick)
//!   returns the messages to send this round (first transmissions and
//!   retransmissions alike) and [`on_vote`](FlattenCoordinator::on_vote)
//!   feeds replies back in, so any driver — the `treedoc-sim` scenario loop,
//!   a test, a benchmark — can pump it over a faulty network;
//! * the participant half lives on [`Replica`](crate::Replica), which votes,
//!   locks while prepared, applies the flatten on commit and tags an epoch on
//!   every operation envelope so pre-flatten traffic arriving late is
//!   detected.
//!
//! ## Votes under concurrency
//!
//! A participant votes [`Vote::Yes`] only when its delivered vector clock
//! **equals** the proposal's [`base_clock`](FlattenPropose::base_clock) (and
//! its document sees no hot activity in the subtree). Clock equality across
//! all replicas means every replica applied exactly the same operation set,
//! and — because an initiator always has its own operations in its clock —
//! that no operation exists anywhere that is not delivered everywhere. Any
//! pre-flatten message still in flight at commit time is therefore a
//! duplicate, which the duplicate-safe causal buffer discards.
//!
//! ## Blocking, and why 3PC exists
//!
//! A prepared participant is *locked*: it must not edit the subtree until the
//! decision arrives. Under 2PC a coordinator partition leaves participants
//! locked until the partition heals. Under 3PC a participant that has
//! acknowledged the *pre-commit* round knows the decision is commit and may
//! apply it unilaterally after a timeout
//! ([`Replica::flatten_tick`](crate::Replica::flatten_tick)) — the classic
//! non-blocking trade: more message rounds, less blocked time.

use std::collections::{BTreeMap, BTreeSet};

use serde::{Deserialize, Serialize};
use treedoc_commit::{CommitOutcome, CommitProtocol, FlattenProposal, Vote};
use treedoc_core::SiteId;

use crate::clock::VectorClock;
use crate::replica::Envelope;

/// Coordinator → participant: a vote request for a flatten proposal.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FlattenPropose {
    /// What is being agreed on (subtree, base revision, transaction id).
    pub proposal: FlattenProposal,
    /// Which protocol the coordinator is running (2PC or 3PC).
    pub protocol: CommitProtocol,
    /// The coordinator's delivered clock at proposal time; a participant
    /// votes Yes only if its own clock equals it (see the module docs).
    pub base_clock: VectorClock,
    /// The coordinator's flatten epoch; proposals from another epoch are
    /// rejected.
    pub epoch: u64,
}

/// Which coordinator request a [`FlattenVote`] answers. Votes are
/// deduplicated per `(txn, from, stage)`, so retransmitted requests are
/// answered idempotently.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum VoteStage {
    /// Answer to the propose/vote round.
    Vote,
    /// Acknowledgement of a 3PC pre-commit.
    AckPreCommit,
    /// Acknowledgement of the final commit/abort decision.
    AckDecision,
}

/// Participant → coordinator: a vote or a phase acknowledgement.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FlattenVote {
    /// Transaction this vote belongs to.
    pub txn: u64,
    /// The voting site.
    pub from: SiteId,
    /// Yes/No (always Yes for acknowledgements).
    pub vote: Vote,
    /// Which request this message answers.
    pub stage: VoteStage,
}

/// The decision (or 3PC pre-decision) a coordinator distributes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DecisionKind {
    /// 3PC only: every vote was Yes; participants acknowledge and may
    /// terminate with a commit if the coordinator goes silent afterwards.
    PreCommit,
    /// Apply the flatten.
    Commit,
    /// Discard the prepared state; nothing changes anywhere.
    Abort,
}

/// Coordinator → participant: a (pre-)decision for a transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FlattenDecision {
    /// Transaction this decision concludes.
    pub txn: u64,
    /// Pre-commit, commit or abort.
    pub kind: DecisionKind,
}

/// Message accounting of one coordinator run (the distributed counterpart of
/// [`CommitStats`](treedoc_commit::CommitStats), measured in actual sends).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CoordinatorStats {
    /// Protocol messages the coordinator handed to the transport
    /// (retransmissions included). Byte costs are the driver's to measure:
    /// it owns the encoding of what [`FlattenCoordinator::tick`] returns
    /// (the simulator counts `encode_envelope(..).len()` per send).
    pub messages_sent: u64,
    /// Votes and acknowledgements received (duplicates excluded).
    pub replies_received: u64,
    /// Ticks from start until the outcome was final.
    pub rounds: u64,
}

/// Internal coordinator phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// Collecting votes (retransmitting the proposal to silent voters).
    Voting,
    /// 3PC only: distributing pre-commits and collecting their acks.
    PreCommitting,
    /// Distributing the final decision until acknowledged (or timed out).
    Deciding(bool),
    /// Finished.
    Done,
}

/// How many ticks the coordinator waits for missing votes before aborting
/// (each tick retransmits the proposal to silent participants first).
pub const DEFAULT_VOTE_TIMEOUT: u64 = 60;
/// How many ticks the coordinator keeps retransmitting a decision before
/// declaring the run finished even without every acknowledgement. A
/// participant whose decision copies were *all* lost within this window
/// stays prepared; the driver must surface that as non-convergence (the
/// simulator does) — with per-message loss < 1 and ~one retransmission per
/// tick, the window makes that probability negligible.
pub const DEFAULT_DECISION_TIMEOUT: u64 = 120;

/// A round-based 2PC/3PC coordinator for one flatten proposal, transport
/// agnostic: the driver forwards inbound [`FlattenVote`]s via
/// [`on_vote`](Self::on_vote) and sends whatever [`tick`](Self::tick)
/// returns. Retransmission is built in — every tick re-sends the current
/// phase's request to participants that have not answered it, so the
/// protocol survives drops, duplicates and reordering on its own.
#[derive(Debug)]
pub struct FlattenCoordinator {
    propose: FlattenPropose,
    participants: Vec<SiteId>,
    votes: BTreeMap<SiteId, Vote>,
    pre_acks: BTreeSet<SiteId>,
    decision_acks: BTreeSet<SiteId>,
    phase: Phase,
    ticks_in_phase: u64,
    vote_timeout: u64,
    decision_timeout: u64,
    outcome: Option<CommitOutcome>,
    stats: CoordinatorStats,
}

impl FlattenCoordinator {
    /// Starts a coordinator for `propose` addressed to `participants` (the
    /// coordinator's own site must not be listed — it votes locally through
    /// its [`Replica`](crate::Replica)). No message is sent until the first
    /// [`tick`](Self::tick).
    pub fn new(propose: FlattenPropose, participants: Vec<SiteId>) -> Self {
        assert!(
            !participants.contains(&propose.proposal.proposer),
            "the coordinator does not message itself"
        );
        FlattenCoordinator {
            propose,
            participants,
            votes: BTreeMap::new(),
            pre_acks: BTreeSet::new(),
            decision_acks: BTreeSet::new(),
            phase: Phase::Voting,
            ticks_in_phase: 0,
            vote_timeout: DEFAULT_VOTE_TIMEOUT,
            decision_timeout: DEFAULT_DECISION_TIMEOUT,
            outcome: None,
            stats: CoordinatorStats::default(),
        }
    }

    /// Overrides the vote-collection timeout (in ticks).
    pub fn with_vote_timeout(mut self, ticks: u64) -> Self {
        self.vote_timeout = ticks;
        self
    }

    /// The transaction this coordinator is driving.
    pub fn txn(&self) -> u64 {
        self.propose.proposal.txn
    }

    /// The protocol being run.
    pub fn protocol(&self) -> CommitProtocol {
        self.propose.protocol
    }

    /// The outcome, once decided (the coordinator may still be
    /// retransmitting the decision — see [`is_done`](Self::is_done)).
    pub fn outcome(&self) -> Option<CommitOutcome> {
        self.outcome
    }

    /// `true` once the decision is acknowledged by every participant (or the
    /// decision retransmission window closed): no further ticks send
    /// anything.
    pub fn is_done(&self) -> bool {
        self.phase == Phase::Done
    }

    /// Message accounting so far.
    pub fn stats(&self) -> CoordinatorStats {
        self.stats
    }

    /// `true` when every remote vote is in and Yes (2PC), or every
    /// pre-commit is acknowledged (3PC): the next tick distributes the
    /// commit decision. Used by tests to cut a partition at the most
    /// interesting instant.
    pub fn ready_to_commit(&self) -> bool {
        match self.phase {
            Phase::Voting => {
                self.propose.protocol == CommitProtocol::TwoPhase && self.all_votes_yes()
            }
            Phase::PreCommitting => self.pre_acks.len() == self.participants.len(),
            _ => false,
        }
    }

    fn all_votes_yes(&self) -> bool {
        self.votes.len() == self.participants.len() && self.votes.values().all(|&v| v == Vote::Yes)
    }

    fn no_votes(&self) -> usize {
        self.votes.values().filter(|&&v| v == Vote::No).count()
    }

    /// Records an inbound vote or acknowledgement. Duplicates (network
    /// duplication, re-answers to retransmitted requests) are ignored.
    pub fn on_vote(&mut self, vote: FlattenVote) {
        if vote.txn != self.txn() || self.phase == Phase::Done {
            return;
        }
        let fresh = match vote.stage {
            VoteStage::Vote => self.votes.insert(vote.from, vote.vote).is_none(),
            VoteStage::AckPreCommit => self.pre_acks.insert(vote.from),
            VoteStage::AckDecision => self.decision_acks.insert(vote.from),
        };
        if fresh {
            self.stats.replies_received += 1;
        }
    }

    /// Advances the protocol one round and returns the messages to send:
    /// first transmissions when a phase begins, retransmissions to
    /// participants that have not answered yet. Returns an empty vector once
    /// [`outcome`](Self::outcome) is final.
    pub fn tick<Op>(&mut self) -> Vec<(SiteId, Envelope<Op>)> {
        if self.phase == Phase::Done {
            return Vec::new();
        }
        self.stats.rounds += 1;
        self.advance();
        let mut out = Vec::new();
        match self.phase {
            Phase::Voting => {
                for &p in &self.participants {
                    if !self.votes.contains_key(&p) {
                        out.push((p, Envelope::FlattenPropose(self.propose.clone())));
                    }
                }
            }
            Phase::PreCommitting => {
                let msg = FlattenDecision {
                    txn: self.txn(),
                    kind: DecisionKind::PreCommit,
                };
                for &p in &self.participants {
                    if !self.pre_acks.contains(&p) {
                        out.push((p, Envelope::FlattenDecision(msg)));
                    }
                }
            }
            Phase::Deciding(commit) => {
                let msg = FlattenDecision {
                    txn: self.txn(),
                    kind: if commit {
                        DecisionKind::Commit
                    } else {
                        DecisionKind::Abort
                    },
                };
                for &p in &self.participants {
                    if !self.decision_acks.contains(&p) {
                        out.push((p, Envelope::FlattenDecision(msg)));
                    }
                }
            }
            Phase::Done => {}
        }
        self.ticks_in_phase += 1;
        self.stats.messages_sent += out.len() as u64;
        out
    }

    /// Phase transitions, evaluated before each round's sends.
    fn advance(&mut self) {
        match self.phase {
            Phase::Voting => {
                if self.no_votes() > 0 {
                    self.enter_decision(false);
                } else if self.votes.len() == self.participants.len() {
                    match self.propose.protocol {
                        CommitProtocol::TwoPhase => self.enter_decision(true),
                        CommitProtocol::ThreePhase => {
                            self.phase = Phase::PreCommitting;
                            self.ticks_in_phase = 0;
                        }
                    }
                } else if self.ticks_in_phase >= self.vote_timeout {
                    // Some participant never answered (its vote — or our
                    // proposal — kept being lost, or it is partitioned away):
                    // abort cleanly instead of blocking forever.
                    self.enter_decision(false);
                }
            }
            Phase::PreCommitting => {
                if self.pre_acks.len() == self.participants.len() {
                    self.enter_decision(true);
                } else if self.ticks_in_phase >= self.decision_timeout {
                    // Every vote was Yes, so the decision is morally commit;
                    // participants that missed the pre-commit handle a direct
                    // commit just as well.
                    self.enter_decision(true);
                }
            }
            Phase::Deciding(_) => {
                if self.decision_acks.len() == self.participants.len()
                    || self.ticks_in_phase >= self.decision_timeout
                {
                    self.phase = Phase::Done;
                }
            }
            Phase::Done => {}
        }
    }

    fn enter_decision(&mut self, commit: bool) {
        self.phase = Phase::Deciding(commit);
        self.ticks_in_phase = 0;
        self.outcome = Some(if commit {
            CommitOutcome::Committed
        } else {
            CommitOutcome::Aborted {
                no_votes: self.no_votes().max(1),
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn site(n: u64) -> SiteId {
        SiteId::from_u64(n)
    }

    fn propose(protocol: CommitProtocol) -> FlattenPropose {
        FlattenPropose {
            proposal: FlattenProposal {
                proposer: site(1),
                subtree: Vec::new(),
                base_revision: 0,
                txn: 7,
            },
            protocol,
            base_clock: VectorClock::new(),
            epoch: 0,
        }
    }

    fn vote(from: SiteId, v: Vote, stage: VoteStage) -> FlattenVote {
        FlattenVote {
            txn: 7,
            from,
            vote: v,
            stage,
        }
    }

    #[test]
    fn two_phase_commits_after_all_yes_votes() {
        let mut c =
            FlattenCoordinator::new(propose(CommitProtocol::TwoPhase), vec![site(2), site(3)]);
        let out: Vec<(SiteId, Envelope<u32>)> = c.tick();
        assert_eq!(out.len(), 2, "propose goes to both participants");
        c.on_vote(vote(site(2), Vote::Yes, VoteStage::Vote));
        c.on_vote(vote(site(3), Vote::Yes, VoteStage::Vote));
        assert!(c.ready_to_commit());
        let out: Vec<(SiteId, Envelope<u32>)> = c.tick();
        assert!(out.iter().all(|(_, e)| matches!(
            e,
            Envelope::FlattenDecision(FlattenDecision {
                kind: DecisionKind::Commit,
                ..
            })
        )));
        assert_eq!(c.outcome(), Some(CommitOutcome::Committed));
        c.on_vote(vote(site(2), Vote::Yes, VoteStage::AckDecision));
        c.on_vote(vote(site(3), Vote::Yes, VoteStage::AckDecision));
        let out: Vec<(SiteId, Envelope<u32>)> = c.tick();
        assert!(out.is_empty(), "all acks in: the coordinator is done");
    }

    #[test]
    fn a_single_no_vote_aborts() {
        let mut c =
            FlattenCoordinator::new(propose(CommitProtocol::TwoPhase), vec![site(2), site(3)]);
        let _: Vec<(SiteId, Envelope<u32>)> = c.tick();
        c.on_vote(vote(site(2), Vote::No, VoteStage::Vote));
        let out: Vec<(SiteId, Envelope<u32>)> = c.tick();
        assert_eq!(c.outcome(), Some(CommitOutcome::Aborted { no_votes: 1 }));
        // The abort goes to everyone, including the Yes/silent voters.
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn missing_votes_abort_after_the_timeout_instead_of_hanging() {
        let mut c =
            FlattenCoordinator::new(propose(CommitProtocol::TwoPhase), vec![site(2), site(3)])
                .with_vote_timeout(5);
        c.on_vote(vote(site(2), Vote::Yes, VoteStage::Vote));
        let mut proposed = 0;
        for _ in 0..6 {
            let out: Vec<(SiteId, Envelope<u32>)> = c.tick();
            proposed += out
                .iter()
                .filter(|(_, e)| matches!(e, Envelope::FlattenPropose(_)))
                .count();
        }
        assert!(proposed >= 5, "silent voters are re-asked every tick");
        assert!(matches!(c.outcome(), Some(CommitOutcome::Aborted { .. })));
    }

    #[test]
    fn three_phase_inserts_the_pre_commit_round() {
        let mut c =
            FlattenCoordinator::new(propose(CommitProtocol::ThreePhase), vec![site(2), site(3)]);
        let _: Vec<(SiteId, Envelope<u32>)> = c.tick();
        c.on_vote(vote(site(2), Vote::Yes, VoteStage::Vote));
        c.on_vote(vote(site(3), Vote::Yes, VoteStage::Vote));
        assert!(!c.ready_to_commit(), "3PC must pre-commit first");
        let out: Vec<(SiteId, Envelope<u32>)> = c.tick();
        assert!(out.iter().all(|(_, e)| matches!(
            e,
            Envelope::FlattenDecision(FlattenDecision {
                kind: DecisionKind::PreCommit,
                ..
            })
        )));
        assert_eq!(c.outcome(), None, "no decision before the acks");
        c.on_vote(vote(site(2), Vote::Yes, VoteStage::AckPreCommit));
        c.on_vote(vote(site(3), Vote::Yes, VoteStage::AckPreCommit));
        assert!(c.ready_to_commit());
        let _: Vec<(SiteId, Envelope<u32>)> = c.tick();
        assert_eq!(c.outcome(), Some(CommitOutcome::Committed));
    }

    #[test]
    fn duplicate_votes_are_counted_once() {
        let mut c = FlattenCoordinator::new(propose(CommitProtocol::TwoPhase), vec![site(2)]);
        let _: Vec<(SiteId, Envelope<u32>)> = c.tick();
        c.on_vote(vote(site(2), Vote::Yes, VoteStage::Vote));
        c.on_vote(vote(site(2), Vote::Yes, VoteStage::Vote));
        assert_eq!(c.stats().replies_received, 1);
    }

    #[test]
    fn encoded_wire_sizes_order_propose_above_vote_above_decision() {
        use treedoc_core::{Op, Sdis};
        type Env = Envelope<Op<String, Sdis>>;
        let p = crate::wire::encode_envelope::<Op<String, Sdis>>(&Env::FlattenPropose(propose(
            CommitProtocol::TwoPhase,
        )));
        let v = crate::wire::encode_envelope::<Op<String, Sdis>>(&Env::FlattenVote(vote(
            site(2),
            Vote::Yes,
            VoteStage::Vote,
        )));
        let d = crate::wire::encode_envelope::<Op<String, Sdis>>(&Env::FlattenDecision(
            FlattenDecision {
                txn: 7,
                kind: DecisionKind::Commit,
            },
        ));
        assert!(p.len() > v.len());
        assert!(v.len() > d.len());
    }
}
