//! Binary wire codec for envelopes and WAL records.
//!
//! Builds the replication-layer encodings on the primitives of
//! [`treedoc_core::codec`]: every [`Envelope`] (operations, batches, acks and
//! the flatten-commitment messages) and every [`WalRecord`] has a compact,
//! versioned binary form. This is what actually crosses the simulated
//! network and what the durable WAL stores, so the byte counts the
//! simulator and benches report are measured, not estimated.
//!
//! ## Layout
//!
//! Envelopes open with the codec version ([`WIRE_VERSION`]) and a tag byte;
//! WAL records open with [`WAL_BINARY_TAG`] (`0x02`) and a tag byte. The
//! legacy JSON WAL records of format v1 start with `{` (`0x7B`), so the two
//! generations coexist in one log and [`crate::persist`] dispatches on the
//! first byte during recovery.
//!
//! ## Batch delta encoding
//!
//! The entries of an [`OpBatch`] are delta-encoded against their
//! predecessor: the sender is elided when unchanged, the vector clock ships
//! only its changed entries, and position identifiers share their path
//! prefix ([`treedoc_core::codec::put_pos_id`]). Since wire v3 an entry that
//! is the sequential **run continuation** of its predecessor (a
//! [`treedoc_core::spine_step`] insert — the shape every cell of a coalesced
//! run has) elides its position identifier entirely and ships as a run step:
//! one flag, one side byte and the atom. A run of sequential inserts — the
//! dominant pattern in real edit traces (§5) — thus costs one full entry
//! plus a few bytes per atom; one coalesced run travels as one batch and is
//! journaled as one WAL record.
//!
//! Like the core codec, every decoder is total: malformed input yields a
//! typed [`WireError`], never a panic or an unbounded allocation.

use std::fmt;

use treedoc_commit::{CommitProtocol, FlattenProposal, Vote};
use treedoc_core::codec::{
    get_bytes, get_sides, get_site, get_u8, get_varint, put_bytes, put_sides, put_site, put_u8,
    put_varint, WirePayload,
};
use treedoc_core::{SiteId, WIRE_MIN_VERSION, WIRE_VERSION};

use crate::causal::CausalMessage;
use crate::clock::VectorClock;
use crate::flatten::{DecisionKind, FlattenDecision, FlattenPropose, FlattenVote, VoteStage};
use crate::persist::WalRecord;
use crate::replica::{Envelope, OpBatch};
use crate::sync::{RangeDigest, SnapshotChunk, SnapshotOffer, SyncDigests, SyncRoot, SyncRuns};

/// First byte of a binary (format v2) WAL record. Distinct from `{` (0x7B),
/// the first byte of every legacy JSON (format v1) record, so recovery can
/// tell the generations apart record by record.
pub const WAL_BINARY_TAG: u8 = 0x02;

/// Why a wire decode failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireError {
    /// The version byte names a format this decoder does not speak.
    UnsupportedVersion(u8),
    /// The input is truncated, carries an unknown tag, or is otherwise
    /// malformed.
    Malformed,
    /// The value decoded cleanly but bytes were left over.
    TrailingBytes,
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::UnsupportedVersion(v) => write!(f, "unsupported wire version {v}"),
            WireError::Malformed => write!(f, "malformed wire payload"),
            WireError::TrailingBytes => write!(f, "trailing bytes after wire payload"),
        }
    }
}

impl std::error::Error for WireError {}

// ---------------------------------------------------------------------------
// Vector clocks
// ---------------------------------------------------------------------------

/// Appends `clock`, either in full (`prev = None`) or as the set of entries
/// that changed since `prev`.
///
/// Delta encoding requires `clock` to dominate `prev` entry-wise (every site
/// of `prev` present with a value ≥ `prev`'s) — true by construction for
/// consecutive stamps of one replica, asserted in debug builds.
fn put_clock(out: &mut Vec<u8>, clock: &VectorClock, prev: Option<&VectorClock>) {
    match prev {
        None => {
            put_varint(out, clock.sites() as u64);
            for (site, value) in clock.iter() {
                put_site(out, site);
                put_varint(out, value);
            }
        }
        Some(prev) => {
            debug_assert!(
                clock.dominates(prev),
                "batch clock delta requires monotone clocks"
            );
            let changed: Vec<(SiteId, u64)> = clock
                .iter()
                .filter(|&(site, value)| prev.get(site) != value)
                .collect();
            put_varint(out, changed.len() as u64);
            for (site, value) in changed {
                put_site(out, site);
                put_varint(out, value);
            }
        }
    }
}

/// Reads a clock, resolving a delta against `prev` when given.
fn get_clock(input: &mut &[u8], prev: Option<&VectorClock>) -> Option<VectorClock> {
    let n = get_varint(input)? as usize;
    // Each entry costs at least 7 bytes; an oversized claim is truncation.
    if n > input.len() / 7 + 1 {
        return None;
    }
    let mut clock = prev.cloned().unwrap_or_default();
    for _ in 0..n {
        let site = get_site(input)?;
        let value = get_varint(input)?;
        clock.set_entry(site, value);
    }
    Some(clock)
}

// ---------------------------------------------------------------------------
// Causal messages and batch entries
// ---------------------------------------------------------------------------

/// Flag bit: this entry's sender equals the previous entry's.
const ENTRY_SAME_SENDER: u8 = 0b0000_0001;
/// Flag bit: this entry's clock is the previous entry's with the sender's
/// own counter incremented by one — the shape of every stamp issued without
/// intervening remote deliveries, i.e. the dominant case inside a batch. The
/// clock is elided entirely.
const ENTRY_CLOCK_INCREMENT: u8 = 0b0000_0010;
/// Flag bit (wire v3): this entry's payload is the sequential run
/// continuation of the previous entry's — one cell of a coalesced edit run.
/// The payload ships as a run step ([`WirePayload::encode_run_step`]: for
/// operations, a side byte plus the atom) and the position identifier is
/// reconstructed at the receiver, so a whole run costs one full entry plus a
/// few bytes per atom.
const ENTRY_RUN_STEP: u8 = 0b0000_0100;

/// Appends a full (context-free) `(epoch, message)` entry — the layout of a
/// batch head and of a standalone [`Envelope::Op`] body.
fn put_entry_full<Op: WirePayload>(out: &mut Vec<u8>, epoch: u64, msg: &CausalMessage<Op>) {
    put_varint(out, epoch);
    put_site(out, msg.sender);
    put_clock(out, &msg.clock, None);
    msg.payload.encode_payload(None, out);
}

/// Appends one `(epoch, message)` batch entry, delta-encoded against the
/// previous entry (or in full when `prev = None`).
fn put_batch_entry<Op: WirePayload>(
    out: &mut Vec<u8>,
    entry: &(u64, CausalMessage<Op>),
    prev: Option<&(u64, CausalMessage<Op>)>,
) {
    let (epoch, msg) = entry;
    let Some((_, prev_msg)) = prev else {
        put_entry_full(out, *epoch, msg);
        return;
    };
    put_varint(out, *epoch);
    let same_sender = prev_msg.sender == msg.sender;
    let clock_is_increment = {
        let mut expected = prev_msg.clock.clone();
        expected.increment(msg.sender);
        expected == msg.clock
    };
    let mut flags = 0u8;
    if same_sender {
        flags |= ENTRY_SAME_SENDER;
    }
    if clock_is_increment {
        flags |= ENTRY_CLOCK_INCREMENT;
    }
    let flags_at = out.len();
    put_u8(out, flags);
    if !same_sender {
        put_site(out, msg.sender);
    }
    if !clock_is_increment {
        put_clock(out, &msg.clock, Some(&prev_msg.clock));
    }
    // Run coalescing: a payload continuing the previous entry's run ships as
    // a step; encode_run_step writes nothing when it declines, so the flag
    // patch below is the only divergence between the two layouts.
    if msg.payload.encode_run_step(&prev_msg.payload, out) {
        out[flags_at] |= ENTRY_RUN_STEP;
    } else {
        msg.payload.encode_payload(Some(&prev_msg.payload), out);
    }
}

/// Reads one batch entry back.
fn get_batch_entry<Op: WirePayload>(
    input: &mut &[u8],
    prev: Option<&(u64, CausalMessage<Op>)>,
) -> Option<(u64, CausalMessage<Op>)> {
    let epoch = get_varint(input)?;
    let msg = match prev {
        None => {
            let sender = get_site(input)?;
            let clock = get_clock(input, None)?;
            let payload = Op::decode_payload(input, None)?;
            CausalMessage {
                sender,
                clock,
                payload,
            }
        }
        Some((_, prev_msg)) => {
            let flags = get_u8(input)?;
            if flags & !(ENTRY_SAME_SENDER | ENTRY_CLOCK_INCREMENT | ENTRY_RUN_STEP) != 0 {
                return None;
            }
            let sender = if flags & ENTRY_SAME_SENDER != 0 {
                prev_msg.sender
            } else {
                get_site(input)?
            };
            let clock = if flags & ENTRY_CLOCK_INCREMENT != 0 {
                let mut clock = prev_msg.clock.clone();
                clock.increment(sender);
                clock
            } else {
                get_clock(input, Some(&prev_msg.clock))?
            };
            let payload = if flags & ENTRY_RUN_STEP != 0 {
                Op::decode_run_step(input, &prev_msg.payload)?
            } else {
                Op::decode_payload(input, Some(&prev_msg.payload))?
            };
            CausalMessage {
                sender,
                clock,
                payload,
            }
        }
    };
    Some((epoch, msg))
}

/// Encoded size of one batch entry given its predecessor — the quantity the
/// sender-side flush policy ([`crate::replica::BatchPolicy`]) meters.
pub(crate) fn batch_entry_bytes<Op: WirePayload>(
    entry: &(u64, CausalMessage<Op>),
    prev: Option<&(u64, CausalMessage<Op>)>,
) -> usize {
    let mut scratch = Vec::with_capacity(64);
    put_batch_entry(&mut scratch, entry, prev);
    scratch.len()
}

// ---------------------------------------------------------------------------
// Small enums
// ---------------------------------------------------------------------------

fn protocol_byte(p: CommitProtocol) -> u8 {
    match p {
        CommitProtocol::TwoPhase => 0,
        CommitProtocol::ThreePhase => 1,
    }
}

fn protocol_from(byte: u8) -> Option<CommitProtocol> {
    match byte {
        0 => Some(CommitProtocol::TwoPhase),
        1 => Some(CommitProtocol::ThreePhase),
        _ => None,
    }
}

fn vote_byte(v: Vote) -> u8 {
    match v {
        Vote::No => 0,
        Vote::Yes => 1,
    }
}

fn vote_from(byte: u8) -> Option<Vote> {
    match byte {
        0 => Some(Vote::No),
        1 => Some(Vote::Yes),
        _ => None,
    }
}

fn stage_byte(s: VoteStage) -> u8 {
    match s {
        VoteStage::Vote => 0,
        VoteStage::AckPreCommit => 1,
        VoteStage::AckDecision => 2,
    }
}

fn stage_from(byte: u8) -> Option<VoteStage> {
    match byte {
        0 => Some(VoteStage::Vote),
        1 => Some(VoteStage::AckPreCommit),
        2 => Some(VoteStage::AckDecision),
        _ => None,
    }
}

fn decision_byte(k: DecisionKind) -> u8 {
    match k {
        DecisionKind::PreCommit => 0,
        DecisionKind::Commit => 1,
        DecisionKind::Abort => 2,
    }
}

fn decision_from(byte: u8) -> Option<DecisionKind> {
    match byte {
        0 => Some(DecisionKind::PreCommit),
        1 => Some(DecisionKind::Commit),
        2 => Some(DecisionKind::Abort),
        _ => None,
    }
}

// ---------------------------------------------------------------------------
// Envelopes
// ---------------------------------------------------------------------------

const ENV_OP: u8 = 1;
const ENV_ACK: u8 = 2;
const ENV_OP_BATCH: u8 = 3;
const ENV_FLATTEN_PROPOSE: u8 = 4;
const ENV_FLATTEN_VOTE: u8 = 5;
const ENV_FLATTEN_DECISION: u8 = 6;
// Wire v4: state-based anti-entropy (see `crate::sync`).
const ENV_SYNC_ROOT: u8 = 7;
const ENV_SYNC_DIGESTS: u8 = 8;
const ENV_SYNC_RUNS: u8 = 9;
const ENV_SNAPSHOT_OFFER: u8 = 10;
const ENV_SNAPSHOT_CHUNK: u8 = 11;

/// Digests are uniformly distributed 64-bit values: fixed-width
/// little-endian beats a varint for them.
fn put_u64(out: &mut Vec<u8>, value: u64) {
    out.extend_from_slice(&value.to_le_bytes());
}

fn get_u64(input: &mut &[u8]) -> Option<u64> {
    let (head, rest) = input.split_first_chunk::<8>()?;
    *input = rest;
    Some(u64::from_le_bytes(*head))
}

/// Encodes an envelope into a fresh buffer.
pub fn encode_envelope<Op: WirePayload>(envelope: &Envelope<Op>) -> Vec<u8> {
    let mut out = Vec::with_capacity(64);
    encode_envelope_into(envelope, &mut out);
    out
}

/// Appends an envelope's binary form (version byte, tag, body).
pub fn encode_envelope_into<Op: WirePayload>(envelope: &Envelope<Op>, out: &mut Vec<u8>) {
    put_u8(out, WIRE_VERSION);
    match envelope {
        Envelope::Op { epoch, msg } => {
            put_u8(out, ENV_OP);
            put_entry_full(out, *epoch, msg);
        }
        Envelope::OpBatch(batch) => {
            put_u8(out, ENV_OP_BATCH);
            put_varint(out, batch.entries.len() as u64);
            let mut prev: Option<&(u64, CausalMessage<Op>)> = None;
            for entry in &batch.entries {
                put_batch_entry(out, entry, prev);
                prev = Some(entry);
            }
        }
        Envelope::Ack { from, clock } => {
            put_u8(out, ENV_ACK);
            put_site(out, *from);
            put_clock(out, clock, None);
        }
        Envelope::FlattenPropose(p) => {
            put_u8(out, ENV_FLATTEN_PROPOSE);
            put_site(out, p.proposal.proposer);
            put_sides(out, &p.proposal.subtree);
            put_varint(out, p.proposal.base_revision);
            put_varint(out, p.proposal.txn);
            put_u8(out, protocol_byte(p.protocol));
            put_clock(out, &p.base_clock, None);
            put_varint(out, p.epoch);
        }
        Envelope::FlattenVote(v) => {
            put_u8(out, ENV_FLATTEN_VOTE);
            put_varint(out, v.txn);
            put_site(out, v.from);
            put_u8(out, vote_byte(v.vote));
            put_u8(out, stage_byte(v.stage));
        }
        Envelope::FlattenDecision(d) => {
            put_u8(out, ENV_FLATTEN_DECISION);
            put_varint(out, d.txn);
            put_u8(out, decision_byte(d.kind));
        }
        Envelope::SyncRoot(r) => {
            put_u8(out, ENV_SYNC_ROOT);
            put_site(out, r.from);
            put_u64(out, r.digest);
            put_varint(out, r.cells);
            put_clock(out, &r.clock, None);
            put_u8(out, r.reply as u8);
        }
        Envelope::SyncDigests(d) => {
            put_u8(out, ENV_SYNC_DIGESTS);
            put_site(out, d.from);
            put_varint(out, d.ranges.len() as u64);
            for range in &d.ranges {
                put_bytes(out, &range.lo);
                put_bytes(out, &range.hi);
                put_u64(out, range.digest);
                put_varint(out, range.cells);
            }
        }
        Envelope::SyncRuns(r) => {
            put_u8(out, ENV_SYNC_RUNS);
            put_site(out, r.from);
            put_bytes(out, &r.lo);
            put_bytes(out, &r.hi);
            put_varint(out, r.count);
            put_bytes(out, &r.cells);
            put_u8(out, r.reply as u8);
        }
        Envelope::SnapshotOffer(o) => {
            put_u8(out, ENV_SNAPSHOT_OFFER);
            put_site(out, o.from);
            put_u64(out, o.digest);
            put_varint(out, o.total_bytes);
            put_varint(out, o.chunks);
        }
        Envelope::SnapshotChunk(c) => {
            put_u8(out, ENV_SNAPSHOT_CHUNK);
            put_site(out, c.from);
            put_varint(out, c.index);
            put_varint(out, c.total);
            put_bytes(out, &c.data);
        }
    }
}

/// Decodes an envelope, requiring the input to be consumed exactly.
pub fn decode_envelope<Op: WirePayload>(bytes: &[u8]) -> Result<Envelope<Op>, WireError> {
    let mut cursor = bytes;
    let envelope = decode_envelope_cursor(&mut cursor)?;
    if !cursor.is_empty() {
        return Err(WireError::TrailingBytes);
    }
    Ok(envelope)
}

/// Decodes an envelope off a cursor (used standalone and nested inside WAL
/// records).
fn decode_envelope_cursor<Op: WirePayload>(input: &mut &[u8]) -> Result<Envelope<Op>, WireError> {
    let version = get_u8(input).ok_or(WireError::Malformed)?;
    // v2 encodings are a strict subset of v3 (no run-step entries), and v3
    // of v4 (no sync envelopes), so one decoder reads all three
    // generations; stores and peers from before the run codec or the
    // anti-entropy protocol stay readable. The sync tags are gated on the
    // version byte below, so a v2/v3 producer claiming them is malformed.
    if !(WIRE_MIN_VERSION..=WIRE_VERSION).contains(&version) {
        return Err(WireError::UnsupportedVersion(version));
    }
    let tag = get_u8(input).ok_or(WireError::Malformed)?;
    let envelope = match tag {
        ENV_OP => {
            let (epoch, msg) = get_batch_entry(input, None).ok_or(WireError::Malformed)?;
            Envelope::Op { epoch, msg }
        }
        ENV_OP_BATCH => {
            let n = get_varint(input).ok_or(WireError::Malformed)? as usize;
            // A delta-encoded entry costs at least 4 bytes (epoch, flags,
            // op tag, path header); bound the claimed count by that floor so
            // a hostile length cannot amplify into an oversized reservation.
            if n > input.len() / 4 + 1 {
                return Err(WireError::Malformed);
            }
            let mut entries: Vec<(u64, CausalMessage<Op>)> = Vec::with_capacity(n);
            for _ in 0..n {
                let entry = get_batch_entry(input, entries.last()).ok_or(WireError::Malformed)?;
                entries.push(entry);
            }
            Envelope::OpBatch(OpBatch { entries })
        }
        ENV_ACK => {
            let from = get_site(input).ok_or(WireError::Malformed)?;
            let clock = get_clock(input, None).ok_or(WireError::Malformed)?;
            Envelope::Ack { from, clock }
        }
        ENV_FLATTEN_PROPOSE => {
            let proposer = get_site(input).ok_or(WireError::Malformed)?;
            let subtree = get_sides(input).ok_or(WireError::Malformed)?;
            let base_revision = get_varint(input).ok_or(WireError::Malformed)?;
            let txn = get_varint(input).ok_or(WireError::Malformed)?;
            let protocol = protocol_from(get_u8(input).ok_or(WireError::Malformed)?)
                .ok_or(WireError::Malformed)?;
            let base_clock = get_clock(input, None).ok_or(WireError::Malformed)?;
            let epoch = get_varint(input).ok_or(WireError::Malformed)?;
            Envelope::FlattenPropose(FlattenPropose {
                proposal: FlattenProposal {
                    proposer,
                    subtree,
                    base_revision,
                    txn,
                },
                protocol,
                base_clock,
                epoch,
            })
        }
        ENV_FLATTEN_VOTE => {
            let txn = get_varint(input).ok_or(WireError::Malformed)?;
            let from = get_site(input).ok_or(WireError::Malformed)?;
            let vote = vote_from(get_u8(input).ok_or(WireError::Malformed)?)
                .ok_or(WireError::Malformed)?;
            let stage = stage_from(get_u8(input).ok_or(WireError::Malformed)?)
                .ok_or(WireError::Malformed)?;
            Envelope::FlattenVote(FlattenVote {
                txn,
                from,
                vote,
                stage,
            })
        }
        ENV_FLATTEN_DECISION => {
            let txn = get_varint(input).ok_or(WireError::Malformed)?;
            let kind = decision_from(get_u8(input).ok_or(WireError::Malformed)?)
                .ok_or(WireError::Malformed)?;
            Envelope::FlattenDecision(FlattenDecision { txn, kind })
        }
        ENV_SYNC_ROOT if version >= 4 => {
            let from = get_site(input).ok_or(WireError::Malformed)?;
            let digest = get_u64(input).ok_or(WireError::Malformed)?;
            let cells = get_varint(input).ok_or(WireError::Malformed)?;
            let clock = get_clock(input, None).ok_or(WireError::Malformed)?;
            let reply = get_u8(input).ok_or(WireError::Malformed)? != 0;
            Envelope::SyncRoot(SyncRoot {
                from,
                digest,
                cells,
                clock,
                reply,
            })
        }
        ENV_SYNC_DIGESTS if version >= 4 => {
            let from = get_site(input).ok_or(WireError::Malformed)?;
            let n = get_varint(input).ok_or(WireError::Malformed)? as usize;
            // A range costs at least 11 bytes (two length bytes, the digest,
            // a count); bound the claimed count by that floor.
            if n > input.len() / 11 + 1 {
                return Err(WireError::Malformed);
            }
            let mut ranges = Vec::with_capacity(n);
            for _ in 0..n {
                let lo = get_bytes(input).ok_or(WireError::Malformed)?.to_vec();
                let hi = get_bytes(input).ok_or(WireError::Malformed)?.to_vec();
                let digest = get_u64(input).ok_or(WireError::Malformed)?;
                let cells = get_varint(input).ok_or(WireError::Malformed)?;
                ranges.push(RangeDigest {
                    lo,
                    hi,
                    digest,
                    cells,
                });
            }
            Envelope::SyncDigests(SyncDigests { from, ranges })
        }
        ENV_SYNC_RUNS if version >= 4 => {
            let from = get_site(input).ok_or(WireError::Malformed)?;
            let lo = get_bytes(input).ok_or(WireError::Malformed)?.to_vec();
            let hi = get_bytes(input).ok_or(WireError::Malformed)?.to_vec();
            let count = get_varint(input).ok_or(WireError::Malformed)?;
            let cells = get_bytes(input).ok_or(WireError::Malformed)?.to_vec();
            let reply = get_u8(input).ok_or(WireError::Malformed)? != 0;
            Envelope::SyncRuns(SyncRuns {
                from,
                lo,
                hi,
                count,
                cells,
                reply,
            })
        }
        ENV_SNAPSHOT_OFFER if version >= 4 => {
            let from = get_site(input).ok_or(WireError::Malformed)?;
            let digest = get_u64(input).ok_or(WireError::Malformed)?;
            let total_bytes = get_varint(input).ok_or(WireError::Malformed)?;
            let chunks = get_varint(input).ok_or(WireError::Malformed)?;
            Envelope::SnapshotOffer(SnapshotOffer {
                from,
                digest,
                total_bytes,
                chunks,
            })
        }
        ENV_SNAPSHOT_CHUNK if version >= 4 => {
            let from = get_site(input).ok_or(WireError::Malformed)?;
            let index = get_varint(input).ok_or(WireError::Malformed)?;
            let total = get_varint(input).ok_or(WireError::Malformed)?;
            let data = get_bytes(input).ok_or(WireError::Malformed)?.to_vec();
            Envelope::SnapshotChunk(SnapshotChunk {
                from,
                index,
                total,
                data,
            })
        }
        _ => return Err(WireError::Malformed),
    };
    Ok(envelope)
}

// ---------------------------------------------------------------------------
// WAL records (binary format v2)
// ---------------------------------------------------------------------------

const WAL_STAMPED: u8 = 1;
const WAL_RECEIVED: u8 = 2;
const WAL_PEERS_ENABLED: u8 = 3;
const WAL_PROPOSED: u8 = 4;
const WAL_FINISHED: u8 = 5;

const FINISHED_COMMITTED: u8 = 0b0000_0001;
const FINISHED_UNILATERAL: u8 = 0b0000_0010;

/// Encodes a WAL record in the binary v2 format (leading
/// [`WAL_BINARY_TAG`]).
pub fn encode_wal_record<Op: WirePayload>(record: &WalRecord<Op>) -> Vec<u8> {
    let mut out = Vec::with_capacity(64);
    put_u8(&mut out, WAL_BINARY_TAG);
    match record {
        WalRecord::Stamped { epoch, msg } => {
            put_u8(&mut out, WAL_STAMPED);
            put_entry_full(&mut out, *epoch, msg);
        }
        WalRecord::Received { envelope } => {
            put_u8(&mut out, WAL_RECEIVED);
            encode_envelope_into(envelope, &mut out);
        }
        WalRecord::PeersEnabled { peers } => {
            put_u8(&mut out, WAL_PEERS_ENABLED);
            put_varint(&mut out, peers.len() as u64);
            for &peer in peers {
                put_site(&mut out, peer);
            }
        }
        WalRecord::Proposed { subtree, protocol } => {
            put_u8(&mut out, WAL_PROPOSED);
            put_sides(&mut out, subtree);
            put_u8(&mut out, protocol_byte(*protocol));
        }
        WalRecord::Finished {
            txn,
            committed,
            unilateral,
        } => {
            put_u8(&mut out, WAL_FINISHED);
            put_varint(&mut out, *txn);
            let mut flags = 0u8;
            if *committed {
                flags |= FINISHED_COMMITTED;
            }
            if *unilateral {
                flags |= FINISHED_UNILATERAL;
            }
            put_u8(&mut out, flags);
        }
    }
    out
}

/// Decodes a binary v2 WAL record (the payload must start with
/// [`WAL_BINARY_TAG`]; [`crate::persist`] dispatches JSON v1 records before
/// calling this).
pub fn decode_wal_record<Op: WirePayload>(payload: &[u8]) -> Result<WalRecord<Op>, WireError> {
    let mut cursor = payload;
    let lead = get_u8(&mut cursor).ok_or(WireError::Malformed)?;
    if lead != WAL_BINARY_TAG {
        return Err(WireError::UnsupportedVersion(lead));
    }
    let tag = get_u8(&mut cursor).ok_or(WireError::Malformed)?;
    let record = match tag {
        WAL_STAMPED => {
            let (epoch, msg) = get_batch_entry(&mut cursor, None).ok_or(WireError::Malformed)?;
            WalRecord::Stamped { epoch, msg }
        }
        WAL_RECEIVED => WalRecord::Received {
            envelope: decode_envelope_cursor(&mut cursor)?,
        },
        WAL_PEERS_ENABLED => {
            let n = get_varint(&mut cursor).ok_or(WireError::Malformed)? as usize;
            if n > cursor.len() / 6 + 1 {
                return Err(WireError::Malformed);
            }
            let mut peers = Vec::with_capacity(n);
            for _ in 0..n {
                peers.push(get_site(&mut cursor).ok_or(WireError::Malformed)?);
            }
            WalRecord::PeersEnabled { peers }
        }
        WAL_PROPOSED => {
            let subtree = get_sides(&mut cursor).ok_or(WireError::Malformed)?;
            let protocol = protocol_from(get_u8(&mut cursor).ok_or(WireError::Malformed)?)
                .ok_or(WireError::Malformed)?;
            WalRecord::Proposed { subtree, protocol }
        }
        WAL_FINISHED => {
            let txn = get_varint(&mut cursor).ok_or(WireError::Malformed)?;
            let flags = get_u8(&mut cursor).ok_or(WireError::Malformed)?;
            if flags & !(FINISHED_COMMITTED | FINISHED_UNILATERAL) != 0 {
                return Err(WireError::Malformed);
            }
            WalRecord::Finished {
                txn,
                committed: flags & FINISHED_COMMITTED != 0,
                unilateral: flags & FINISHED_UNILATERAL != 0,
            }
        }
        _ => return Err(WireError::Malformed),
    };
    if !cursor.is_empty() {
        return Err(WireError::TrailingBytes);
    }
    Ok(record)
}

#[cfg(test)]
mod tests {
    use super::*;
    use treedoc_core::{Op, PathElem, PosId, Sdis, Side};

    type TestOp = Op<String, Sdis>;

    fn site(n: u64) -> SiteId {
        SiteId::from_u64(n)
    }

    fn pos(desc: &[(u8, Option<u64>)]) -> PosId<Sdis> {
        PosId::from_elems(
            desc.iter()
                .map(|&(bit, dis)| PathElem {
                    side: Side::from_bit(bit),
                    dis: dis.map(|d| Sdis::new(site(d))),
                })
                .collect(),
        )
    }

    fn clock(pairs: &[(u64, u64)]) -> VectorClock {
        let mut c = VectorClock::new();
        for &(s, v) in pairs {
            c.set_entry(site(s), v);
        }
        c
    }

    fn msg(sender: u64, pairs: &[(u64, u64)], op: TestOp) -> CausalMessage<TestOp> {
        CausalMessage {
            sender: site(sender),
            clock: clock(pairs),
            payload: op,
        }
    }

    fn round_trip(env: &Envelope<TestOp>) {
        let bytes = encode_envelope(env);
        let back: Envelope<TestOp> = decode_envelope(&bytes).expect("decodes");
        assert_eq!(&back, env);
    }

    #[test]
    fn every_envelope_variant_round_trips() {
        round_trip(&Envelope::Op {
            epoch: 3,
            msg: msg(
                1,
                &[(1, 4), (2, 7)],
                Op::Insert {
                    id: pos(&[(1, None), (0, Some(2))]),
                    atom: "hello".into(),
                },
            ),
        });
        round_trip(&Envelope::Ack {
            from: site(2),
            clock: clock(&[(1, 10), (2, 3), (9, 1)]),
        });
        round_trip(&Envelope::FlattenPropose(FlattenPropose {
            proposal: FlattenProposal {
                proposer: site(1),
                subtree: vec![Side::Left, Side::Right],
                base_revision: 42,
                txn: (1 << 32) | 7,
            },
            protocol: CommitProtocol::ThreePhase,
            base_clock: clock(&[(1, 5), (2, 5)]),
            epoch: 2,
        }));
        for stage in [
            VoteStage::Vote,
            VoteStage::AckPreCommit,
            VoteStage::AckDecision,
        ] {
            for vote in [Vote::Yes, Vote::No] {
                round_trip(&Envelope::FlattenVote(FlattenVote {
                    txn: 9,
                    from: site(3),
                    vote,
                    stage,
                }));
            }
        }
        for kind in [
            DecisionKind::PreCommit,
            DecisionKind::Commit,
            DecisionKind::Abort,
        ] {
            round_trip(&Envelope::FlattenDecision(FlattenDecision { txn: 9, kind }));
        }
    }

    #[test]
    fn batches_round_trip_and_delta_encoding_pays_off() {
        // A run of sequential inserts from one sender: consecutive paths
        // share deep prefixes and clocks differ in one entry, the exact
        // shape the delta encoding targets.
        let mut entries = Vec::new();
        let mut elems: Vec<(u8, Option<u64>)> = vec![(1, Some(1))];
        for k in 0..32u64 {
            elems.push(((k % 2) as u8, Some(1)));
            entries.push((
                0u64,
                msg(
                    1,
                    &[(1, k + 1), (2, 4)],
                    Op::Insert {
                        id: pos(&elems),
                        atom: format!("line {k}"),
                    },
                ),
            ));
        }
        let batch = Envelope::OpBatch(OpBatch {
            entries: entries.clone(),
        });
        round_trip(&batch);

        let batched = encode_envelope(&batch).len();
        let unbatched: usize = entries
            .iter()
            .map(|(epoch, m)| {
                encode_envelope(&Envelope::Op {
                    epoch: *epoch,
                    msg: m.clone(),
                })
                .len()
            })
            .sum();
        assert!(
            batched * 2 < unbatched,
            "batch {batched}B vs per-op {unbatched}B"
        );
    }

    #[test]
    fn run_step_batches_round_trip() {
        use treedoc_core::spine_successor;
        // A sequential typing run: every identifier is the spine successor
        // of the previous one, so entries 1.. ship as run steps. Interleave
        // a delete and a sender change mid-batch to force fallbacks to the
        // full layout in the same envelope.
        let mut id = pos(&[(1, Some(1))]);
        let mut entries = Vec::new();
        entries.push((
            0u64,
            msg(
                1,
                &[(1, 1)],
                Op::Insert {
                    id: id.clone(),
                    atom: "a0".into(),
                },
            ),
        ));
        for k in 1..10u64 {
            id = spine_successor(&id, Side::Right).expect("spine grows");
            entries.push((
                0u64,
                msg(
                    1,
                    &[(1, k + 1)],
                    Op::Insert {
                        id: id.clone(),
                        atom: format!("a{k}"),
                    },
                ),
            ));
        }
        entries.push((
            0,
            msg(
                1,
                &[(1, 11)],
                Op::Delete {
                    id: pos(&[(1, Some(1))]),
                },
            ),
        ));
        entries.push((
            0,
            msg(
                2,
                &[(1, 11), (2, 1)],
                Op::Insert {
                    id: pos(&[(0, Some(2))]),
                    atom: "other".into(),
                },
            ),
        ));
        let batch = Envelope::OpBatch(OpBatch {
            entries: entries.clone(),
        });
        round_trip(&batch);

        // The nine continuation entries must each cost a handful of bytes:
        // epoch + flags + side + length-prefixed atom, no identifier.
        for window in entries[..10].windows(2) {
            let bytes = batch_entry_bytes(&window[1], Some(&window[0]));
            assert!(bytes <= 6, "continuation entry cost {bytes}B");
        }
    }

    #[test]
    fn empty_batches_round_trip() {
        round_trip(&Envelope::OpBatch(OpBatch {
            entries: Vec::new(),
        }));
    }

    #[test]
    fn wal_records_round_trip() {
        let records: Vec<WalRecord<TestOp>> = vec![
            WalRecord::Stamped {
                epoch: 1,
                msg: msg(
                    2,
                    &[(2, 9)],
                    Op::Delete {
                        id: pos(&[(0, Some(2))]),
                    },
                ),
            },
            WalRecord::Received {
                envelope: Envelope::OpBatch(OpBatch {
                    entries: vec![
                        (
                            0,
                            msg(
                                1,
                                &[(1, 1)],
                                Op::Insert {
                                    id: pos(&[(0, Some(1))]),
                                    atom: "a".into(),
                                },
                            ),
                        ),
                        (
                            0,
                            msg(
                                1,
                                &[(1, 2)],
                                Op::Insert {
                                    id: pos(&[(0, Some(1)), (1, Some(1))]),
                                    atom: "b".into(),
                                },
                            ),
                        ),
                    ],
                }),
            },
            WalRecord::PeersEnabled {
                peers: vec![site(1), site(2), site(3)],
            },
            WalRecord::Proposed {
                subtree: vec![Side::Right],
                protocol: CommitProtocol::TwoPhase,
            },
            WalRecord::Finished {
                txn: 77,
                committed: true,
                unilateral: true,
            },
        ];
        for record in &records {
            let bytes = encode_wal_record(record);
            assert_eq!(bytes[0], WAL_BINARY_TAG);
            let back: WalRecord<TestOp> = decode_wal_record(&bytes).expect("decodes");
            assert_eq!(&back, record);
        }
    }

    #[test]
    fn malformed_and_truncated_input_yields_typed_errors() {
        let env: Envelope<TestOp> = Envelope::Op {
            epoch: 0,
            msg: msg(
                1,
                &[(1, 1)],
                Op::Insert {
                    id: pos(&[(0, Some(1))]),
                    atom: "x".into(),
                },
            ),
        };
        let bytes = encode_envelope(&env);
        for cut in 0..bytes.len() {
            assert!(
                decode_envelope::<TestOp>(&bytes[..cut]).is_err(),
                "prefix of length {cut} must not decode"
            );
        }
        let mut trailing = bytes.clone();
        trailing.push(0);
        assert_eq!(
            decode_envelope::<TestOp>(&trailing),
            Err(WireError::TrailingBytes)
        );
        assert_eq!(
            decode_envelope::<TestOp>(&[9, ENV_OP]),
            Err(WireError::UnsupportedVersion(9))
        );
        assert_eq!(
            decode_envelope::<TestOp>(&[WIRE_VERSION, 200]),
            Err(WireError::Malformed)
        );
        // A JSON (v1) WAL record routed to the binary decoder is refused by
        // its leading byte, not misparsed.
        assert_eq!(
            decode_wal_record::<TestOp>(b"{\"PeersEnabled\":{}}"),
            Err(WireError::UnsupportedVersion(b'{'))
        );
    }
}
