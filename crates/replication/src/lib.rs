//! # treedoc-replication
//!
//! The happened-before delivery substrate the Treedoc CRDT relies on (§1 and
//! §2.2 of the paper): operations initiated at one site must be replayed at
//! every other site in an order compatible with Lamport's happened-before
//! relation — concurrent operations may arrive in any order, which is exactly
//! the case the CRDT design makes harmless.
//!
//! The crate provides:
//!
//! * [`VectorClock`] — the causality-tracking clock each replica maintains;
//! * [`CausalMessage`] / [`CausalBuffer`] — causal broadcast: messages carry
//!   the sender's clock and a duplicate-safe hold-back queue (per-sender FIFO
//!   queues keyed by next-expected sequence number) delivers them only once
//!   their causal predecessors have been delivered, discarding stale copies;
//! * [`SimNetwork`] — a deterministic discrete-event network simulator with
//!   per-link latency, drop/duplicate/reorder-burst fault injection and
//!   partitions, used by the test suite, the `treedoc-sim` scenarios and the
//!   flatten commitment protocol;
//! * [`Replica`] — glue that owns a document, stamps locally initiated
//!   operations and replays remote ones in causal order, for any document
//!   type implementing [`ReplicatedDocument`] (provided here for
//!   [`Treedoc`](treedoc_core::Treedoc) and implementable for any other CRDT,
//!   e.g. the Logoot baseline). Its at-least-once mode logs stamped messages
//!   and retransmits them until peers acknowledge via [`Envelope::Ack`],
//!   making convergence hold on lossy links too;
//! * [`wire`] — the binary wire codec: every [`Envelope`] and
//!   [`WalRecord`] has a compact, versioned binary form built on
//!   [`treedoc_core::codec`], with [`OpBatch`] entries delta-encoded
//!   against each other (shared-prefix identifiers, elided clocks and
//!   senders). [`Replica`]'s sender-side batching ([`BatchPolicy`],
//!   [`Replica::stamp_batched`]) buffers stamps until a flush threshold
//!   and coalesces retransmission windows into single batch envelopes;
//! * [`persist`] — durability: with a [`DocStore`](treedoc_storage::DocStore)
//!   attached, a replica journals every event to a checksummed WAL before
//!   acting on it (binary v2 records by default; legacy JSON v1 logs stay
//!   recoverable behind the record-version byte — [`WalCodec`]),
//!   checkpoints on committed flattens (truncating the pre-epoch log) and
//!   recovers after a crash with its document, clock, hold-back and unacked
//!   send log intact ([`Replica::recover`]);
//! * [`sync`] — state-based anti-entropy: replicas compare incremental
//!   merkle digests, walk diverging identifier ranges in `O(log n)` digest
//!   rounds and ship only the missing runs of cells
//!   ([`Replica::sync_probe`] / [`Replica::receive_sync`]); a brand-new
//!   site bootstraps from snapshot chunks instead
//!   ([`Replica::snapshot_envelopes`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod causal;
pub mod clock;
pub mod flatten;
pub mod network;
pub mod persist;
pub mod replica;
pub mod sync;
pub mod testkit;
pub mod wire;

pub use causal::{
    BufferStats, CausalBuffer, CausalBufferImage, CausalMessage, Deliveries, Receipt,
};
pub use clock::{ClockOrdering, VectorClock};
pub use flatten::{
    CoordinatorStats, DecisionKind, FlattenCoordinator, FlattenDecision, FlattenPropose,
    FlattenVote, VoteStage,
};
pub use network::{LinkConfig, NetworkEvent, SimNetwork};
pub use persist::{PersistentDocument, RecoverError, RecoveryReport, WalCodec, WalRecord};
pub use replica::{
    BatchPolicy, Envelope, FlattenDocument, OpBatch, Replica, ReplicatedDocument, SyncEffect,
};
pub use sync::{
    RangeDigest, SnapshotChunk, SnapshotOffer, SyncConfig, SyncDigests, SyncDocument, SyncRoot,
    SyncRuns,
};
pub use wire::{decode_envelope, encode_envelope, WireError};
