//! Durable replicas: the glue between [`Replica`](crate::Replica) and the
//! [`DocStore`](treedoc_storage::DocStore) of `treedoc-storage`.
//!
//! The persistence model is **write-ahead redo logging over the existing
//! message handlers**:
//!
//! * every externally visible event that mutates a replica — a stamped local
//!   operation, a received envelope, an at-least-once peer registration, a
//!   flatten proposal or conclusion — is serialised as a [`WalRecord`] and
//!   appended to the store *before* the replica acts on it
//!   (persist-before-deliver). Records are written in the compact binary
//!   format of [`crate::wire`] (generation v2); logs written by the legacy
//!   JSON generation (v1) are still replayed record by record, dispatched
//!   on the leading byte ([`WalCodec`]);
//! * a checkpoint ([`Replica::persist_checkpoint`](crate::Replica::persist_checkpoint),
//!   and automatically on every committed flatten) writes a
//!   [`Snapshot`] of the whole replica — the §5.2
//!   disk image of the tree plus the vector clock, flatten epoch,
//!   acknowledgement table, send log and hold-back queue — and truncates the
//!   WAL, since every logged record is folded into the snapshot. The
//!   committed flatten epoch of §4.2.1 is thereby the natural log-compaction
//!   point;
//! * recovery ([`Replica::recover`](crate::Replica::recover)) loads the
//!   newest snapshot that passes hash verification and replays the WAL tail
//!   through the *same* handlers that processed the events live, so a
//!   restarted replica rejoins with its document, clock, pending hold-back
//!   and unacked send log intact.
//!
//! Replay is deterministic because every handler is deterministic in its
//! inputs; the one non-input the handlers consume — tick counts while a
//! flatten is prepared — is not logged, so the purely diagnostic
//! blocked-tick counters may undercount across a crash. Nothing that feeds
//! convergence does.

use std::fmt;

use serde::{de::DeserializeOwned, Deserialize, Serialize};
use treedoc_commit::CommitProtocol;
use treedoc_core::{Atom, Disambiguator, HasSource, Op, Side, SiteId, Treedoc, TreedocConfig};
use treedoc_storage::{
    content_hash64, DecodeError, DisCodec, DiskImage, Snapshot, SnapshotError, StorageError,
};

use crate::causal::CausalMessage;
use crate::replica::{Envelope, ReplicatedDocument};

/// Snapshot section holding the §5.2 structure stream of the tree.
pub const SECTION_STRUCTURE: &str = "tree.structure";
/// Snapshot section holding the atom table (JSON).
pub const SECTION_ATOMS: &str = "tree.atoms";
/// Snapshot section holding the document-level state (revision counter,
/// configuration, disambiguator source, atom-table hash).
pub const SECTION_DOC: &str = "doc.state";
/// Snapshot section holding the replication-level state (clock, send log,
/// acknowledgement table, flatten role).
pub const SECTION_REPLICA: &str = "replica";

/// One redo-log record: an event the replica persisted before acting on it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum WalRecord<Op> {
    /// A locally initiated operation, as stamped (implies the local edit:
    /// replay re-applies the payload and re-enters it into the send log).
    Stamped {
        /// The flatten epoch the operation was stamped in.
        epoch: u64,
        /// The stamped message.
        msg: CausalMessage<Op>,
    },
    /// An envelope received from the network, logged before delivery.
    Received {
        /// The envelope exactly as received.
        envelope: Envelope<Op>,
    },
    /// The at-least-once peer set was (re-)registered.
    PeersEnabled {
        /// The peers passed to `enable_at_least_once`.
        peers: Vec<SiteId>,
    },
    /// This replica initiated a flatten proposal (coordinator side).
    Proposed {
        /// The proposed subtree (empty = whole document).
        subtree: Vec<Side>,
        /// The commitment protocol chosen.
        protocol: CommitProtocol,
    },
    /// A flatten this replica was part of concluded.
    Finished {
        /// The transaction that concluded.
        txn: u64,
        /// `true` = committed (the flatten was applied).
        committed: bool,
        /// `true` when the commit was applied by the 3PC unilateral
        /// termination rule rather than by a received decision.
        unilateral: bool,
    },
}

/// Why a recovery attempt failed.
#[derive(Debug)]
pub enum RecoverError {
    /// The backend failed.
    Storage(StorageError),
    /// A snapshot section was missing or failed verification.
    Snapshot(SnapshotError),
    /// The tree's disk image failed to decode.
    Decode(DecodeError),
    /// A serialised section or WAL record failed to parse.
    Parse(String),
    /// The store holds no snapshot at all (a store is always seeded with a
    /// baseline snapshot by `attach_store`, so this means the store never
    /// belonged to a replica).
    NoSnapshot,
}

impl fmt::Display for RecoverError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecoverError::Storage(e) => write!(f, "recovery failed: {e}"),
            RecoverError::Snapshot(e) => write!(f, "recovery failed: {e}"),
            RecoverError::Decode(e) => write!(f, "recovery failed: tree image: {e}"),
            RecoverError::Parse(msg) => write!(f, "recovery failed: {msg}"),
            RecoverError::NoSnapshot => write!(f, "recovery failed: store holds no snapshot"),
        }
    }
}

impl std::error::Error for RecoverError {}

impl From<StorageError> for RecoverError {
    fn from(e: StorageError) -> Self {
        RecoverError::Storage(e)
    }
}

impl From<SnapshotError> for RecoverError {
    fn from(e: SnapshotError) -> Self {
        RecoverError::Snapshot(e)
    }
}

impl From<DecodeError> for RecoverError {
    fn from(e: DecodeError) -> Self {
        RecoverError::Decode(e)
    }
}

/// What [`Replica::recover`](crate::Replica::recover) salvaged.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Whether a valid snapshot was found (always true on success — a store
    /// without one fails with [`RecoverError::NoSnapshot`]).
    pub snapshot_hit: bool,
    /// Flatten epoch of the recovered snapshot.
    pub snapshot_epoch: u64,
    /// Snapshots that failed hash verification and were skipped.
    pub corrupt_snapshots_skipped: usize,
    /// WAL records replayed on top of the snapshot.
    pub wal_records_replayed: usize,
    /// Bytes read back (snapshot blob + valid WAL prefix).
    pub bytes_recovered: usize,
    /// WAL tail bytes dropped as torn or corrupt.
    pub torn_tail_bytes: usize,
}

/// Which format a replica **writes** new WAL records in. Recovery reads
/// both, record by record: binary records open with
/// [`WAL_BINARY_TAG`](crate::wire::WAL_BINARY_TAG) (`0x02`), legacy JSON
/// records with `{` (`0x7B`), so a log written across an upgrade — a v1
/// prefix followed by a v2 tail — replays without migration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WalCodec {
    /// Legacy format v1: serde-JSON text records. Only useful to produce
    /// upgrade fixtures and to keep old stores writable; new code should
    /// stay on the default.
    JsonV1,
    /// Compact binary format v2 (see [`crate::wire`]). The default.
    #[default]
    BinaryV2,
}

impl WalCodec {
    /// The record encoder this format variant writes with.
    pub(crate) fn encoder<Op>(self) -> fn(&WalRecord<Op>) -> Vec<u8>
    where
        Op: Serialize + treedoc_core::WirePayload,
    {
        match self {
            WalCodec::JsonV1 => encode_wal_record_json::<Op>,
            WalCodec::BinaryV2 => crate::wire::encode_wal_record::<Op>,
        }
    }
}

/// Serialises a WAL record in the legacy v1 form (JSON over the workspace
/// serde stack).
pub(crate) fn encode_wal_record_json<Op: Serialize>(record: &WalRecord<Op>) -> Vec<u8> {
    serde_json::to_string(record)
        .expect("WAL records serialise")
        .into_bytes()
}

/// Parses a WAL record payload of either format generation, dispatching on
/// the leading byte (binary v2 records open with `0x02`, JSON v1 records
/// with `{`).
pub(crate) fn decode_wal_record<Op>(payload: &[u8]) -> Result<WalRecord<Op>, RecoverError>
where
    Op: DeserializeOwned + treedoc_core::WirePayload,
{
    if payload.first() == Some(&crate::wire::WAL_BINARY_TAG) {
        return crate::wire::decode_wal_record(payload)
            .map_err(|e| RecoverError::Parse(format!("WAL record: {e}")));
    }
    let text = std::str::from_utf8(payload)
        .map_err(|_| RecoverError::Parse("WAL record is not UTF-8".to_string()))?;
    serde_json::from_str(text).map_err(|e| RecoverError::Parse(format!("WAL record: {e}")))
}

pub(crate) fn to_json_bytes<T: Serialize>(value: &T) -> Vec<u8> {
    serde_json::to_string(value)
        .expect("snapshot sections serialise")
        .into_bytes()
}

pub(crate) fn from_json_bytes<T: DeserializeOwned>(
    what: &str,
    bytes: &[u8],
) -> Result<T, RecoverError> {
    let text = std::str::from_utf8(bytes)
        .map_err(|_| RecoverError::Parse(format!("{what} is not UTF-8")))?;
    serde_json::from_str(text).map_err(|e| RecoverError::Parse(format!("{what}: {e}")))
}

/// A document a [`Replica`](crate::Replica) can persist and recover: it can
/// write itself into snapshot sections, rebuild itself from them, and replay
/// its *own* logged operations (which, unlike remote replay, must also keep
/// the disambiguator source ahead of every identifier it issued).
pub trait PersistentDocument: ReplicatedDocument + Sized {
    /// Writes the document into `snapshot` (sections of the implementor's
    /// choosing; [`Treedoc`] uses the §5.2 [`DiskImage`] layout).
    fn encode_sections(&self, snapshot: &mut Snapshot);

    /// Rebuilds the document from its sections.
    fn decode_sections(snapshot: &Snapshot) -> Result<Self, RecoverError>;

    /// Replays one of the document's own logged operations.
    fn replay_logged_local(&mut self, op: &Self::Op);
}

/// Document-level snapshot state stored next to the tree image.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct DocMeta<S> {
    revision: u64,
    config: TreedocConfig,
    source: S,
    /// Content hash of the atoms section, verified end-to-end after the
    /// structural decode (belt to the snapshot manifest's braces).
    atoms_hash: u64,
}

impl<A, D> PersistentDocument for Treedoc<A, D>
where
    A: Atom + std::hash::Hash,
    D: Disambiguator + HasSource + DisCodec,
    D::Source: Serialize + DeserializeOwned,
{
    fn encode_sections(&self, snapshot: &mut Snapshot) {
        let image = DiskImage::encode(&self.tree());
        let atoms = to_json_bytes(&image.atoms);
        let meta = DocMeta {
            revision: self.revision(),
            config: self.config(),
            source: self.dis_source().clone(),
            atoms_hash: content_hash64(&atoms),
        };
        snapshot.push_section(SECTION_DOC, to_json_bytes(&meta));
        snapshot.push_section(SECTION_STRUCTURE, image.structure);
        snapshot.push_section(SECTION_ATOMS, atoms);
    }

    fn decode_sections(snapshot: &Snapshot) -> Result<Self, RecoverError> {
        let meta: DocMeta<D::Source> =
            from_json_bytes("doc.state section", snapshot.require(SECTION_DOC)?)?;
        let atoms_bytes = snapshot.require(SECTION_ATOMS)?;
        if content_hash64(atoms_bytes) != meta.atoms_hash {
            return Err(RecoverError::Decode(DecodeError::BadHash));
        }
        let atoms: Vec<A> = from_json_bytes("tree.atoms section", atoms_bytes)?;
        let image = DiskImage {
            structure: snapshot.require(SECTION_STRUCTURE)?.to_vec(),
            atoms,
            stats: Default::default(),
        };
        let tree = image.decode::<D>()?;
        Ok(Treedoc::from_parts(
            tree,
            meta.source,
            meta.config,
            meta.revision,
        ))
    }

    fn replay_logged_local(&mut self, op: &Op<A, D>) {
        self.note_replayed_local(op);
        self.replay(op);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use treedoc_core::{Sdis, SiteId, Udis};

    fn site(n: u64) -> SiteId {
        SiteId::from_u64(n)
    }

    #[test]
    fn treedoc_sections_round_trip() {
        let mut doc: Treedoc<String, Sdis> = Treedoc::new(site(1));
        for i in 0..20 {
            doc.local_insert(i, format!("line {i}")).unwrap();
        }
        doc.local_delete(3).unwrap();
        let mut snapshot = Snapshot::new();
        doc.encode_sections(&mut snapshot);
        let back = <Treedoc<String, Sdis>>::decode_sections(&snapshot).unwrap();
        assert_eq!(back.to_vec(), doc.to_vec());
        assert_eq!(back.node_count(), doc.node_count());
        assert_eq!(back.site(), doc.site());
        assert_eq!(back.revision(), doc.revision());
    }

    #[test]
    fn udis_source_counter_survives_the_round_trip() {
        let mut doc: Treedoc<String, Udis> = Treedoc::new(site(4));
        for i in 0..10 {
            doc.local_insert(i, format!("u{i}")).unwrap();
        }
        let mut snapshot = Snapshot::new();
        doc.encode_sections(&mut snapshot);
        let mut back = <Treedoc<String, Udis>>::decode_sections(&snapshot).unwrap();
        // A fresh insert after recovery must not collide with any identifier
        // the original replica issued.
        let op = back.local_insert(0, "fresh".to_string()).unwrap();
        doc.apply(&op).unwrap();
        assert_eq!(doc.to_vec(), back.to_vec());
    }

    #[test]
    fn tampered_atoms_are_caught_end_to_end() {
        let mut doc: Treedoc<String, Sdis> = Treedoc::new(site(1));
        doc.local_insert(0, "x".to_string()).unwrap();
        let mut snapshot = Snapshot::new();
        doc.encode_sections(&mut snapshot);
        snapshot.push_section(SECTION_ATOMS, b"[\"evil\"]".to_vec());
        assert!(matches!(
            <Treedoc<String, Sdis>>::decode_sections(&snapshot),
            Err(RecoverError::Decode(DecodeError::BadHash))
        ));
    }

    #[test]
    fn wal_records_decode_from_both_format_generations() {
        let record: WalRecord<Op<String, Sdis>> = WalRecord::PeersEnabled {
            peers: vec![site(1), site(2)],
        };
        // Legacy v1 (JSON) and current v2 (binary) bytes both parse back.
        let v1 = WalCodec::JsonV1.encoder()(&record);
        assert_eq!(v1.first(), Some(&b'{'));
        let back: WalRecord<Op<String, Sdis>> = decode_wal_record(&v1).unwrap();
        assert_eq!(back, record);

        let v2 = WalCodec::BinaryV2.encoder()(&record);
        assert_eq!(v2.first(), Some(&crate::wire::WAL_BINARY_TAG));
        assert!(v2.len() < v1.len(), "binary {v2:?} beats JSON {v1:?}");
        let back: WalRecord<Op<String, Sdis>> = decode_wal_record(&v2).unwrap();
        assert_eq!(back, record);

        let garbage = decode_wal_record::<Op<String, Sdis>>(b"not json");
        assert!(matches!(garbage, Err(RecoverError::Parse(_))));
        let garbage = decode_wal_record::<Op<String, Sdis>>(&[0x02, 200, 1]);
        assert!(matches!(garbage, Err(RecoverError::Parse(_))));
    }
}
