//! Differential audit of the simulator's byte accounting: every scenario is
//! run twice, once plain and once with a live telemetry registry, and the
//! two independent decompositions of the wire traffic must agree.
//!
//! The `sim.wire_bytes` counter is mirrored **at the send boundary** (inside
//! the simulator's `send_env`/`broadcast_env` helpers, where no call site
//! can forget it), while the report's `network_bytes`/`ack_bytes`/
//! `protocol_bytes` are accumulated per purpose at each call site — so a
//! double-counted or missed path shows up as a byte-for-byte mismatch
//! between the two. Telemetry must also never steer the run: the instrumented
//! report has to equal the plain one exactly.

use treedoc_sim::{run, run_with, Scenario, SimReport};
use treedoc_telemetry::Registry;

fn audit(label: &str, scenario: &Scenario) -> (SimReport, Registry) {
    let plain = run(scenario);
    let registry = Registry::new();
    let report = run_with(scenario, &registry.handle());
    assert_eq!(
        plain, report,
        "{label}: telemetry observes, it never steers — instrumented run \
         must produce the identical report"
    );
    (report, registry)
}

fn assert_counters_agree(label: &str, report: &SimReport, registry: &Registry) {
    let snapshot = registry.snapshot();
    let counter = |name: &str| snapshot.counter(name).unwrap_or(0) as usize;

    // Every byte handed to the network, mirrored at the send boundary, must
    // equal the report's purpose-split accounting. `network_bytes` already
    // includes the retransmission share.
    assert_eq!(
        counter("sim.wire_bytes"),
        report.network_bytes + report.ack_bytes + report.protocol_bytes,
        "{label}: wire-boundary bytes vs report decomposition"
    );
    // Messages handed to the network: everything the net later delivered
    // (injected duplicate copies excluded — the net created those, nobody
    // sent them; discards for dead/offline/not-yet-joined sites happen
    // after delivery so they are already inside `messages_delivered`) plus
    // everything fault injection dropped. A drained run leaves nothing in
    // flight, so the two sides must match exactly.
    assert_eq!(
        counter("sim.wire_msgs") as u64,
        report.messages_delivered + report.messages_dropped - report.messages_duplicated,
        "{label}: wire-boundary messages vs report delivery accounting"
    );
    assert_eq!(
        counter("sim.retransmission_bytes"),
        report.retransmission_bytes,
        "{label}: retransmission bytes"
    );
    assert_eq!(
        counter("sim.ack_bytes"),
        report.ack_bytes,
        "{label}: ack bytes"
    );

    // The out-of-band flows (anti-entropy sessions, snapshot bootstrap)
    // bypass the network, so they are mirrored in their own counters.
    assert_eq!(
        counter("sim.sync_bytes"),
        report.sync_bytes,
        "{label}: sync bytes"
    );
    assert_eq!(
        counter("sim.sync_sessions") as u64,
        report.sync_sessions,
        "{label}: sync sessions"
    );
    assert_eq!(
        counter("sim.sync_digest_msgs") as u64,
        report.sync_digest_msgs,
        "{label}: sync digest messages"
    );
    assert_eq!(
        counter("sim.sync_run_msgs") as u64,
        report.sync_run_msgs,
        "{label}: sync run messages"
    );
    assert_eq!(
        counter("sim.sync_cells") as u64,
        report.sync_cells,
        "{label}: sync cells"
    );
    assert_eq!(
        counter("sim.snapshot_bytes"),
        report.snapshot_bytes,
        "{label}: snapshot bootstrap bytes"
    );
}

fn audit_and_check(label: &str, scenario: &Scenario) -> SimReport {
    let (report, registry) = audit(label, scenario);
    assert!(report.converged, "{label}: scenario must converge");
    assert_counters_agree(label, &report, &registry);
    report
}

#[test]
fn clean_run_counters_agree() {
    audit_and_check("clean", &Scenario::default());
}

#[test]
fn lossy_retransmission_counters_agree() {
    let report = audit_and_check("faulty", &Scenario::faulty());
    assert!(
        report.retransmission_bytes > 0,
        "faulty scenario must exercise the retransmission path"
    );
}

#[test]
fn batched_counters_agree() {
    let report = audit_and_check("batched", &Scenario::batched_faulty(8));
    assert!(
        report.op_batches_sent > 0,
        "batched scenario must exercise the batch-flush path"
    );
}

#[test]
fn anti_entropy_counters_agree() {
    let report = audit_and_check("anti-entropy", &Scenario::anti_entropy_faulty());
    assert!(
        report.sync_bytes > 0,
        "anti-entropy scenario must exercise the sync path"
    );
}

#[test]
fn late_join_counters_agree() {
    let report = audit_and_check("late-join", &Scenario::late_joiner(4));
    assert!(
        report.snapshot_bytes > 0,
        "late joiner must exercise the snapshot bootstrap path"
    );
}

#[test]
fn offline_gap_counters_agree() {
    audit_and_check("offline-retransmit", &Scenario::offline_gap(1, 2, 8, false));
    audit_and_check(
        "offline-anti-entropy",
        &Scenario::offline_gap(1, 2, 8, true),
    );
}

#[test]
fn durable_crash_counters_agree() {
    audit_and_check("crash", &Scenario::crash_faulty(1, 4, 8));
}
