//! Randomised cooperative-editing scenarios, including faulty-network runs
//! and the distributed flatten commitment protocol carried over the wire.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use treedoc_commit::{CommitOutcome, CommitProtocol};
use treedoc_core::{Op, Sdis, SiteId, Treedoc, TreedocConfig};
use treedoc_replication::{
    decode_envelope, encode_envelope, BatchPolicy, Envelope, FlattenCoordinator, LinkConfig,
    NetworkEvent, Replica, SimNetwork, SyncConfig,
};
use treedoc_storage::DocStore;
use treedoc_telemetry::{Counter, Telemetry};

/// A crash/restart fault: kill one site at an edit round, losing its entire
/// in-memory state, then restart it from its durable store
/// ([`Replica::recover`]) at a later round. Requires
/// [`durable`](Scenario::durable) and [`retransmit`](Scenario::retransmit)
/// (the restarted replica catches up on what it missed through the
/// at-least-once protocol, exactly as if the messages had been lost in
/// flight).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CrashSchedule {
    /// Index of the site to kill (must not be 0 — the first site coordinates
    /// flatten proposals and serves as the convergence reference).
    pub site: usize,
    /// Edit round at which the site dies.
    pub crash_round: usize,
    /// Round at which it restarts from its store; a value past the edit
    /// rounds restarts it at the start of the drain phase.
    pub restart_round: usize,
}

/// An offline gap: one site's process is unreachable for a window of edit
/// rounds — everything the network delivers to it during the window is
/// discarded (the process is down), and it performs no edits. Unlike a
/// [`CrashSchedule`] the replica object itself survives (its clock and
/// document are intact), so the site models a laptop going offline rather
/// than a process dying: it catches up afterwards either through
/// at-least-once retransmission or through a state-based anti-entropy
/// session, whichever the scenario enables.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct OfflineWindow {
    /// Index of the site that goes offline (must not be 0 — the first site
    /// is the convergence reference and sync hub).
    pub site: usize,
    /// First edit round of the gap (inclusive).
    pub from_round: usize,
    /// First edit round after the gap; a value past the edit rounds keeps
    /// the site offline until the drain phase.
    pub to_round: usize,
}

/// Description of one simulated editing session.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Scenario {
    /// Number of replicas (sites).
    pub sites: usize,
    /// Local edits initiated per site.
    pub edits_per_site: usize,
    /// Probability that an edit is a delete rather than an insert.
    pub delete_ratio: f64,
    /// How many edits a site performs before its batch is broadcast
    /// (1 = every edit is broadcast immediately).
    pub burst: usize,
    /// Sender-side operation batching: operations are buffered and shipped
    /// as one [`Envelope::OpBatch`] once this many accumulate (or
    /// [`batch_max_bytes`](Self::batch_max_bytes) is hit). `1` disables
    /// batching — every operation ships in its own envelope, the pre-batching
    /// behaviour.
    pub batch_max_ops: usize,
    /// Byte half of the flush policy: a batch also flushes once its binary
    /// encoding reaches this size. Ignored while
    /// [`batch_max_ops`](Self::batch_max_ops) is 1.
    pub batch_max_bytes: usize,
    /// Whether the §4.1 balancing strategies are enabled.
    pub balancing: bool,
    /// Simulate a temporary partition of the first site for the middle third
    /// of the run.
    pub partition_first_site: bool,
    /// Probability that the network silently drops a message. Requires
    /// [`retransmit`](Self::retransmit) to still converge.
    pub drop_prob: f64,
    /// Probability that the network delivers a message twice.
    pub duplicate_prob: f64,
    /// Probability that a message is delayed by a reorder burst, overtaking
    /// later traffic.
    pub reorder_burst_prob: f64,
    /// Enables at-least-once delivery: replicas log stamped messages,
    /// exchange cumulative acks and retransmit whatever peers miss.
    pub retransmit: bool,
    /// Every `k` edit rounds the first site proposes a distributed flatten of
    /// the whole document, carried as `Envelope::Flatten*` messages over the
    /// faulty network (§4.2.1). Mid-run proposals contend with concurrent
    /// edits (and usually abort); when set, one extra proposal runs at final
    /// quiescence and demonstrates the committed path. `None` disables the
    /// protocol.
    pub flatten_cadence: Option<usize>,
    /// Which commitment protocol flatten proposals run under (2PC or 3PC).
    pub flatten_protocol: CommitProtocol,
    /// Attach a durable [`DocStore`] (in-memory backend) to every replica:
    /// each stamps/receives through a checksummed WAL and checkpoints on
    /// committed flattens. Required by [`crash`](Self::crash).
    pub durable: bool,
    /// Every `k` edit rounds each durable replica writes a checkpoint
    /// (snapshot + WAL truncation), independent of flatten commits. `None`
    /// leaves compaction to flatten commits alone.
    pub snapshot_cadence: Option<usize>,
    /// Kill one site mid-run and restart it from its store.
    pub crash: Option<CrashSchedule>,
    /// State-based anti-entropy: instead of (or in addition to) at-least-once
    /// retransmission, the drain phase repairs diverged replicas by running
    /// merkle-digest sync sessions between the first site and every other
    /// site — `O(log n)` digest rounds per session, shipping only the runs of
    /// cells that actually differ. The sessions run out-of-band (reliable,
    /// synchronous), but every message still crosses the binary wire codec
    /// and is byte-counted in [`SimReport::sync_bytes`].
    pub anti_entropy: bool,
    /// Cap on how many unacknowledged messages a coalesced retransmission
    /// batch re-ships per recovery round ([`Replica::set_retransmit_window`]).
    /// `None` re-ships the whole window at once. When set, the simulator
    /// retransmits through batch envelopes even if sender-side batching is
    /// otherwise off, so the cap is observable.
    pub retransmit_window: Option<usize>,
    /// A brand-new site (the last index) joins at this edit round: it starts
    /// with an **empty** document (not the seed), takes no part in the
    /// session until the round arrives, then bootstraps from the first site's
    /// snapshot chunks and catches up through a sync session. Requires
    /// [`anti_entropy`](Self::anti_entropy) (later losses to the joiner are
    /// repaired by sync, not retransmission).
    pub late_join: Option<usize>,
    /// Take one site offline for a window of edit rounds (see
    /// [`OfflineWindow`]). Requires [`retransmit`](Self::retransmit) or
    /// [`anti_entropy`](Self::anti_entropy) to catch the site back up.
    pub offline: Option<OfflineWindow>,
    /// RNG seed.
    pub seed: u64,
}

impl Default for Scenario {
    fn default() -> Self {
        Scenario {
            sites: 3,
            edits_per_site: 100,
            delete_ratio: 0.3,
            burst: 5,
            batch_max_ops: 1,
            batch_max_bytes: 16 * 1024,
            balancing: false,
            partition_first_site: false,
            drop_prob: 0.0,
            duplicate_prob: 0.0,
            reorder_burst_prob: 0.0,
            retransmit: false,
            flatten_cadence: None,
            flatten_protocol: CommitProtocol::TwoPhase,
            durable: false,
            snapshot_cadence: None,
            crash: None,
            anti_entropy: false,
            retransmit_window: None,
            late_join: None,
            offline: None,
            seed: 42,
        }
    }
}

impl Scenario {
    /// A lossy at-least-once session: 10% drops, 10% duplicates, 10% reorder
    /// bursts, recovered by retransmission.
    pub fn faulty() -> Self {
        Scenario {
            drop_prob: 0.1,
            duplicate_prob: 0.1,
            reorder_burst_prob: 0.1,
            retransmit: true,
            ..Scenario::default()
        }
    }

    /// A faulty session that additionally runs distributed flatten
    /// commitment under `protocol`: proposals every 4 edit rounds (which
    /// contend with concurrent edits) plus the final quiescent proposal.
    pub fn flatten_faulty(protocol: CommitProtocol) -> Self {
        Scenario {
            flatten_cadence: Some(4),
            flatten_protocol: protocol,
            ..Scenario::faulty()
        }
    }

    /// A lossy at-least-once session shipping batched operations: same fault
    /// mix as [`faulty`](Self::faulty), with up to `max_ops` operations
    /// coalesced per envelope (retransmissions included).
    pub fn batched_faulty(max_ops: usize) -> Self {
        Scenario {
            batch_max_ops: max_ops,
            ..Scenario::faulty()
        }
    }

    /// A faulty durable session in which `site` crashes at `crash_round` and
    /// restarts from its store at `restart_round`.
    pub fn crash_faulty(site: usize, crash_round: usize, restart_round: usize) -> Self {
        Scenario {
            durable: true,
            crash: Some(CrashSchedule {
                site,
                crash_round,
                restart_round,
            }),
            ..Scenario::faulty()
        }
    }

    /// The same fault mix as [`faulty`](Self::faulty), recovered by
    /// state-based anti-entropy instead of retransmission: no acks, no send
    /// logs — losses are repaired at the drain phase by merkle-digest sync
    /// sessions.
    pub fn anti_entropy_faulty() -> Self {
        Scenario {
            retransmit: false,
            anti_entropy: true,
            ..Scenario::faulty()
        }
    }

    /// A clean-network session in which a brand-new site joins at `round`
    /// via snapshot bootstrap and sync catch-up. The joiner is the last site
    /// index and starts empty.
    pub fn late_joiner(round: usize) -> Self {
        Scenario {
            anti_entropy: true,
            late_join: Some(round),
            ..Scenario::default()
        }
    }

    /// A session in which `site` is offline for `[from_round, to_round)`,
    /// catching up afterwards through anti-entropy (when `anti_entropy`) or
    /// retransmission (otherwise).
    pub fn offline_gap(
        site: usize,
        from_round: usize,
        to_round: usize,
        anti_entropy: bool,
    ) -> Self {
        Scenario {
            retransmit: !anti_entropy,
            anti_entropy,
            offline: Some(OfflineWindow {
                site,
                from_round,
                to_round,
            }),
            ..Scenario::default()
        }
    }
}

/// What a scenario run measured.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimReport {
    /// Whether every replica ended with identical content, a drained
    /// hold-back queue and (in at-least-once mode) a fully acknowledged log.
    pub converged: bool,
    /// Final document length.
    pub final_len: usize,
    /// Total operations generated across all sites.
    pub ops_generated: usize,
    /// Total messages delivered by the network.
    pub messages_delivered: u64,
    /// Messages silently dropped by fault injection.
    pub messages_dropped: u64,
    /// Extra copies injected by network duplication.
    pub messages_duplicated: u64,
    /// Stale or duplicate messages the replicas' hold-back queues discarded.
    pub duplicates_discarded: u64,
    /// Messages re-sent by the at-least-once recovery protocol.
    pub retransmissions: u64,
    /// Encoded bytes of those re-sends, one count per link crossed (already
    /// included in [`network_bytes`](Self::network_bytes)).
    pub retransmission_bytes: usize,
    /// Largest causal hold-back queue observed across replicas.
    pub max_pending: usize,
    /// Total **encoded** operation-envelope bytes handed to the network
    /// (initial broadcasts plus retransmissions, one count per link
    /// crossed) — what actually went over the wire, measured by running the
    /// binary codec on every envelope, not the §5.2 estimate the simulator
    /// used to report. Copies injected by network-level duplication are not
    /// visible to the application and are excluded. Flatten-commitment and
    /// acknowledgement traffic are reported separately in
    /// [`protocol_bytes`](Self::protocol_bytes) and
    /// [`ack_bytes`](Self::ack_bytes).
    pub network_bytes: usize,
    /// Encoded bytes of the cumulative-acknowledgement traffic of the
    /// at-least-once recovery rounds (per link crossed).
    pub ack_bytes: usize,
    /// [`Envelope::OpBatch`]es handed to the network (flush-policy emissions
    /// and coalesced retransmission windows; 0 when batching is off).
    pub op_batches_sent: u64,
    /// Final simulated time in milliseconds.
    pub sim_time_ms: u64,
    /// Rounds the first site actually spent partitioned from the rest (0
    /// when [`partition_first_site`](Scenario::partition_first_site) is off
    /// — or when the run is too short for a window, which is recorded here
    /// instead of silently claiming a partition happened).
    pub partition_rounds: usize,
    /// Flatten proposals initiated by the coordinator site.
    pub flatten_proposals: usize,
    /// Proposals that committed (every replica applied the flatten).
    pub flatten_commits: usize,
    /// Proposals that aborted (a concurrent edit, a missing vote, or the
    /// coordinator's own No vote).
    pub flatten_aborts: usize,
    /// Votes cast across all replicas (coordinator's local votes included).
    pub flatten_votes: u64,
    /// Coordinator protocol rounds summed over all proposals — the
    /// distributed-flatten latency cost the paper leaves unevaluated.
    pub commit_rounds: u64,
    /// Flatten-commitment messages handed to the network (proposals, votes,
    /// pre-commits, decisions, acknowledgements; retransmissions included).
    pub protocol_messages: u64,
    /// Encoded bytes of that commitment traffic (measured with the binary
    /// wire codec, like every byte counter in this report).
    pub protocol_bytes: usize,
    /// Ticks replicas spent locked in the prepared state — the blocking
    /// cost; compare 2PC against 3PC under a coordinator partition.
    pub flatten_blocked_rounds: u64,
    /// Commits applied unilaterally by the 3PC termination rule while the
    /// coordinator was unreachable.
    pub unilateral_commits: u64,
    /// Operations that arrived tagged with a pre-flatten epoch and were
    /// discarded as duplicates.
    pub late_epoch_ops: u64,
    /// Crash/restart cycles performed.
    pub crashes: usize,
    /// WAL records replayed by crash recoveries.
    pub wal_records_replayed: u64,
    /// Bytes read back by crash recoveries (snapshot + valid WAL prefix).
    pub recovered_bytes: u64,
    /// Recoveries that found a valid snapshot (always equals
    /// [`crashes`](Self::crashes) in a healthy run).
    pub snapshot_hits: u64,
    /// WAL records appended across all durable replicas.
    pub wal_appends: u64,
    /// Snapshots written across all durable replicas (attach baselines,
    /// cadence checkpoints and flatten-commit checkpoints).
    pub snapshots_written: u64,
    /// WAL truncations performed by those checkpoints.
    pub wal_truncations: u64,
    /// Messages the network delivered to a site while it was dead (discarded;
    /// recovered later by retransmission).
    pub messages_lost_to_crash: u64,
    /// Anti-entropy sessions run (pairwise: the first site against each
    /// other site, repeated until every replica converged).
    pub sync_sessions: u64,
    /// Root-digest probe rounds across all sessions (each session needs at
    /// least one; a second confirms convergence after repair).
    pub sync_rounds: u64,
    /// [`Envelope::SyncDigests`] messages exchanged — the subtree-walk cost,
    /// `O(log n)` per diverging range.
    pub sync_digest_msgs: u64,
    /// [`Envelope::SyncRuns`] messages exchanged — leaf ranges whose cells
    /// crossed the wire.
    pub sync_run_msgs: u64,
    /// Cells integrated from sync traffic across all replicas.
    pub sync_cells: u64,
    /// Encoded bytes of all anti-entropy traffic (probes, digests, runs; the
    /// sessions run out-of-band, so these bytes are **not** part of
    /// [`network_bytes`](Self::network_bytes)).
    pub sync_bytes: usize,
    /// Late-join snapshot bootstraps completed.
    pub snapshot_bootstraps: u64,
    /// Encoded bytes of snapshot offer/chunk traffic for those bootstraps.
    pub snapshot_bytes: usize,
    /// Messages discarded because the late joiner had not joined yet.
    pub messages_before_join: u64,
    /// Messages discarded while a site was inside its offline window.
    pub offline_losses: u64,
}

type Doc = Treedoc<String, Sdis>;
type Env = Envelope<Op<String, Sdis>>;

/// What the simulated network carries: the **encoded bytes** of an envelope.
/// Every message crossing the wire goes through the binary codec and is
/// decoded on delivery, so the byte counters in [`SimReport`] are measured
/// sizes and every simulator run doubles as an end-to-end codec round-trip
/// test.
type Wire = Vec<u8>;

/// The simulator's telemetry mirror: wire traffic measured **at the send
/// boundary** (inside [`send_env`]/[`broadcast_env`], so no call site can
/// forget it), plus the per-purpose counters the registry-driven reports
/// read. The wire counters are deliberately independent of the report's
/// own accumulators — the differential test asserts the two decompositions
/// agree byte for byte.
#[derive(Debug, Clone, Default)]
struct SimMetrics {
    wire_bytes: Counter,
    wire_msgs: Counter,
    ack_bytes: Counter,
    retransmission_bytes: Counter,
    sync_sessions: Counter,
    sync_rounds: Counter,
    sync_digest_msgs: Counter,
    sync_run_msgs: Counter,
    sync_cells: Counter,
    sync_bytes: Counter,
    snapshot_bytes: Counter,
}

impl SimMetrics {
    fn resolve(telemetry: &Telemetry) -> Self {
        SimMetrics {
            wire_bytes: telemetry.counter("sim.wire_bytes"),
            wire_msgs: telemetry.counter("sim.wire_msgs"),
            ack_bytes: telemetry.counter("sim.ack_bytes"),
            retransmission_bytes: telemetry.counter("sim.retransmission_bytes"),
            sync_sessions: telemetry.counter("sim.sync_sessions"),
            sync_rounds: telemetry.counter("sim.sync_rounds"),
            sync_digest_msgs: telemetry.counter("sim.sync_digest_msgs"),
            sync_run_msgs: telemetry.counter("sim.sync_run_msgs"),
            sync_cells: telemetry.counter("sim.sync_cells"),
            sync_bytes: telemetry.counter("sim.sync_bytes"),
            snapshot_bytes: telemetry.counter("sim.snapshot_bytes"),
        }
    }
}

/// Encodes an envelope and sends it, returning the encoded size. The bytes
/// are mirrored into `sim.wire_bytes` here, at the one point every unicast
/// passes through.
fn send_env(
    net: &mut SimNetwork<Wire>,
    metrics: &SimMetrics,
    from: SiteId,
    to: SiteId,
    env: &Env,
) -> usize {
    let bytes = encode_envelope(env);
    let len = bytes.len();
    metrics.wire_bytes.add(len as u64);
    metrics.wire_msgs.inc();
    net.send(from, to, bytes);
    len
}

/// Encodes an envelope once and broadcasts it, returning the encoded size
/// (per copy; the caller multiplies by the recipient count for per-link
/// accounting). The mirrored `sim.wire_bytes` count covers every link
/// crossed — the recipient list minus the sender itself.
fn broadcast_env(
    net: &mut SimNetwork<Wire>,
    metrics: &SimMetrics,
    from: SiteId,
    recipients: &[SiteId],
    env: &Env,
) -> usize {
    let bytes = encode_envelope(env);
    let len = bytes.len();
    let links = recipients.iter().filter(|&&r| r != from).count();
    metrics.wire_bytes.add((len * links) as u64);
    metrics.wire_msgs.add(links as u64);
    net.broadcast(from, recipients, bytes);
    len
}

/// Maximum recovery rounds (ack exchange + retransmission) the drain phase
/// attempts before declaring the run wedged. With independent per-message
/// drop probability < 1 the expected number of rounds is tiny; hitting the
/// cap means the protocol, not the dice, is broken.
const MAX_RECOVERY_ROUNDS: usize = 1000;

/// Ticks a participant may wait in the 3PC pre-committed state before
/// terminating with a unilateral commit (the non-blocking property).
pub(crate) const PRE_COMMIT_TIMEOUT_TICKS: u64 = 30;

/// The coordinator side of an in-flight flatten proposal plus the protocol
/// cost accumulators reported by [`SimReport`].
#[derive(Default)]
struct FlattenDriver {
    active: Option<FlattenCoordinator>,
    /// Whether the coordinator's own replica has applied the outcome.
    self_finished: bool,
    proposals: usize,
    commits: usize,
    aborts: usize,
    commit_rounds: u64,
    protocol_messages: u64,
    protocol_bytes: usize,
}

impl FlattenDriver {
    /// Starts a proposal at the coordinator (the first site). A local No
    /// vote aborts on the spot with zero network traffic.
    fn start_proposal(
        &mut self,
        replicas: &mut [Replica<Doc>],
        site_ids: &[SiteId],
        protocol: CommitProtocol,
    ) {
        debug_assert!(self.active.is_none(), "one proposal at a time");
        self.proposals += 1;
        match replicas[0].propose_flatten(Vec::new(), protocol) {
            Some(propose) => {
                self.active = Some(FlattenCoordinator::new(propose, site_ids[1..].to_vec()));
                self.self_finished = false;
            }
            None => self.aborts += 1,
        }
    }

    /// Advances the coordinator one protocol round: sends this round's
    /// (re)transmissions, applies the outcome to the coordinator's own
    /// replica as soon as it is decided, and retires the coordinator once
    /// every participant acknowledged.
    fn pump(
        &mut self,
        replicas: &mut [Replica<Doc>],
        site_ids: &[SiteId],
        net: &mut SimNetwork<Wire>,
        metrics: &SimMetrics,
    ) {
        let Some(coordinator) = self.active.as_mut() else {
            return;
        };
        for (to, env) in coordinator.tick::<Op<String, Sdis>>() {
            self.protocol_messages += 1;
            self.protocol_bytes += send_env(net, metrics, site_ids[0], to, &env);
        }
        if let Some(outcome) = coordinator.outcome() {
            if !self.self_finished {
                self.self_finished = true;
                let committed = outcome == CommitOutcome::Committed;
                replicas[0].finish_flatten(coordinator.txn(), committed);
                if committed {
                    self.commits += 1;
                } else {
                    self.aborts += 1;
                }
            }
        }
        if coordinator.is_done() {
            self.commit_rounds += coordinator.stats().rounds;
            self.active = None;
        }
    }
}

/// Delivers one network event to its addressee and tracks the hold-back
/// high-water mark across replicas. Votes addressed to the coordinator site
/// feed the active coordinator; flatten requests answered by participants
/// send their reply straight back through the network. Events addressed to a
/// dead (crashed, not yet restarted) site are discarded and counted — the
/// at-least-once protocol recovers them after the restart.
#[allow(clippy::too_many_arguments)]
fn deliver(
    replicas: &mut [Replica<Doc>],
    site_ids: &[SiteId],
    driver: &mut FlattenDriver,
    net: &mut SimNetwork<Wire>,
    metrics: &SimMetrics,
    event: NetworkEvent<Wire>,
    max_pending: &mut usize,
    dead: Option<SiteId>,
    lost_to_crash: &mut u64,
) {
    if dead == Some(event.to) {
        *lost_to_crash += 1;
        return;
    }
    // Every delivery decodes the bytes that actually crossed the wire; an
    // undecodable message means the codec (not the scenario) is broken.
    let envelope: Env = decode_envelope(&event.payload)
        .unwrap_or_else(|e| panic!("undecodable envelope on the wire: {e}"));
    if let Envelope::FlattenVote(vote) = &envelope {
        if event.to == site_ids[0] {
            if let Some(coordinator) = driver.active.as_mut() {
                coordinator.on_vote(*vote);
            }
            return;
        }
    }
    let idx = site_ids
        .iter()
        .position(|&s| s == event.to)
        .expect("known site");
    let (_, reply) = replicas[idx].receive_any(envelope);
    if let Some(reply) = reply {
        driver.protocol_messages += 1;
        driver.protocol_bytes += send_env(net, metrics, event.to, event.from, &reply);
    }
    *max_pending = (*max_pending).max(replicas[idx].pending());
}

/// Crash-recovery accounting accumulated across restarts.
#[derive(Default)]
struct RecoveryTotals {
    records: u64,
    bytes: u64,
    snapshot_hits: u64,
}

/// Restarts a crashed site from its durable store, folding the recovery
/// report into the totals. The batcher is transport policy, not durable
/// state, so it is re-enabled rather than recovered; whatever the dead
/// process had buffered unflushed is re-sent from the recovered send log by
/// the at-least-once protocol.
fn restart_replica(
    replicas: &mut [Replica<Doc>],
    idx: usize,
    store: DocStore,
    totals: &mut RecoveryTotals,
    batch_policy: Option<BatchPolicy>,
    telemetry: &Telemetry,
) {
    let (mut replica, report) = Replica::recover(store).expect("crash recovery must succeed");
    totals.records += report.wal_records_replayed as u64;
    totals.bytes += report.bytes_recovered as u64;
    totals.snapshot_hits += u64::from(report.snapshot_hit);
    if let Some(policy) = batch_policy {
        replica.enable_batching(policy);
    }
    replica.set_telemetry(telemetry);
    replicas[idx] = replica;
}

/// Anti-entropy accounting accumulated across sessions.
#[derive(Default)]
struct SyncTotals {
    sessions: u64,
    rounds: u64,
    digest_msgs: u64,
    run_msgs: u64,
    cells: u64,
    bytes: usize,
    snapshot_bootstraps: u64,
    snapshot_bytes: usize,
}

/// Probe rounds a single anti-entropy session may take before the run is
/// declared wedged. Each round either proves convergence or ships cells both
/// ways, so a handful suffices; hitting the cap means the protocol is broken.
const MAX_SYNC_ROUNDS: usize = 64;

/// Runs one complete anti-entropy session between replicas `a` and `b`:
/// `a` probes, replies ping-pong between the two until a round ends with
/// equal root digests on both sides. The session is out-of-band — reliable
/// and synchronous, unlike the lossy operation traffic — but every message
/// still round-trips through the binary wire codec and its encoded size is
/// counted, so [`SimReport`] compares sync cost against retransmission cost
/// on measured bytes.
fn sync_pair(
    replicas: &mut [Replica<Doc>],
    a: usize,
    b: usize,
    config: &SyncConfig,
    totals: &mut SyncTotals,
    metrics: &SimMetrics,
) {
    totals.sessions += 1;
    metrics.sync_sessions.inc();
    for _ in 0..MAX_SYNC_ROUNDS {
        totals.rounds += 1;
        metrics.sync_rounds.inc();
        let mut queue: Vec<(usize, Env)> = vec![(b, replicas[a].sync_probe())];
        let mut converged = false;
        while let Some((to, env)) = queue.pop() {
            let bytes = encode_envelope(&env);
            totals.bytes += bytes.len();
            metrics.sync_bytes.add(bytes.len() as u64);
            match &env {
                Envelope::SyncDigests(_) => {
                    totals.digest_msgs += 1;
                    metrics.sync_digest_msgs.inc();
                }
                Envelope::SyncRuns(_) => {
                    totals.run_msgs += 1;
                    metrics.sync_run_msgs.inc();
                }
                _ => {}
            }
            let env: Env = decode_envelope(&bytes)
                .unwrap_or_else(|e| panic!("undecodable sync envelope: {e}"));
            let effect = replicas[to].receive_sync(env, config);
            totals.cells += effect.cells_integrated as u64;
            metrics.sync_cells.add(effect.cells_integrated as u64);
            converged |= effect.converged;
            let reply_to = if to == a { b } else { a };
            queue.extend(effect.replies.into_iter().map(|e| (reply_to, e)));
        }
        if converged {
            return;
        }
    }
    panic!("anti-entropy session failed to converge");
}

/// Bootstraps the late joiner from the donor's snapshot chunks, then runs a
/// sync session so the joiner also adopts the donor's causal clock (making
/// late copies of already-absorbed operations discardable duplicates).
fn bootstrap_joiner(
    replicas: &mut [Replica<Doc>],
    donor: usize,
    joiner: usize,
    config: &SyncConfig,
    totals: &mut SyncTotals,
    metrics: &SimMetrics,
) {
    let mut bootstrapped = false;
    for env in replicas[donor].snapshot_envelopes(config) {
        let bytes = encode_envelope(&env);
        totals.snapshot_bytes += bytes.len();
        metrics.snapshot_bytes.add(bytes.len() as u64);
        let env: Env = decode_envelope(&bytes)
            .unwrap_or_else(|e| panic!("undecodable snapshot envelope: {e}"));
        bootstrapped |= replicas[joiner].receive_sync(env, config).bootstrapped;
    }
    assert!(bootstrapped, "snapshot bootstrap must complete");
    totals.snapshot_bootstraps += 1;
    sync_pair(replicas, donor, joiner, config, totals, metrics);
}

/// Runs a scenario to completion (all messages delivered, all losses
/// recovered when retransmission is on) and checks convergence.
pub fn run(scenario: &Scenario) -> SimReport {
    run_with(scenario, &Telemetry::disabled())
}

/// Like [`run`], but with every replica, store and wire boundary bound to
/// `telemetry`: the registry afterwards holds the run's wire/sync/latency
/// instruments (the `sim.*`, `replica.*` and `store.*` families). The report
/// itself is byte-identical to a plain [`run`] — telemetry observes, it
/// never steers.
pub fn run_with(scenario: &Scenario, telemetry: &Telemetry) -> SimReport {
    let metrics = SimMetrics::resolve(telemetry);
    assert!(
        scenario.sites >= 2,
        "a cooperative session needs at least two sites"
    );
    assert!(
        scenario.drop_prob == 0.0 || scenario.retransmit || scenario.anti_entropy,
        "a lossy network cannot converge without retransmission or anti-entropy"
    );
    assert!(
        !(scenario.anti_entropy && scenario.flatten_cadence.is_some()),
        "anti-entropy and flatten commitment are not combined in the simulator"
    );
    assert!(
        !(scenario.anti_entropy && scenario.crash.is_some()),
        "crash recovery catches up via retransmission, not anti-entropy"
    );
    let mut rng = StdRng::seed_from_u64(scenario.seed);
    let site_ids: Vec<SiteId> = (1..=scenario.sites as u64).map(SiteId::from_u64).collect();
    let config = if scenario.balancing {
        TreedocConfig::balanced()
    } else {
        TreedocConfig::default()
    };

    // The late joiner is always the last site index; until its join round it
    // is absent — no seed document, no edits, and traffic addressed to it is
    // discarded.
    let joiner: Option<usize> = scenario.late_join.map(|_| scenario.sites - 1);
    let mut joined = scenario.late_join.is_none();

    // Everyone starts from the same exploded seed document — except the late
    // joiner, which begins with an empty document of its own.
    let seed_doc: Vec<String> = (0..10).map(|i| format!("seed line {i}")).collect();
    let mut replicas: Vec<Replica<Doc>> = site_ids
        .iter()
        .enumerate()
        .map(|(i, &s)| {
            let doc = if joiner == Some(i) {
                Doc::with_config(s, config)
            } else {
                Doc::from_atoms_with_config(s, &seed_doc, config)
            };
            let mut replica = Replica::new(s, doc);
            replica.set_telemetry(telemetry);
            replica
        })
        .collect();
    if scenario.retransmit {
        for r in replicas.iter_mut() {
            r.enable_at_least_once(&site_ids);
            r.set_retransmit_window(scenario.retransmit_window);
        }
    }
    if scenario.durable {
        for r in replicas.iter_mut() {
            r.attach_store(DocStore::in_memory())
                .expect("in-memory store attach cannot fail");
        }
    }
    let batch_policy = (scenario.batch_max_ops > 1).then_some(BatchPolicy {
        max_ops: scenario.batch_max_ops,
        max_bytes: scenario.batch_max_bytes,
    });
    if let Some(policy) = batch_policy {
        for r in replicas.iter_mut() {
            r.enable_batching(policy);
        }
    }

    let link = LinkConfig::default()
        .with_drop_prob(scenario.drop_prob)
        .with_duplicate_prob(scenario.duplicate_prob)
        .with_reorder_burst(scenario.reorder_burst_prob, 250);
    let mut net: SimNetwork<Wire> = SimNetwork::new(link, scenario.seed);
    let mut ops_generated = 0usize;
    let mut network_bytes = 0usize;
    let mut retransmission_bytes = 0usize;
    let mut ack_bytes = 0usize;
    let mut op_batches_sent = 0u64;
    let mut max_pending = 0usize;

    let mut driver = FlattenDriver::default();

    let total_rounds = scenario.edits_per_site.div_ceil(scenario.burst.max(1));

    assert!(
        scenario.snapshot_cadence.is_none() || scenario.durable,
        "a snapshot cadence requires durable stores"
    );
    if let Some(cs) = scenario.crash {
        assert!(scenario.durable, "a crash schedule requires durable stores");
        assert!(
            scenario.retransmit,
            "a restarted site recovers missed traffic via retransmission"
        );
        assert!(
            cs.site >= 1 && cs.site < scenario.sites,
            "crash site out of range (site 0 is the reference and coordinator)"
        );
        assert!(
            cs.crash_round < cs.restart_round,
            "restart follows the crash"
        );
        assert!(
            cs.crash_round < total_rounds,
            "the crash must land within the edit rounds"
        );
    }
    if let Some(join_round) = scenario.late_join {
        assert!(
            scenario.anti_entropy,
            "a late joiner catches up via anti-entropy"
        );
        assert!(
            !scenario.retransmit,
            "a late joiner is not a registered at-least-once peer"
        );
        assert!(
            join_round < total_rounds,
            "the join must land within the edit rounds"
        );
        assert!(
            scenario.crash.is_none() && scenario.offline.is_none(),
            "one membership fault per run"
        );
    }
    if let Some(ow) = scenario.offline {
        assert!(
            scenario.retransmit || scenario.anti_entropy,
            "an offline site needs retransmission or anti-entropy to catch up"
        );
        assert!(
            ow.site >= 1 && ow.site < scenario.sites,
            "offline site out of range (site 0 is the reference)"
        );
        assert!(ow.from_round < ow.to_round, "the gap must be non-empty");
        assert!(
            ow.from_round < total_rounds,
            "the gap must start within the edit rounds"
        );
        assert!(scenario.crash.is_none(), "one membership fault per run");
    }
    // The dead site's index and its surviving store, while crashed.
    let mut dead: Option<(usize, DocStore)> = None;
    let mut crashes = 0usize;
    let mut lost_to_crash = 0u64;
    let mut recovery = RecoveryTotals::default();
    let sync_config = SyncConfig::default();
    let mut sync_totals = SyncTotals::default();
    let mut messages_before_join = 0u64;
    let mut offline_losses = 0u64;
    // Partition window of the middle third, clamped so the heal lands at
    // least one round after the cut: short runs used to compute the same
    // round for both (`total_rounds / 3 == 2 * total_rounds / 3`), silently
    // partitioning and healing within one round — i.e. not at all — while
    // the report still suggested a partition had been exercised.
    let partition_window =
        if scenario.partition_first_site && scenario.sites >= 2 && total_rounds > 0 {
            let start = total_rounds / 3;
            let end = ((2 * total_rounds) / 3).max(start + 1);
            Some((start, end))
        } else {
            None
        };
    let partition_rounds = partition_window.map_or(0, |(start, end)| end.min(total_rounds) - start);

    for round in 0..total_rounds {
        if let Some(cs) = scenario.crash {
            if round == cs.restart_round {
                if let Some((idx, store)) = dead.take() {
                    restart_replica(
                        &mut replicas,
                        idx,
                        store,
                        &mut recovery,
                        batch_policy,
                        telemetry,
                    );
                }
            }
            if round == cs.crash_round && crashes == 0 {
                // Death of the process: the replica object (clock, hold-back,
                // send log, document) is gone; only its store survives.
                let store = replicas[cs.site]
                    .detach_store()
                    .expect("durable replica has a store");
                replicas[cs.site] = Replica::new(site_ids[cs.site], Doc::new(site_ids[cs.site]));
                dead = Some((cs.site, store));
                crashes += 1;
            }
        }
        let dead_site = dead.as_ref().map(|&(idx, _)| site_ids[idx]);

        if let Some((start, end)) = partition_window {
            if round == start {
                for &other in &site_ids[1..] {
                    net.partition_both(site_ids[0], other);
                }
            }
            if round == end {
                for &other in &site_ids[1..] {
                    net.heal_both(site_ids[0], other);
                }
            }
        }

        // The late joiner arrives: the first site donates a snapshot (offer +
        // chunks over the wire codec), the joiner adopts it — keeping its own
        // identity — and one sync session transfers the donor's causal clock.
        // From here on the joiner edits and receives like everyone else.
        if scenario.late_join == Some(round) && !joined {
            joined = true;
            bootstrap_joiner(
                &mut replicas,
                0,
                joiner.expect("late_join implies a joiner"),
                &sync_config,
                &mut sync_totals,
                &metrics,
            );
        }
        // The site currently inside its offline window, if any.
        let offline_site: Option<SiteId> = scenario
            .offline
            .filter(|ow| round >= ow.from_round && round < ow.to_round)
            .map(|ow| site_ids[ow.site]);
        let absent_site: Option<SiteId> = (!joined).then(|| site_ids[joiner.expect("unjoined")]);

        // Each site performs a burst of local edits and broadcasts them —
        // unless it is dead, offline, not yet joined, or locked prepared by
        // an in-flight flatten proposal (edits in the subtree must wait for
        // the decision).
        for i in 0..replicas.len() {
            if Some(site_ids[i]) == dead_site
                || Some(site_ids[i]) == offline_site
                || Some(site_ids[i]) == absent_site
                || replicas[i].is_flatten_prepared()
            {
                continue;
            }
            for _ in 0..scenario.burst.max(1) {
                let op = {
                    let replica = &mut replicas[i];
                    let doc = replica.doc_mut();
                    let len = doc.len();
                    if len > 1 && rng.gen_bool(scenario.delete_ratio) {
                        let idx = rng.gen_range(0..len);
                        doc.local_delete(idx).expect("index in range")
                    } else {
                        let idx = rng.gen_range(0..=len);
                        let text = format!("site{} round{} {}", i + 1, round, rng.gen::<u32>());
                        doc.local_insert(idx, text).expect("index in range")
                    }
                };
                ops_generated += 1;
                // `stamp_batched` degenerates to one envelope per op while
                // batching is off, so a single call site serves both modes.
                // Byte accounting happens per envelope actually emitted, with
                // the real encoded size, one count per link crossed.
                if let Some(env) = replicas[i].stamp_batched(op) {
                    op_batches_sent += u64::from(matches!(env, Envelope::OpBatch(_)));
                    network_bytes +=
                        broadcast_env(&mut net, &metrics, site_ids[i], &site_ids, &env)
                            * (scenario.sites - 1);
                }
            }
        }

        // Flatten cadence: the first site proposes a whole-document flatten,
        // contending with whatever the network and the other sites are doing.
        if let Some(cadence) = scenario.flatten_cadence {
            let cadence = cadence.max(1);
            if driver.active.is_none() && round % cadence == cadence - 1 {
                driver.start_proposal(&mut replicas, &site_ids, scenario.flatten_protocol);
            }
        }

        // Advance the commitment protocol one round on both sides.
        for r in replicas.iter_mut() {
            let _ = r.flatten_tick(PRE_COMMIT_TIMEOUT_TICKS);
        }
        driver.pump(&mut replicas, &site_ids, &mut net, &metrics);

        // Let some of the traffic flow between rounds (not all of it, so
        // concurrency actually happens).
        let deliver_now = net.in_flight() / 2;
        for _ in 0..deliver_now {
            let Some(event) = net.step() else { break };
            // An absent joiner or an offline process drops whatever arrives;
            // the catch-up mechanism repairs the gap later.
            if absent_site == Some(event.to) {
                messages_before_join += 1;
                continue;
            }
            if offline_site == Some(event.to) {
                offline_losses += 1;
                continue;
            }
            deliver(
                &mut replicas,
                &site_ids,
                &mut driver,
                &mut net,
                &metrics,
                event,
                &mut max_pending,
                dead_site,
                &mut lost_to_crash,
            );
        }

        // Snapshot cadence: every k rounds each live durable replica writes a
        // checkpoint, bounding how much WAL a crash at the worst instant
        // would have to replay.
        if let Some(k) = scenario.snapshot_cadence {
            let k = k.max(1);
            if round % k == k - 1 {
                for (i, r) in replicas.iter_mut().enumerate() {
                    if Some(site_ids[i]) != dead_site && r.has_store() {
                        r.persist_checkpoint().expect("checkpoint cannot fail");
                    }
                }
            }
        }
    }

    // Heal any remaining partition and drain the network.
    if scenario.partition_first_site {
        for &other in &site_ids[1..] {
            net.heal_both(site_ids[0], other);
        }
    }
    // A site still dead when the edits end restarts at the head of the drain
    // phase (the drain cannot terminate while a registered peer never acks).
    if let Some((idx, store)) = dead.take() {
        restart_replica(
            &mut replicas,
            idx,
            store,
            &mut recovery,
            batch_policy,
            telemetry,
        );
    }
    // Flush whatever the batchers still hold: without retransmission a
    // buffered-but-never-shipped batch would be lost for good, and the final
    // quiescent flatten needs every clock settled.
    for i in 0..replicas.len() {
        if let Some(env) = replicas[i].flush_batch() {
            op_batches_sent += 1;
            network_bytes += broadcast_env(&mut net, &metrics, site_ids[i], &site_ids, &env)
                * (scenario.sites - 1);
        }
    }
    // Anti-entropy drain: fully deliver what is still in flight, then repair
    // whatever the losses left diverged through hub sync sessions (site 0
    // against each other site) until every replica reports the same root
    // digest and an empty hold-back queue. Two passes usually suffice — the
    // first gives site 0 everything, the second distributes it — and because
    // the network is drained before each check, no stale operation copy can
    // arrive after a session has already integrated its cells.
    if scenario.anti_entropy {
        let mut sync_recovery_rounds = 0usize;
        loop {
            while let Some(event) = net.step() {
                deliver(
                    &mut replicas,
                    &site_ids,
                    &mut driver,
                    &mut net,
                    &metrics,
                    event,
                    &mut max_pending,
                    None,
                    &mut lost_to_crash,
                );
            }
            let reference = replicas[0].digest();
            let repaired = replicas.iter().all(|r| r.digest() == reference)
                && replicas.iter().all(|r| r.pending() == 0);
            if net.in_flight() == 0 && repaired {
                break;
            }
            sync_recovery_rounds += 1;
            assert!(
                sync_recovery_rounds <= MAX_RECOVERY_ROUNDS,
                "anti-entropy failed to converge"
            );
            for peer in 1..replicas.len() {
                sync_pair(
                    &mut replicas,
                    0,
                    peer,
                    &sync_config,
                    &mut sync_totals,
                    &metrics,
                );
            }
        }
    }

    // With the protocol enabled, one extra proposal runs at quiescence:
    // every clock is equal by then, so it demonstrates the committed path.
    let mut final_flatten_pending = scenario.flatten_cadence.is_some();
    let mut recovery_rounds = 0usize;
    // Rounds spent idle with a replica still locked and no coordinator left
    // to unlock it (every decision copy lost inside the coordinator's
    // retransmission window). Once past the unilateral-commit timeout no
    // mechanism remains, so the run ends and reports non-convergence
    // honestly instead of spinning to the recovery cap.
    let mut orphaned_lock_rounds = 0u64;
    loop {
        while let Some(event) = net.step() {
            deliver(
                &mut replicas,
                &site_ids,
                &mut driver,
                &mut net,
                &metrics,
                event,
                &mut max_pending,
                None,
                &mut lost_to_crash,
            );
        }

        // Advance any in-flight commitment (vote retransmissions, decision
        // distribution, 3PC unilateral termination).
        for r in replicas.iter_mut() {
            let _ = r.flatten_tick(PRE_COMMIT_TIMEOUT_TICKS);
        }
        driver.pump(&mut replicas, &site_ids, &mut net, &metrics);

        let net_idle = net.in_flight() == 0;
        let logs_clear = replicas.iter().all(|r| !r.has_unacked());
        let queues_clear = replicas.iter().all(|r| r.pending() == 0);
        let locked = replicas.iter().any(|r| r.is_flatten_prepared());

        if net_idle && driver.active.is_none() {
            let logs_ok = !scenario.retransmit || logs_clear;
            if locked && logs_ok && queues_clear {
                // No coordinator, no traffic, yet a replica is still
                // prepared: its decision was lost for good. Give the 3PC
                // unilateral timeout a chance to fire, then stop and let the
                // convergence check report the stuck lock.
                orphaned_lock_rounds += 1;
                if orphaned_lock_rounds > PRE_COMMIT_TIMEOUT_TICKS + 1 {
                    break;
                }
            }
            if !locked {
                if final_flatten_pending && logs_ok && queues_clear {
                    final_flatten_pending = false;
                    driver.start_proposal(&mut replicas, &site_ids, scenario.flatten_protocol);
                    continue;
                }
                if !final_flatten_pending && logs_ok && (queues_clear || !scenario.retransmit) {
                    // Fully recovered — or, without retransmission, nothing
                    // left that could recover (convergence is judged below).
                    break;
                }
                if final_flatten_pending && !scenario.retransmit && !queues_clear {
                    // Losses without retransmission cannot clear the queues;
                    // the final proposal would only vote No forever. Skip it.
                    final_flatten_pending = false;
                    continue;
                }
            }
        }

        recovery_rounds += 1;
        assert!(
            recovery_rounds <= MAX_RECOVERY_ROUNDS,
            "recovery or flatten commitment failed to converge"
        );
        if scenario.retransmit && (!logs_clear || !queues_clear) {
            // Cumulative ack exchange (acks can themselves be dropped; the
            // next round simply repeats them).
            for i in 0..replicas.len() {
                let ack = replicas[i].ack_envelope();
                let per_copy = broadcast_env(&mut net, &metrics, site_ids[i], &site_ids, &ack)
                    * (scenario.sites - 1);
                ack_bytes += per_copy;
                metrics.ack_bytes.add(per_copy as u64);
            }
            while let Some(event) = net.step() {
                deliver(
                    &mut replicas,
                    &site_ids,
                    &mut driver,
                    &mut net,
                    &metrics,
                    event,
                    &mut max_pending,
                    None,
                    &mut lost_to_crash,
                );
            }
            // Retransmit everything still unacknowledged, per peer, keeping
            // the flatten epoch each message was stamped in. With batching
            // on, the peer's whole unacked window coalesces into a single
            // batch envelope; either way each re-send crosses the network
            // with its full encoded payload and is counted like the initial
            // broadcast.
            for i in 0..replicas.len() {
                let from = site_ids[i];
                for &peer in &site_ids {
                    if peer == from {
                        continue;
                    }
                    if batch_policy.is_some() || scenario.retransmit_window.is_some() {
                        // A retransmission window always re-ships through
                        // batch envelopes, so the cap bounds each round's
                        // payload even when sender-side batching is off.
                        if let Some(env) = replicas[i].unacked_batch_for(peer) {
                            op_batches_sent += 1;
                            let sent = send_env(&mut net, &metrics, from, peer, &env);
                            retransmission_bytes += sent;
                            metrics.retransmission_bytes.add(sent as u64);
                        }
                    } else {
                        for env in replicas[i].unacked_envelopes_for(peer) {
                            let sent = send_env(&mut net, &metrics, from, peer, &env);
                            retransmission_bytes += sent;
                            metrics.retransmission_bytes.add(sent as u64);
                        }
                    }
                }
            }
        }
    }

    let store_stats: Vec<treedoc_storage::StoreStats> = replicas
        .iter()
        .filter_map(|r| r.store().map(|s| s.stats()))
        .collect();
    let reference = replicas[0].doc().to_vec();
    let epoch = replicas[0].flatten_epoch();
    let converged = replicas.iter().all(|r| r.doc().to_vec() == reference)
        && replicas.iter().all(|r| r.pending() == 0)
        && replicas.iter().all(|r| !r.has_unacked())
        && replicas.iter().all(|r| r.pending_batch_len() == 0)
        && replicas.iter().all(|r| r.flatten_epoch() == epoch)
        && replicas.iter().all(|r| !r.is_flatten_prepared());

    SimReport {
        converged,
        final_len: reference.len(),
        ops_generated,
        messages_delivered: net.delivered_count(),
        messages_dropped: net.dropped_count(),
        messages_duplicated: net.duplicated_count(),
        duplicates_discarded: replicas.iter().map(|r| r.duplicates_discarded()).sum(),
        retransmissions: replicas.iter().map(|r| r.retransmissions()).sum(),
        retransmission_bytes,
        max_pending,
        network_bytes: network_bytes + retransmission_bytes,
        ack_bytes,
        op_batches_sent,
        sim_time_ms: net.now_ms(),
        partition_rounds,
        flatten_proposals: driver.proposals,
        flatten_commits: driver.commits,
        flatten_aborts: driver.aborts,
        flatten_votes: replicas.iter().map(|r| r.flatten_votes_cast()).sum(),
        commit_rounds: driver.commit_rounds,
        protocol_messages: driver.protocol_messages,
        protocol_bytes: driver.protocol_bytes,
        flatten_blocked_rounds: replicas.iter().map(|r| r.flatten_blocked_ticks()).sum(),
        unilateral_commits: replicas
            .iter()
            .map(|r| r.flatten_unilateral_commits())
            .sum(),
        late_epoch_ops: replicas.iter().map(|r| r.late_epoch_ops()).sum(),
        crashes,
        wal_records_replayed: recovery.records,
        recovered_bytes: recovery.bytes,
        snapshot_hits: recovery.snapshot_hits,
        wal_appends: store_stats.iter().map(|s| s.wal_appends).sum(),
        snapshots_written: store_stats.iter().map(|s| s.snapshots_written).sum(),
        wal_truncations: store_stats.iter().map(|s| s.wal_truncations).sum(),
        messages_lost_to_crash: lost_to_crash,
        sync_sessions: sync_totals.sessions,
        sync_rounds: sync_totals.rounds,
        sync_digest_msgs: sync_totals.digest_msgs,
        sync_run_msgs: sync_totals.run_msgs,
        sync_cells: sync_totals.cells,
        sync_bytes: sync_totals.bytes,
        snapshot_bootstraps: sync_totals.snapshot_bootstraps,
        snapshot_bytes: sync_totals.snapshot_bytes,
        messages_before_join,
        offline_losses,
    }
}

/// A cross-product of scenario axes: loss × duplication × partition × edit
/// burst × balancing, every combination sharing the remaining parameters of
/// [`base`](Self::base).
///
/// The swept axes **shadow** the corresponding fields of `base`: a
/// `drop_prob`, `duplicate_prob`, `burst`, `partition_first_site` or
/// `balancing` set on `base` never runs — only the values listed in the
/// axis vectors do. Put sweep values in the axes, and everything else
/// (sites, edits, seed, `reorder_burst_prob`, …) in `base`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioMatrix {
    /// Parameters shared by every cell (sites, edits, seed, …). Fields
    /// covered by an axis vector are ignored — see the type-level note.
    pub base: Scenario,
    /// Drop probabilities to sweep; cells with loss enable retransmission.
    pub drop_probs: Vec<f64>,
    /// Duplication probabilities to sweep.
    pub duplicate_probs: Vec<f64>,
    /// Edit burst sizes to sweep.
    pub bursts: Vec<usize>,
    /// Whether to run with and/or without the mid-run partition.
    pub partition: Vec<bool>,
    /// Whether to run with and/or without §4.1 balancing.
    pub balancing: Vec<bool>,
    /// Flatten proposal cadences to sweep (`None` = protocol disabled).
    pub flatten_cadences: Vec<Option<usize>>,
    /// Commitment protocols to sweep for cells with a flatten cadence.
    pub protocols: Vec<CommitProtocol>,
    /// Snapshot cadences to sweep (`None` = compaction on flatten commits
    /// only). Any `Some` cell runs durable.
    pub snapshot_cadences: Vec<Option<usize>>,
    /// Crash schedules to sweep (`None` = no crash). Any `Some` cell runs
    /// durable with retransmission.
    pub crashes: Vec<Option<CrashSchedule>>,
    /// Operation-batch sizes to sweep (`1` = per-op envelopes). See
    /// [`Scenario::batch_max_ops`].
    pub batch_sizes: Vec<usize>,
    /// Recovery mechanisms to sweep: `false` = at-least-once retransmission
    /// (cells with loss or an offline window get `retransmit = true`),
    /// `true` = state-based anti-entropy ([`Scenario::anti_entropy`]).
    pub anti_entropy: Vec<bool>,
    /// Offline windows to sweep (`None` = nobody goes offline). See
    /// [`OfflineWindow`].
    pub offline_windows: Vec<Option<OfflineWindow>>,
}

impl ScenarioMatrix {
    /// The default convergence matrix: fault-free and 10%-faulty cells along
    /// every axis (flatten commitment disabled — see
    /// [`flatten_commitment`](Self::flatten_commitment)).
    pub fn faulty(base: Scenario) -> Self {
        ScenarioMatrix {
            base,
            drop_probs: vec![0.0, 0.1],
            duplicate_probs: vec![0.0, 0.1],
            bursts: vec![1, 5],
            partition: vec![false, true],
            balancing: vec![false],
            flatten_cadences: vec![None],
            protocols: vec![CommitProtocol::TwoPhase],
            snapshot_cadences: vec![None],
            crashes: vec![None],
            batch_sizes: vec![1],
            anti_entropy: vec![false],
            offline_windows: vec![None],
        }
    }

    /// The wire-cost matrix behind the §5.2 overhead evaluation: batch size
    /// × loss, every lossy cell recovering through coalesced retransmission.
    /// Compare [`SimReport::network_bytes`] per operation across the batch
    /// axis — this is the sweep the `wire_bytes` bench binary prints.
    pub fn batching(base: Scenario) -> Self {
        ScenarioMatrix {
            base,
            drop_probs: vec![0.0, 0.1],
            duplicate_probs: vec![0.0],
            bursts: vec![5],
            partition: vec![false],
            balancing: vec![false],
            flatten_cadences: vec![None],
            protocols: vec![CommitProtocol::TwoPhase],
            snapshot_cadences: vec![None],
            crashes: vec![None],
            batch_sizes: vec![1, 4, 16, 64],
            anti_entropy: vec![false],
            offline_windows: vec![None],
        }
    }

    /// The distributed-flatten cost matrix: loss × partition × cadence ×
    /// protocol, the grid behind the experiment the paper could not run
    /// ("We cannot yet evaluate the cost of a distributed flatten"). Every
    /// cell carries a flatten cadence, so commits, aborts, message and byte
    /// counts are comparable per protocol.
    pub fn flatten_commitment(base: Scenario) -> Self {
        ScenarioMatrix {
            base,
            drop_probs: vec![0.0, 0.1],
            duplicate_probs: vec![0.1],
            bursts: vec![5],
            partition: vec![false, true],
            balancing: vec![false],
            flatten_cadences: vec![Some(4)],
            protocols: vec![CommitProtocol::TwoPhase, CommitProtocol::ThreePhase],
            snapshot_cadences: vec![None],
            crashes: vec![None],
            batch_sizes: vec![1],
            anti_entropy: vec![false],
            offline_windows: vec![None],
        }
    }

    /// The crash-recovery matrix: loss × snapshot cadence × crash timing.
    /// Every cell is durable; cells with a crash kill site 1 at the given
    /// round and restart it from its store, and must still converge. The
    /// cadence axis is the recovery-cost trade: frequent checkpoints mean a
    /// short WAL to replay, rare ones mean cheap steady-state writes.
    ///
    /// Crash rounds are expressed against `base`'s edit-round count; `base`
    /// should give at least 8 edit rounds (e.g. 40 edits at burst 5).
    pub fn crash_recovery(base: Scenario) -> Self {
        ScenarioMatrix {
            base: Scenario {
                durable: true,
                retransmit: true,
                ..base
            },
            drop_probs: vec![0.0, 0.1],
            duplicate_probs: vec![0.1],
            bursts: vec![5],
            partition: vec![false],
            balancing: vec![false],
            flatten_cadences: vec![None],
            protocols: vec![CommitProtocol::TwoPhase],
            snapshot_cadences: vec![None, Some(2)],
            crashes: vec![
                None,
                // An early crash with a mid-run restart…
                Some(CrashSchedule {
                    site: 1,
                    crash_round: 1,
                    restart_round: 4,
                }),
                // …and a late crash that restarts at the drain phase.
                Some(CrashSchedule {
                    site: 1,
                    crash_round: 5,
                    restart_round: usize::MAX,
                }),
            ],
            batch_sizes: vec![1],
            anti_entropy: vec![false],
            offline_windows: vec![None],
        }
    }

    /// The anti-entropy vs retransmission wire-cost matrix: loss rate ×
    /// offline gap × recovery mechanism. Retransmission cells pay
    /// [`SimReport::retransmission_bytes`] + [`SimReport::ack_bytes`];
    /// anti-entropy cells pay [`SimReport::sync_bytes`]. This is the sweep
    /// the `sync_cost` bench binary prints and the EXPERIMENTS table reports:
    /// digest sessions ship `O(missing + log n)` bytes, so they beat the
    /// full-window (per-op envelope) baseline once the loss rate or the
    /// offline gap makes the unacked windows large. Sender-side batching
    /// (the `wire_bytes` sweep) narrows the gap at low loss rates — set
    /// `batch_max_ops` on `base` to compare against coalesced
    /// retransmission instead.
    pub fn sync_vs_retransmission(base: Scenario) -> Self {
        ScenarioMatrix {
            base,
            drop_probs: vec![0.0, 0.05, 0.1, 0.2],
            duplicate_probs: vec![0.0],
            bursts: vec![5],
            partition: vec![false],
            balancing: vec![false],
            flatten_cadences: vec![None],
            protocols: vec![CommitProtocol::TwoPhase],
            snapshot_cadences: vec![None],
            crashes: vec![None],
            batch_sizes: vec![1],
            anti_entropy: vec![false, true],
            offline_windows: vec![
                None,
                // A long gap: site 1 offline from round 2 to the drain phase.
                Some(OfflineWindow {
                    site: 1,
                    from_round: 2,
                    to_round: usize::MAX,
                }),
            ],
        }
    }

    /// Expands the axes into concrete scenarios. Cells with `drop_prob > 0`,
    /// an offline window or a crash get `retransmit = true` — unless the
    /// cell recovers by anti-entropy instead (crashes always retransmit) —
    /// and cells with a snapshot cadence or a crash run durable.
    pub fn scenarios(&self) -> Vec<Scenario> {
        let mut out = Vec::new();
        for &drop_prob in &self.drop_probs {
            for &duplicate_prob in &self.duplicate_probs {
                for &burst in &self.bursts {
                    for &partition_first_site in &self.partition {
                        for &balancing in &self.balancing {
                            for &flatten_cadence in &self.flatten_cadences {
                                for &flatten_protocol in &self.protocols {
                                    for &snapshot_cadence in &self.snapshot_cadences {
                                        for &crash in &self.crashes {
                                            for &batch_max_ops in &self.batch_sizes {
                                                for &anti_entropy in &self.anti_entropy {
                                                    for &offline in &self.offline_windows {
                                                        let anti_entropy =
                                                            self.base.anti_entropy || anti_entropy;
                                                        out.push(Scenario {
                                                            drop_prob,
                                                            duplicate_prob,
                                                            burst,
                                                            partition_first_site,
                                                            balancing,
                                                            flatten_cadence,
                                                            flatten_protocol,
                                                            snapshot_cadence,
                                                            crash,
                                                            batch_max_ops,
                                                            anti_entropy,
                                                            offline,
                                                            durable: self.base.durable
                                                                || snapshot_cadence.is_some()
                                                                || crash.is_some(),
                                                            retransmit: self.base.retransmit
                                                                || crash.is_some()
                                                                || ((drop_prob > 0.0
                                                                    || offline.is_some())
                                                                    && !anti_entropy),
                                                            ..self.base
                                                        });
                                                    }
                                                }
                                            }
                                        }
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
        out
    }

    /// Runs every cell, returning each scenario with its report.
    pub fn run(&self) -> Vec<(Scenario, SimReport)> {
        self.run_with(|_| Telemetry::disabled())
    }

    /// Runs every cell through [`run_with`], asking `telemetry_for` for each
    /// cell's handle — pass a closure returning a fresh enabled registry's
    /// handle per cell to collect per-cell instrument snapshots (the
    /// `sync_cost` bench bin's data path), or a shared handle to aggregate.
    ///
    /// Cells are independent (each builds its own deterministic network and
    /// replicas from the scenario seed), so they execute on a fixed pool of
    /// [`std::thread::available_parallelism`] threads. `telemetry_for` is
    /// still called serially, in scenario order, before any cell runs, and
    /// the returned vector matches [`Self::scenarios`] order exactly — the
    /// output is byte-for-byte the same as the sequential run.
    pub fn run_with(
        &self,
        mut telemetry_for: impl FnMut(&Scenario) -> Telemetry,
    ) -> Vec<(Scenario, SimReport)> {
        let cells: Vec<(Scenario, Telemetry)> = self
            .scenarios()
            .into_iter()
            .map(|scenario| {
                let telemetry = telemetry_for(&scenario);
                (scenario, telemetry)
            })
            .collect();

        let workers = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
            .min(cells.len().max(1));
        if workers <= 1 {
            return cells
                .into_iter()
                .map(|(scenario, telemetry)| {
                    let report = run_with(&scenario, &telemetry);
                    (scenario, report)
                })
                .collect();
        }

        // Work-stealing over a shared index: each worker claims the next
        // unclaimed cell and writes the report into that cell's slot, so the
        // output order is position-determined, not completion-determined.
        let next = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<SimReport>>> = cells.iter().map(|_| Mutex::new(None)).collect();
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some((scenario, telemetry)) = cells.get(i) else {
                        break;
                    };
                    let report = run_with(scenario, telemetry);
                    *slots[i].lock().expect("worker panicked holding a slot") = Some(report);
                });
            }
        });
        cells
            .into_iter()
            .zip(slots)
            .map(|((scenario, _), slot)| {
                let report = slot
                    .into_inner()
                    .expect("worker panicked holding a slot")
                    .expect("every claimed cell stores its report");
                (scenario, report)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_scenario_converges() {
        let report = run(&Scenario::default());
        assert!(report.converged, "replicas must converge: {report:?}");
        assert!(report.ops_generated >= 300);
        assert!(report.messages_delivered > 0);
        assert!(report.network_bytes > 0);
        assert_eq!(report.messages_dropped, 0);
        assert_eq!(report.retransmissions, 0);
    }

    #[test]
    fn many_sites_converge() {
        let report = run(&Scenario {
            sites: 6,
            edits_per_site: 40,
            ..Default::default()
        });
        assert!(report.converged);
        assert_eq!(report.ops_generated, 6 * 40);
    }

    #[test]
    fn convergence_survives_a_partition() {
        let report = run(&Scenario {
            sites: 4,
            edits_per_site: 60,
            partition_first_site: true,
            ..Default::default()
        });
        assert!(
            report.converged,
            "partitioned-then-healed replicas must still converge"
        );
    }

    #[test]
    fn balancing_does_not_affect_convergence() {
        let plain = run(&Scenario {
            seed: 7,
            ..Default::default()
        });
        let balanced = run(&Scenario {
            seed: 7,
            balancing: true,
            ..Default::default()
        });
        assert!(plain.converged && balanced.converged);
        assert_eq!(
            plain.final_len, balanced.final_len,
            "same seed, same edits, same length"
        );
    }

    #[test]
    fn runs_are_reproducible() {
        let a = run(&Scenario::default());
        let b = run(&Scenario::default());
        assert_eq!(a, b);
    }

    #[test]
    fn delete_heavy_sessions_converge() {
        let report = run(&Scenario {
            delete_ratio: 0.7,
            edits_per_site: 80,
            ..Default::default()
        });
        assert!(report.converged);
    }

    #[test]
    fn duplication_alone_converges_without_retransmission() {
        let report = run(&Scenario {
            duplicate_prob: 0.2,
            reorder_burst_prob: 0.1,
            edits_per_site: 60,
            ..Default::default()
        });
        assert!(report.converged, "{report:?}");
        assert!(report.messages_duplicated > 0);
        assert!(
            report.duplicates_discarded >= report.messages_duplicated,
            "every injected duplicate must be discarded by some hold-back \
             queue: {report:?}"
        );
    }

    #[test]
    fn lossy_network_converges_with_retransmission() {
        let report = run(&Scenario {
            edits_per_site: 60,
            ..Scenario::faulty()
        });
        assert!(report.converged, "{report:?}");
        assert!(report.messages_dropped > 0, "{report:?}");
        assert!(report.messages_duplicated > 0, "{report:?}");
        assert!(report.retransmissions > 0, "{report:?}");
        assert!(report.duplicates_discarded > 0, "{report:?}");

        // Loss recovery is not free, and the report says by how much: the
        // re-sent payload bytes are tracked and folded into the total.
        assert!(report.retransmission_bytes > 0, "{report:?}");
        assert!(
            report.network_bytes > report.retransmission_bytes,
            "the total must also cover the initial broadcasts: {report:?}"
        );
    }

    #[test]
    fn faulty_runs_are_reproducible() {
        let scenario = Scenario {
            edits_per_site: 40,
            ..Scenario::faulty()
        };
        assert_eq!(run(&scenario), run(&scenario));
    }

    #[test]
    #[should_panic(expected = "lossy network cannot converge")]
    fn loss_without_retransmission_is_rejected() {
        run(&Scenario {
            drop_prob: 0.1,
            retransmit: false,
            ..Default::default()
        });
    }

    #[test]
    fn durable_replicas_converge_and_journal() {
        let report = run(&Scenario {
            durable: true,
            edits_per_site: 40,
            ..Scenario::faulty()
        });
        assert!(report.converged, "{report:?}");
        assert!(report.wal_appends > 0, "every event journals: {report:?}");
        assert!(
            report.snapshots_written >= 3,
            "one attach baseline per replica: {report:?}"
        );
        assert_eq!(report.crashes, 0);
    }

    #[test]
    fn crashed_and_restarted_site_converges_with_recovery_accounting() {
        // Site 1 dies at round 2 (taking its clock, hold-back and send log
        // with it), restarts from its store at round 5, and the session must
        // still converge — with the recovery visible in the report.
        let report = run(&Scenario {
            edits_per_site: 40,
            ..Scenario::crash_faulty(1, 2, 5)
        });
        assert!(report.converged, "{report:?}");
        assert_eq!(report.crashes, 1);
        assert_eq!(report.snapshot_hits, 1, "recovery found a snapshot");
        assert!(
            report.wal_records_replayed > 0,
            "the WAL tail replays: {report:?}"
        );
        assert!(report.recovered_bytes > 0, "{report:?}");
        assert!(
            report.messages_lost_to_crash > 0,
            "traffic hit the dead site: {report:?}"
        );
        assert!(
            report.retransmissions > 0,
            "the restarted site catches up by retransmission: {report:?}"
        );
    }

    #[test]
    fn late_crash_restarts_at_the_drain_phase_and_converges() {
        let report = run(&Scenario {
            edits_per_site: 40,
            ..Scenario::crash_faulty(2, 6, usize::MAX)
        });
        assert!(report.converged, "{report:?}");
        assert_eq!(report.crashes, 1);
        assert!(report.wal_records_replayed > 0, "{report:?}");
    }

    #[test]
    fn snapshot_cadence_bounds_the_replayed_wal() {
        // With a checkpoint every other round, the crash finds a short WAL;
        // without one, everything since the attach baseline replays.
        let base = Scenario {
            edits_per_site: 40,
            ..Scenario::crash_faulty(1, 6, usize::MAX)
        };
        let rare = run(&base);
        let frequent = run(&Scenario {
            snapshot_cadence: Some(2),
            ..base
        });
        assert!(rare.converged && frequent.converged);
        assert!(
            frequent.wal_records_replayed < rare.wal_records_replayed,
            "checkpoints bound the replay: {frequent:?} vs {rare:?}"
        );
        assert!(frequent.snapshots_written > rare.snapshots_written);
    }

    #[test]
    fn crash_runs_are_reproducible() {
        let scenario = Scenario {
            edits_per_site: 40,
            snapshot_cadence: Some(3),
            ..Scenario::crash_faulty(1, 2, 5)
        };
        assert_eq!(run(&scenario), run(&scenario));
    }

    #[test]
    fn flatten_commit_compacts_every_durable_wal() {
        // The §4.2.1 acceptance cell: a committed distributed flatten must
        // checkpoint every replica and truncate its pre-epoch WAL.
        let scenario = Scenario {
            durable: true,
            edits_per_site: 20,
            flatten_cadence: Some(1000), // only the final quiescent proposal
            ..Scenario::faulty()
        };
        let report = run(&scenario);
        assert!(report.converged, "{report:?}");
        assert!(report.flatten_commits >= 1, "{report:?}");
        assert!(
            report.snapshots_written >= 2 * scenario.sites as u64,
            "attach baseline + flatten-commit checkpoint per replica: {report:?}"
        );
        assert!(
            report.wal_truncations >= scenario.sites as u64,
            "the flatten commit retired every replica's pre-epoch records: {report:?}"
        );
    }

    #[test]
    #[should_panic(expected = "requires durable stores")]
    fn crash_without_durability_is_rejected() {
        run(&Scenario {
            crash: Some(CrashSchedule {
                site: 1,
                crash_round: 1,
                restart_round: 3,
            }),
            retransmit: true,
            ..Scenario::default()
        });
    }

    #[test]
    #[should_panic(expected = "site 0 is the reference")]
    fn crashing_the_coordinator_site_is_rejected() {
        run(&Scenario {
            edits_per_site: 40,
            ..Scenario::crash_faulty(0, 2, 5)
        });
    }

    #[test]
    fn crash_matrix_converges_in_every_cell() {
        // The acceptance sweep: snapshot cadence × crash timing × loss, every
        // cell durable, every crashed cell recovering to convergence.
        let matrix = ScenarioMatrix::crash_recovery(Scenario {
            sites: 3,
            edits_per_site: 40,
            ..Default::default()
        });
        let results = matrix.run();
        assert_eq!(results.len(), 2 * 2 * 3);
        for (scenario, report) in results {
            assert!(report.converged, "cell {scenario:?} diverged: {report:?}");
            assert!(report.wal_appends > 0, "cell {scenario:?}: {report:?}");
            if scenario.crash.is_some() {
                assert_eq!(report.crashes, 1, "cell {scenario:?}: {report:?}");
                assert_eq!(report.snapshot_hits, 1, "cell {scenario:?}: {report:?}");
            } else {
                assert_eq!(report.crashes, 0);
            }
        }
    }

    #[test]
    fn batched_sessions_converge_and_cut_bytes_per_op() {
        let per_op = run(&Scenario::default());
        let batched = run(&Scenario {
            batch_max_ops: 16,
            ..Scenario::default()
        });
        assert!(per_op.converged && batched.converged, "{batched:?}");
        assert_eq!(per_op.op_batches_sent, 0);
        assert!(batched.op_batches_sent > 0, "{batched:?}");
        assert_eq!(
            per_op.ops_generated, batched.ops_generated,
            "same edit volume either way"
        );
        assert!(
            batched.messages_delivered < per_op.messages_delivered,
            "batches mean fewer envelopes: {batched:?} vs {per_op:?}"
        );
        // Random-position edits share shorter path prefixes than sequential
        // typing, so demand a solid-but-not-dramatic cut here; the sequential
        // case (where delta encoding shines, >2×) is asserted in the wire
        // codec tests and measured by the `wire_bytes` bench.
        assert!(
            batched.network_bytes * 5 < per_op.network_bytes * 4,
            "batching must cut at least 20% of the wire cost: {} vs {} bytes",
            batched.network_bytes,
            per_op.network_bytes
        );
    }

    #[test]
    fn batched_lossy_sessions_recover_through_coalesced_retransmission() {
        let report = run(&Scenario {
            edits_per_site: 60,
            ..Scenario::batched_faulty(8)
        });
        assert!(report.converged, "{report:?}");
        assert!(report.messages_dropped > 0, "{report:?}");
        assert!(report.retransmissions > 0, "{report:?}");
        assert!(report.retransmission_bytes > 0, "{report:?}");
        assert!(report.op_batches_sent > 0, "{report:?}");
        assert!(report.ack_bytes > 0, "{report:?}");
    }

    #[test]
    fn batched_runs_are_reproducible() {
        let scenario = Scenario {
            edits_per_site: 40,
            ..Scenario::batched_faulty(8)
        };
        assert_eq!(run(&scenario), run(&scenario));
    }

    #[test]
    fn batching_composes_with_durability_and_crashes() {
        let report = run(&Scenario {
            edits_per_site: 40,
            batch_max_ops: 8,
            ..Scenario::crash_faulty(1, 2, 5)
        });
        assert!(report.converged, "{report:?}");
        assert_eq!(report.crashes, 1);
        assert!(report.wal_records_replayed > 0, "{report:?}");
        assert!(report.op_batches_sent > 0, "{report:?}");
    }

    #[test]
    fn batching_composes_with_the_flatten_commitment() {
        for protocol in [CommitProtocol::TwoPhase, CommitProtocol::ThreePhase] {
            let report = run(&Scenario {
                edits_per_site: 40,
                batch_max_ops: 8,
                ..Scenario::flatten_faulty(protocol)
            });
            assert!(report.converged, "{protocol:?}: {report:?}");
            assert!(
                report.flatten_commits >= 1,
                "the final quiescent proposal commits over batched traffic: \
                 {protocol:?}: {report:?}"
            );
        }
    }

    #[test]
    fn byte_flush_policy_bounds_batch_sizes() {
        // A tiny byte budget forces flushes long before the op cap.
        let report = run(&Scenario {
            batch_max_ops: 1000,
            batch_max_bytes: 256,
            ..Scenario::default()
        });
        assert!(report.converged, "{report:?}");
        assert!(
            report.op_batches_sent as usize > report.ops_generated / 1000,
            "the byte cap must have split the stream: {report:?}"
        );
    }

    #[test]
    fn batching_matrix_converges_and_orders_the_byte_axis() {
        let matrix = ScenarioMatrix::batching(Scenario {
            sites: 3,
            edits_per_site: 40,
            ..Default::default()
        });
        let results = matrix.run();
        assert_eq!(results.len(), 2 * 4, "loss × batch-size grid");
        for (scenario, report) in &results {
            assert!(report.converged, "cell {scenario:?} diverged: {report:?}");
        }
        // Within the loss-free column, bigger batches must never cost more
        // bytes per op.
        let mut clean: Vec<_> = results.iter().filter(|(s, _)| s.drop_prob == 0.0).collect();
        clean.sort_by_key(|(s, _)| s.batch_max_ops);
        for pair in clean.windows(2) {
            let (a, ra) = &pair[0];
            let (b, rb) = &pair[1];
            assert!(
                rb.network_bytes <= ra.network_bytes,
                "batch {} ({} B) must not beat batch {} ({} B)",
                a.batch_max_ops,
                ra.network_bytes,
                b.batch_max_ops,
                rb.network_bytes
            );
        }
    }

    #[test]
    fn matrix_covers_the_cross_product() {
        let matrix = ScenarioMatrix::faulty(Scenario::default());
        let cells = matrix.scenarios();
        assert_eq!(cells.len(), 2 * 2 * 2 * 2);
        assert!(cells.iter().any(|s| s.drop_prob > 0.0 && s.retransmit));
        assert!(cells
            .iter()
            .any(|s| s.drop_prob == 0.0 && s.duplicate_prob == 0.0));
    }

    #[test]
    fn short_runs_get_a_real_partition_window() {
        // Regression: with total_rounds < 3 the partition round and the heal
        // round used to truncate to the same value, so the partition was cut
        // and healed within one round — i.e. never in effect — while the
        // report suggested otherwise. The window is now clamped to at least
        // one round apart and its actual width is recorded.
        for edits in [5usize, 10] {
            // burst 5 → 1 and 2 edit rounds respectively.
            let report = run(&Scenario {
                sites: 3,
                edits_per_site: edits,
                burst: 5,
                partition_first_site: true,
                ..Default::default()
            });
            assert!(report.converged, "{report:?}");
            assert!(
                report.partition_rounds >= 1,
                "edits {edits}: the partition must cover at least one round: {report:?}"
            );
        }
        // And the accounting stays honest when the partition is off.
        let report = run(&Scenario::default());
        assert_eq!(report.partition_rounds, 0);
    }

    #[test]
    fn long_runs_keep_the_middle_third_partition() {
        let report = run(&Scenario {
            sites: 3,
            edits_per_site: 90,
            burst: 5, // 18 rounds → window 6..12
            partition_first_site: true,
            ..Default::default()
        });
        assert!(report.converged);
        assert_eq!(report.partition_rounds, 6);
    }

    #[test]
    fn distributed_flatten_commits_at_quiescence_over_a_faulty_network() {
        for protocol in [CommitProtocol::TwoPhase, CommitProtocol::ThreePhase] {
            let report = run(&Scenario {
                edits_per_site: 40,
                ..Scenario::flatten_faulty(protocol)
            });
            assert!(report.converged, "{protocol:?}: {report:?}");
            assert!(report.flatten_proposals >= 2, "{protocol:?}: {report:?}");
            assert!(
                report.flatten_commits >= 1,
                "the final quiescent proposal must commit: {protocol:?}: {report:?}"
            );
            assert_eq!(
                report.flatten_proposals,
                report.flatten_commits + report.flatten_aborts,
                "{protocol:?}: {report:?}"
            );
            assert!(report.protocol_messages > 0, "{protocol:?}: {report:?}");
            assert!(report.protocol_bytes > 0, "{protocol:?}: {report:?}");
            assert!(report.commit_rounds > 0, "{protocol:?}: {report:?}");
            assert!(report.flatten_votes > 0, "{protocol:?}: {report:?}");
        }
    }

    #[test]
    fn mid_run_proposals_abort_on_concurrent_edits() {
        // A tight cadence on a busy network: proposals taken while edits are
        // in flight find unequal clocks and must abort (edits take
        // precedence over clean-up, §4.2.1), leaving every replica intact.
        let report = run(&Scenario {
            edits_per_site: 60,
            flatten_cadence: Some(2),
            ..Scenario::flatten_faulty(CommitProtocol::TwoPhase)
        });
        assert!(report.converged, "{report:?}");
        assert!(
            report.flatten_aborts >= 1,
            "mid-run proposals contend with concurrent edits: {report:?}"
        );
    }

    #[test]
    fn three_phase_costs_more_protocol_traffic_than_two_phase() {
        // Cadence larger than the run: only the final quiescent proposal
        // fires, so both protocols commit exactly once over the same edit
        // history and the per-protocol message/byte columns are comparable.
        let base = Scenario {
            edits_per_site: 20,
            flatten_cadence: Some(1000),
            ..Scenario::default()
        };
        let two = run(&Scenario {
            flatten_protocol: CommitProtocol::TwoPhase,
            ..base
        });
        let three = run(&Scenario {
            flatten_protocol: CommitProtocol::ThreePhase,
            ..base
        });
        assert!(two.converged && three.converged);
        assert_eq!(two.flatten_commits, 1);
        assert_eq!(three.flatten_commits, 1);
        assert!(
            three.protocol_messages > two.protocol_messages,
            "3PC adds the pre-commit round: {two:?} vs {three:?}"
        );
        assert!(three.protocol_bytes > two.protocol_bytes);
        assert!(three.commit_rounds > two.commit_rounds);
    }

    #[test]
    fn flatten_runs_are_reproducible() {
        let scenario = Scenario {
            edits_per_site: 40,
            ..Scenario::flatten_faulty(CommitProtocol::ThreePhase)
        };
        assert_eq!(run(&scenario), run(&scenario));
    }

    #[test]
    fn flatten_commitment_matrix_converges_in_every_cell() {
        // The acceptance grid: a flatten proposal carried entirely as
        // envelopes over a lossy, partitioned network, per protocol, with
        // convergence and a commit in every cell.
        let matrix = ScenarioMatrix::flatten_commitment(Scenario {
            sites: 3,
            edits_per_site: 20,
            ..Default::default()
        });
        let results = matrix.run();
        assert_eq!(results.len(), 8);
        for (scenario, report) in results {
            assert!(report.converged, "cell {scenario:?} diverged: {report:?}");
            assert!(
                report.flatten_commits >= 1,
                "cell {scenario:?} never committed: {report:?}"
            );
            assert!(
                report.protocol_messages > 0,
                "cell {scenario:?}: {report:?}"
            );
        }
    }

    #[test]
    fn anti_entropy_converges_under_loss_without_retransmission() {
        // 10% drops, 10% duplicates, 10% reorder bursts — and no send logs,
        // no acks, no retransmission. The drain phase repairs every replica
        // through merkle-digest sync sessions alone.
        let report = run(&Scenario::anti_entropy_faulty());
        assert!(report.converged, "{report:?}");
        assert!(report.messages_dropped > 0, "{report:?}");
        assert_eq!(report.retransmissions, 0, "{report:?}");
        assert_eq!(report.ack_bytes, 0, "{report:?}");
        assert!(report.sync_sessions > 0, "{report:?}");
        assert!(report.sync_cells > 0, "losses must be repaired: {report:?}");
        assert!(report.sync_bytes > 0, "{report:?}");
    }

    #[test]
    fn anti_entropy_on_a_clean_network_never_syncs() {
        // Nothing dropped → the drain finds every digest equal before the
        // first session: anti-entropy costs zero bytes when nothing diverged.
        let report = run(&Scenario {
            anti_entropy: true,
            ..Scenario::default()
        });
        assert!(report.converged, "{report:?}");
        assert_eq!(report.sync_sessions, 0, "{report:?}");
        assert_eq!(report.sync_bytes, 0, "{report:?}");
    }

    #[test]
    fn late_joiner_bootstraps_mid_run_and_converges() {
        // A brand-new site joins at round 5 of 20: snapshot bootstrap from
        // site 0, clock transfer through one sync session, then it edits and
        // receives like everyone else.
        let report = run(&Scenario::late_joiner(5));
        assert!(report.converged, "{report:?}");
        assert_eq!(report.snapshot_bootstraps, 1, "{report:?}");
        assert!(report.snapshot_bytes > 0, "{report:?}");
        assert!(
            report.messages_before_join > 0,
            "pre-join broadcasts are discarded: {report:?}"
        );
        assert!(report.sync_sessions >= 1, "{report:?}");
    }

    #[test]
    fn offline_gap_catches_up_via_anti_entropy() {
        // Site 1 goes offline at round 2 and stays down until the drain
        // phase — a long-offline laptop. Anti-entropy repairs the whole gap.
        let report = run(&Scenario::offline_gap(1, 2, usize::MAX, true));
        assert!(report.converged, "{report:?}");
        assert!(report.offline_losses > 0, "{report:?}");
        assert_eq!(report.retransmissions, 0, "{report:?}");
        assert!(report.sync_cells > 0, "{report:?}");
    }

    #[test]
    fn offline_gap_catches_up_via_retransmission_too() {
        // The same gap recovered by the at-least-once baseline, for the
        // wire-cost comparison below.
        let report = run(&Scenario::offline_gap(1, 2, usize::MAX, false));
        assert!(report.converged, "{report:?}");
        assert!(report.offline_losses > 0, "{report:?}");
        assert!(report.retransmissions > 0, "{report:?}");
        assert_eq!(report.sync_bytes, 0, "{report:?}");
    }

    #[test]
    fn anti_entropy_beats_retransmission_on_a_long_offline_gap() {
        // The headline comparison: site 1 misses ~90% of the run. The
        // baseline re-ships its whole unacked window plus rounds of ack
        // broadcasts; a digest walk ships the missing runs once.
        let retrans = run(&Scenario::offline_gap(1, 2, usize::MAX, false));
        let sync = run(&Scenario::offline_gap(1, 2, usize::MAX, true));
        assert!(retrans.converged && sync.converged);
        let retrans_cost = retrans.retransmission_bytes + retrans.ack_bytes;
        let sync_cost = sync.sync_bytes;
        assert!(
            sync_cost < retrans_cost,
            "anti-entropy ({sync_cost} B) must beat retransmission \
             ({retrans_cost} B) on a long gap"
        );
    }

    #[test]
    fn anti_entropy_beats_retransmission_under_heavy_loss() {
        // At 10% loss the per-op baseline pays repeated recovery rounds of
        // acks and re-sends; the sync walk pays O(missing + log n) once.
        let retrans = run(&Scenario::faulty());
        let sync = run(&Scenario::anti_entropy_faulty());
        assert!(retrans.converged && sync.converged);
        let retrans_cost = retrans.retransmission_bytes + retrans.ack_bytes;
        let sync_cost = sync.sync_bytes;
        assert!(
            sync_cost < retrans_cost,
            "anti-entropy ({sync_cost} B) must beat retransmission \
             ({retrans_cost} B) at 10% loss"
        );
    }

    #[test]
    fn anti_entropy_runs_are_reproducible() {
        let scenario = Scenario {
            edits_per_site: 40,
            ..Scenario::anti_entropy_faulty()
        };
        assert_eq!(run(&scenario), run(&scenario));
        let joiner = Scenario {
            edits_per_site: 40,
            ..Scenario::late_joiner(3)
        };
        assert_eq!(run(&joiner), run(&joiner));
    }

    #[test]
    fn retransmit_window_bounds_resends_and_still_converges() {
        // Satellite check at the scenario level: a capped window re-ships at
        // most 4 messages per recovery round (as batch envelopes) and the
        // run still converges under the full fault mix.
        let report = run(&Scenario {
            retransmit_window: Some(4),
            ..Scenario::faulty()
        });
        assert!(report.converged, "{report:?}");
        assert!(report.retransmissions > 0, "{report:?}");
        assert!(
            report.op_batches_sent > 0,
            "a window re-ships through batch envelopes: {report:?}"
        );
    }

    #[test]
    fn sync_matrix_covers_both_mechanisms_and_converges() {
        let matrix = ScenarioMatrix::sync_vs_retransmission(Scenario {
            sites: 3,
            edits_per_site: 20,
            ..Default::default()
        });
        let results = matrix.run();
        assert_eq!(results.len(), 4 * 2 * 2);
        for (scenario, report) in results {
            assert!(report.converged, "cell {scenario:?} diverged: {report:?}");
            if scenario.anti_entropy {
                assert_eq!(report.retransmissions, 0, "cell {scenario:?}");
            } else {
                assert_eq!(report.sync_bytes, 0, "cell {scenario:?}");
            }
        }
    }

    #[test]
    fn small_matrix_converges_in_every_cell() {
        // `burst` is a swept axis, so it belongs in the matrix, not in base.
        let matrix = ScenarioMatrix::faulty(Scenario {
            sites: 3,
            edits_per_site: 20,
            ..Default::default()
        });
        for (scenario, report) in matrix.run() {
            assert!(report.converged, "cell {scenario:?} diverged: {report:?}");
            assert_eq!(
                report.ops_generated,
                scenario.sites * scenario.edits_per_site.div_ceil(scenario.burst) * scenario.burst
            );
        }
    }
}
