//! Randomised cooperative-editing scenarios, including faulty-network runs.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use treedoc_core::{Op, Sdis, SiteId, Treedoc, TreedocConfig};
use treedoc_replication::{CausalMessage, Envelope, LinkConfig, NetworkEvent, Replica, SimNetwork};

/// Description of one simulated editing session.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Scenario {
    /// Number of replicas (sites).
    pub sites: usize,
    /// Local edits initiated per site.
    pub edits_per_site: usize,
    /// Probability that an edit is a delete rather than an insert.
    pub delete_ratio: f64,
    /// How many edits a site performs before its batch is broadcast
    /// (1 = every edit is broadcast immediately).
    pub burst: usize,
    /// Whether the §4.1 balancing strategies are enabled.
    pub balancing: bool,
    /// Simulate a temporary partition of the first site for the middle third
    /// of the run.
    pub partition_first_site: bool,
    /// Probability that the network silently drops a message. Requires
    /// [`retransmit`](Self::retransmit) to still converge.
    pub drop_prob: f64,
    /// Probability that the network delivers a message twice.
    pub duplicate_prob: f64,
    /// Probability that a message is delayed by a reorder burst, overtaking
    /// later traffic.
    pub reorder_burst_prob: f64,
    /// Enables at-least-once delivery: replicas log stamped messages,
    /// exchange cumulative acks and retransmit whatever peers miss.
    pub retransmit: bool,
    /// RNG seed.
    pub seed: u64,
}

impl Default for Scenario {
    fn default() -> Self {
        Scenario {
            sites: 3,
            edits_per_site: 100,
            delete_ratio: 0.3,
            burst: 5,
            balancing: false,
            partition_first_site: false,
            drop_prob: 0.0,
            duplicate_prob: 0.0,
            reorder_burst_prob: 0.0,
            retransmit: false,
            seed: 42,
        }
    }
}

impl Scenario {
    /// A lossy at-least-once session: 10% drops, 10% duplicates, 10% reorder
    /// bursts, recovered by retransmission.
    pub fn faulty() -> Self {
        Scenario {
            drop_prob: 0.1,
            duplicate_prob: 0.1,
            reorder_burst_prob: 0.1,
            retransmit: true,
            ..Scenario::default()
        }
    }
}

/// What a scenario run measured.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimReport {
    /// Whether every replica ended with identical content, a drained
    /// hold-back queue and (in at-least-once mode) a fully acknowledged log.
    pub converged: bool,
    /// Final document length.
    pub final_len: usize,
    /// Total operations generated across all sites.
    pub ops_generated: usize,
    /// Total messages delivered by the network.
    pub messages_delivered: u64,
    /// Messages silently dropped by fault injection.
    pub messages_dropped: u64,
    /// Extra copies injected by network duplication.
    pub messages_duplicated: u64,
    /// Stale or duplicate messages the replicas' hold-back queues discarded.
    pub duplicates_discarded: u64,
    /// Messages re-sent by the at-least-once recovery protocol.
    pub retransmissions: u64,
    /// Operation payload bytes of those re-sends (already included in
    /// [`network_bytes`](Self::network_bytes)).
    pub retransmission_bytes: usize,
    /// Largest causal hold-back queue observed across replicas.
    pub max_pending: usize,
    /// Total operation payload bytes handed to the network (identifiers +
    /// atoms, initial broadcasts plus retransmissions), the §5.2 network
    /// cost estimate. Copies injected by network-level duplication are not
    /// visible to the application and are excluded.
    pub network_bytes: usize,
    /// Final simulated time in milliseconds.
    pub sim_time_ms: u64,
}

type Doc = Treedoc<String, Sdis>;
type Env = Envelope<Op<String, Sdis>>;
type Msg = CausalMessage<Op<String, Sdis>>;

/// Maximum recovery rounds (ack exchange + retransmission) the drain phase
/// attempts before declaring the run wedged. With independent per-message
/// drop probability < 1 the expected number of rounds is tiny; hitting the
/// cap means the protocol, not the dice, is broken.
const MAX_RECOVERY_ROUNDS: usize = 1000;

/// Delivers one network event to its addressee and tracks the hold-back
/// high-water mark across replicas.
fn deliver(
    replicas: &mut [Replica<Doc>],
    site_ids: &[SiteId],
    event: NetworkEvent<Env>,
    max_pending: &mut usize,
) {
    let idx = site_ids
        .iter()
        .position(|&s| s == event.to)
        .expect("known site");
    replicas[idx].receive_envelope(event.payload);
    *max_pending = (*max_pending).max(replicas[idx].pending());
}

/// Runs a scenario to completion (all messages delivered, all losses
/// recovered when retransmission is on) and checks convergence.
pub fn run(scenario: &Scenario) -> SimReport {
    assert!(
        scenario.sites >= 2,
        "a cooperative session needs at least two sites"
    );
    assert!(
        scenario.drop_prob == 0.0 || scenario.retransmit,
        "a lossy network cannot converge without retransmission"
    );
    let mut rng = StdRng::seed_from_u64(scenario.seed);
    let site_ids: Vec<SiteId> = (1..=scenario.sites as u64).map(SiteId::from_u64).collect();
    let config = if scenario.balancing {
        TreedocConfig::balanced()
    } else {
        TreedocConfig::default()
    };

    // Everyone starts from the same exploded seed document.
    let seed_doc: Vec<String> = (0..10).map(|i| format!("seed line {i}")).collect();
    let mut replicas: Vec<Replica<Doc>> = site_ids
        .iter()
        .map(|&s| Replica::new(s, Doc::from_atoms_with_config(s, &seed_doc, config)))
        .collect();
    if scenario.retransmit {
        for r in replicas.iter_mut() {
            r.enable_at_least_once(&site_ids);
        }
    }

    let link = LinkConfig::default()
        .with_drop_prob(scenario.drop_prob)
        .with_duplicate_prob(scenario.duplicate_prob)
        .with_reorder_burst(scenario.reorder_burst_prob, 250);
    let mut net: SimNetwork<Env> = SimNetwork::new(link, scenario.seed);
    let mut ops_generated = 0usize;
    let mut network_bytes = 0usize;
    let mut retransmission_bytes = 0usize;
    let mut max_pending = 0usize;

    let total_rounds = scenario.edits_per_site.div_ceil(scenario.burst.max(1));
    for round in 0..total_rounds {
        // Optional partition of the first site for the middle third.
        if scenario.partition_first_site && scenario.sites >= 2 {
            if round == total_rounds / 3 {
                for &other in &site_ids[1..] {
                    net.partition_both(site_ids[0], other);
                }
            }
            if round == (2 * total_rounds) / 3 {
                for &other in &site_ids[1..] {
                    net.heal_both(site_ids[0], other);
                }
            }
        }

        // Each site performs a burst of local edits and broadcasts them.
        for i in 0..replicas.len() {
            for _ in 0..scenario.burst.max(1) {
                let op = {
                    let replica = &mut replicas[i];
                    let doc = replica.doc_mut();
                    let len = doc.len();
                    if len > 1 && rng.gen_bool(scenario.delete_ratio) {
                        let idx = rng.gen_range(0..len);
                        doc.local_delete(idx).expect("index in range")
                    } else {
                        let idx = rng.gen_range(0..=len);
                        let text = format!("site{} round{} {}", i + 1, round, rng.gen::<u32>());
                        doc.local_insert(idx, text).expect("index in range")
                    }
                };
                ops_generated += 1;
                network_bytes += op.network_bytes() * (scenario.sites - 1);
                let msg = replicas[i].stamp(op);
                net.broadcast(site_ids[i], &site_ids, Envelope::Op(msg));
            }
        }

        // Let some of the traffic flow between rounds (not all of it, so
        // concurrency actually happens).
        let deliver_now = net.in_flight() / 2;
        for _ in 0..deliver_now {
            let Some(event) = net.step() else { break };
            deliver(&mut replicas, &site_ids, event, &mut max_pending);
        }
    }

    // Heal any remaining partition and drain the network.
    if scenario.partition_first_site {
        for &other in &site_ids[1..] {
            net.heal_both(site_ids[0], other);
        }
    }
    let mut recovery_rounds = 0usize;
    loop {
        while let Some(event) = net.step() {
            deliver(&mut replicas, &site_ids, event, &mut max_pending);
        }
        if !scenario.retransmit {
            break;
        }
        // Recovered when every send log is fully acknowledged and every
        // hold-back queue has drained.
        if replicas
            .iter()
            .all(|r| !r.has_unacked() && r.pending() == 0)
        {
            break;
        }
        recovery_rounds += 1;
        assert!(
            recovery_rounds <= MAX_RECOVERY_ROUNDS,
            "at-least-once recovery failed to converge"
        );
        // Cumulative ack exchange (acks can themselves be dropped; the next
        // round simply repeats them).
        for i in 0..replicas.len() {
            let ack = replicas[i].ack_envelope();
            net.broadcast(site_ids[i], &site_ids, ack);
        }
        while let Some(event) = net.step() {
            deliver(&mut replicas, &site_ids, event, &mut max_pending);
        }
        // Retransmit everything still unacknowledged, per peer. Each re-send
        // crosses the network with the full operation payload, so it counts
        // towards the §5.2 byte cost like the initial broadcast did.
        for i in 0..replicas.len() {
            let from = site_ids[i];
            for &peer in &site_ids {
                if peer == from {
                    continue;
                }
                let missing: Vec<Msg> = replicas[i].unacked_for(peer);
                for m in missing {
                    retransmission_bytes += m.payload.network_bytes();
                    net.send(from, peer, Envelope::Op(m));
                }
            }
        }
    }

    let reference = replicas[0].doc().to_vec();
    let converged = replicas.iter().all(|r| r.doc().to_vec() == reference)
        && replicas.iter().all(|r| r.pending() == 0)
        && replicas.iter().all(|r| !r.has_unacked());

    SimReport {
        converged,
        final_len: reference.len(),
        ops_generated,
        messages_delivered: net.delivered_count(),
        messages_dropped: net.dropped_count(),
        messages_duplicated: net.duplicated_count(),
        duplicates_discarded: replicas.iter().map(|r| r.duplicates_discarded()).sum(),
        retransmissions: replicas.iter().map(|r| r.retransmissions()).sum(),
        retransmission_bytes,
        max_pending,
        network_bytes: network_bytes + retransmission_bytes,
        sim_time_ms: net.now_ms(),
    }
}

/// A cross-product of scenario axes: loss × duplication × partition × edit
/// burst × balancing, every combination sharing the remaining parameters of
/// [`base`](Self::base).
///
/// The swept axes **shadow** the corresponding fields of `base`: a
/// `drop_prob`, `duplicate_prob`, `burst`, `partition_first_site` or
/// `balancing` set on `base` never runs — only the values listed in the
/// axis vectors do. Put sweep values in the axes, and everything else
/// (sites, edits, seed, `reorder_burst_prob`, …) in `base`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioMatrix {
    /// Parameters shared by every cell (sites, edits, seed, …). Fields
    /// covered by an axis vector are ignored — see the type-level note.
    pub base: Scenario,
    /// Drop probabilities to sweep; cells with loss enable retransmission.
    pub drop_probs: Vec<f64>,
    /// Duplication probabilities to sweep.
    pub duplicate_probs: Vec<f64>,
    /// Edit burst sizes to sweep.
    pub bursts: Vec<usize>,
    /// Whether to run with and/or without the mid-run partition.
    pub partition: Vec<bool>,
    /// Whether to run with and/or without §4.1 balancing.
    pub balancing: Vec<bool>,
}

impl ScenarioMatrix {
    /// The default convergence matrix: fault-free and 10%-faulty cells along
    /// every axis.
    pub fn faulty(base: Scenario) -> Self {
        ScenarioMatrix {
            base,
            drop_probs: vec![0.0, 0.1],
            duplicate_probs: vec![0.0, 0.1],
            bursts: vec![1, 5],
            partition: vec![false, true],
            balancing: vec![false],
        }
    }

    /// Expands the axes into concrete scenarios. Cells with `drop_prob > 0`
    /// get `retransmit = true` (a lossy network cannot converge otherwise).
    pub fn scenarios(&self) -> Vec<Scenario> {
        let mut out = Vec::new();
        for &drop_prob in &self.drop_probs {
            for &duplicate_prob in &self.duplicate_probs {
                for &burst in &self.bursts {
                    for &partition_first_site in &self.partition {
                        for &balancing in &self.balancing {
                            out.push(Scenario {
                                drop_prob,
                                duplicate_prob,
                                burst,
                                partition_first_site,
                                balancing,
                                retransmit: self.base.retransmit || drop_prob > 0.0,
                                ..self.base
                            });
                        }
                    }
                }
            }
        }
        out
    }

    /// Runs every cell, returning each scenario with its report.
    pub fn run(&self) -> Vec<(Scenario, SimReport)> {
        self.scenarios()
            .into_iter()
            .map(|scenario| {
                let report = run(&scenario);
                (scenario, report)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_scenario_converges() {
        let report = run(&Scenario::default());
        assert!(report.converged, "replicas must converge: {report:?}");
        assert!(report.ops_generated >= 300);
        assert!(report.messages_delivered > 0);
        assert!(report.network_bytes > 0);
        assert_eq!(report.messages_dropped, 0);
        assert_eq!(report.retransmissions, 0);
    }

    #[test]
    fn many_sites_converge() {
        let report = run(&Scenario {
            sites: 6,
            edits_per_site: 40,
            ..Default::default()
        });
        assert!(report.converged);
        assert_eq!(report.ops_generated, 6 * 40);
    }

    #[test]
    fn convergence_survives_a_partition() {
        let report = run(&Scenario {
            sites: 4,
            edits_per_site: 60,
            partition_first_site: true,
            ..Default::default()
        });
        assert!(
            report.converged,
            "partitioned-then-healed replicas must still converge"
        );
    }

    #[test]
    fn balancing_does_not_affect_convergence() {
        let plain = run(&Scenario {
            seed: 7,
            ..Default::default()
        });
        let balanced = run(&Scenario {
            seed: 7,
            balancing: true,
            ..Default::default()
        });
        assert!(plain.converged && balanced.converged);
        assert_eq!(
            plain.final_len, balanced.final_len,
            "same seed, same edits, same length"
        );
    }

    #[test]
    fn runs_are_reproducible() {
        let a = run(&Scenario::default());
        let b = run(&Scenario::default());
        assert_eq!(a, b);
    }

    #[test]
    fn delete_heavy_sessions_converge() {
        let report = run(&Scenario {
            delete_ratio: 0.7,
            edits_per_site: 80,
            ..Default::default()
        });
        assert!(report.converged);
    }

    #[test]
    fn duplication_alone_converges_without_retransmission() {
        let report = run(&Scenario {
            duplicate_prob: 0.2,
            reorder_burst_prob: 0.1,
            edits_per_site: 60,
            ..Default::default()
        });
        assert!(report.converged, "{report:?}");
        assert!(report.messages_duplicated > 0);
        assert!(
            report.duplicates_discarded >= report.messages_duplicated,
            "every injected duplicate must be discarded by some hold-back \
             queue: {report:?}"
        );
    }

    #[test]
    fn lossy_network_converges_with_retransmission() {
        let report = run(&Scenario {
            edits_per_site: 60,
            ..Scenario::faulty()
        });
        assert!(report.converged, "{report:?}");
        assert!(report.messages_dropped > 0, "{report:?}");
        assert!(report.messages_duplicated > 0, "{report:?}");
        assert!(report.retransmissions > 0, "{report:?}");
        assert!(report.duplicates_discarded > 0, "{report:?}");

        // Loss recovery is not free, and the report says by how much: the
        // re-sent payload bytes are tracked and folded into the total.
        assert!(report.retransmission_bytes > 0, "{report:?}");
        assert!(
            report.network_bytes > report.retransmission_bytes,
            "the total must also cover the initial broadcasts: {report:?}"
        );
    }

    #[test]
    fn faulty_runs_are_reproducible() {
        let scenario = Scenario {
            edits_per_site: 40,
            ..Scenario::faulty()
        };
        assert_eq!(run(&scenario), run(&scenario));
    }

    #[test]
    #[should_panic(expected = "lossy network cannot converge")]
    fn loss_without_retransmission_is_rejected() {
        run(&Scenario {
            drop_prob: 0.1,
            retransmit: false,
            ..Default::default()
        });
    }

    #[test]
    fn matrix_covers_the_cross_product() {
        let matrix = ScenarioMatrix::faulty(Scenario::default());
        let cells = matrix.scenarios();
        assert_eq!(cells.len(), 2 * 2 * 2 * 2);
        assert!(cells.iter().any(|s| s.drop_prob > 0.0 && s.retransmit));
        assert!(cells
            .iter()
            .any(|s| s.drop_prob == 0.0 && s.duplicate_prob == 0.0));
    }

    #[test]
    fn small_matrix_converges_in_every_cell() {
        // `burst` is a swept axis, so it belongs in the matrix, not in base.
        let matrix = ScenarioMatrix::faulty(Scenario {
            sites: 3,
            edits_per_site: 20,
            ..Default::default()
        });
        for (scenario, report) in matrix.run() {
            assert!(report.converged, "cell {scenario:?} diverged: {report:?}");
            assert_eq!(
                report.ops_generated,
                scenario.sites * scenario.edits_per_site.div_ceil(scenario.burst) * scenario.burst
            );
        }
    }
}
