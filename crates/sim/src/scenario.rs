//! Randomised cooperative-editing scenarios.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use treedoc_core::{Op, Sdis, SiteId, Treedoc, TreedocConfig};
use treedoc_replication::{CausalMessage, LinkConfig, Replica, SimNetwork};

/// Description of one simulated editing session.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Scenario {
    /// Number of replicas (sites).
    pub sites: usize,
    /// Local edits initiated per site.
    pub edits_per_site: usize,
    /// Probability that an edit is a delete rather than an insert.
    pub delete_ratio: f64,
    /// How many edits a site performs before its batch is broadcast
    /// (1 = every edit is broadcast immediately).
    pub burst: usize,
    /// Whether the §4.1 balancing strategies are enabled.
    pub balancing: bool,
    /// Simulate a temporary partition of the first site for the middle third
    /// of the run.
    pub partition_first_site: bool,
    /// RNG seed.
    pub seed: u64,
}

impl Default for Scenario {
    fn default() -> Self {
        Scenario {
            sites: 3,
            edits_per_site: 100,
            delete_ratio: 0.3,
            burst: 5,
            balancing: false,
            partition_first_site: false,
            seed: 42,
        }
    }
}

/// What a scenario run measured.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimReport {
    /// Whether every replica ended with identical content.
    pub converged: bool,
    /// Final document length.
    pub final_len: usize,
    /// Total operations generated across all sites.
    pub ops_generated: usize,
    /// Total messages delivered by the network.
    pub messages_delivered: u64,
    /// Largest causal hold-back queue observed across replicas.
    pub max_pending: usize,
    /// Total network payload bytes (identifiers + atoms), the §5.2 network
    /// cost estimate.
    pub network_bytes: usize,
    /// Final simulated time in milliseconds.
    pub sim_time_ms: u64,
}

type Doc = Treedoc<String, Sdis>;
type Msg = CausalMessage<Op<String, Sdis>>;

/// Runs a scenario to completion (all messages delivered) and checks
/// convergence.
pub fn run(scenario: &Scenario) -> SimReport {
    assert!(
        scenario.sites >= 2,
        "a cooperative session needs at least two sites"
    );
    let mut rng = StdRng::seed_from_u64(scenario.seed);
    let site_ids: Vec<SiteId> = (1..=scenario.sites as u64).map(SiteId::from_u64).collect();
    let config = if scenario.balancing {
        TreedocConfig::balanced()
    } else {
        TreedocConfig::default()
    };

    // Everyone starts from the same exploded seed document.
    let seed_doc: Vec<String> = (0..10).map(|i| format!("seed line {i}")).collect();
    let mut replicas: Vec<Replica<Doc>> = site_ids
        .iter()
        .map(|&s| Replica::new(s, Doc::from_atoms_with_config(s, &seed_doc, config)))
        .collect();

    let mut net: SimNetwork<Msg> = SimNetwork::new(LinkConfig::default(), scenario.seed);
    let mut ops_generated = 0usize;
    let mut network_bytes = 0usize;
    let mut max_pending = 0usize;

    let total_rounds = scenario.edits_per_site.div_ceil(scenario.burst.max(1));
    for round in 0..total_rounds {
        // Optional partition of the first site for the middle third.
        if scenario.partition_first_site && scenario.sites >= 2 {
            if round == total_rounds / 3 {
                for &other in &site_ids[1..] {
                    net.partition_both(site_ids[0], other);
                }
            }
            if round == (2 * total_rounds) / 3 {
                for &other in &site_ids[1..] {
                    net.heal_both(site_ids[0], other);
                }
            }
        }

        // Each site performs a burst of local edits and broadcasts them.
        for i in 0..replicas.len() {
            for _ in 0..scenario.burst.max(1) {
                let op = {
                    let replica = &mut replicas[i];
                    let doc = replica.doc_mut();
                    let len = doc.len();
                    if len > 1 && rng.gen_bool(scenario.delete_ratio) {
                        let idx = rng.gen_range(0..len);
                        doc.local_delete(idx).expect("index in range")
                    } else {
                        let idx = rng.gen_range(0..=len);
                        let text = format!("site{} round{} {}", i + 1, round, rng.gen::<u32>());
                        doc.local_insert(idx, text).expect("index in range")
                    }
                };
                ops_generated += 1;
                network_bytes += op.network_bytes() * (scenario.sites - 1);
                let msg = replicas[i].stamp(op);
                net.broadcast(site_ids[i], &site_ids, msg);
            }
        }

        // Let some of the traffic flow between rounds (not all of it, so
        // concurrency actually happens).
        let deliver_now = net.in_flight() / 2;
        for _ in 0..deliver_now {
            let Some(event) = net.step() else { break };
            let idx = site_ids
                .iter()
                .position(|&s| s == event.to)
                .expect("known site");
            replicas[idx].receive(event.payload);
            max_pending = max_pending.max(replicas[idx].pending());
        }
    }

    // Heal any remaining partition and drain the network.
    if scenario.partition_first_site {
        for &other in &site_ids[1..] {
            net.heal_both(site_ids[0], other);
        }
    }
    while let Some(event) = net.step() {
        let idx = site_ids
            .iter()
            .position(|&s| s == event.to)
            .expect("known site");
        replicas[idx].receive(event.payload);
        max_pending = max_pending.max(replicas[idx].pending());
    }

    let reference = replicas[0].doc().to_vec();
    let converged = replicas.iter().all(|r| r.doc().to_vec() == reference)
        && replicas.iter().all(|r| r.pending() == 0);

    SimReport {
        converged,
        final_len: reference.len(),
        ops_generated,
        messages_delivered: net.delivered_count(),
        max_pending,
        network_bytes,
        sim_time_ms: net.now_ms(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_scenario_converges() {
        let report = run(&Scenario::default());
        assert!(report.converged, "replicas must converge: {report:?}");
        assert!(report.ops_generated >= 300);
        assert!(report.messages_delivered > 0);
        assert!(report.network_bytes > 0);
    }

    #[test]
    fn many_sites_converge() {
        let report = run(&Scenario {
            sites: 6,
            edits_per_site: 40,
            ..Default::default()
        });
        assert!(report.converged);
        assert_eq!(report.ops_generated, 6 * 40);
    }

    #[test]
    fn convergence_survives_a_partition() {
        let report = run(&Scenario {
            sites: 4,
            edits_per_site: 60,
            partition_first_site: true,
            ..Default::default()
        });
        assert!(
            report.converged,
            "partitioned-then-healed replicas must still converge"
        );
    }

    #[test]
    fn balancing_does_not_affect_convergence() {
        let plain = run(&Scenario {
            seed: 7,
            ..Default::default()
        });
        let balanced = run(&Scenario {
            seed: 7,
            balancing: true,
            ..Default::default()
        });
        assert!(plain.converged && balanced.converged);
        assert_eq!(
            plain.final_len, balanced.final_len,
            "same seed, same edits, same length"
        );
    }

    #[test]
    fn runs_are_reproducible() {
        let a = run(&Scenario::default());
        let b = run(&Scenario::default());
        assert_eq!(a, b);
    }

    #[test]
    fn delete_heavy_sessions_converge() {
        let report = run(&Scenario {
            delete_ratio: 0.7,
            edits_per_site: 80,
            ..Default::default()
        });
        assert!(report.converged);
    }
}
