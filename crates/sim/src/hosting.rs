//! The multi-document hosting scenario: Zipf-popularity user sessions over
//! thousands of documents on one [`HostingNode`].
//!
//! Real hosting workloads are heavily skewed — a few hot documents take most
//! of the traffic while a long tail sits cold. The scenario samples each
//! session's document from a Zipf(s) distribution, so the node's LRU
//! resident set keeps the hot head warm while the tail lives as snapshots,
//! and measures the three figures the node exists to control:
//!
//! * **operation latency** (p50/p99, µs) — the tail shows the fault-in cost
//!   a cold document pays on first touch;
//! * **resident memory vs hosted documents** — index bytes actually held in
//!   memory against the document population;
//! * **node-wide crash recovery time vs resident-set size** — after a crash
//!   at the commit boundary, how long a restarted node takes to rediscover
//!   every document and fault the working set back in.
//!
//! Edits and document choices are seeded and deterministic; only the
//! wall-clock measurements vary between runs.

use std::time::Instant;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use treedoc_node::{DocId, HostingNode, NodeConfig};
use treedoc_telemetry::{Registry, Telemetry};

/// Parameters of a hosting run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HostingScenario {
    /// Documents in the hosted population.
    pub documents: usize,
    /// User sessions driven (each connects, edits, disconnects).
    pub sessions: usize,
    /// Edits per session.
    pub ops_per_session: usize,
    /// Zipf exponent of document popularity (0 = uniform; ~1 = web-like).
    pub zipf_s: f64,
    /// Shards of the node.
    pub shards: usize,
    /// Resident-set capacity.
    pub max_resident: usize,
    /// Sessions between node-wide commits (group-WAL flushes).
    pub commit_every: usize,
    /// RNG seed for document choice and edit positions.
    pub seed: u64,
}

impl Default for HostingScenario {
    fn default() -> Self {
        HostingScenario {
            documents: 2000,
            sessions: 600,
            ops_per_session: 12,
            zipf_s: 1.1,
            shards: 4,
            max_resident: 64,
            commit_every: 8,
            seed: 42,
        }
    }
}

/// What a hosting run measured.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HostingReport {
    /// Documents the node ended up hosting (those actually touched).
    pub hosted_docs: usize,
    /// Documents warm in memory at the end.
    pub resident_docs: usize,
    /// Resident-set capacity the run was configured with.
    pub max_resident: usize,
    /// Sessions served.
    pub sessions: u64,
    /// Operations applied.
    pub ops_applied: u64,
    /// Median per-operation service latency, µs.
    pub op_p50_micros: u64,
    /// 99th-percentile per-operation service latency, µs (dominated by
    /// fault-ins of cold documents).
    pub op_p99_micros: u64,
    /// In-memory index bytes held by resident documents at the end.
    pub resident_bytes: u64,
    /// Cold evictions performed.
    pub evictions: u64,
    /// Documents faulted back in from their stores.
    pub fault_ins: u64,
    /// Backend segment appends (group commit: ~shards × commits).
    pub segment_appends: u64,
    /// Node-wide commits.
    pub commits: u64,
    /// Wall-clock of the post-crash restart: shard scan + rediscovery of
    /// every document, µs.
    pub restart_micros: u64,
    /// Wall-clock to fault the configured working set (`max_resident`
    /// documents, hottest first) back in after the restart, µs.
    pub refill_micros: u64,
    /// Documents verified intact after recovery (digest readable).
    pub recovered_docs: u64,
}

/// Cumulative-weight Zipf sampler over ranks `0..n` (rank 0 hottest).
#[derive(Debug, Clone)]
pub struct Zipf {
    cumulative: Vec<f64>,
}

impl Zipf {
    /// A sampler over `n` ranks with exponent `s`.
    pub fn new(n: usize, s: f64) -> Self {
        let mut cumulative = Vec::with_capacity(n.max(1));
        let mut total = 0.0;
        for rank in 0..n.max(1) {
            total += 1.0 / ((rank + 1) as f64).powf(s);
            cumulative.push(total);
        }
        Zipf { cumulative }
    }

    /// Draws a rank.
    pub fn sample(&self, rng: &mut StdRng) -> usize {
        let total = *self.cumulative.last().expect("non-empty");
        let u: f64 = rng.gen_range(0.0..total);
        // First rank whose cumulative weight exceeds the draw.
        match self
            .cumulative
            .binary_search_by(|w| w.partial_cmp(&u).expect("finite weights"))
        {
            Ok(i) => i,
            Err(i) => i.min(self.cumulative.len() - 1),
        }
    }
}

/// Runs the scenario and reports the figures (see the module docs).
///
/// Latency percentiles come from the node's `node.op_micros` telemetry
/// histogram; when the caller has no registry, the run opens a private one so
/// the report is identical either way.
pub fn run_hosting(scenario: &HostingScenario) -> HostingReport {
    run_hosting_with(scenario, &Telemetry::disabled())
}

/// [`run_hosting`] with an explicit telemetry handle, so bench bins can
/// aggregate the node's instruments across runs.
pub fn run_hosting_with(scenario: &HostingScenario, telemetry: &Telemetry) -> HostingReport {
    // The report's p50/p99 are read back from the `node.op_micros`
    // histogram, so the run always needs a live registry: fall back to a
    // private one when the caller's handle is inert.
    let fallback = Registry::new();
    let telemetry = if telemetry.is_enabled() {
        telemetry.clone()
    } else {
        fallback.handle()
    };
    let config = NodeConfig {
        shards: scenario.shards.max(1),
        max_resident: scenario.max_resident.max(1),
        site: 1,
    };
    let mut node = HostingNode::new(config);
    node.set_telemetry(&telemetry);
    let zipf = Zipf::new(scenario.documents.max(1), scenario.zipf_s);
    let mut rng = StdRng::seed_from_u64(scenario.seed);

    for session_no in 0..scenario.sessions {
        let doc = zipf.sample(&mut rng) as DocId;
        let session = node
            .connect(&format!("user-{session_no}"), doc)
            .expect("connect cannot fail on a healthy node");
        for _ in 0..scenario.ops_per_session {
            let len = node.contents(doc).expect("hosted").chars().count();
            let delete = len > 4 && rng.gen_bool(0.25);
            let pos = rng.gen_range(0..=len.saturating_sub(delete as usize));
            let ch = char::from(b'a' + (rng.gen_range(0..26u32)) as u8);
            if delete {
                node.remove(session, pos.min(len - 1)).expect("in range");
            } else {
                node.insert(session, pos.min(len), ch).expect("in range");
            }
        }
        node.disconnect(session).expect("live session");
        if (session_no + 1) % scenario.commit_every.max(1) == 0 {
            node.commit().expect("commit cannot fail in memory");
        }
    }
    node.commit().expect("final commit");

    let stats = node.stats();
    let hosted_docs = node.hosted_count();
    let resident_docs = node.resident_count();
    let resident_bytes = node.resident_bytes() as u64;
    let segment_appends = node.segment_appends();

    // Crash at the durability boundary, then measure the restart.
    let hosted: Vec<DocId> = node.hosted();
    let backends = node.backends();
    drop(node);
    let restart_start = Instant::now();
    let mut node = HostingNode::restart(config, backends).expect("restart over intact shards");
    let restart_micros = restart_start.elapsed().as_micros() as u64;
    node.set_telemetry(&telemetry);

    // Refill the working set: touch the hottest documents (low ids are the
    // hot Zipf head) up to the resident capacity, then verify the rest is
    // still reachable.
    let refill_start = Instant::now();
    let mut recovered_docs = 0u64;
    for &doc in hosted.iter().take(config.max_resident) {
        node.digest(doc).expect("fault-in after crash");
        recovered_docs += 1;
    }
    let refill_micros = refill_start.elapsed().as_micros() as u64;
    for &doc in hosted.iter().skip(config.max_resident) {
        node.digest(doc).expect("tail document recovers too");
        recovered_docs += 1;
    }

    let snapshot = telemetry
        .registry()
        .expect("run always holds a registry")
        .snapshot();
    let op_micros = snapshot.histogram("node.op_micros");

    HostingReport {
        hosted_docs,
        resident_docs,
        max_resident: config.max_resident,
        sessions: scenario.sessions as u64,
        ops_applied: stats.ops_applied,
        op_p50_micros: op_micros.map(|h| h.p50).unwrap_or(0),
        op_p99_micros: op_micros.map(|h| h.p99).unwrap_or(0),
        resident_bytes,
        evictions: stats.evictions,
        fault_ins: stats.fault_ins,
        segment_appends,
        commits: stats.commits,
        restart_micros,
        refill_micros,
        recovered_docs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zipf_is_head_heavy() {
        let zipf = Zipf::new(100, 1.1);
        let mut rng = StdRng::seed_from_u64(7);
        let mut head = 0usize;
        const DRAWS: usize = 2000;
        for _ in 0..DRAWS {
            if zipf.sample(&mut rng) < 10 {
                head += 1;
            }
        }
        assert!(
            head > DRAWS / 2,
            "top 10% of ranks should take most draws, got {head}/{DRAWS}"
        );
    }

    #[test]
    fn hosting_run_bounds_residency_and_recovers_everything() {
        let scenario = HostingScenario {
            documents: 200,
            sessions: 80,
            ops_per_session: 6,
            max_resident: 16,
            ..HostingScenario::default()
        };
        let report = run_hosting(&scenario);
        assert_eq!(report.ops_applied, 80 * 6);
        assert!(report.hosted_docs <= 200);
        assert!(report.resident_docs <= 16);
        assert_eq!(report.recovered_docs as usize, report.hosted_docs);
        assert!(report.evictions > 0, "zipf tail must cause evictions");
        assert!(report.fault_ins > 0, "revisited cold docs must fault in");
        assert!(
            report.segment_appends < report.ops_applied / 4,
            "group commit keeps appends far under one per op: {} vs {}",
            report.segment_appends,
            report.ops_applied
        );
    }
}
