//! The blocked-2PC versus non-blocking-3PC demonstration.
//!
//! The paper defers the cost of a distributed flatten; the classically
//! *interesting* cell of that cost is a coordinator partition at the worst
//! instant — after every participant has promised to commit, before the
//! decision reaches anyone. Under 2PC the participants are stuck holding
//! their locks until the partition heals; under 3PC the acknowledged
//! pre-commit round lets them terminate unilaterally and keep editing.
//!
//! [`partitioned_commit_demo`] scripts exactly that schedule over a
//! [`SimNetwork`], deterministically: quiesce, propose, pump the protocol to
//! the brink of the decision, cut the coordinator off, count who makes
//! progress, heal, and verify that both protocols end convergent and
//! committed.

use serde::{Deserialize, Serialize};

use treedoc_commit::{CommitOutcome, CommitProtocol};
use treedoc_core::{Op, Sdis, SiteId, Treedoc};
use treedoc_replication::{
    encode_envelope, Envelope, FlattenCoordinator, LinkConfig, Replica, SimNetwork,
};

use crate::scenario::PRE_COMMIT_TIMEOUT_TICKS;

type Doc = Treedoc<String, Sdis>;
type Env = Envelope<Op<String, Sdis>>;

/// What the scripted coordinator-partition run measured.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PartitionedCommitReport {
    /// Protocol under test.
    pub protocol: CommitProtocol,
    /// Number of replicas (coordinator included).
    pub sites: usize,
    /// Participants that applied the flatten **while the coordinator was
    /// partitioned away** — 0 under 2PC (blocked), all of them under 3PC.
    pub committed_during_partition: usize,
    /// Commits applied by the 3PC unilateral termination rule.
    pub unilateral_commits: u64,
    /// Ticks participants spent locked in the prepared state.
    pub blocked_ticks: u64,
    /// Commitment messages that crossed the network (retransmissions
    /// included).
    pub protocol_messages: u64,
    /// Encoded bytes of that traffic (measured with the binary wire codec,
    /// not estimated).
    pub protocol_bytes: usize,
    /// Coordinator protocol rounds until the outcome was acknowledged.
    pub commit_rounds: u64,
    /// Whether every replica ended with identical content, the flatten
    /// applied everywhere (equal epochs) and no lock left behind.
    pub converged: bool,
}

/// Delivers every currently deliverable event, feeding votes to the
/// coordinator and sending participant replies back.
fn pump_network(
    net: &mut SimNetwork<Env>,
    replicas: &mut [Replica<Doc>],
    site_ids: &[SiteId],
    coordinator: &mut FlattenCoordinator,
    protocol_messages: &mut u64,
    protocol_bytes: &mut usize,
) {
    while let Some(event) = net.step() {
        if let Envelope::FlattenVote(vote) = &event.payload {
            if event.to == site_ids[0] {
                coordinator.on_vote(*vote);
                continue;
            }
        }
        let idx = site_ids
            .iter()
            .position(|&s| s == event.to)
            .expect("known site");
        let (_, reply) = replicas[idx].receive_any(event.payload);
        if let Some(reply) = reply {
            *protocol_messages += 1;
            *protocol_bytes += encode_envelope(&reply).len();
            net.send(event.to, event.from, reply);
        }
    }
}

/// One coordinator tick: send this round's messages and account for them.
fn tick_coordinator(
    net: &mut SimNetwork<Env>,
    coordinator: &mut FlattenCoordinator,
    coordinator_site: SiteId,
    protocol_messages: &mut u64,
    protocol_bytes: &mut usize,
) {
    for (to, env) in coordinator.tick::<Op<String, Sdis>>() {
        *protocol_messages += 1;
        *protocol_bytes += encode_envelope(&env).len();
        net.send(coordinator_site, to, env);
    }
}

/// Runs the scripted coordinator-partition schedule (see the module docs)
/// with `sites` replicas and returns what happened. Panics if the protocol
/// wedges — the run is deterministic, so a panic is a bug, not bad luck.
pub fn partitioned_commit_demo(
    protocol: CommitProtocol,
    sites: usize,
    seed: u64,
) -> PartitionedCommitReport {
    assert!(sites >= 2, "a commitment needs at least two replicas");
    let site_ids: Vec<SiteId> = (1..=sites as u64).map(SiteId::from_u64).collect();
    let mut net: SimNetwork<Env> = SimNetwork::new(LinkConfig::fixed(5), seed);
    let mut protocol_messages = 0u64;
    let mut protocol_bytes = 0usize;

    // 1. Build convergent, quiescent replicas: everyone edits, everything is
    //    delivered (fault-free fixed-latency links), so all clocks are equal.
    let mut replicas: Vec<Replica<Doc>> = site_ids
        .iter()
        .map(|&s| Replica::new(s, Doc::new(s)))
        .collect();
    for i in 0..replicas.len() {
        for k in 0..6 {
            let len = replicas[i].doc().len();
            let op = replicas[i]
                .doc_mut()
                .local_insert(len.min(k), format!("site{} line{}", i + 1, k))
                .expect("index in range");
            let env = replicas[i].stamp_envelope(op);
            net.broadcast(site_ids[i], &site_ids, env);
        }
    }
    while let Some(event) = net.step() {
        let idx = site_ids
            .iter()
            .position(|&s| s == event.to)
            .expect("known site");
        let _ = replicas[idx].receive_any(event.payload);
    }

    // 2. The first site proposes a whole-document flatten.
    let propose = replicas[0]
        .propose_flatten(Vec::new(), protocol)
        .expect("a quiescent coordinator votes Yes on its own proposal");
    let txn = propose.proposal.txn;
    let mut coordinator = FlattenCoordinator::new(propose, site_ids[1..].to_vec());

    // 3. Pump the protocol to the brink of the decision: all votes in (2PC)
    //    or all pre-commit acks in (3PC), commit messages not yet sent.
    let mut guard = 0;
    while !coordinator.ready_to_commit() {
        tick_coordinator(
            &mut net,
            &mut coordinator,
            site_ids[0],
            &mut protocol_messages,
            &mut protocol_bytes,
        );
        pump_network(
            &mut net,
            &mut replicas,
            &site_ids,
            &mut coordinator,
            &mut protocol_messages,
            &mut protocol_bytes,
        );
        guard += 1;
        assert!(guard < 100, "protocol never reached the decision point");
    }

    // 4. Partition the coordinator from everyone, then let it take the
    //    decision: the commit messages are cut off by the partition.
    for &other in &site_ids[1..] {
        net.partition_both(site_ids[0], other);
    }
    tick_coordinator(
        &mut net,
        &mut coordinator,
        site_ids[0],
        &mut protocol_messages,
        &mut protocol_bytes,
    );
    assert_eq!(
        coordinator.outcome(),
        Some(CommitOutcome::Committed),
        "every vote was Yes"
    );

    // 5. Life under the partition: participants tick. 2PC participants stay
    //    locked; 3PC participants hit the pre-commit timeout and terminate.
    for _ in 0..PRE_COMMIT_TIMEOUT_TICKS + 5 {
        for r in replicas[1..].iter_mut() {
            let _ = r.flatten_tick(PRE_COMMIT_TIMEOUT_TICKS);
        }
    }
    let committed_during_partition = replicas[1..]
        .iter()
        .filter(|r| r.flatten_epoch() > 0)
        .count();

    // 6. Heal and finish: the held decision arrives, stragglers commit,
    //    acknowledgements flow back until the coordinator retires.
    for &other in &site_ids[1..] {
        net.heal_both(site_ids[0], other);
    }
    let mut guard = 0;
    while !coordinator.is_done() {
        tick_coordinator(
            &mut net,
            &mut coordinator,
            site_ids[0],
            &mut protocol_messages,
            &mut protocol_bytes,
        );
        pump_network(
            &mut net,
            &mut replicas,
            &site_ids,
            &mut coordinator,
            &mut protocol_messages,
            &mut protocol_bytes,
        );
        guard += 1;
        assert!(guard < 1000, "decision never fully acknowledged");
    }
    replicas[0].finish_flatten(txn, true);

    let reference = replicas[0].doc().to_vec();
    let converged = replicas.iter().all(|r| r.doc().to_vec() == reference)
        && replicas.iter().all(|r| r.flatten_epoch() == 1)
        && replicas.iter().all(|r| !r.is_flatten_prepared())
        && replicas.iter().all(|r| r.pending() == 0);

    PartitionedCommitReport {
        protocol,
        sites,
        committed_during_partition,
        unilateral_commits: replicas
            .iter()
            .map(|r| r.flatten_unilateral_commits())
            .sum(),
        blocked_ticks: replicas.iter().map(|r| r.flatten_blocked_ticks()).sum(),
        protocol_messages,
        protocol_bytes,
        commit_rounds: coordinator.stats().rounds,
        converged,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_phase_blocks_through_the_partition() {
        let report = partitioned_commit_demo(CommitProtocol::TwoPhase, 4, 11);
        assert!(report.converged, "{report:?}");
        assert_eq!(
            report.committed_during_partition, 0,
            "2PC participants must hold their locks until the heal: {report:?}"
        );
        assert_eq!(report.unilateral_commits, 0);
        assert!(report.blocked_ticks > 0);
    }

    #[test]
    fn three_phase_progresses_past_the_pre_commit() {
        let report = partitioned_commit_demo(CommitProtocol::ThreePhase, 4, 11);
        assert!(report.converged, "{report:?}");
        assert_eq!(
            report.committed_during_partition, 3,
            "all pre-committed participants terminate unilaterally: {report:?}"
        );
        assert_eq!(report.unilateral_commits, 3);
    }

    #[test]
    fn three_phase_blocks_less_but_costs_more_messages() {
        let two = partitioned_commit_demo(CommitProtocol::TwoPhase, 4, 7);
        let three = partitioned_commit_demo(CommitProtocol::ThreePhase, 4, 7);
        assert!(two.converged && three.converged);
        assert!(
            three.blocked_ticks < two.blocked_ticks,
            "3PC trades messages for blocked time: {two:?} vs {three:?}"
        );
        assert!(three.protocol_messages > two.protocol_messages);
        assert!(three.protocol_bytes > two.protocol_bytes);
    }

    #[test]
    fn demo_is_deterministic() {
        let a = partitioned_commit_demo(CommitProtocol::ThreePhase, 3, 5);
        let b = partitioned_commit_demo(CommitProtocol::ThreePhase, 3, 5);
        assert_eq!(a, b);
    }
}
