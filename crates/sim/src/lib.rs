//! # treedoc-sim
//!
//! A multi-site cooperative-editing simulator.
//!
//! The paper's evaluation replays serialised edit histories on a single
//! replica; this crate exercises the *distributed* claim — convergence of
//! concurrently edited replicas under happened-before delivery — by driving
//! several [`Replica`](treedoc_replication::Replica)s over the seeded
//! discrete-event network of `treedoc-replication`:
//!
//! * every site performs random local edits (seeded, reproducible),
//! * operations are broadcast through the simulated network (latency,
//!   reordering, optional partitions),
//! * causal delivery is enforced by each replica's hold-back buffer,
//! * at the end the scenario drains the network and asserts convergence.
//!
//! [`Scenario`] describes a run; [`run`] executes it and returns the
//! [`SimReport`] used by the integration tests, the examples and the
//! benchmark ablations.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod scenario;

pub use scenario::{run, Scenario, SimReport};
