//! # treedoc-sim
//!
//! A multi-site cooperative-editing simulator.
//!
//! The paper's evaluation replays serialised edit histories on a single
//! replica; this crate exercises the *distributed* claim — convergence of
//! concurrently edited replicas under happened-before delivery — by driving
//! several [`Replica`](treedoc_replication::Replica)s over the seeded
//! discrete-event network of `treedoc-replication`:
//!
//! * every site performs random local edits (seeded, reproducible),
//! * operations are broadcast through the simulated network (latency,
//!   reordering, optional partitions, and seeded drop/duplicate/reorder-burst
//!   fault injection),
//! * causal delivery is enforced by each replica's duplicate-safe hold-back
//!   buffer; on lossy links the at-least-once ack/retransmit protocol
//!   recovers dropped messages — or, with [`Scenario::anti_entropy`],
//!   state-based merkle-digest sync sessions repair the divergence instead
//!   (and a [`Scenario::late_join`]er bootstraps mid-run from snapshot
//!   chunks; [`Scenario::offline`] models a long offline gap),
//! * at the end the scenario drains the network, runs recovery rounds until
//!   every send log is acknowledged (or every root digest agrees, in
//!   anti-entropy mode), and asserts convergence.
//!
//! [`Scenario`] describes a run; [`run`] executes it and returns the
//! [`SimReport`] used by the integration tests, the examples and the
//! benchmark ablations. [`ScenarioMatrix`] expands a cross-product of fault
//! axes (loss × duplication × partition × burst × balancing × snapshot
//! cadence × crash timing) into scenarios and runs them all.
//!
//! With [`Scenario::durable`] every replica journals through a checksummed
//! WAL into a [`DocStore`](treedoc_storage::DocStore) and checkpoints on
//! committed flattens; [`Scenario::crash`] kills a site mid-run and restarts
//! it from that store, with the recovery cost (records replayed, bytes read
//! back, snapshot hits) reported in the [`SimReport`]. The scripted
//! [`crash_recovery_demo`] additionally proves the crash invisible: the
//! recovered session ends with the same digest as the crash-free one.
//!
//! The [`hosting`] module leaves the single-document world: it drives
//! Zipf-popularity user sessions over thousands of documents on one
//! [`HostingNode`](treedoc_node::HostingNode), measuring op latency
//! percentiles, resident memory against the hosted population, and
//! node-wide crash recovery time against the resident-set size.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod commitment;
pub mod hosting;
pub mod recovery;
pub mod scenario;

pub use commitment::{partitioned_commit_demo, PartitionedCommitReport};
pub use hosting::{run_hosting, run_hosting_with, HostingReport, HostingScenario, Zipf};
pub use recovery::{crash_recovery_demo, CrashRecoveryReport};
pub use scenario::{
    run, run_with, CrashSchedule, OfflineWindow, Scenario, ScenarioMatrix, SimReport,
};
