//! The scripted crash-recovery demonstration.
//!
//! The randomised crash scenarios ([`Scenario::crash`](crate::Scenario))
//! show that a restarted replica converges *within its own run*; this module
//! makes the stronger, paper-style claim checkable: **a session in which a
//! replica crashes and recovers from its durable store ends in exactly the
//! same document as the same session without the crash.**
//!
//! To make the two runs byte-comparable the demo is deterministic and
//! turn-based: edits happen at quiescence (so every insert position is a
//! pure function of the script, not of network timing), and the crashed
//! site's edit schedule has a gap exactly where it is dead. The interesting
//! part of the script:
//!
//! 1. everyone edits and fully synchronises (phase A);
//! 2. the victim writes one last edit whose **every network copy is lost**
//!    (its outgoing links drop everything for one broadcast) — at this point
//!    the only surviving traces of that edit are the victim's in-memory send
//!    log and its WAL;
//! 3. the victim crashes (with the crash flag) — the in-memory copy dies;
//! 4. the survivors keep editing (phase B) while the victim is down;
//! 5. the victim restarts from its store ([`Replica::recover`]), rejoins,
//!    and the at-least-once protocol retransmits in both directions: the
//!    survivors' phase-B edits reach the victim, and the victim's
//!    **recovered send log** re-broadcasts the lost edit — the durability
//!    win, since without the WAL that edit would be gone from the universe;
//! 6. everyone edits once more (phase C) and the session drains.
//!
//! [`crash_recovery_demo`] runs that script with or without the crash and
//! reports the final digest; the test suite asserts the two digests are
//! equal.

use serde::{Deserialize, Serialize};
use treedoc_core::{Op, Sdis, SiteId, Treedoc};
use treedoc_replication::{Envelope, LinkConfig, Replica, SimNetwork};
use treedoc_storage::DocStore;

type Doc = Treedoc<String, Sdis>;
type Env = Envelope<Op<String, Sdis>>;

/// What the scripted crash/recovery run measured.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CrashRecoveryReport {
    /// Whether the crash leg of the script actually ran.
    pub crashed: bool,
    /// Every replica ended with identical content, drained queues and a
    /// fully acknowledged send log.
    pub converged: bool,
    /// Digest of the final document (compare across the crash / no-crash
    /// runs).
    pub final_digest: u64,
    /// Final document length.
    pub final_len: usize,
    /// WAL records the recovery replayed (0 without the crash).
    pub wal_records_replayed: usize,
    /// Bytes the recovery read back (snapshot + WAL prefix).
    pub recovered_bytes: usize,
    /// Whether the recovery found a valid snapshot.
    pub snapshot_hit: bool,
    /// The "lost edit" — stamped, every network copy dropped, surviving only
    /// in the victim's log — made it into the final document.
    pub lost_edit_recovered: bool,
    /// Total messages retransmitted by the at-least-once protocol.
    pub retransmissions: u64,
}

/// Marker content of the edit whose every network copy is dropped.
const LOST_EDIT: &str = "victim parting-edit (all copies dropped)";
/// The victim site (index into the three replicas).
const VICTIM: usize = 1;

/// Delivers everything currently deliverable; events addressed to a dead
/// site are discarded, as a dead process would.
fn drain(
    net: &mut SimNetwork<Env>,
    replicas: &mut [Replica<Doc>],
    site_ids: &[SiteId],
    dead: Option<usize>,
) {
    while let Some(event) = net.step() {
        let idx = site_ids
            .iter()
            .position(|&s| s == event.to)
            .expect("known site");
        if dead == Some(idx) {
            continue;
        }
        let _ = replicas[idx].receive_envelope(event.payload);
    }
}

/// One quiescent edit turn: every listed site appends one line, everything
/// is delivered, then cumulative acks settle the send logs.
fn edit_turn(
    net: &mut SimNetwork<Env>,
    replicas: &mut [Replica<Doc>],
    site_ids: &[SiteId],
    editors: &[usize],
    tag: &str,
    dead: Option<usize>,
) {
    for &i in editors {
        let len = replicas[i].doc().len();
        let op = replicas[i]
            .doc_mut()
            .local_insert(len, format!("s{i} {tag}"))
            .expect("append in range");
        let env = replicas[i].stamp_envelope(op);
        net.broadcast(site_ids[i], site_ids, env);
    }
    drain(net, replicas, site_ids, dead);
    settle(net, replicas, site_ids, dead);
}

/// Ack exchange + retransmission until every live replica's log is clear and
/// every queue is drained. Deterministic; the guard bound is generous.
fn settle(
    net: &mut SimNetwork<Env>,
    replicas: &mut [Replica<Doc>],
    site_ids: &[SiteId],
    dead: Option<usize>,
) {
    for _ in 0..50 {
        let live = |i: usize| dead != Some(i);
        // While a site is dead its peers can never fully clear their logs
        // (the dead site cannot ack), so only queue emptiness is demanded of
        // the survivors; with everyone alive the logs must clear too.
        let done = replicas
            .iter()
            .enumerate()
            .all(|(i, r)| !live(i) || (r.pending() == 0 && (!r.has_unacked() || dead.is_some())));
        for i in 0..replicas.len() {
            if !live(i) {
                continue;
            }
            let ack = replicas[i].ack_envelope();
            net.broadcast(site_ids[i], site_ids, ack);
        }
        drain(net, replicas, site_ids, dead);
        for i in 0..replicas.len() {
            if !live(i) {
                continue;
            }
            for (j, &peer) in site_ids.iter().enumerate() {
                if j == i || !live(j) {
                    continue;
                }
                for env in replicas[i].unacked_envelopes_for(peer) {
                    net.send(site_ids[i], peer, env);
                }
            }
        }
        drain(net, replicas, site_ids, dead);
        if done && net.in_flight() == 0 {
            break;
        }
    }
}

/// Runs the scripted session (see the module docs); `crash` selects whether
/// the victim actually dies or just lives through the identical schedule.
pub fn crash_recovery_demo(seed: u64, crash: bool) -> CrashRecoveryReport {
    let site_ids: Vec<SiteId> = (1..=3u64).map(SiteId::from_u64).collect();
    let seed_doc: Vec<String> = (0..6).map(|i| format!("seed {i}")).collect();
    let mut replicas: Vec<Replica<Doc>> = site_ids
        .iter()
        .map(|&s| Replica::new(s, Doc::from_atoms(s, &seed_doc)))
        .collect();
    let mut net: SimNetwork<Env> = SimNetwork::new(LinkConfig::fixed(5), seed);
    for r in replicas.iter_mut() {
        r.enable_at_least_once(&site_ids);
        r.attach_store(DocStore::in_memory())
            .expect("in-memory attach");
    }

    // Phase A: three quiescent turns with everyone editing, then a victim
    // checkpoint so recovery exercises snapshot + WAL-tail replay.
    for k in 0..3 {
        edit_turn(
            &mut net,
            &mut replicas,
            &site_ids,
            &[0, 1, 2],
            &format!("a{k}"),
            None,
        );
    }
    replicas[VICTIM]
        .persist_checkpoint()
        .expect("checkpoint cannot fail");
    edit_turn(&mut net, &mut replicas, &site_ids, &[0, 1, 2], "a3", None);

    // The parting edit: every outgoing copy is dropped, so the only replicas
    // of this operation are the victim's in-memory send log and its WAL.
    for (j, &peer) in site_ids.iter().enumerate() {
        if j != VICTIM {
            net.set_link(
                site_ids[VICTIM],
                peer,
                LinkConfig::fixed(5).with_drop_prob(1.0),
            );
        }
    }
    {
        let len = replicas[VICTIM].doc().len();
        let op = replicas[VICTIM]
            .doc_mut()
            .local_insert(len, LOST_EDIT.to_string())
            .expect("append in range");
        let env = replicas[VICTIM].stamp_envelope(op);
        net.broadcast(site_ids[VICTIM], &site_ids, env);
    }
    drain(&mut net, &mut replicas, &site_ids, None);
    for (j, &peer) in site_ids.iter().enumerate() {
        if j != VICTIM {
            net.set_link(site_ids[VICTIM], peer, LinkConfig::fixed(5));
        }
    }

    // The crash: the replica object dies, its store survives.
    let mut report = CrashRecoveryReport {
        crashed: crash,
        converged: false,
        final_digest: 0,
        final_len: 0,
        wal_records_replayed: 0,
        recovered_bytes: 0,
        snapshot_hit: false,
        lost_edit_recovered: false,
        retransmissions: 0,
    };
    let mut dead: Option<(usize, DocStore)> = None;
    if crash {
        let store = replicas[VICTIM].detach_store().expect("victim has a store");
        replicas[VICTIM] = Replica::new(site_ids[VICTIM], Doc::new(site_ids[VICTIM]));
        dead = Some((VICTIM, store));
    }

    // Phase B: the survivors keep editing. The victim's schedule has a gap
    // here in *both* runs, so the edit scripts are identical.
    let dead_idx = dead.as_ref().map(|&(i, _)| i);
    for k in 0..3 {
        edit_turn(
            &mut net,
            &mut replicas,
            &site_ids,
            &[0, 2],
            &format!("b{k}"),
            dead_idx,
        );
    }

    // Restart from the store; retransmission flows both ways.
    if let Some((idx, store)) = dead.take() {
        let (recovered, recovery) =
            Replica::<Doc>::recover(store).expect("crash recovery must succeed");
        report.wal_records_replayed = recovery.wal_records_replayed;
        report.recovered_bytes = recovery.bytes_recovered;
        report.snapshot_hit = recovery.snapshot_hit;
        replicas[idx] = recovered;
    }
    settle(&mut net, &mut replicas, &site_ids, None);

    // Phase C: everyone (the recovered victim included) edits again.
    for k in 0..2 {
        edit_turn(
            &mut net,
            &mut replicas,
            &site_ids,
            &[0, 1, 2],
            &format!("c{k}"),
            None,
        );
    }
    settle(&mut net, &mut replicas, &site_ids, None);

    let reference = replicas[0].doc().to_vec();
    report.converged = replicas.iter().all(|r| r.doc().to_vec() == reference)
        && replicas.iter().all(|r| r.pending() == 0)
        && replicas.iter().all(|r| !r.has_unacked());
    report.final_digest = replicas[0].digest();
    report.final_len = reference.len();
    report.lost_edit_recovered = reference.iter().any(|line| line == LOST_EDIT);
    report.retransmissions = replicas.iter().map(|r| r.retransmissions()).sum();
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crashed_run_converges_to_the_crash_free_digest() {
        // The acceptance criterion: same script, with and without the crash,
        // same final document.
        let with_crash = crash_recovery_demo(2026, true);
        let without = crash_recovery_demo(2026, false);
        assert!(with_crash.converged, "{with_crash:?}");
        assert!(without.converged, "{without:?}");
        assert_eq!(
            with_crash.final_digest, without.final_digest,
            "crash + recovery must be invisible in the final document:\n\
             {with_crash:?}\nvs\n{without:?}"
        );
        assert_eq!(with_crash.final_len, without.final_len);
        assert!(with_crash.snapshot_hit);
        assert!(with_crash.wal_records_replayed > 0, "{with_crash:?}");
        assert!(with_crash.recovered_bytes > 0);
        assert_eq!(without.wal_records_replayed, 0);
    }

    #[test]
    fn the_lost_edit_survives_only_through_the_wal() {
        // Every network copy of the parting edit was dropped; after the
        // crash the sole surviving replica of it is the victim's WAL. It
        // must still reach every document.
        let report = crash_recovery_demo(7, true);
        assert!(report.converged, "{report:?}");
        assert!(
            report.lost_edit_recovered,
            "the recovered send log must re-broadcast the lost edit: {report:?}"
        );
        assert!(report.retransmissions > 0);
    }

    #[test]
    fn demo_is_deterministic() {
        assert_eq!(crash_recovery_demo(5, true), crash_recovery_demo(5, true));
        assert_eq!(crash_recovery_demo(5, false), crash_recovery_demo(5, false));
    }
}
