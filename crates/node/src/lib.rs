//! # treedoc-node
//!
//! A multi-document **hosting node**: one process serving many Treedoc
//! documents to many user sessions — the "hostable multi-user
//! synchronization node" shape the reproduction's roadmap aims at, built on
//! the layers underneath:
//!
//! * every document is an ordinary [`treedoc_replication::Replica`] over a
//!   [`treedoc_core::Treedoc`], durable through the existing
//!   [`treedoc_storage::DocStore`] journaling and recovery;
//! * documents are spread over `S` **shards**. A shard is one shared blob
//!   backend ([`treedoc_storage::SharedBackend`]; on disk a
//!   `shard-<idx>/` directory via
//!   [`treedoc_storage::FileBackend::open_shard`]) in which each document
//!   owns a blob namespace ([`treedoc_storage::NamespacedBackend`]) for its
//!   snapshots;
//! * each shard's WAL traffic goes through one cross-document
//!   **group-commit** log ([`treedoc_storage::GroupWal`]): all resident
//!   documents of the shard enqueue records, and a node
//!   [`commit`](HostingNode::commit) makes them durable with a single
//!   segment append per shard;
//! * the node keeps a bounded **resident set**: cold documents are evicted
//!   (checkpointed to a snapshot, in-memory tree dropped) by an LRU policy
//!   ([`resident::ResidentSet`]) and faulted back in on first touch through
//!   the ordinary [`Replica::recover`](treedoc_replication::Replica::recover)
//!   path — eviction and crash recovery are the *same* mechanism, which is
//!   what makes the eviction correctness properties testable;
//! * after a node-wide crash, [`HostingNode::restart`] rediscovers every
//!   hosted document from the shard backends
//!   ([`treedoc_storage::list_namespaces`]) and restarts it evicted; state
//!   flushed by the last `commit`/checkpoint is recovered exactly.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod node;
pub mod resident;

pub use node::{HostingNode, NodeStats, SessionId};
pub use resident::ResidentSet;

use std::fmt;

use treedoc_storage::StorageError;

/// Identifier of a hosted document (its blob namespace is `d<id>`).
pub type DocId = u64;

/// Tuning knobs of a [`HostingNode`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeConfig {
    /// Number of shards documents are spread over (`doc % shards`).
    pub shards: usize,
    /// Resident-set capacity: touching a document beyond this evicts the
    /// least-recently-used resident one.
    pub max_resident: usize,
    /// Site identifier the node stamps operations with.
    pub site: u64,
}

impl Default for NodeConfig {
    fn default() -> Self {
        NodeConfig {
            shards: 4,
            max_resident: 64,
            site: 1,
        }
    }
}

impl NodeConfig {
    /// The shard hosting `doc`.
    pub fn shard_of(&self, doc: DocId) -> usize {
        (doc % self.shards.max(1) as u64) as usize
    }
}

/// What can go wrong serving a session.
#[derive(Debug)]
pub enum NodeError {
    /// The session id was never admitted (or already disconnected).
    UnknownSession(u64),
    /// The document is not hosted by this node.
    UnknownDocument(DocId),
    /// An edit addressed a position outside the document.
    OutOfRange {
        /// The offending index.
        index: usize,
        /// Document length at the time.
        len: usize,
    },
    /// The durable layer failed.
    Storage(StorageError),
    /// A document could not be rebuilt from its store.
    Recover(String),
}

impl fmt::Display for NodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NodeError::UnknownSession(id) => write!(f, "unknown session {id}"),
            NodeError::UnknownDocument(id) => write!(f, "document {id} is not hosted here"),
            NodeError::OutOfRange { index, len } => {
                write!(
                    f,
                    "position {index} out of range for document of length {len}"
                )
            }
            NodeError::Storage(e) => write!(f, "storage error: {e}"),
            NodeError::Recover(msg) => write!(f, "recovery failed: {msg}"),
        }
    }
}

impl std::error::Error for NodeError {}

impl From<StorageError> for NodeError {
    fn from(e: StorageError) -> Self {
        NodeError::Storage(e)
    }
}
