//! The resident-set bookkeeping: which documents are warm, and which one to
//! evict when the set is full.
//!
//! A plain LRU over logical touch ticks. The node drives it: every routed
//! operation [`touch`](ResidentSet::touch)es the document, admission checks
//! [`over_capacity`](ResidentSet::over_capacity) and evicts
//! [`coldest`](ResidentSet::coldest) until back under the limit. Keeping the
//! policy in its own type (instead of inline in the node) makes the
//! eviction-order tests independent of storage and sessions.

use std::collections::BTreeMap;

use crate::DocId;

/// LRU tracker of the warm documents.
#[derive(Debug, Default)]
pub struct ResidentSet {
    last_touch: BTreeMap<DocId, u64>,
    tick: u64,
}

impl ResidentSet {
    /// An empty resident set.
    pub fn new() -> Self {
        ResidentSet::default()
    }

    /// Marks `doc` as just used (admitting it if absent) and returns the
    /// touch tick assigned.
    pub fn touch(&mut self, doc: DocId) -> u64 {
        self.tick += 1;
        self.last_touch.insert(doc, self.tick);
        self.tick
    }

    /// Whether `doc` is currently resident.
    pub fn contains(&self, doc: DocId) -> bool {
        self.last_touch.contains_key(&doc)
    }

    /// Forgets `doc` (evicted or dropped).
    pub fn remove(&mut self, doc: DocId) {
        self.last_touch.remove(&doc);
    }

    /// Number of resident documents.
    pub fn len(&self) -> usize {
        self.last_touch.len()
    }

    /// Whether no document is resident.
    pub fn is_empty(&self) -> bool {
        self.last_touch.is_empty()
    }

    /// Whether the set exceeds `capacity`.
    pub fn over_capacity(&self, capacity: usize) -> bool {
        self.last_touch.len() > capacity
    }

    /// The least-recently-touched resident document, skipping `protect`
    /// (the one being served right now must not evict itself).
    pub fn coldest(&self, protect: Option<DocId>) -> Option<DocId> {
        self.last_touch
            .iter()
            .filter(|&(&doc, _)| Some(doc) != protect)
            .min_by_key(|&(&doc, &tick)| (tick, doc))
            .map(|(&doc, _)| doc)
    }

    /// Resident documents, coldest first (diagnostics).
    pub fn by_coldness(&self) -> Vec<DocId> {
        let mut docs: Vec<(u64, DocId)> = self
            .last_touch
            .iter()
            .map(|(&doc, &tick)| (tick, doc))
            .collect();
        docs.sort_unstable();
        docs.into_iter().map(|(_, doc)| doc).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lru_order_follows_touches() {
        let mut set = ResidentSet::new();
        for doc in [1, 2, 3] {
            set.touch(doc);
        }
        assert_eq!(set.coldest(None), Some(1));
        set.touch(1); // now 2 is coldest
        assert_eq!(set.coldest(None), Some(2));
        assert_eq!(set.by_coldness(), vec![2, 3, 1]);
    }

    #[test]
    fn protected_document_is_never_chosen() {
        let mut set = ResidentSet::new();
        set.touch(7);
        assert_eq!(set.coldest(Some(7)), None);
        set.touch(8);
        assert_eq!(set.coldest(Some(8)), Some(7));
    }

    #[test]
    fn remove_forgets() {
        let mut set = ResidentSet::new();
        set.touch(1);
        set.touch(2);
        set.remove(1);
        assert_eq!(set.len(), 1);
        assert!(!set.contains(1));
        assert_eq!(set.coldest(None), Some(2));
    }
}
