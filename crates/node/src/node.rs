//! The [`HostingNode`] itself: session admission, shard routing, cold
//! eviction and the node-wide commit/crash/restart lifecycle.

use std::collections::BTreeMap;
use std::fmt;

use treedoc_core::{Sdis, SiteId, Treedoc};
use treedoc_replication::Replica;
use treedoc_storage::{list_namespaces, DocStore, GroupWal, NamespacedBackend, SharedBackend};
use treedoc_telemetry::{Counter, Histogram, Telemetry, TraceEvent, Tracer};

use crate::resident::ResidentSet;
use crate::{DocId, NodeConfig, NodeError};

/// The hosted document type: a character Treedoc with the paper's structured
/// disambiguators.
pub type HostedDoc = Treedoc<char, Sdis>;

/// Handle to an admitted user session.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SessionId(pub u64);

impl fmt::Display for SessionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "session-{}", self.0)
    }
}

/// Lifetime counters of a node.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NodeStats {
    /// Sessions admitted over the node's lifetime.
    pub sessions_admitted: u64,
    /// Operations applied on behalf of sessions.
    pub ops_applied: u64,
    /// Cold documents evicted (checkpointed and dropped).
    pub evictions: u64,
    /// Documents faulted back in from their stores.
    pub fault_ins: u64,
    /// Node-wide commits (group-WAL flush rounds).
    pub commits: u64,
}

#[derive(Debug)]
struct Session {
    user: String,
    doc: DocId,
}

/// Telemetry instruments of one hosting node: session-op volume and
/// latency, eviction / fault-in / commit activity, plus trace events for
/// the low-frequency lifecycle points. Inert by default; bound with
/// [`HostingNode::set_telemetry`].
#[derive(Debug, Clone, Default)]
struct NodeMetrics {
    /// The bound handle, re-applied to replicas faulted in later.
    telemetry: Telemetry,
    op_micros: Histogram,
    ops: Counter,
    sessions: Counter,
    evictions: Counter,
    fault_ins: Counter,
    fault_in_micros: Histogram,
    commit_micros: Histogram,
    tracer: Tracer,
}

impl NodeMetrics {
    fn resolve(telemetry: &Telemetry) -> Self {
        NodeMetrics {
            telemetry: telemetry.clone(),
            op_micros: telemetry.histogram("node.op_micros"),
            ops: telemetry.counter("node.ops"),
            sessions: telemetry.counter("node.sessions"),
            evictions: telemetry.counter("node.evictions"),
            fault_ins: telemetry.counter("node.fault_ins"),
            fault_in_micros: telemetry.histogram("node.fault_in_micros"),
            commit_micros: telemetry.histogram("node.commit_micros"),
            tracer: telemetry.tracer(),
        }
    }
}

#[derive(Debug)]
struct Shard {
    backend: SharedBackend,
    wal: GroupWal,
}

/// A hosted document is either warm (its replica in memory) or cold
/// (nothing but its blobs — snapshot plus group-WAL tail — on the shard).
#[derive(Debug)]
enum Hosted {
    Resident(Box<Replica<HostedDoc>>),
    Evicted,
}

/// The document's blob namespace inside its shard.
fn namespace(doc: DocId) -> String {
    format!("d{doc}")
}

fn parse_namespace(ns: &str) -> Option<DocId> {
    ns.strip_prefix('d')?.parse().ok()
}

/// One process hosting many Treedoc documents for many user sessions.
///
/// See the crate docs for the architecture; in short: documents shard by id
/// over shared backends, journal through per-shard group-commit WALs, and a
/// bounded LRU resident set decides which replicas stay in memory. The
/// durability boundary is [`commit`](Self::commit) — records of edits since
/// the last commit live in the shard queues and die with the process.
#[derive(Debug)]
pub struct HostingNode {
    config: NodeConfig,
    shards: Vec<Shard>,
    docs: BTreeMap<DocId, Hosted>,
    residents: ResidentSet,
    sessions: BTreeMap<u64, Session>,
    next_session: u64,
    stats: NodeStats,
    metrics: NodeMetrics,
}

impl HostingNode {
    /// A node over fresh in-memory shards (tests, examples, simulation).
    pub fn new(config: NodeConfig) -> Self {
        let backends = (0..config.shards.max(1))
            .map(|_| SharedBackend::in_memory())
            .collect();
        Self::open(config, backends).expect("memory backends cannot fail")
    }

    /// Opens a node over existing shard backends — the boot path for real
    /// storage and the restart path after a crash. Documents already present
    /// on the shards (their blob namespaces) are rediscovered and hosted
    /// **evicted**; each faults in on first touch through the ordinary
    /// recovery path.
    pub fn open(config: NodeConfig, backends: Vec<SharedBackend>) -> Result<Self, NodeError> {
        assert_eq!(
            backends.len(),
            config.shards.max(1),
            "one backend per shard"
        );
        let mut shards = Vec::with_capacity(backends.len());
        let mut docs = BTreeMap::new();
        for backend in backends {
            for ns in list_namespaces(&backend)? {
                if let Some(doc) = parse_namespace(&ns) {
                    docs.insert(doc, Hosted::Evicted);
                }
            }
            let wal = GroupWal::open(backend.clone())?;
            shards.push(Shard { backend, wal });
        }
        Ok(HostingNode {
            config,
            shards,
            docs,
            residents: ResidentSet::new(),
            sessions: BTreeMap::new(),
            next_session: 1,
            stats: NodeStats::default(),
            metrics: NodeMetrics::default(),
        })
    }

    /// Points the node's instruments at `telemetry` and propagates the
    /// handle to every shard group-WAL and every currently resident replica
    /// (replicas faulted in later inherit it too). A disabled handle reverts
    /// everything to no-ops.
    pub fn set_telemetry(&mut self, telemetry: &Telemetry) {
        self.metrics = NodeMetrics::resolve(telemetry);
        for shard in &self.shards {
            shard.wal.set_telemetry(telemetry);
        }
        for hosted in self.docs.values_mut() {
            if let Hosted::Resident(replica) = hosted {
                replica.set_telemetry(telemetry);
            }
        }
    }

    /// Restart after a node-wide crash: same as [`open`](Self::open), named
    /// for what the caller means. Everything flushed by the last
    /// [`commit`](Self::commit) (or checkpointed by an eviction) recovers;
    /// enqueued-but-uncommitted records are lost, as group commit promises.
    pub fn restart(config: NodeConfig, backends: Vec<SharedBackend>) -> Result<Self, NodeError> {
        Self::open(config, backends)
    }

    /// Clonable handles to the shard backends — what survives a crash (the
    /// test pattern: grab these, drop the node, [`restart`](Self::restart)).
    pub fn backends(&self) -> Vec<SharedBackend> {
        self.shards.iter().map(|s| s.backend.clone()).collect()
    }

    /// The node's configuration.
    pub fn config(&self) -> NodeConfig {
        self.config
    }

    /// Lifetime counters.
    pub fn stats(&self) -> NodeStats {
        self.stats
    }

    /// Every hosted document id, resident or not, ascending.
    pub fn hosted(&self) -> Vec<DocId> {
        self.docs.keys().copied().collect()
    }

    /// Number of hosted documents (resident or evicted).
    pub fn hosted_count(&self) -> usize {
        self.docs.len()
    }

    /// Number of documents currently warm in memory.
    pub fn resident_count(&self) -> usize {
        self.residents.len()
    }

    /// Whether `doc` is currently resident.
    pub fn is_resident(&self, doc: DocId) -> bool {
        self.residents.contains(doc)
    }

    /// In-memory bytes held by resident documents' position indexes — the
    /// figure eviction exists to bound.
    pub fn resident_bytes(&self) -> usize {
        self.docs
            .values()
            .map(|h| match h {
                Hosted::Resident(r) => r.doc().index_bytes(),
                Hosted::Evicted => 0,
            })
            .sum()
    }

    /// Total backend segment appends across all shards — WAL write traffic,
    /// the quantity group commit collapses.
    pub fn segment_appends(&self) -> u64 {
        self.shards.iter().map(|s| s.backend.stats().appends).sum()
    }

    /// Ensures `doc` is hosted, creating it (resident, with a baseline
    /// checkpoint on its shard) if this node has never seen it.
    pub fn host(&mut self, doc: DocId) -> Result<(), NodeError> {
        if self.docs.contains_key(&doc) {
            return Ok(());
        }
        let store = self.open_store(doc)?;
        let site = SiteId::from_u64(self.config.site);
        let mut replica = Replica::new(site, HostedDoc::new(site));
        replica.set_telemetry(&self.metrics.telemetry);
        replica.attach_store(store)?;
        self.docs.insert(doc, Hosted::Resident(Box::new(replica)));
        self.admit(doc)?;
        Ok(())
    }

    /// Admits a user session onto `doc` (hosting and faulting the document
    /// in as needed) and returns its handle.
    pub fn connect(&mut self, user: &str, doc: DocId) -> Result<SessionId, NodeError> {
        self.host(doc)?;
        self.ensure_resident(doc)?;
        let id = SessionId(self.next_session);
        self.next_session += 1;
        self.sessions.insert(
            id.0,
            Session {
                user: user.to_string(),
                doc,
            },
        );
        self.stats.sessions_admitted += 1;
        self.metrics.sessions.inc();
        Ok(id)
    }

    /// Ends a session. Its document stays hosted (and resident until
    /// eviction picks it).
    pub fn disconnect(&mut self, session: SessionId) -> Result<(), NodeError> {
        self.sessions
            .remove(&session.0)
            .map(|_| ())
            .ok_or(NodeError::UnknownSession(session.0))
    }

    /// The user a session belongs to.
    pub fn session_user(&self, session: SessionId) -> Result<&str, NodeError> {
        self.sessions
            .get(&session.0)
            .map(|s| s.user.as_str())
            .ok_or(NodeError::UnknownSession(session.0))
    }

    /// Number of live sessions.
    pub fn session_count(&self) -> usize {
        self.sessions.len()
    }

    /// Inserts `atom` at `index` in the session's document. The operation is
    /// stamped and journaled to the shard's group queue; it becomes durable
    /// at the next [`commit`](Self::commit) (or checkpoint).
    pub fn insert(
        &mut self,
        session: SessionId,
        index: usize,
        atom: char,
    ) -> Result<(), NodeError> {
        let doc = self.session_doc(session)?;
        let span = self.metrics.op_micros.start();
        let replica = self.ensure_resident(doc)?;
        let len = replica.doc().len();
        if index > len {
            return Err(NodeError::OutOfRange { index, len });
        }
        let op = replica
            .doc_mut()
            .local_insert(index, atom)
            .expect("insert index checked in range");
        let _stamped = replica.stamp(op);
        span.stop();
        self.stats.ops_applied += 1;
        self.metrics.ops.inc();
        Ok(())
    }

    /// Deletes the atom at `index` in the session's document.
    pub fn remove(&mut self, session: SessionId, index: usize) -> Result<(), NodeError> {
        let doc = self.session_doc(session)?;
        let span = self.metrics.op_micros.start();
        let replica = self.ensure_resident(doc)?;
        let len = replica.doc().len();
        if index >= len {
            return Err(NodeError::OutOfRange { index, len });
        }
        let op = replica
            .doc_mut()
            .local_delete(index)
            .expect("delete index checked in range");
        let _stamped = replica.stamp(op);
        span.stop();
        self.stats.ops_applied += 1;
        self.metrics.ops.inc();
        Ok(())
    }

    /// The current contents of `doc` (faulting it in if cold).
    pub fn contents(&mut self, doc: DocId) -> Result<String, NodeError> {
        let replica = self.require_resident(doc)?;
        Ok(replica.doc().to_vec().into_iter().collect())
    }

    /// Order-independent digest of `doc`'s content (faulting it in if
    /// cold) — the figure crash tests compare against a crash-free run.
    pub fn digest(&mut self, doc: DocId) -> Result<u64, NodeError> {
        let replica = self.require_resident(doc)?;
        Ok(replica.digest())
    }

    /// Flushes every shard's group queue — **the durability boundary**: one
    /// backend segment append per shard with pending records, covering
    /// every document's edits since the last commit. Returns the number of
    /// records made durable.
    pub fn commit(&mut self) -> Result<u64, NodeError> {
        let span = self.metrics.commit_micros.start();
        let mut flushed = 0;
        for shard in &self.shards {
            flushed += shard.wal.flush()?;
        }
        self.stats.commits += 1;
        let micros = span.stop();
        self.metrics.tracer.record_with(|| TraceEvent {
            site: self.config.site,
            lsn: flushed,
            micros,
            ..TraceEvent::of("node.commit")
        });
        Ok(flushed)
    }

    /// Evicts `doc` if resident: checkpoints it (snapshot + durable replay
    /// cursor — which also flushes the shard queue) and drops the in-memory
    /// replica. Returns whether an eviction actually happened. The document
    /// faults back in on first touch.
    pub fn evict(&mut self, doc: DocId) -> Result<bool, NodeError> {
        match self.docs.get_mut(&doc) {
            None => Err(NodeError::UnknownDocument(doc)),
            Some(slot @ Hosted::Resident(_)) => {
                let Hosted::Resident(mut replica) = std::mem::replace(slot, Hosted::Evicted) else {
                    unreachable!("matched resident above")
                };
                replica.persist_checkpoint()?;
                self.residents.remove(doc);
                self.stats.evictions += 1;
                self.metrics.evictions.inc();
                self.metrics.tracer.record_with(|| TraceEvent {
                    site: self.config.site,
                    doc: namespace(doc),
                    ..TraceEvent::of("node.evict")
                });
                Ok(true)
            }
            Some(Hosted::Evicted) => Ok(false),
        }
    }

    /// The document a session is attached to.
    fn session_doc(&self, session: SessionId) -> Result<DocId, NodeError> {
        self.sessions
            .get(&session.0)
            .map(|s| s.doc)
            .ok_or(NodeError::UnknownSession(session.0))
    }

    /// A group-mode store over `doc`'s namespace on its shard.
    fn open_store(&self, doc: DocId) -> Result<DocStore, NodeError> {
        let shard = &self.shards[self.config.shard_of(doc)];
        let ns = namespace(doc);
        let view = NamespacedBackend::new(shard.backend.clone(), &ns)?;
        Ok(DocStore::with_group_wal(view, shard.wal.clone(), &ns)?)
    }

    /// Errors on unknown documents, otherwise behaves as
    /// [`ensure_resident`](Self::ensure_resident) — for read paths that
    /// must not implicitly create documents.
    fn require_resident(&mut self, doc: DocId) -> Result<&mut Replica<HostedDoc>, NodeError> {
        if !self.docs.contains_key(&doc) {
            return Err(NodeError::UnknownDocument(doc));
        }
        self.ensure_resident(doc)
    }

    /// Touches `doc`, faulting it in from its store if cold and evicting
    /// LRU documents while over capacity, then hands out the warm replica.
    fn ensure_resident(&mut self, doc: DocId) -> Result<&mut Replica<HostedDoc>, NodeError> {
        match self.docs.get(&doc) {
            None => return Err(NodeError::UnknownDocument(doc)),
            Some(Hosted::Evicted) => {
                let span = self.metrics.fault_in_micros.start();
                let store = self.open_store(doc)?;
                let (mut replica, report) = Replica::<HostedDoc>::recover(store)
                    .map_err(|e| NodeError::Recover(e.to_string()))?;
                replica.set_telemetry(&self.metrics.telemetry);
                self.docs.insert(doc, Hosted::Resident(Box::new(replica)));
                self.stats.fault_ins += 1;
                self.metrics.fault_ins.inc();
                let micros = span.stop();
                self.metrics.tracer.record_with(|| TraceEvent {
                    site: self.config.site,
                    doc: namespace(doc),
                    epoch: report.snapshot_epoch,
                    bytes: report.bytes_recovered as u64,
                    micros,
                    ..TraceEvent::of("node.fault_in")
                });
            }
            Some(Hosted::Resident(_)) => {}
        }
        self.admit(doc)?;
        match self.docs.get_mut(&doc) {
            Some(Hosted::Resident(replica)) => Ok(replica),
            _ => unreachable!("document made resident above"),
        }
    }

    /// Records a touch on `doc` and evicts coldest documents (never `doc`
    /// itself) until the resident set is back within capacity.
    fn admit(&mut self, doc: DocId) -> Result<(), NodeError> {
        self.residents.touch(doc);
        while self
            .residents
            .over_capacity(self.config.max_resident.max(1))
        {
            let Some(victim) = self.residents.coldest(Some(doc)) else {
                break;
            };
            self.evict(victim)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(max_resident: usize) -> NodeConfig {
        NodeConfig {
            shards: 2,
            max_resident,
            site: 9,
        }
    }

    fn type_line(node: &mut HostingNode, session: SessionId, text: &str) {
        for (i, ch) in text.chars().enumerate() {
            node.insert(session, i, ch).unwrap();
        }
    }

    #[test]
    fn sessions_edit_their_own_documents() {
        let mut node = HostingNode::new(tiny(8));
        let alice = node.connect("alice", 1).unwrap();
        let bob = node.connect("bob", 2).unwrap();
        type_line(&mut node, alice, "hello");
        type_line(&mut node, bob, "world");
        assert_eq!(node.contents(1).unwrap(), "hello");
        assert_eq!(node.contents(2).unwrap(), "world");
        assert_eq!(node.session_user(alice).unwrap(), "alice");
        assert_eq!(node.stats().ops_applied, 10);
        node.disconnect(alice).unwrap();
        assert!(node.insert(alice, 0, 'x').is_err(), "dead session rejected");
        assert_eq!(
            node.contents(1).unwrap(),
            "hello",
            "document outlives session"
        );
    }

    #[test]
    fn out_of_range_edits_are_rejected() {
        let mut node = HostingNode::new(tiny(8));
        let s = node.connect("u", 1).unwrap();
        assert!(matches!(
            node.insert(s, 5, 'x'),
            Err(NodeError::OutOfRange { index: 5, len: 0 })
        ));
        assert!(matches!(
            node.remove(s, 0),
            Err(NodeError::OutOfRange { .. })
        ));
    }

    #[test]
    fn lru_eviction_keeps_the_resident_set_bounded() {
        let mut node = HostingNode::new(tiny(2));
        for doc in 1..=5 {
            let s = node.connect("u", doc).unwrap();
            type_line(&mut node, s, "text");
        }
        assert_eq!(node.hosted_count(), 5);
        assert_eq!(node.resident_count(), 2, "capacity enforced");
        assert!(node.is_resident(5));
        assert!(!node.is_resident(1));
        assert_eq!(node.stats().evictions, 3);
        // Touching an evicted document faults it in — contents intact.
        assert_eq!(node.contents(1).unwrap(), "text");
        assert!(node.is_resident(1));
        assert_eq!(node.stats().fault_ins, 1);
    }

    #[test]
    fn eviction_frees_resident_memory() {
        let mut node = HostingNode::new(tiny(8));
        let s = node.connect("u", 1).unwrap();
        type_line(&mut node, s, "some resident text");
        let warm = node.resident_bytes();
        assert!(warm > 0);
        node.evict(1).unwrap();
        assert_eq!(node.resident_bytes(), 0);
        assert_eq!(node.contents(1).unwrap(), "some resident text");
        assert!(node.resident_bytes() >= warm, "faulted back in whole");
    }

    #[test]
    fn commit_then_crash_then_restart_recovers_documents() {
        let mut node = HostingNode::new(tiny(4));
        let a = node.connect("u", 10).unwrap();
        let b = node.connect("u", 11).unwrap();
        type_line(&mut node, a, "alpha");
        type_line(&mut node, b, "beta");
        node.commit().unwrap();
        let backends = node.backends();
        drop(node); // the crash: queues and resident replicas die

        let mut node = HostingNode::restart(tiny(4), backends).unwrap();
        assert_eq!(node.hosted(), vec![10, 11], "rediscovered from shards");
        assert_eq!(node.resident_count(), 0, "everything restarts cold");
        assert_eq!(node.contents(10).unwrap(), "alpha");
        assert_eq!(node.contents(11).unwrap(), "beta");
    }

    #[test]
    fn uncommitted_edits_die_with_the_process() {
        let mut node = HostingNode::new(tiny(4));
        let s = node.connect("u", 1).unwrap();
        type_line(&mut node, s, "durable");
        node.commit().unwrap();
        node.insert(s, 7, '!').unwrap(); // enqueued, never flushed
        let backends = node.backends();
        drop(node);

        let mut node = HostingNode::restart(tiny(4), backends).unwrap();
        assert_eq!(
            node.contents(1).unwrap(),
            "durable",
            "group commit loses exactly the unflushed tail"
        );
    }
}
