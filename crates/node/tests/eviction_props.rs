//! Property tests for eviction correctness (ISSUE 8 satellite):
//!
//! * evict → fault-in → evict under random edits always recovers the
//!   pre-eviction root digest;
//! * group-commit replay cursors never leak records across documents,
//!   whatever the interleaving of enqueues, flushes and checkpoints.

use proptest::prelude::*;
use treedoc_node::{HostingNode, NodeConfig};
use treedoc_storage::GroupWal;

proptest! {
    /// Random cross-document edit interleavings with a resident set far
    /// smaller than the document count (so eviction churn is constant),
    /// then, per document: digest → evict → fault-in must reproduce the
    /// digest — twice, since the second eviction starts from a
    /// freshly-recovered replica.
    #[test]
    fn evict_fault_in_evict_recovers_the_pre_eviction_digest(
        ops in proptest::collection::vec(
            (0u64..4, 0u32..1000, any::<bool>()),
            1..60,
        ),
    ) {
        let mut node = HostingNode::new(NodeConfig {
            shards: 2,
            max_resident: 2,
            site: 5,
        });
        let sessions: Vec<_> = (0..4)
            .map(|doc| node.connect("prop", doc).unwrap())
            .collect();
        for (doc, seed, delete) in ops {
            let session = sessions[doc as usize];
            let len = node.contents(doc).unwrap().chars().count();
            if delete && len > 0 {
                node.remove(session, seed as usize % len).unwrap();
            } else {
                let ch = char::from(b'a' + (seed % 26) as u8);
                node.insert(session, seed as usize % (len + 1), ch).unwrap();
            }
        }
        for doc in 0..4 {
            let before = node.digest(doc).unwrap();
            let text = node.contents(doc).unwrap();
            prop_assert!(node.evict(doc).unwrap(), "doc just touched is resident");
            prop_assert!(!node.is_resident(doc));
            prop_assert_eq!(node.digest(doc).unwrap(), before);
            prop_assert!(node.evict(doc).unwrap(), "evictable again after fault-in");
            prop_assert_eq!(node.digest(doc).unwrap(), before);
            prop_assert_eq!(node.contents(doc).unwrap(), text);
        }
    }

    /// Drives one shared group WAL with an arbitrary interleaving of
    /// enqueues, flushes and per-document checkpoints (cursor advances),
    /// with tiny segments so rotation and pruning trigger constantly. Every
    /// document's replay past its cursor must return exactly its own
    /// unfolded records, in order — never another document's.
    #[test]
    fn group_replay_cursors_never_leak_across_documents(
        steps in proptest::collection::vec(
            (0usize..5, any::<u8>(), any::<bool>()),
            1..80,
        ),
    ) {
        let wal = GroupWal::in_memory();
        wal.set_rotate_bytes(64); // constant rotation + pruning pressure
        let names = ["alpha", "beta", "gamma", "delta", "epsilon"];
        let mut logged: Vec<Vec<(u64, Vec<u8>)>> = vec![Vec::new(); names.len()];
        let mut cursors = [0u64; 5];
        for (doc, byte, checkpoint) in steps {
            let payload = vec![doc as u8, byte];
            let lsn = wal.enqueue(names[doc], 7, &payload);
            logged[doc].push((lsn, payload));
            if checkpoint {
                // A checkpoint flushes first (the store enforces this), then
                // folds everything flushed into the document's cursor.
                wal.flush().unwrap();
                cursors[doc] = wal.watermark();
                wal.note_checkpoint(names[doc], cursors[doc]).unwrap();
            }
        }
        wal.flush().unwrap();
        for doc in 0..names.len() {
            let replay = wal.replay_for(names[doc], cursors[doc]).unwrap();
            for entry in &replay.entries {
                prop_assert_eq!(entry.epoch, 7);
                prop_assert_eq!(
                    entry.payload[0] as usize, doc,
                    "replay for {} leaked a foreign record", names[doc]
                );
            }
            let expected: Vec<&Vec<u8>> = logged[doc]
                .iter()
                .filter(|&&(lsn, _)| lsn > cursors[doc])
                .map(|(_, payload)| payload)
                .collect();
            prop_assert_eq!(replay.entries.len(), expected.len());
            for (entry, payload) in replay.entries.iter().zip(expected) {
                prop_assert_eq!(&entry.payload, payload);
            }
        }
    }
}
