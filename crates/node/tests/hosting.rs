//! Acceptance tests for the hosting node (ISSUE 8):
//!
//! 1. a node hosting ≥ 64 documents under mixed traffic performs
//!    *measurably fewer* backend segment writes with the group-commit WAL
//!    than the same traffic over per-document private WALs;
//! 2. a node-wide crash recovers every hosted document to its crash-free
//!    digest — including documents that were evicted at crash time.

use treedoc_core::SiteId;
use treedoc_node::node::HostedDoc;
use treedoc_node::{DocId, HostingNode, NodeConfig, SessionId};
use treedoc_replication::Replica;
use treedoc_storage::{DocStore, NamespacedBackend, SharedBackend};

const DOCS: u64 = 64;
const ROUNDS: usize = 6;
const SHARDS: usize = 4;
const SITE: u64 = 1;

enum Edit {
    Insert(usize, char),
    Delete(usize),
}

/// The deterministic mixed-traffic script for one document-round: three
/// inserts at spread positions plus, on odd rounds, one delete.
fn script(doc: DocId, round: usize, mut len: usize) -> Vec<Edit> {
    let mut edits = Vec::new();
    for k in 0..3 {
        let pos = (doc as usize * 7 + round * 3 + k * 5) % (len + 1);
        let ch = char::from(b'a' + ((doc as usize + round + k) % 26) as u8);
        edits.push(Edit::Insert(pos, ch));
        len += 1;
    }
    if round % 2 == 1 && len > 2 {
        edits.push(Edit::Delete(len / 2));
        len -= 1;
    }
    let _ = len;
    edits
}

fn apply_to_node(node: &mut HostingNode, session: SessionId, edits: &[Edit]) {
    for edit in edits {
        match *edit {
            Edit::Insert(pos, ch) => node.insert(session, pos, ch).unwrap(),
            Edit::Delete(pos) => node.remove(session, pos).unwrap(),
        }
    }
}

fn apply_to_replica(replica: &mut Replica<HostedDoc>, edits: &[Edit]) {
    for edit in edits {
        let op = match *edit {
            Edit::Insert(pos, ch) => replica.doc_mut().local_insert(pos, ch).unwrap(),
            Edit::Delete(pos) => replica.doc_mut().local_delete(pos).unwrap(),
        };
        let _stamped = replica.stamp(op);
    }
}

fn edit_len(edits: &[Edit]) -> isize {
    edits
        .iter()
        .map(|e| match e {
            Edit::Insert(..) => 1,
            Edit::Delete(_) => -1,
        })
        .sum()
}

#[test]
fn group_commit_beats_private_wals_on_segment_writes() {
    // --- Group-commit node: 64 documents over 4 shards, commit per round.
    let config = NodeConfig {
        shards: SHARDS,
        max_resident: DOCS as usize, // no eviction: pure WAL comparison
        site: SITE,
    };
    let mut node = HostingNode::new(config);
    let sessions: Vec<SessionId> = (0..DOCS)
        .map(|doc| node.connect(&format!("user-{doc}"), doc).unwrap())
        .collect();
    let mut lens = vec![0usize; DOCS as usize];
    for round in 0..ROUNDS {
        for doc in 0..DOCS {
            let edits = script(doc, round, lens[doc as usize]);
            apply_to_node(&mut node, sessions[doc as usize], &edits);
            lens[doc as usize] = (lens[doc as usize] as isize + edit_len(&edits)) as usize;
        }
        node.commit().unwrap();
    }
    let group_appends = node.segment_appends();

    // --- Baseline: the same traffic, each document journaling to its own
    // private WAL over the same kind of shared backends.
    let backends: Vec<SharedBackend> = (0..SHARDS).map(|_| SharedBackend::in_memory()).collect();
    let site = SiteId::from_u64(SITE);
    let mut replicas: Vec<Replica<HostedDoc>> = (0..DOCS)
        .map(|doc| {
            let ns = format!("d{doc}");
            let view = NamespacedBackend::new(backends[config.shard_of(doc)].clone(), &ns).unwrap();
            let mut replica = Replica::new(site, HostedDoc::new(site));
            replica.attach_store(DocStore::new(view).unwrap()).unwrap();
            replica
        })
        .collect();
    let mut lens = vec![0usize; DOCS as usize];
    for round in 0..ROUNDS {
        for doc in 0..DOCS {
            let edits = script(doc, round, lens[doc as usize]);
            apply_to_replica(&mut replicas[doc as usize], &edits);
            lens[doc as usize] = (lens[doc as usize] as isize + edit_len(&edits)) as usize;
        }
    }
    let private_appends: u64 = backends.iter().map(|b| b.stats().appends).sum();

    // Same traffic, same documents: the contents must agree...
    for doc in 0..DOCS {
        assert_eq!(
            node.digest(doc).unwrap(),
            replicas[doc as usize].digest(),
            "document {doc} diverged between the two WAL modes"
        );
    }
    // ...but group commit collapses per-record appends into one segment
    // write per shard per commit.
    assert_eq!(
        private_appends,
        node.stats().ops_applied,
        "private mode pays one segment append per logged record"
    );
    assert!(
        group_appends as usize <= SHARDS * ROUNDS,
        "group mode pays at most one append per shard per commit \
         (got {group_appends})"
    );
    assert!(
        group_appends * 10 <= private_appends,
        "group commit must collapse segment writes by >=10x: \
         {group_appends} vs {private_appends}"
    );
}

#[test]
fn node_wide_crash_recovers_every_document_including_evicted() {
    let config = NodeConfig {
        shards: SHARDS,
        max_resident: 12, // far fewer than the documents: heavy eviction
        site: SITE,
    };
    const HOSTED: u64 = 72;
    let mut node = HostingNode::new(config);
    let mut lens = vec![0usize; HOSTED as usize];
    for round in 0..4 {
        for doc in 0..HOSTED {
            // Sessions come and go; each touch churns the resident set.
            let session = node.connect(&format!("u{doc}"), doc).unwrap();
            let edits = script(doc, round, lens[doc as usize]);
            apply_to_node(&mut node, session, &edits);
            lens[doc as usize] = (lens[doc as usize] as isize + edit_len(&edits)) as usize;
            node.disconnect(session).unwrap();
        }
        node.commit().unwrap();
    }
    assert!(
        node.stats().evictions > 0,
        "scenario must exercise eviction"
    );
    assert!(node.resident_count() <= 12);

    // Crash-free reference digests (faulting documents in to read them
    // churns the resident set further, but never the contents).
    let reference: Vec<u64> = (0..HOSTED).map(|doc| node.digest(doc).unwrap()).collect();
    node.commit().unwrap(); // the durability boundary before the crash
    let evicted_at_crash: Vec<DocId> = (0..HOSTED).filter(|&doc| !node.is_resident(doc)).collect();
    assert!(
        evicted_at_crash.len() as u64 >= HOSTED - 12,
        "most documents must be cold at crash time"
    );

    let backends = node.backends();
    drop(node); // node-wide crash: every resident replica and queue dies

    let mut node = HostingNode::restart(config, backends).unwrap();
    assert_eq!(node.hosted_count() as u64, HOSTED, "all rediscovered");
    assert_eq!(node.resident_count(), 0);
    for doc in 0..HOSTED {
        assert_eq!(
            node.digest(doc).unwrap(),
            reference[doc as usize],
            "document {doc} did not recover to its crash-free digest"
        );
    }
    assert!(
        evicted_at_crash
            .iter()
            .all(|&doc| { node.contents(doc).is_ok() }),
        "documents evicted at crash time recover like any other"
    );
}
