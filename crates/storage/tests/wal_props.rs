//! Property tests for the WAL framing: arbitrary truncation or corruption of
//! the log tail never costs a record before the damage.

use proptest::prelude::*;
use treedoc_storage::wal::{append_record, replay};

fn build_log(records: &[(u64, Vec<u8>)]) -> Vec<u8> {
    let mut log = Vec::new();
    for (epoch, payload) in records {
        append_record(&mut log, *epoch, payload);
    }
    log
}

proptest! {
    /// Whole logs replay exactly.
    #[test]
    fn clean_logs_round_trip(
        records in proptest::collection::vec(
            (0u64..8, proptest::collection::vec(any::<u8>(), 0..120)),
            0..25,
        ),
    ) {
        let log = build_log(&records);
        let result = replay(&log);
        prop_assert!(result.is_clean());
        prop_assert_eq!(result.entries.len(), records.len());
        for (entry, (epoch, payload)) in result.entries.iter().zip(&records) {
            prop_assert_eq!(entry.epoch, *epoch);
            prop_assert_eq!(&entry.payload, payload);
        }
        prop_assert_eq!(result.valid_bytes, log.len());
    }

    /// The torn-tail guarantee: truncating the log at an arbitrary byte
    /// never corrupts a record before the cut — replay returns exactly the
    /// records that were fully contained, each byte-identical.
    #[test]
    fn arbitrary_truncation_preserves_the_prefix(
        records in proptest::collection::vec(
            (0u64..8, proptest::collection::vec(any::<u8>(), 0..120)),
            1..25,
        ),
        cut_ppm in 0u32..1_000_000,
    ) {
        let log = build_log(&records);
        let cut = (log.len() as u64 * cut_ppm as u64 / 1_000_000) as usize;
        let result = replay(&log[..cut]);

        // Every returned record must match the original at its position.
        prop_assert!(result.entries.len() <= records.len());
        for (entry, (epoch, payload)) in result.entries.iter().zip(&records) {
            prop_assert_eq!(entry.epoch, *epoch);
            prop_assert_eq!(&entry.payload, payload);
        }
        // And nothing fully contained in the cut may be lost: the number of
        // surviving records is exactly the number of whole frames before it.
        let mut whole = 0usize;
        let mut consumed = 0usize;
        for (_, payload) in &records {
            let frame = treedoc_storage::wal::record_size(payload.len());
            if consumed + frame <= cut {
                whole += 1;
                consumed += frame;
            } else {
                break;
            }
        }
        prop_assert_eq!(result.entries.len(), whole);
        prop_assert_eq!(result.dropped_bytes, cut - consumed);
        prop_assert_eq!(result.is_clean(), cut == log.len() || consumed == cut);
    }

    /// Flipping any byte in the last record's frame never costs an earlier
    /// record.
    #[test]
    fn corrupting_the_last_record_spares_the_rest(
        records in proptest::collection::vec(
            (0u64..8, proptest::collection::vec(any::<u8>(), 0..120)),
            1..15,
        ),
        offset_ppm in 0u32..1_000_000,
        flip in 1u8..255,
    ) {
        let mut log = build_log(&records);
        let last_frame =
            treedoc_storage::wal::record_size(records.last().expect("non-empty").1.len());
        let last_start = log.len() - last_frame;
        let at = last_start + (last_frame as u64 * offset_ppm as u64 / 1_000_000) as usize;
        let at = at.min(log.len() - 1);
        log[at] ^= flip;

        let result = replay(&log);
        // The prefix survives byte-identically…
        prop_assert!(result.entries.len() >= records.len() - 1);
        for (entry, (epoch, payload)) in result.entries.iter().zip(&records).take(records.len() - 1) {
            prop_assert_eq!(entry.epoch, *epoch);
            prop_assert_eq!(&entry.payload, payload);
        }
        // …and the damaged record never sneaks through silently altered: it
        // is either dropped (fault reported) or — only when the flip landed
        // in its own length prefix and produced a self-consistent frame —
        // rejected by the CRC anyway. A surviving final record must be
        // byte-identical, which a flipped frame cannot be.
        if result.entries.len() == records.len() {
            let (epoch, payload) = records.last().expect("non-empty");
            let entry = result.entries.last().expect("non-empty");
            prop_assert_eq!(entry.epoch, *epoch);
            prop_assert_eq!(&entry.payload, payload);
        } else {
            prop_assert!(!result.is_clean());
        }
    }
}
