//! Property tests for the §5.2 disk image: encode→decode round-trips over
//! randomly edited trees, including documents whose concurrent edits force
//! mini-node overflow sections, and corruption never panics.

use proptest::prelude::*;
use treedoc_core::{Sdis, SiteId, Tree, Treedoc, Udis};
use treedoc_storage::{rle_decompress, DiskImage};

fn site(n: u64) -> SiteId {
    SiteId::from_u64(n)
}

/// Builds two replicas from a random script of interleaved local edits with
/// periodic cross-synchronisation. Concurrent inserts at the same index
/// between syncs produce mini-siblings; inserts *between* mini-siblings
/// produce the mini-namespace subtrees of the overflow section.
fn edited_doc(script: &[(u8, u8, u16)]) -> Treedoc<String, Sdis> {
    let mut a: Treedoc<String, Sdis> = Treedoc::new(site(1));
    let mut b: Treedoc<String, Sdis> = Treedoc::new(site(2));
    let mut a_outbox = Vec::new();
    let mut b_outbox = Vec::new();
    for (k, &(who, action, pos)) in script.iter().enumerate() {
        let (doc, outbox) = if who % 2 == 0 {
            (&mut a, &mut a_outbox)
        } else {
            (&mut b, &mut b_outbox)
        };
        let len = doc.len();
        if action % 4 == 0 && len > 0 {
            outbox.push(doc.local_delete(pos as usize % len).expect("in range"));
        } else {
            let idx = pos as usize % (len + 1);
            outbox.push(
                doc.local_insert(idx, format!("atom {k}"))
                    .expect("in range"),
            );
        }
        // Every few steps the replicas exchange everything, so later inserts
        // land between merged (possibly mini-) nodes.
        if action % 5 == 0 {
            for op in a_outbox.drain(..) {
                b.apply(&op).expect("concurrent ops merge");
            }
            for op in b_outbox.drain(..) {
                a.apply(&op).expect("concurrent ops merge");
            }
        }
    }
    for op in a_outbox.drain(..) {
        b.apply(&op).expect("concurrent ops merge");
    }
    for op in b_outbox.drain(..) {
        a.apply(&op).expect("concurrent ops merge");
    }
    assert_eq!(a.to_vec(), b.to_vec(), "replicas must converge");
    a
}

/// All slots (bit paths + liveness) of a tree, for exact structural equality.
fn slots(tree: &Tree<String, Sdis>) -> Vec<(Vec<u8>, bool)> {
    let mut out = Vec::new();
    tree.for_each_slot(|s| {
        out.push((
            s.bits.iter().map(|b| b.bit()).collect(),
            s.content.is_live(),
        ));
    });
    out
}

proptest! {
    /// Random concurrently edited documents round-trip exactly — content,
    /// tombstones and structure — including overflow sections.
    #[test]
    fn random_trees_round_trip(
        script in proptest::collection::vec(
            (any::<u8>(), any::<u8>(), any::<u16>()),
            1..60,
        ),
    ) {
        let doc = edited_doc(&script);
        let image = DiskImage::encode(&doc.tree());
        let back = image.decode::<Sdis>().expect("healthy image decodes");
        prop_assert_eq!(back.to_vec(), doc.to_vec());
        prop_assert_eq!(back.node_count(), doc.node_count());
        prop_assert_eq!(slots(&back), slots(&doc.tree()));
    }

    /// Documents forced through the mini-node overflow section round-trip.
    #[test]
    fn mini_overflow_sections_round_trip(
        seed_len in 2usize..8,
        wedge in 0u16..500,
    ) {
        let mut a: Treedoc<String, Sdis> = Treedoc::new(site(1));
        let mut b: Treedoc<String, Sdis> = Treedoc::new(site(2));
        let seed: Vec<_> = (0..seed_len)
            .map(|i| a.local_insert(i, format!("s{i}")).expect("in range"))
            .collect();
        for op in &seed {
            b.apply(op).expect("seed applies");
        }
        // Concurrent inserts at the same index: mini-siblings.
        let at = wedge as usize % seed_len;
        let oa = a.local_insert(at, "mini-a".into()).expect("in range");
        let ob = b.local_insert(at, "mini-b".into()).expect("in range");
        a.apply(&ob).expect("concurrent insert merges");
        b.apply(&oa).expect("concurrent insert merges");
        // An insert between the two mini-siblings: mini-namespace subtree.
        let between = a
            .local_insert(at + 1, "between".into())
            .expect("in range");
        b.apply(&between).expect("merges");
        prop_assert_eq!(a.to_vec(), b.to_vec());

        let image = DiskImage::encode(&a.tree());
        prop_assert!(image.stats.overflow_slots > 0, "the wedge must overflow");
        let back = image.decode::<Sdis>().expect("healthy image decodes");
        prop_assert_eq!(back.to_vec(), a.to_vec());
        prop_assert_eq!(back.node_count(), a.node_count());
    }

    /// UDIS documents (eager deletion, 10-byte disambiguators) round-trip.
    #[test]
    fn udis_trees_round_trip(
        script in proptest::collection::vec((any::<u16>(), any::<u8>()), 1..40),
    ) {
        let mut doc: Treedoc<String, Udis> = Treedoc::new(site(9));
        for (k, &(pos, action)) in script.iter().enumerate() {
            let len = doc.len();
            if action % 3 == 0 && len > 0 {
                doc.local_delete(pos as usize % len).expect("in range");
            } else {
                doc.local_insert(pos as usize % (len + 1), format!("u{k}"))
                    .expect("in range");
            }
        }
        let image = DiskImage::encode(&doc.tree());
        let back = image.decode::<Udis>().expect("healthy image decodes");
        prop_assert_eq!(back.to_vec(), doc.to_vec());
        prop_assert_eq!(back.node_count(), doc.node_count());
    }

    /// Truncating the structure stream anywhere never panics: it either
    /// still decodes (the cut fell inside trailing marker runs) or reports a
    /// typed error.
    #[test]
    fn truncated_structures_never_panic(
        script in proptest::collection::vec(
            (any::<u8>(), any::<u8>(), any::<u16>()),
            1..30,
        ),
        cut_ppm in 0u32..1_000_000,
    ) {
        let doc = edited_doc(&script);
        let mut image = DiskImage::encode(&doc.tree());
        let cut = (image.structure.len() as u64 * cut_ppm as u64 / 1_000_000) as usize;
        image.structure.truncate(cut);
        if let Ok(tree) = image.decode::<Sdis>() {
            // Only acceptable if the cut dropped nothing semantically: the
            // decompressed prefix still reproduced every slot.
            prop_assert_eq!(tree.to_vec(), doc.to_vec());
        }
    }

    /// Corrupting one byte of the decompressed structure never panics.
    #[test]
    fn corrupted_structures_never_panic(
        script in proptest::collection::vec(
            (any::<u8>(), any::<u8>(), any::<u16>()),
            1..30,
        ),
        at_ppm in 0u32..1_000_000,
        flip in 1u8..255,
    ) {
        let doc = edited_doc(&script);
        let mut image = DiskImage::encode(&doc.tree());
        let raw = rle_decompress(&image.structure).expect("fresh image decompresses");
        let mut raw = raw;
        let at = (raw.len() as u64 * at_ppm as u64 / 1_000_000) as usize % raw.len().max(1);
        if !raw.is_empty() {
            raw[at] ^= flip;
        }
        image.structure = treedoc_storage::rle_compress(&raw);
        let _ = image.decode::<Sdis>(); // must not panic; outcome is free
    }
}
