//! The cross-document group-commit WAL.
//!
//! A hosting node journals for *many* documents at once. Giving every
//! document its own WAL segment makes each logged record one backend
//! `append` — one segment write, and on a real directory one fsync — so a
//! node hosting N busy documents pays N times the write rate of the traffic
//! it actually carries. [`GroupWal`] is the classic fix (group commit): all
//! documents of a shard share **one** append queue, and a `flush` writes the
//! whole queue into the shared segment with a single backend `append`.
//!
//! Records are framed exactly like the private WAL of [`crate::wal`], with a
//! group header inside the payload:
//!
//! ```text
//! payload = varint(lsn) ++ varint(len(doc)) ++ doc ++ inner-payload
//! ```
//!
//! * the **LSN** is a global, monotonically increasing sequence number over
//!   the whole shard;
//! * **doc** is the owning document's namespace, so replay can hand every
//!   record to exactly one document;
//! * the inner payload is whatever the document's store appended (the
//!   replication layer's serialised `WalRecord`s).
//!
//! **Per-document replay cursors.** A document checkpoint folds everything
//! the document has logged into its snapshot; the group segments, shared
//! with other documents, cannot be truncated for it. Instead the checkpoint
//! stores the shard watermark (the highest flushed LSN) as the document's
//! *cursor*, durably embedded in the snapshot blob's name (see
//! [`crate::store`]), and recovery replays only this document's records with
//! `lsn > cursor` — so recovering one document never replays another's
//! records, and never double-applies its own folded ones.
//!
//! **Durability boundary.** Queued records are not durable until `flush`;
//! the embedding node flushes at its commit boundaries (and every checkpoint
//! flushes first, so a durable cursor never covers an unflushed LSN — which
//! is what keeps LSNs monotone across a crash that loses the queue).
//!
//! **Pruning.** A flushed segment can be deleted once every record in it is
//! folded into its document's snapshot. The conservative rule used here: the
//! *floor* is the smallest cursor among documents that still have unfolded
//! records (documents whose last record is already folded don't constrain
//! anything); any non-active segment whose highest LSN is at or under the
//! floor is unreferenced by every possible recovery and is removed.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

use treedoc_core::codec::{get_bytes, get_varint, put_bytes, put_varint};
use treedoc_telemetry::{Counter, Histogram, Telemetry, TraceEvent, Tracer};

use crate::backend::{SharedBackend, StorageBackend, StorageError};
use crate::wal::{self, WalEntry};

/// Rotate the active group segment once it exceeds this many bytes (checked
/// at flush, so one oversized flush still lands in one segment).
const DEFAULT_ROTATE_BYTES: u64 = 1 << 20;

/// Lifetime counters of a [`GroupWal`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GroupWalStats {
    /// Records enqueued.
    pub records: u64,
    /// Flushes that actually wrote (each is exactly one backend segment
    /// append — the number group commit exists to shrink).
    pub segment_writes: u64,
    /// Bytes appended to segments (framing included).
    pub bytes: u64,
    /// Segment rotations.
    pub rotations: u64,
    /// Segments deleted by cursor-based pruning.
    pub pruned_segments: u64,
}

/// What a per-document replay pass found.
#[derive(Debug, Clone, Default)]
pub struct GroupReplay {
    /// This document's records with `lsn > cursor`, in LSN order.
    pub entries: Vec<WalEntry>,
    /// Frame bytes belonging to this document's replayed records.
    pub bytes: usize,
    /// Tail bytes dropped as torn or corrupt (shard-wide, not per-document).
    pub torn_tail_bytes: usize,
}

#[derive(Debug, Clone, Copy, Default)]
struct DocMark {
    /// Highest LSN folded into this document's newest snapshot.
    folded: u64,
    /// Highest LSN ever assigned to this document.
    last: u64,
}

/// Telemetry instruments of one shard's group WAL. Inert by default; bound
/// by [`GroupWal::set_telemetry`].
#[derive(Debug, Clone, Default)]
struct GroupMetrics {
    enqueue_micros: Histogram,
    flush_micros: Histogram,
    flush_records: Counter,
    pruned_segments: Counter,
    tracer: Tracer,
}

impl GroupMetrics {
    fn resolve(telemetry: &Telemetry) -> Self {
        GroupMetrics {
            enqueue_micros: telemetry.histogram("gwal.enqueue_micros"),
            flush_micros: telemetry.histogram("gwal.flush_micros"),
            flush_records: telemetry.counter("gwal.flush_records"),
            pruned_segments: telemetry.counter("gwal.pruned_segments"),
            tracer: telemetry.tracer(),
        }
    }
}

#[derive(Debug)]
struct GroupInner {
    backend: SharedBackend,
    /// Framed records awaiting the next flush.
    queue: Vec<u8>,
    queued_records: u64,
    next_lsn: u64,
    active_segment: u64,
    active_segment_bytes: u64,
    rotate_bytes: u64,
    /// Flushed segments and the highest LSN each holds.
    segments: BTreeMap<u64, u64>,
    /// Every document seen (enqueued, registered or discovered at open).
    docs: BTreeMap<String, DocMark>,
    stats: GroupWalStats,
    metrics: GroupMetrics,
}

/// A cloneable handle to one shard's shared group-commit WAL. All methods
/// take `&self`; the handle is freely shared between the document stores of
/// a shard.
#[derive(Debug, Clone)]
pub struct GroupWal {
    inner: Arc<Mutex<GroupInner>>,
}

fn segment_name(seq: u64) -> String {
    format!("gwal-{seq:012}.log")
}

fn parse_segment_name(name: &str) -> Option<u64> {
    name.strip_prefix("gwal-")?
        .strip_suffix(".log")?
        .parse()
        .ok()
}

/// Builds the group payload: `varint(lsn) ++ bytes(doc) ++ payload`.
fn group_payload(lsn: u64, doc: &str, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(payload.len() + doc.len() + 12);
    put_varint(&mut out, lsn);
    put_bytes(&mut out, doc.as_bytes());
    out.extend_from_slice(payload);
    out
}

/// Splits a group payload back into `(lsn, doc, inner payload)`.
fn split_payload(payload: &[u8]) -> Option<(u64, &str, &[u8])> {
    let mut input = payload;
    let lsn = get_varint(&mut input)?;
    let doc = std::str::from_utf8(get_bytes(&mut input)?).ok()?;
    Some((lsn, doc, input))
}

impl GroupWal {
    /// Opens (or re-opens) the shard's group WAL over `backend`: existing
    /// `gwal-*.log` segments are scanned to restore the LSN counter, the
    /// segment map and each document's highest LSN. Cursors are *not* stored
    /// here — they live in the documents' snapshot names and are re-learned
    /// as each document store registers (until then pruning stays
    /// conservative).
    pub fn open(backend: SharedBackend) -> Result<Self, StorageError> {
        let mut segments = BTreeMap::new();
        let mut docs: BTreeMap<String, DocMark> = BTreeMap::new();
        let mut max_lsn = 0u64;
        let mut seqs: Vec<u64> = backend
            .list()?
            .iter()
            .filter_map(|n| parse_segment_name(n))
            .collect();
        seqs.sort_unstable();
        for &seq in &seqs {
            let bytes = backend.read(&segment_name(seq))?.unwrap_or_default();
            let replay = wal::replay(&bytes);
            let mut seg_max = 0u64;
            for entry in &replay.entries {
                if let Some((lsn, doc, _)) = split_payload(&entry.payload) {
                    seg_max = seg_max.max(lsn);
                    max_lsn = max_lsn.max(lsn);
                    let mark = docs.entry(doc.to_string()).or_default();
                    mark.last = mark.last.max(lsn);
                }
            }
            segments.insert(seq, seg_max);
            if replay.fault.is_some() {
                // Records past a fault are untrustworthy; the LSN counter
                // restarts above everything *valid*, which is also
                // everything any durable cursor can reference.
                break;
            }
        }
        let active_segment = seqs.last().copied().unwrap_or(0);
        let active_segment_bytes = backend
            .read(&segment_name(active_segment))?
            .map_or(0, |b| b.len() as u64);
        Ok(GroupWal {
            inner: Arc::new(Mutex::new(GroupInner {
                backend,
                queue: Vec::new(),
                queued_records: 0,
                next_lsn: max_lsn + 1,
                active_segment,
                active_segment_bytes,
                rotate_bytes: DEFAULT_ROTATE_BYTES,
                segments,
                docs,
                stats: GroupWalStats::default(),
                metrics: GroupMetrics::default(),
            })),
        })
    }

    /// A group WAL over a fresh in-memory backend (tests).
    pub fn in_memory() -> Self {
        GroupWal::open(SharedBackend::in_memory()).expect("memory backend cannot fail")
    }

    /// Overrides the segment-rotation threshold (bytes).
    pub fn set_rotate_bytes(&self, bytes: u64) {
        self.lock().rotate_bytes = bytes.max(1);
    }

    /// Points this WAL's instruments (enqueue/flush latency, flush-record
    /// and prune counters, `gwal.flush` trace events) at `telemetry`. A
    /// disabled handle reverts them to no-ops.
    pub fn set_telemetry(&self, telemetry: &Telemetry) {
        self.lock().metrics = GroupMetrics::resolve(telemetry);
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, GroupInner> {
        self.inner.lock().expect("group WAL lock")
    }

    /// Lifetime counters.
    pub fn stats(&self) -> GroupWalStats {
        self.lock().stats
    }

    /// Records enqueued but not yet flushed.
    pub fn pending_records(&self) -> u64 {
        self.lock().queued_records
    }

    /// The highest **flushed** LSN (0 before the first flush). This is what
    /// document checkpoints store as their replay cursor, so it must never
    /// cover a record a crash could still lose — hence flushed, not
    /// enqueued.
    pub fn watermark(&self) -> u64 {
        let inner = self.lock();
        inner.next_lsn - 1 - inner.queued_records
    }

    /// Registers a document and the cursor from its newest durable snapshot
    /// (re-learned at store-open time so pruning can make progress after a
    /// restart).
    pub fn register(&self, doc: &str, cursor: u64) {
        let mut inner = self.lock();
        let mark = inner.docs.entry(doc.to_string()).or_default();
        mark.folded = mark.folded.max(cursor);
    }

    /// Appends one record for `doc` to the shared queue, returning its LSN.
    /// Durable only after the next [`flush`](Self::flush).
    pub fn enqueue(&self, doc: &str, epoch: u64, payload: &[u8]) -> u64 {
        let mut inner = self.lock();
        let span = inner.metrics.enqueue_micros.start();
        let lsn = inner.next_lsn;
        inner.next_lsn += 1;
        let framed = group_payload(lsn, doc, payload);
        let before = inner.queue.len();
        let mut queue = std::mem::take(&mut inner.queue);
        wal::append_record(&mut queue, epoch, &framed);
        inner.queue = queue;
        let grew = inner.queue.len() - before;
        inner.queued_records += 1;
        inner.stats.records += 1;
        inner.stats.bytes += grew as u64;
        let mark = inner.docs.entry(doc.to_string()).or_default();
        mark.last = lsn;
        span.stop();
        lsn
    }

    /// Writes the whole queue into the active segment with **one** backend
    /// append (the group commit), then rotates and prunes if due. Returns
    /// the number of records made durable (0 for an empty queue, which
    /// performs no write at all).
    pub fn flush(&self) -> Result<u64, StorageError> {
        let mut inner = self.lock();
        if inner.queue.is_empty() {
            return Ok(0);
        }
        let span = inner.metrics.flush_micros.start();
        let queue = std::mem::take(&mut inner.queue);
        let records = std::mem::take(&mut inner.queued_records);
        let seg = inner.active_segment;
        let name = segment_name(seg);
        let mut backend = inner.backend.clone();
        backend.append(&name, &queue)?;
        let flushed_bytes = queue.len() as u64;
        inner.active_segment_bytes += flushed_bytes;
        inner.stats.segment_writes += 1;
        let flushed_max = inner.next_lsn - 1;
        let entry = inner.segments.entry(seg).or_insert(0);
        *entry = (*entry).max(flushed_max);
        if inner.active_segment_bytes >= inner.rotate_bytes {
            inner.active_segment += 1;
            inner.active_segment_bytes = 0;
            inner.stats.rotations += 1;
        }
        Self::prune(&mut inner)?;
        let micros = span.stop();
        inner.metrics.flush_records.add(records);
        inner.metrics.tracer.record_with(|| TraceEvent {
            lsn: flushed_max,
            bytes: flushed_bytes,
            micros,
            ..TraceEvent::of("gwal.flush")
        });
        Ok(records)
    }

    /// Advances `doc`'s folded cursor after its checkpoint became durable,
    /// and prunes segments nothing can recover from any more.
    pub fn note_checkpoint(&self, doc: &str, cursor: u64) -> Result<(), StorageError> {
        let mut inner = self.lock();
        let mark = inner.docs.entry(doc.to_string()).or_default();
        mark.folded = mark.folded.max(cursor);
        Self::prune(&mut inner)
    }

    /// Deletes flushed, non-active segments whose every LSN is folded (see
    /// the module docs for the floor rule).
    fn prune(inner: &mut GroupInner) -> Result<(), StorageError> {
        let floor = inner
            .docs
            .values()
            .filter(|m| m.last > m.folded)
            .map(|m| m.folded)
            .min()
            .unwrap_or(u64::MAX);
        let active = inner.active_segment;
        let dead: Vec<u64> = inner
            .segments
            .iter()
            .filter(|&(&seq, &max_lsn)| seq != active && max_lsn <= floor)
            .map(|(&seq, _)| seq)
            .collect();
        let mut backend = inner.backend.clone();
        for seq in dead {
            backend.remove(&segment_name(seq))?;
            inner.segments.remove(&seq);
            inner.stats.pruned_segments += 1;
            inner.metrics.pruned_segments.inc();
        }
        Ok(())
    }

    /// Flushed segments currently on the backend (diagnostics and tests).
    pub fn segment_count(&self) -> usize {
        self.lock().segments.len()
    }

    /// Replays `doc`'s records with `lsn > after`, in order, from the
    /// flushed segments. Records of other documents are decoded (the framing
    /// is shared) but never returned — the per-document cursor isolation the
    /// recovery path relies on. A torn or corrupt tail ends the replay
    /// there, exactly like the private WAL.
    pub fn replay_for(&self, doc: &str, after: u64) -> Result<GroupReplay, StorageError> {
        let inner = self.lock();
        let mut out = GroupReplay::default();
        for &seq in inner.segments.keys() {
            let bytes = inner.backend.read(&segment_name(seq))?.unwrap_or_default();
            let replay = wal::replay(&bytes);
            for entry in &replay.entries {
                let Some((lsn, owner, inner_payload)) = split_payload(&entry.payload) else {
                    continue; // unframed garbage that passed the CRC: skip
                };
                if owner == doc && lsn > after {
                    out.bytes += wal::record_size(entry.payload.len());
                    out.entries.push(WalEntry {
                        epoch: entry.epoch,
                        payload: inner_payload.to_vec(),
                    });
                }
            }
            out.torn_tail_bytes += replay.dropped_bytes;
            if replay.fault.is_some() {
                break;
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn many_documents_share_one_segment_write_per_flush() {
        let backend = SharedBackend::in_memory();
        let wal = GroupWal::open(backend.clone()).unwrap();
        for round in 0..4u64 {
            for doc in 0..16 {
                wal.enqueue(&format!("d{doc}"), 0, format!("r{round}").as_bytes());
            }
            assert_eq!(wal.flush().unwrap(), 16);
        }
        assert_eq!(wal.stats().records, 64);
        assert_eq!(wal.stats().segment_writes, 4, "one write per flush");
        assert_eq!(backend.stats().appends, 4);
        assert_eq!(wal.flush().unwrap(), 0, "empty queue writes nothing");
        assert_eq!(backend.stats().appends, 4);
    }

    #[test]
    fn replay_is_isolated_per_document() {
        let wal = GroupWal::in_memory();
        for i in 0..10u64 {
            let doc = if i % 2 == 0 { "even" } else { "odd" };
            wal.enqueue(doc, i, format!("record {i}").as_bytes());
        }
        wal.flush().unwrap();
        let even = wal.replay_for("even", 0).unwrap();
        assert_eq!(even.entries.len(), 5);
        assert!(even
            .entries
            .iter()
            .all(|e| e.epoch % 2 == 0 && e.payload.starts_with(b"record ")));
        let odd = wal.replay_for("odd", 0).unwrap();
        assert_eq!(odd.entries.len(), 5);
        let ghost = wal.replay_for("never-seen", 0).unwrap();
        assert!(ghost.entries.is_empty());
    }

    #[test]
    fn cursors_skip_folded_records() {
        let wal = GroupWal::in_memory();
        for i in 0..6u64 {
            wal.enqueue("d", 0, format!("{i}").as_bytes());
        }
        wal.flush().unwrap();
        let cursor = wal.watermark();
        wal.enqueue("d", 0, b"after");
        wal.flush().unwrap();
        let replay = wal.replay_for("d", cursor).unwrap();
        assert_eq!(replay.entries.len(), 1);
        assert_eq!(replay.entries[0].payload, b"after");
    }

    #[test]
    fn watermark_never_covers_unflushed_records() {
        let wal = GroupWal::in_memory();
        wal.enqueue("d", 0, b"one");
        assert_eq!(wal.watermark(), 0, "queued but unflushed");
        wal.flush().unwrap();
        assert_eq!(wal.watermark(), 1);
        wal.enqueue("d", 0, b"two");
        assert_eq!(wal.watermark(), 1);
    }

    #[test]
    fn reopen_continues_lsns_and_discovers_documents() {
        let backend = SharedBackend::in_memory();
        {
            let wal = GroupWal::open(backend.clone()).unwrap();
            wal.enqueue("a", 0, b"first");
            wal.enqueue("b", 0, b"second");
            wal.flush().unwrap();
            wal.enqueue("a", 0, b"lost in the crash");
            // No flush: the queue dies with the process.
        }
        let wal = GroupWal::open(backend).unwrap();
        assert_eq!(wal.watermark(), 2, "only flushed LSNs survive");
        let lsn = wal.enqueue("a", 0, b"post-restart");
        assert_eq!(lsn, 3, "fresh LSNs stay above every durable cursor");
        wal.flush().unwrap();
        let replay = wal.replay_for("a", 0).unwrap();
        assert_eq!(replay.entries.len(), 2);
        assert_eq!(replay.entries[1].payload, b"post-restart");
    }

    #[test]
    fn rotation_and_pruning_retire_fully_folded_segments() {
        let wal = GroupWal::in_memory();
        wal.set_rotate_bytes(1); // rotate on every flush
        for i in 0..4u64 {
            wal.enqueue("a", 0, format!("a{i}").as_bytes());
            wal.enqueue("b", 0, format!("b{i}").as_bytes());
            wal.flush().unwrap();
        }
        assert_eq!(wal.stats().rotations, 4);
        assert_eq!(wal.segment_count(), 4);
        // Folding only `a` cannot prune anything: every segment still holds
        // unfolded records of `b`.
        wal.note_checkpoint("a", wal.watermark()).unwrap();
        assert_eq!(wal.segment_count(), 4);
        // Folding `b` too releases every non-active segment.
        wal.note_checkpoint("b", wal.watermark()).unwrap();
        assert!(wal.segment_count() <= 1, "folded segments pruned");
        assert!(wal.stats().pruned_segments >= 3);
        // Earlier records are folded; replay past the cursors finds nothing.
        assert!(wal
            .replay_for("a", wal.watermark())
            .unwrap()
            .entries
            .is_empty());
    }

    #[test]
    fn torn_tail_ends_replay_cleanly() {
        let backend = SharedBackend::in_memory();
        let wal = GroupWal::open(backend.clone()).unwrap();
        wal.enqueue("d", 0, b"whole");
        wal.flush().unwrap();
        // Tear the segment mid-frame.
        let name = segment_name(0);
        let mut bytes = backend.read(&name).unwrap().unwrap();
        let keep = bytes.len();
        wal.enqueue("d", 0, b"torn");
        wal.flush().unwrap();
        bytes = backend.read(&name).unwrap().unwrap();
        bytes.truncate(keep + 5);
        let mut backend2 = backend.clone();
        backend2.write(&name, &bytes).unwrap();

        let reopened = GroupWal::open(backend).unwrap();
        let replay = reopened.replay_for("d", 0).unwrap();
        assert_eq!(replay.entries.len(), 1);
        assert_eq!(replay.entries[0].payload, b"whole");
        assert!(replay.torn_tail_bytes > 0);
    }
}
