//! The pluggable byte-store behind the durability layer.
//!
//! [`DocStore`](crate::store::DocStore) never touches the filesystem
//! directly: it reads and writes named blobs through a [`StorageBackend`],
//! so the same WAL/snapshot logic runs against an in-memory map (tests, the
//! simulator's crash/restart fault) and against real files
//! ([`FileBackend`]). The design follows the backend abstraction of
//! persistent CRDT stores (a key-value blob interface is the least a
//! database, an object store or a plain directory can all offer).

use std::collections::BTreeMap;
use std::fmt;
use std::io::Write;
use std::path::PathBuf;

/// An error from the storage backend (I/O failure, invalid name, …).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StorageError {
    message: String,
}

impl StorageError {
    /// Creates an error with the given message.
    pub fn new(message: impl Into<String>) -> Self {
        StorageError {
            message: message.into(),
        }
    }
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "storage error: {}", self.message)
    }
}

impl std::error::Error for StorageError {}

impl From<std::io::Error> for StorageError {
    fn from(err: std::io::Error) -> Self {
        StorageError::new(err.to_string())
    }
}

/// A named-blob store: the minimal surface the durability layer needs.
///
/// Names are flat (no directories); implementations must reject or escape
/// anything else. `write` must replace atomically-enough that a reader never
/// observes a half-written blob of the *previous* generation — the
/// [`FileBackend`] writes a temporary file and renames it into place.
pub trait StorageBackend: fmt::Debug {
    /// Reads a blob, `None` when absent.
    fn read(&self, name: &str) -> Result<Option<Vec<u8>>, StorageError>;
    /// Creates or replaces a blob.
    fn write(&mut self, name: &str, bytes: &[u8]) -> Result<(), StorageError>;
    /// Appends to a blob, creating it when absent.
    fn append(&mut self, name: &str, bytes: &[u8]) -> Result<(), StorageError>;
    /// Removes a blob (absent blobs are fine).
    fn remove(&mut self, name: &str) -> Result<(), StorageError>;
    /// Lists all blob names, sorted.
    fn list(&self) -> Result<Vec<String>, StorageError>;
}

/// An in-memory backend: a plain map. Used by the tests and by the
/// simulator's crash/restart fault, where "disk" must survive the death of a
/// [`Replica`](../../treedoc_replication/struct.Replica.html) object but not
/// of the process.
#[derive(Debug, Clone, Default)]
pub struct MemoryBackend {
    blobs: BTreeMap<String, Vec<u8>>,
}

impl MemoryBackend {
    /// An empty store.
    pub fn new() -> Self {
        MemoryBackend::default()
    }
}

impl StorageBackend for MemoryBackend {
    fn read(&self, name: &str) -> Result<Option<Vec<u8>>, StorageError> {
        Ok(self.blobs.get(name).cloned())
    }

    fn write(&mut self, name: &str, bytes: &[u8]) -> Result<(), StorageError> {
        self.blobs.insert(name.to_string(), bytes.to_vec());
        Ok(())
    }

    fn append(&mut self, name: &str, bytes: &[u8]) -> Result<(), StorageError> {
        self.blobs
            .entry(name.to_string())
            .or_default()
            .extend_from_slice(bytes);
        Ok(())
    }

    fn remove(&mut self, name: &str) -> Result<(), StorageError> {
        self.blobs.remove(name);
        Ok(())
    }

    fn list(&self) -> Result<Vec<String>, StorageError> {
        Ok(self.blobs.keys().cloned().collect())
    }
}

/// A directory-of-files backend: each blob is one file under `root`.
#[derive(Debug, Clone)]
pub struct FileBackend {
    root: PathBuf,
}

impl FileBackend {
    /// Opens (creating if needed) the directory `root` as a blob store and
    /// sweeps any `*.tmp` files a crash mid-[`write`](StorageBackend::write)
    /// left behind (they never made it to their rename, so they hold no
    /// committed data).
    pub fn open(root: impl Into<PathBuf>) -> Result<Self, StorageError> {
        let root = root.into();
        std::fs::create_dir_all(&root)?;
        for entry in std::fs::read_dir(&root)? {
            let entry = entry?;
            if entry.file_type()?.is_file()
                && entry
                    .file_name()
                    .to_str()
                    .is_some_and(|n| n.ends_with(".tmp"))
            {
                let _ = std::fs::remove_file(entry.path());
            }
        }
        Ok(FileBackend { root })
    }

    /// The directory blobs live in.
    pub fn root(&self) -> &std::path::Path {
        &self.root
    }

    /// Fsyncs the store directory itself, making preceding renames and
    /// removals (directory metadata) durable. Best-effort on platforms that
    /// cannot open a directory for sync.
    fn sync_dir(&self) -> Result<(), StorageError> {
        match std::fs::File::open(&self.root) {
            Ok(dir) => {
                dir.sync_all()?;
                Ok(())
            }
            Err(_) => Ok(()),
        }
    }

    fn path_of(&self, name: &str) -> Result<PathBuf, StorageError> {
        if name.is_empty()
            || name.starts_with('.')
            || name
                .chars()
                .any(|c| !(c.is_ascii_alphanumeric() || c == '-' || c == '_' || c == '.'))
        {
            return Err(StorageError::new(format!("invalid blob name {name:?}")));
        }
        Ok(self.root.join(name))
    }
}

impl StorageBackend for FileBackend {
    fn read(&self, name: &str) -> Result<Option<Vec<u8>>, StorageError> {
        let path = self.path_of(name)?;
        match std::fs::read(&path) {
            Ok(bytes) => Ok(Some(bytes)),
            Err(err) if err.kind() == std::io::ErrorKind::NotFound => Ok(None),
            Err(err) => Err(err.into()),
        }
    }

    fn write(&mut self, name: &str, bytes: &[u8]) -> Result<(), StorageError> {
        let path = self.path_of(name)?;
        // Write-then-rename so a crash mid-write leaves either the old blob
        // or the new one, never a torn mixture. (The WAL, whose torn tails
        // are expected and handled, goes through `append` instead.)
        let tmp = self.root.join(format!("{name}.tmp"));
        {
            let mut file = std::fs::File::create(&tmp)?;
            file.write_all(bytes)?;
            file.sync_all()?;
        }
        std::fs::rename(&tmp, &path)?;
        // The rename lives in directory metadata; without this sync a power
        // loss could surface the old blob again (or, worse, persist later
        // removals while dropping this rename).
        self.sync_dir()?;
        Ok(())
    }

    fn append(&mut self, name: &str, bytes: &[u8]) -> Result<(), StorageError> {
        let path = self.path_of(name)?;
        let mut file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)?;
        file.write_all(bytes)?;
        file.sync_all()?;
        Ok(())
    }

    fn remove(&mut self, name: &str) -> Result<(), StorageError> {
        let path = self.path_of(name)?;
        match std::fs::remove_file(&path) {
            Ok(()) => self.sync_dir(),
            Err(err) if err.kind() == std::io::ErrorKind::NotFound => Ok(()),
            Err(err) => Err(err.into()),
        }
    }

    fn list(&self) -> Result<Vec<String>, StorageError> {
        let mut names = Vec::new();
        for entry in std::fs::read_dir(&self.root)? {
            let entry = entry?;
            if entry.file_type()?.is_file() {
                if let Some(name) = entry.file_name().to_str() {
                    if !name.ends_with(".tmp") {
                        names.push(name.to_string());
                    }
                }
            }
        }
        names.sort();
        Ok(names)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("treedoc-storage-test-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn exercise(backend: &mut dyn StorageBackend) {
        assert_eq!(backend.read("a").unwrap(), None);
        backend.write("a", b"one").unwrap();
        backend.append("a", b"+two").unwrap();
        backend.append("log", b"first").unwrap();
        assert_eq!(backend.read("a").unwrap().unwrap(), b"one+two");
        assert_eq!(backend.read("log").unwrap().unwrap(), b"first");
        assert_eq!(backend.list().unwrap(), vec!["a", "log"]);
        backend.write("a", b"replaced").unwrap();
        assert_eq!(backend.read("a").unwrap().unwrap(), b"replaced");
        backend.remove("a").unwrap();
        backend.remove("a").unwrap(); // idempotent
        assert_eq!(backend.read("a").unwrap(), None);
        assert_eq!(backend.list().unwrap(), vec!["log"]);
    }

    #[test]
    fn memory_backend_round_trips() {
        exercise(&mut MemoryBackend::new());
    }

    #[test]
    fn file_backend_round_trips() {
        let dir = scratch_dir("roundtrip");
        let mut backend = FileBackend::open(&dir).unwrap();
        exercise(&mut backend);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn file_backend_persists_across_reopen() {
        let dir = scratch_dir("reopen");
        {
            let mut backend = FileBackend::open(&dir).unwrap();
            backend.append("wal.log", b"hello").unwrap();
        }
        let backend = FileBackend::open(&dir).unwrap();
        assert_eq!(backend.read("wal.log").unwrap().unwrap(), b"hello");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn reopening_sweeps_orphaned_tmp_files() {
        // A crash between creating `{name}.tmp` and the rename leaves the
        // tmp file behind; the next open must clean it up.
        let dir = scratch_dir("tmp-sweep");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("snap-0.img.tmp"), b"half-written").unwrap();
        std::fs::write(dir.join("kept.log"), b"real blob").unwrap();
        let backend = FileBackend::open(&dir).unwrap();
        assert!(!dir.join("snap-0.img.tmp").exists(), "orphan swept on open");
        assert_eq!(backend.read("kept.log").unwrap().unwrap(), b"real blob");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn file_backend_rejects_path_traversal() {
        let dir = scratch_dir("names");
        let mut backend = FileBackend::open(&dir).unwrap();
        assert!(backend.write("../evil", b"x").is_err());
        assert!(backend.write("", b"x").is_err());
        assert!(backend.write(".hidden", b"x").is_err());
        assert!(backend.write("a/b", b"x").is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
