//! The pluggable byte-store behind the durability layer.
//!
//! [`DocStore`](crate::store::DocStore) never touches the filesystem
//! directly: it reads and writes named blobs through a [`StorageBackend`],
//! so the same WAL/snapshot logic runs against an in-memory map (tests, the
//! simulator's crash/restart fault) and against real files
//! ([`FileBackend`]). The design follows the backend abstraction of
//! persistent CRDT stores (a key-value blob interface is the least a
//! database, an object store or a plain directory can all offer).

use std::collections::BTreeMap;
use std::fmt;
use std::io::Write;
use std::path::PathBuf;
use std::sync::{Arc, Mutex};

use treedoc_telemetry::{Histogram, Telemetry};

/// An error from the storage backend (I/O failure, invalid name, …).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StorageError {
    message: String,
}

impl StorageError {
    /// Creates an error with the given message.
    pub fn new(message: impl Into<String>) -> Self {
        StorageError {
            message: message.into(),
        }
    }
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "storage error: {}", self.message)
    }
}

impl std::error::Error for StorageError {}

impl From<std::io::Error> for StorageError {
    fn from(err: std::io::Error) -> Self {
        StorageError::new(err.to_string())
    }
}

/// A named-blob store: the minimal surface the durability layer needs.
///
/// Names are flat (no directories); implementations must reject or escape
/// anything else. `write` must replace atomically-enough that a reader never
/// observes a half-written blob of the *previous* generation — the
/// [`FileBackend`] writes a temporary file and renames it into place.
pub trait StorageBackend: fmt::Debug + Send {
    /// Reads a blob, `None` when absent.
    fn read(&self, name: &str) -> Result<Option<Vec<u8>>, StorageError>;
    /// Creates or replaces a blob.
    fn write(&mut self, name: &str, bytes: &[u8]) -> Result<(), StorageError>;
    /// Appends to a blob, creating it when absent.
    fn append(&mut self, name: &str, bytes: &[u8]) -> Result<(), StorageError>;
    /// Removes a blob (absent blobs are fine).
    fn remove(&mut self, name: &str) -> Result<(), StorageError>;
    /// Lists all blob names, sorted.
    fn list(&self) -> Result<Vec<String>, StorageError>;
}

/// An in-memory backend: a plain map. Used by the tests and by the
/// simulator's crash/restart fault, where "disk" must survive the death of a
/// [`Replica`](../../treedoc_replication/struct.Replica.html) object but not
/// of the process.
#[derive(Debug, Clone, Default)]
pub struct MemoryBackend {
    blobs: BTreeMap<String, Vec<u8>>,
}

impl MemoryBackend {
    /// An empty store.
    pub fn new() -> Self {
        MemoryBackend::default()
    }
}

impl StorageBackend for MemoryBackend {
    fn read(&self, name: &str) -> Result<Option<Vec<u8>>, StorageError> {
        Ok(self.blobs.get(name).cloned())
    }

    fn write(&mut self, name: &str, bytes: &[u8]) -> Result<(), StorageError> {
        self.blobs.insert(name.to_string(), bytes.to_vec());
        Ok(())
    }

    fn append(&mut self, name: &str, bytes: &[u8]) -> Result<(), StorageError> {
        self.blobs
            .entry(name.to_string())
            .or_default()
            .extend_from_slice(bytes);
        Ok(())
    }

    fn remove(&mut self, name: &str) -> Result<(), StorageError> {
        self.blobs.remove(name);
        Ok(())
    }

    fn list(&self) -> Result<Vec<String>, StorageError> {
        Ok(self.blobs.keys().cloned().collect())
    }
}

/// Rejects blob (or namespace) names containing path-separator characters.
///
/// The multi-document layer builds blob names from *external* identifiers
/// (per-document namespace prefixes), so a hostile document id like
/// `../../etc/passwd` can reach the backend boundary; this check makes the
/// rejection explicit and self-describing instead of relying on a character
/// whitelist alone. `\` is included because a store directory may be synced
/// to a platform where it separates paths.
pub fn reject_path_separators(name: &str) -> Result<(), StorageError> {
    if name.contains(['/', '\\']) {
        return Err(StorageError::new(format!(
            "blob name {name:?} contains a path separator"
        )));
    }
    Ok(())
}

/// Lifetime counters of a [`SharedBackend`]: how many times the underlying
/// store was actually hit. `appends` is the number the group-commit WAL
/// exists to shrink — each one is a segment write (and, on a
/// [`FileBackend`], an fsync).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SharedStats {
    /// `write` calls (snapshots, cursor blobs).
    pub writes: u64,
    /// `append` calls (WAL segment writes).
    pub appends: u64,
    /// Bytes passed to `write` + `append`.
    pub bytes: u64,
}

/// A cloneable handle to one [`StorageBackend`], so many document stores
/// (and a shared group-commit WAL) can write to the same underlying
/// directory or map. Counts every hit on the inner backend — the counters
/// are what the group-commit tests assert on.
#[derive(Clone)]
pub struct SharedBackend {
    inner: Arc<Mutex<Box<dyn StorageBackend>>>,
    stats: Arc<Mutex<SharedStats>>,
}

impl fmt::Debug for SharedBackend {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SharedBackend")
            .field("stats", &self.stats())
            .finish()
    }
}

impl SharedBackend {
    /// Wraps `backend` in a shareable handle.
    pub fn new(backend: impl StorageBackend + 'static) -> Self {
        SharedBackend {
            inner: Arc::new(Mutex::new(Box::new(backend))),
            stats: Arc::new(Mutex::new(SharedStats::default())),
        }
    }

    /// A shared handle over a fresh in-memory backend.
    pub fn in_memory() -> Self {
        SharedBackend::new(MemoryBackend::new())
    }

    /// How often (and how heavily) the inner backend was hit so far.
    pub fn stats(&self) -> SharedStats {
        *self.stats.lock().expect("backend stats lock")
    }
}

impl StorageBackend for SharedBackend {
    fn read(&self, name: &str) -> Result<Option<Vec<u8>>, StorageError> {
        self.inner.lock().expect("backend lock").read(name)
    }

    fn write(&mut self, name: &str, bytes: &[u8]) -> Result<(), StorageError> {
        self.inner
            .lock()
            .expect("backend lock")
            .write(name, bytes)?;
        let mut stats = self.stats.lock().expect("backend stats lock");
        stats.writes += 1;
        stats.bytes += bytes.len() as u64;
        Ok(())
    }

    fn append(&mut self, name: &str, bytes: &[u8]) -> Result<(), StorageError> {
        self.inner
            .lock()
            .expect("backend lock")
            .append(name, bytes)?;
        let mut stats = self.stats.lock().expect("backend stats lock");
        stats.appends += 1;
        stats.bytes += bytes.len() as u64;
        Ok(())
    }

    fn remove(&mut self, name: &str) -> Result<(), StorageError> {
        self.inner.lock().expect("backend lock").remove(name)
    }

    fn list(&self) -> Result<Vec<String>, StorageError> {
        self.inner.lock().expect("backend lock").list()
    }
}

/// Separator between a namespace prefix and the blob name proper. Blob names
/// produced by the durability layer (`wal-*.log`, `snap-*.img`, `gwal-*.log`)
/// never contain a double dash, so the namespace of a prefixed name is
/// always recoverable as everything before the first `--`.
pub const NAMESPACE_SEPARATOR: &str = "--";

/// A per-document view of a [`SharedBackend`]: every blob name is prefixed
/// with `<namespace>--`, and `list` shows only (and strips) this namespace.
/// This is what lets one shard directory hold the stores of many documents
/// without any document being able to read — or clobber — another's blobs.
#[derive(Debug, Clone)]
pub struct NamespacedBackend {
    inner: SharedBackend,
    namespace: String,
}

impl NamespacedBackend {
    /// Scopes `inner` to `namespace`. The namespace crosses the trust
    /// boundary (it is derived from an external document id), so it is
    /// validated here: path separators, an empty string, a leading dot, the
    /// separator `--` itself and any character outside `[A-Za-z0-9._-]` are
    /// rejected.
    pub fn new(inner: SharedBackend, namespace: &str) -> Result<Self, StorageError> {
        reject_path_separators(namespace)?;
        if namespace.is_empty()
            || namespace.starts_with('.')
            || namespace.contains(NAMESPACE_SEPARATOR)
            || namespace
                .chars()
                .any(|c| !(c.is_ascii_alphanumeric() || c == '-' || c == '_' || c == '.'))
        {
            return Err(StorageError::new(format!(
                "invalid blob namespace {namespace:?}"
            )));
        }
        Ok(NamespacedBackend {
            inner,
            namespace: namespace.to_string(),
        })
    }

    /// The namespace this view is scoped to.
    pub fn namespace(&self) -> &str {
        &self.namespace
    }

    fn prefixed(&self, name: &str) -> Result<String, StorageError> {
        reject_path_separators(name)?;
        Ok(format!("{}{}{name}", self.namespace, NAMESPACE_SEPARATOR))
    }
}

/// The namespaces present in a shared backend, in sorted order — how a
/// restarted hosting node discovers which documents it holds. Blobs without
/// a `--` separator (e.g. the shared group-WAL segments) belong to no
/// namespace and are skipped.
pub fn list_namespaces(backend: &dyn StorageBackend) -> Result<Vec<String>, StorageError> {
    let mut seen = Vec::new();
    for name in backend.list()? {
        if let Some((ns, _)) = name.split_once(NAMESPACE_SEPARATOR) {
            if seen.last().map(String::as_str) != Some(ns) {
                seen.push(ns.to_string());
            }
        }
    }
    seen.dedup();
    Ok(seen)
}

impl StorageBackend for NamespacedBackend {
    fn read(&self, name: &str) -> Result<Option<Vec<u8>>, StorageError> {
        self.inner.read(&self.prefixed(name)?)
    }

    fn write(&mut self, name: &str, bytes: &[u8]) -> Result<(), StorageError> {
        let name = self.prefixed(name)?;
        self.inner.write(&name, bytes)
    }

    fn append(&mut self, name: &str, bytes: &[u8]) -> Result<(), StorageError> {
        let name = self.prefixed(name)?;
        self.inner.append(&name, bytes)
    }

    fn remove(&mut self, name: &str) -> Result<(), StorageError> {
        let name = self.prefixed(name)?;
        self.inner.remove(&name)
    }

    fn list(&self) -> Result<Vec<String>, StorageError> {
        let prefix = format!("{}{}", self.namespace, NAMESPACE_SEPARATOR);
        Ok(self
            .inner
            .list()?
            .into_iter()
            .filter_map(|n| n.strip_prefix(&prefix).map(str::to_string))
            .collect())
    }
}

/// Telemetry instruments of a [`FileBackend`]: write/append latency with the
/// fsync portion broken out separately. Inert until
/// [`FileBackend::set_telemetry`] binds them.
#[derive(Debug, Clone, Default)]
struct FileMetrics {
    write_micros: Histogram,
    append_micros: Histogram,
    fsync_micros: Histogram,
}

impl FileMetrics {
    fn resolve(telemetry: &Telemetry) -> Self {
        FileMetrics {
            write_micros: telemetry.histogram("fs.write_micros"),
            append_micros: telemetry.histogram("fs.append_micros"),
            fsync_micros: telemetry.histogram("fs.fsync_micros"),
        }
    }
}

/// A directory-of-files backend: each blob is one file under `root`.
#[derive(Debug, Clone)]
pub struct FileBackend {
    root: PathBuf,
    metrics: FileMetrics,
}

impl FileBackend {
    /// Opens (creating if needed) the directory `root` as a blob store and
    /// sweeps any `*.tmp` files a crash mid-[`write`](StorageBackend::write)
    /// left behind (they never made it to their rename, so they hold no
    /// committed data).
    pub fn open(root: impl Into<PathBuf>) -> Result<Self, StorageError> {
        let root = root.into();
        std::fs::create_dir_all(&root)?;
        for entry in std::fs::read_dir(&root)? {
            let entry = entry?;
            if entry.file_type()?.is_file()
                && entry
                    .file_name()
                    .to_str()
                    .is_some_and(|n| n.ends_with(".tmp"))
            {
                let _ = std::fs::remove_file(entry.path());
            }
        }
        Ok(FileBackend {
            root,
            metrics: FileMetrics::default(),
        })
    }

    /// Points this backend's latency histograms (`fs.write_micros`,
    /// `fs.append_micros`, `fs.fsync_micros`) at `telemetry`. A disabled
    /// handle reverts them to no-ops.
    pub fn set_telemetry(&mut self, telemetry: &Telemetry) {
        self.metrics = FileMetrics::resolve(telemetry);
    }

    /// Opens shard `index` of a sharded store rooted at `root`: the blobs
    /// live in the subdirectory `root/shard-<index>/`. This is the on-disk
    /// layout of a multi-document hosting node — one directory per shard,
    /// inside which per-document namespaces (see [`NamespacedBackend`]) and
    /// the shard's shared group-commit WAL coexist as flat files.
    pub fn open_shard(root: impl Into<PathBuf>, index: usize) -> Result<Self, StorageError> {
        FileBackend::open(root.into().join(format!("shard-{index:03}")))
    }

    /// The directory blobs live in.
    pub fn root(&self) -> &std::path::Path {
        &self.root
    }

    /// Fsyncs the store directory itself, making preceding renames and
    /// removals (directory metadata) durable. Best-effort on platforms that
    /// cannot open a directory for sync.
    fn sync_dir(&self) -> Result<(), StorageError> {
        match std::fs::File::open(&self.root) {
            Ok(dir) => {
                dir.sync_all()?;
                Ok(())
            }
            Err(_) => Ok(()),
        }
    }

    fn path_of(&self, name: &str) -> Result<PathBuf, StorageError> {
        // Path separators get their own check (and error) ahead of the
        // whitelist: with per-document namespace prefixes in blob names the
        // separator case is reachable from external identifiers, and the
        // failure should say what was wrong, not just that something was.
        reject_path_separators(name)?;
        if name.is_empty()
            || name.starts_with('.')
            || name
                .chars()
                .any(|c| !(c.is_ascii_alphanumeric() || c == '-' || c == '_' || c == '.'))
        {
            return Err(StorageError::new(format!("invalid blob name {name:?}")));
        }
        Ok(self.root.join(name))
    }
}

impl StorageBackend for FileBackend {
    fn read(&self, name: &str) -> Result<Option<Vec<u8>>, StorageError> {
        let path = self.path_of(name)?;
        match std::fs::read(&path) {
            Ok(bytes) => Ok(Some(bytes)),
            Err(err) if err.kind() == std::io::ErrorKind::NotFound => Ok(None),
            Err(err) => Err(err.into()),
        }
    }

    fn write(&mut self, name: &str, bytes: &[u8]) -> Result<(), StorageError> {
        let span = self.metrics.write_micros.start();
        let path = self.path_of(name)?;
        // Write-then-rename so a crash mid-write leaves either the old blob
        // or the new one, never a torn mixture. (The WAL, whose torn tails
        // are expected and handled, goes through `append` instead.)
        let tmp = self.root.join(format!("{name}.tmp"));
        {
            let mut file = std::fs::File::create(&tmp)?;
            file.write_all(bytes)?;
            let fsync = self.metrics.fsync_micros.start();
            file.sync_all()?;
            fsync.stop();
        }
        std::fs::rename(&tmp, &path)?;
        // The rename lives in directory metadata; without this sync a power
        // loss could surface the old blob again (or, worse, persist later
        // removals while dropping this rename).
        let fsync = self.metrics.fsync_micros.start();
        self.sync_dir()?;
        fsync.stop();
        span.stop();
        Ok(())
    }

    fn append(&mut self, name: &str, bytes: &[u8]) -> Result<(), StorageError> {
        let span = self.metrics.append_micros.start();
        let path = self.path_of(name)?;
        let mut file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)?;
        file.write_all(bytes)?;
        let fsync = self.metrics.fsync_micros.start();
        file.sync_all()?;
        fsync.stop();
        span.stop();
        Ok(())
    }

    fn remove(&mut self, name: &str) -> Result<(), StorageError> {
        let path = self.path_of(name)?;
        match std::fs::remove_file(&path) {
            Ok(()) => self.sync_dir(),
            Err(err) if err.kind() == std::io::ErrorKind::NotFound => Ok(()),
            Err(err) => Err(err.into()),
        }
    }

    fn list(&self) -> Result<Vec<String>, StorageError> {
        let mut names = Vec::new();
        for entry in std::fs::read_dir(&self.root)? {
            let entry = entry?;
            if entry.file_type()?.is_file() {
                if let Some(name) = entry.file_name().to_str() {
                    if !name.ends_with(".tmp") {
                        names.push(name.to_string());
                    }
                }
            }
        }
        names.sort();
        Ok(names)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("treedoc-storage-test-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn exercise(backend: &mut dyn StorageBackend) {
        assert_eq!(backend.read("a").unwrap(), None);
        backend.write("a", b"one").unwrap();
        backend.append("a", b"+two").unwrap();
        backend.append("log", b"first").unwrap();
        assert_eq!(backend.read("a").unwrap().unwrap(), b"one+two");
        assert_eq!(backend.read("log").unwrap().unwrap(), b"first");
        assert_eq!(backend.list().unwrap(), vec!["a", "log"]);
        backend.write("a", b"replaced").unwrap();
        assert_eq!(backend.read("a").unwrap().unwrap(), b"replaced");
        backend.remove("a").unwrap();
        backend.remove("a").unwrap(); // idempotent
        assert_eq!(backend.read("a").unwrap(), None);
        assert_eq!(backend.list().unwrap(), vec!["log"]);
    }

    #[test]
    fn memory_backend_round_trips() {
        exercise(&mut MemoryBackend::new());
    }

    #[test]
    fn file_backend_round_trips() {
        let dir = scratch_dir("roundtrip");
        let mut backend = FileBackend::open(&dir).unwrap();
        exercise(&mut backend);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn file_backend_persists_across_reopen() {
        let dir = scratch_dir("reopen");
        {
            let mut backend = FileBackend::open(&dir).unwrap();
            backend.append("wal.log", b"hello").unwrap();
        }
        let backend = FileBackend::open(&dir).unwrap();
        assert_eq!(backend.read("wal.log").unwrap().unwrap(), b"hello");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn reopening_sweeps_orphaned_tmp_files() {
        // A crash between creating `{name}.tmp` and the rename leaves the
        // tmp file behind; the next open must clean it up.
        let dir = scratch_dir("tmp-sweep");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("snap-0.img.tmp"), b"half-written").unwrap();
        std::fs::write(dir.join("kept.log"), b"real blob").unwrap();
        let backend = FileBackend::open(&dir).unwrap();
        assert!(!dir.join("snap-0.img.tmp").exists(), "orphan swept on open");
        assert_eq!(backend.read("kept.log").unwrap().unwrap(), b"real blob");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn file_backend_rejects_path_traversal() {
        let dir = scratch_dir("names");
        let mut backend = FileBackend::open(&dir).unwrap();
        assert!(backend.write("../evil", b"x").is_err());
        assert!(backend.write("", b"x").is_err());
        assert!(backend.write(".hidden", b"x").is_err());
        assert!(backend.write("a/b", b"x").is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn path_separators_are_rejected_with_a_dedicated_error() {
        // The namespace boundary makes separator-bearing names reachable
        // from external document ids; both separators must fail, and the
        // error must say why.
        let dir = scratch_dir("separators");
        let mut backend = FileBackend::open(&dir).unwrap();
        for name in ["a/b", "..\\evil", "doc/../../escape", "back\\slash"] {
            let err = backend.write(name, b"x").unwrap_err();
            assert!(
                err.to_string().contains("path separator"),
                "{name:?} must be rejected as a path separator, got: {err}"
            );
            assert!(backend.read(name).is_err(), "reads too: {name:?}");
            assert!(backend.append(name, b"x").is_err());
            assert!(backend.remove(name).is_err());
        }
        assert_eq!(backend.list().unwrap(), Vec::<String>::new());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn file_backend_shard_layout() {
        let dir = scratch_dir("shards");
        let mut s0 = FileBackend::open_shard(&dir, 0).unwrap();
        let mut s1 = FileBackend::open_shard(&dir, 1).unwrap();
        s0.write("blob", b"zero").unwrap();
        s1.write("blob", b"one").unwrap();
        assert_eq!(s0.read("blob").unwrap().unwrap(), b"zero");
        assert_eq!(s1.read("blob").unwrap().unwrap(), b"one");
        assert!(dir.join("shard-000").join("blob").exists());
        assert!(dir.join("shard-001").join("blob").exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn namespaced_views_are_isolated_over_one_backend() {
        let shared = SharedBackend::in_memory();
        let mut a = NamespacedBackend::new(shared.clone(), "d1").unwrap();
        let mut b = NamespacedBackend::new(shared.clone(), "d2").unwrap();
        a.write("wal-0.log", b"alpha").unwrap();
        b.write("wal-0.log", b"beta").unwrap();
        b.append("extra.log", b"tail").unwrap();
        assert_eq!(a.read("wal-0.log").unwrap().unwrap(), b"alpha");
        assert_eq!(b.read("wal-0.log").unwrap().unwrap(), b"beta");
        assert_eq!(
            a.read("extra.log").unwrap(),
            None,
            "no cross-namespace reads"
        );
        assert_eq!(a.list().unwrap(), vec!["wal-0.log"]);
        assert_eq!(b.list().unwrap(), vec!["extra.log", "wal-0.log"]);
        a.remove("wal-0.log").unwrap();
        assert_eq!(b.read("wal-0.log").unwrap().unwrap(), b"beta");
        assert_eq!(list_namespaces(&shared).unwrap(), vec!["d2"]);
        assert_eq!(shared.stats().writes, 2);
        assert_eq!(shared.stats().appends, 1);
    }

    #[test]
    fn namespace_boundary_rejects_hostile_document_ids() {
        let shared = SharedBackend::in_memory();
        for ns in ["../up", "a/b", "c\\d", "", ".hidden", "a--b", "sp ace"] {
            assert!(
                NamespacedBackend::new(shared.clone(), ns).is_err(),
                "namespace {ns:?} must be rejected"
            );
        }
        // And a valid namespace still rejects separator-bearing blob names.
        let mut ok = NamespacedBackend::new(shared, "doc-7").unwrap();
        assert!(ok.write("../escape", b"x").is_err());
        assert!(ok.write("a/b", b"x").is_err());
    }
}
