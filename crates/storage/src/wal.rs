//! The write-ahead log: an append-only stream of length-prefixed,
//! CRC-checked records.
//!
//! Every record a replica persists before acting on (a stamped operation, a
//! received envelope, a commitment step) is framed as
//!
//! ```text
//! ┌──────────┬──────────┬───────────┬───────────────┐
//! │ len: u32 │ crc: u32 │ epoch:u64 │ payload [len] │
//! └──────────┴──────────┴───────────┴───────────────┘
//! ```
//!
//! (all little-endian; the CRC covers the epoch and the payload). The epoch
//! is the replica's flatten epoch at append time, which makes the compaction
//! invariant checkable from the log alone: after a flatten-commit checkpoint
//! truncates the WAL, every surviving record carries an epoch ≥ the committed
//! one.
//!
//! Replay ([`replay`]) scans the stream front to back and stops at the first
//! frame that is incomplete (a torn tail from a crash mid-append) or whose
//! CRC does not match (bit rot, a torn write that happened to leave enough
//! bytes). Everything before the bad frame is returned intact; the tail is
//! reported, not propagated — a crash while appending record *n* must never
//! cost records 1..n−1.

/// Bytes of framing per record (`len` + `crc` + `epoch`).
pub const RECORD_HEADER_BYTES: usize = 4 + 4 + 8;

use crate::checksum::crc32;

/// One decoded WAL record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalEntry {
    /// The appender's flatten epoch when the record was written.
    pub epoch: u64,
    /// The record payload (opaque to the WAL; the replication layer stores
    /// serialised envelopes here).
    pub payload: Vec<u8>,
}

/// Why replay stopped before the end of the stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TailFault {
    /// The final frame is incomplete (torn write / truncated file).
    Truncated,
    /// A complete frame failed its CRC check.
    ChecksumMismatch,
}

/// What one [`replay`] pass found.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalReplay {
    /// The valid record prefix, in append order.
    pub entries: Vec<WalEntry>,
    /// Bytes consumed by the valid prefix.
    pub valid_bytes: usize,
    /// Bytes dropped after the valid prefix (0 for a clean log).
    pub dropped_bytes: usize,
    /// Why the tail was dropped, when it was.
    pub fault: Option<TailFault>,
}

impl WalReplay {
    /// `true` when the whole stream decoded cleanly.
    pub fn is_clean(&self) -> bool {
        self.fault.is_none()
    }
}

/// Appends one framed record to `out`.
pub fn append_record(out: &mut Vec<u8>, epoch: u64, payload: &[u8]) {
    let mut body = Vec::with_capacity(8 + payload.len());
    body.extend_from_slice(&epoch.to_le_bytes());
    body.extend_from_slice(payload);
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(&body).to_le_bytes());
    out.extend_from_slice(&body);
}

/// The encoded size of a record with `payload_len` payload bytes.
pub fn record_size(payload_len: usize) -> usize {
    RECORD_HEADER_BYTES + payload_len
}

/// Decodes a WAL byte stream, returning the valid record prefix and a
/// description of any dropped tail. Never fails: a corrupt or torn stream
/// simply yields a shorter prefix.
pub fn replay(bytes: &[u8]) -> WalReplay {
    let mut entries = Vec::new();
    let mut pos = 0usize;
    let mut fault = None;
    while pos < bytes.len() {
        if bytes.len() - pos < RECORD_HEADER_BYTES {
            fault = Some(TailFault::Truncated);
            break;
        }
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().expect("4 bytes")) as usize;
        let crc = u32::from_le_bytes(bytes[pos + 4..pos + 8].try_into().expect("4 bytes"));
        let body_start = pos + 8;
        // `len` itself may be garbage from a torn write; an oversized claim
        // reads as truncation, not as an allocation request.
        if bytes.len() - body_start < 8 + len {
            fault = Some(TailFault::Truncated);
            break;
        }
        let body = &bytes[body_start..body_start + 8 + len];
        if crc32(body) != crc {
            fault = Some(TailFault::ChecksumMismatch);
            break;
        }
        let epoch = u64::from_le_bytes(body[..8].try_into().expect("8 bytes"));
        entries.push(WalEntry {
            epoch,
            payload: body[8..].to_vec(),
        });
        pos = body_start + 8 + len;
    }
    WalReplay {
        entries,
        valid_bytes: pos.min(bytes.len()),
        dropped_bytes: bytes.len() - pos.min(bytes.len()),
        fault,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_log(n: usize) -> (Vec<u8>, Vec<WalEntry>) {
        let mut log = Vec::new();
        let mut entries = Vec::new();
        for i in 0..n {
            let payload: Vec<u8> = format!("record number {i} !").into_bytes();
            let epoch = (i / 3) as u64;
            append_record(&mut log, epoch, &payload);
            entries.push(WalEntry { epoch, payload });
        }
        (log, entries)
    }

    #[test]
    fn clean_log_replays_completely() {
        let (log, expected) = sample_log(7);
        let replay = replay(&log);
        assert!(replay.is_clean());
        assert_eq!(replay.entries, expected);
        assert_eq!(replay.valid_bytes, log.len());
        assert_eq!(replay.dropped_bytes, 0);
    }

    #[test]
    fn empty_log_is_clean() {
        let replay = replay(&[]);
        assert!(replay.is_clean());
        assert!(replay.entries.is_empty());
    }

    #[test]
    fn empty_payloads_round_trip() {
        let mut log = Vec::new();
        append_record(&mut log, 3, b"");
        let replay = replay(&log);
        assert!(replay.is_clean());
        assert_eq!(
            replay.entries,
            vec![WalEntry {
                epoch: 3,
                payload: Vec::new()
            }]
        );
    }

    #[test]
    fn torn_tail_preserves_the_prefix() {
        let (log, expected) = sample_log(5);
        // Truncate anywhere inside the last record.
        let last_start = log.len() - record_size(expected[4].payload.len());
        // `cut == last_start` would be a clean 4-record log; start one past.
        for cut in last_start + 1..log.len() {
            let replay = replay(&log[..cut]);
            assert_eq!(replay.fault, Some(TailFault::Truncated), "cut {cut}");
            assert_eq!(replay.entries, expected[..4], "cut {cut}");
            assert_eq!(replay.dropped_bytes, cut - last_start);
        }
    }

    #[test]
    fn corrupt_tail_is_detected_by_crc() {
        let (mut log, expected) = sample_log(4);
        let last = log.len() - 1;
        log[last] ^= 0x5A;
        let replay = replay(&log);
        assert_eq!(replay.fault, Some(TailFault::ChecksumMismatch));
        assert_eq!(replay.entries, expected[..3]);
        assert!(replay.dropped_bytes > 0);
    }

    #[test]
    fn oversized_length_claim_reads_as_truncation() {
        let mut log = Vec::new();
        append_record(&mut log, 0, b"ok");
        // A frame claiming far more payload than the stream holds.
        log.extend_from_slice(&u32::MAX.to_le_bytes());
        log.extend_from_slice(&[0u8; 12]);
        let replay = replay(&log);
        assert_eq!(replay.fault, Some(TailFault::Truncated));
        assert_eq!(replay.entries.len(), 1);
    }

    #[test]
    fn epochs_survive_the_round_trip() {
        let mut log = Vec::new();
        append_record(&mut log, 0, b"pre");
        append_record(&mut log, 1, b"post");
        let replay = replay(&log);
        assert_eq!(
            replay.entries.iter().map(|e| e.epoch).collect::<Vec<_>>(),
            vec![0, 1]
        );
    }
}
