//! The per-replica durable store: WAL segments plus a ring of epoch
//! snapshots.
//!
//! [`DocStore`] owns the naming, recovery and compaction policy on top of a
//! [`StorageBackend`]:
//!
//! * **append** — frame a payload as a WAL record (tagged with the replica's
//!   flatten epoch) and append it to the *active segment* `wal-<seq>.log`;
//! * **checkpoint** — write a verified [`Snapshot`] under a fresh sequence
//!   number, rotate to the WAL segment of that sequence, and prune
//!   snapshots (and the segments of pruned snapshots) beyond the fallback
//!   window. The flatten commitment of §4.2.1 makes the committed epoch the
//!   natural compaction point: the replication layer checkpoints on every
//!   flatten commit, so the records a recovery would replay are only
//!   post-epoch ones;
//! * **recover** — load the newest snapshot that passes hash verification
//!   (falling back to older ones, counting the corrupt), then replay the
//!   WAL segments **at or after that snapshot's sequence**; torn tails are
//!   dropped and reported.
//!
//! Keying segments by snapshot sequence is what makes a checkpoint
//! crash-safe without cross-file atomicity: records older than the chosen
//! snapshot live in lower-sequence segments and are skipped wholesale, so a
//! crash *between* the snapshot write and the rotation can never cause
//! already-folded records to be replayed on top of the new snapshot (which
//! would double-apply operations and corrupt the recovered vector clock).

use crate::backend::{MemoryBackend, StorageBackend, StorageError};
use crate::snapshot::Snapshot;
use crate::wal::{self, WalEntry, WalReplay};

/// Snapshots kept after a checkpoint: the new one plus this many fallbacks.
const SNAPSHOT_FALLBACKS: usize = 1;

/// Counters of one `DocStore` *object*: they live with the store value, so
/// they survive the simulator's crash fault (where the store is detached
/// from the dying replica and handed to the recovered one) but reset when a
/// backend is reopened through [`DocStore::new`] after a real process
/// restart — the blobs persist, the bookkeeping does not.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// WAL records appended.
    pub wal_appends: u64,
    /// WAL bytes appended (framing included).
    pub wal_bytes: u64,
    /// Snapshots written.
    pub snapshots_written: u64,
    /// Checkpoints that actually retired log records (a checkpoint over an
    /// already-empty log does not count).
    pub wal_truncations: u64,
}

/// What a [`DocStore::recover`] pass found and salvaged.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryStats {
    /// Whether a valid snapshot was found.
    pub snapshot_hit: bool,
    /// Epoch of the recovered snapshot (0 when none).
    pub snapshot_epoch: u64,
    /// Snapshots that failed verification and were skipped.
    pub corrupt_snapshots_skipped: usize,
    /// WAL records replayed after the snapshot.
    pub wal_records: usize,
    /// Bytes recovered (snapshot body + valid WAL prefix).
    pub bytes_recovered: usize,
    /// WAL tail bytes dropped as torn or corrupt.
    pub torn_tail_bytes: usize,
}

/// The result of a recovery pass: the newest valid snapshot (if any), the
/// WAL tail to replay on top of it, and the accounting.
#[derive(Debug)]
pub struct Recovered {
    /// The newest snapshot that passed verification, with its epoch.
    pub snapshot: Option<(u64, Snapshot)>,
    /// Valid WAL records, in append order.
    pub wal: Vec<WalEntry>,
    /// What the pass found.
    pub stats: RecoveryStats,
}

/// A replica's durable store over a pluggable backend.
#[derive(Debug)]
pub struct DocStore {
    backend: Box<dyn StorageBackend>,
    /// Sequence of the active WAL segment (always the sequence of the
    /// newest snapshot written, or 0 before the first checkpoint).
    active_segment: u64,
    /// Bytes in the active segment, tracked in memory so a checkpoint can
    /// tell whether it retires anything without re-reading the log.
    active_segment_bytes: u64,
    next_snapshot_seq: u64,
    stats: StoreStats,
}

impl DocStore {
    /// Opens a store over `backend`, continuing any snapshot/segment
    /// sequence already present (so reopening a directory keeps allocating
    /// fresh names and appends to the newest segment).
    pub fn new(backend: impl StorageBackend + 'static) -> Result<Self, StorageError> {
        let backend: Box<dyn StorageBackend> = Box::new(backend);
        let newest_snapshot = Self::snapshot_blobs(backend.as_ref())?
            .last()
            .map(|&(s, _)| s);
        let newest_segment = Self::wal_segments(backend.as_ref())?.last().copied();
        let active_segment = newest_snapshot
            .unwrap_or(0)
            .max(newest_segment.unwrap_or(0));
        // A snapshot's sequence must be strictly greater than every segment
        // holding records it folds in, so the first checkpoint ever taken
        // gets sequence 1 (segment 0 is the pre-checkpoint log).
        let next_snapshot_seq = newest_snapshot
            .map(|s| s + 1)
            .unwrap_or(0)
            .max(active_segment + 1);
        let active_segment_bytes = backend
            .read(&wal_name(active_segment))?
            .map_or(0, |b| b.len() as u64);
        Ok(DocStore {
            backend,
            active_segment,
            active_segment_bytes,
            next_snapshot_seq,
            stats: StoreStats::default(),
        })
    }

    /// A store over a fresh in-memory backend (tests and the simulator's
    /// crash/restart fault).
    pub fn in_memory() -> Self {
        DocStore::new(MemoryBackend::new()).expect("memory backend cannot fail")
    }

    /// Lifetime counters.
    pub fn stats(&self) -> StoreStats {
        self.stats
    }

    /// Snapshot blob names present, as `(sequence, epoch)` sorted ascending.
    fn snapshot_blobs(backend: &dyn StorageBackend) -> Result<Vec<(u64, u64)>, StorageError> {
        let mut found = Vec::new();
        for name in backend.list()? {
            if let Some(parsed) = parse_snapshot_name(&name) {
                found.push(parsed);
            }
        }
        found.sort_unstable();
        Ok(found)
    }

    /// Epochs of the snapshots currently kept, oldest first.
    pub fn snapshot_epochs(&self) -> Result<Vec<u64>, StorageError> {
        Ok(Self::snapshot_blobs(self.backend.as_ref())?
            .into_iter()
            .map(|(_, epoch)| epoch)
            .collect())
    }

    /// WAL segment sequences present, sorted ascending.
    fn wal_segments(backend: &dyn StorageBackend) -> Result<Vec<u64>, StorageError> {
        let mut found = Vec::new();
        for name in backend.list()? {
            if let Some(seq) = parse_wal_name(&name) {
                found.push(seq);
            }
        }
        found.sort_unstable();
        Ok(found)
    }

    /// The segments a recovery starting from snapshot sequence `from_seq`
    /// must replay, in order.
    fn segments_from(&self, from_seq: u64) -> Result<Vec<u64>, StorageError> {
        Ok(Self::wal_segments(self.backend.as_ref())?
            .into_iter()
            .filter(|&seq| seq >= from_seq)
            .collect())
    }

    /// Replays the given segments in order, concatenating their valid
    /// record prefixes. A fault inside a non-final segment stops the replay
    /// there: records beyond a corruption point are not trustworthy even if
    /// later segments look healthy.
    fn replay_segments(&self, segments: &[u64]) -> Result<WalReplay, StorageError> {
        let mut combined = WalReplay {
            entries: Vec::new(),
            valid_bytes: 0,
            dropped_bytes: 0,
            fault: None,
        };
        for (i, &seq) in segments.iter().enumerate() {
            let bytes = self.backend.read(&wal_name(seq))?.unwrap_or_default();
            let mut replay = wal::replay(&bytes);
            combined.entries.append(&mut replay.entries);
            combined.valid_bytes += replay.valid_bytes;
            combined.dropped_bytes += replay.dropped_bytes;
            if replay.fault.is_some() {
                combined.fault = replay.fault;
                // Count the untouched later segments as dropped too.
                for &later in &segments[i + 1..] {
                    combined.dropped_bytes +=
                        self.backend.read(&wal_name(later))?.map_or(0, |b| b.len());
                }
                break;
            }
        }
        Ok(combined)
    }

    /// The newest snapshot sequence present by name (validity not checked;
    /// used to scope diagnostics the way a recovery would).
    fn newest_snapshot_seq(&self) -> Result<u64, StorageError> {
        Ok(Self::snapshot_blobs(self.backend.as_ref())?
            .last()
            .map(|&(seq, _)| seq)
            .unwrap_or(0))
    }

    /// Appends one WAL record carrying `payload`, tagged with the replica's
    /// current flatten `epoch`, to the active segment.
    pub fn append(&mut self, epoch: u64, payload: &[u8]) -> Result<(), StorageError> {
        let mut frame = Vec::with_capacity(wal::record_size(payload.len()));
        wal::append_record(&mut frame, epoch, payload);
        self.backend
            .append(&wal_name(self.active_segment), &frame)?;
        self.active_segment_bytes += frame.len() as u64;
        self.stats.wal_appends += 1;
        self.stats.wal_bytes += frame.len() as u64;
        Ok(())
    }

    /// The decoded WAL a recovery would replay right now — the segments at
    /// or after the newest snapshot (diagnostics and the compaction
    /// assertions of the test suite).
    pub fn wal_entries(&self) -> Result<WalReplay, StorageError> {
        let from = self.newest_snapshot_seq()?;
        let segments = self.segments_from(from)?;
        self.replay_segments(&segments)
    }

    /// Bytes of WAL a recovery would read right now.
    pub fn wal_len(&self) -> Result<usize, StorageError> {
        let from = self.newest_snapshot_seq()?;
        let mut total = 0usize;
        for seq in self.segments_from(from)? {
            total += self.backend.read(&wal_name(seq))?.map_or(0, |b| b.len());
        }
        Ok(total)
    }

    /// Writes `snapshot` as the checkpoint for `epoch`, rotates to that
    /// checkpoint's WAL segment (every record in earlier segments is now
    /// folded into the snapshot) and prunes snapshots — plus the segments
    /// of pruned snapshots — beyond the fallback window.
    ///
    /// Crash-safety: the snapshot write is the commit point. A crash before
    /// it recovers from the previous snapshot plus the still-active old
    /// segment; a crash anywhere after it recovers from the new snapshot,
    /// and the old segments are skipped by sequence — no record is ever
    /// replayed on top of a snapshot that already contains it.
    pub fn checkpoint(&mut self, epoch: u64, snapshot: &Snapshot) -> Result<(), StorageError> {
        // Did this checkpoint actually retire log records (as opposed to a
        // back-to-back checkpoint over an empty log)?
        let retired = self.active_segment_bytes > 0;
        let seq = self.next_snapshot_seq;
        self.next_snapshot_seq += 1;
        self.backend
            .write(&snapshot_name(seq, epoch), &snapshot.encode())?;
        self.active_segment = seq;
        self.active_segment_bytes = 0;
        self.stats.snapshots_written += 1;
        if retired {
            self.stats.wal_truncations += 1;
        }
        let existing = Self::snapshot_blobs(self.backend.as_ref())?;
        if existing.len() > 1 + SNAPSHOT_FALLBACKS {
            let (pruned, retained) = existing.split_at(existing.len() - 1 - SNAPSHOT_FALLBACKS);
            let oldest_retained = retained.first().map(|&(s, _)| s).unwrap_or(seq);
            for &(old_seq, old_epoch) in pruned {
                self.backend.remove(&snapshot_name(old_seq, old_epoch))?;
            }
            // Segments older than the oldest retained snapshot can never be
            // replayed again (every recovery starts at a retained snapshot).
            for old in Self::wal_segments(self.backend.as_ref())? {
                if old < oldest_retained {
                    self.backend.remove(&wal_name(old))?;
                }
            }
        }
        Ok(())
    }

    /// Loads the newest snapshot that passes verification (skipping and
    /// counting corrupt ones) and replays the WAL segments at or after its
    /// sequence. A store with no snapshot at all yields `snapshot: None`
    /// and every segment.
    pub fn recover(&self) -> Result<Recovered, StorageError> {
        let mut stats = RecoveryStats::default();
        let mut snapshot = None;
        let mut from_seq = 0u64;
        for (seq, epoch) in Self::snapshot_blobs(self.backend.as_ref())?
            .into_iter()
            .rev()
        {
            let Some(bytes) = self.backend.read(&snapshot_name(seq, epoch))? else {
                continue;
            };
            match Snapshot::decode(&bytes) {
                Ok(decoded) => {
                    stats.snapshot_hit = true;
                    stats.snapshot_epoch = epoch;
                    stats.bytes_recovered += bytes.len();
                    snapshot = Some((epoch, decoded));
                    from_seq = seq;
                    break;
                }
                Err(_) => stats.corrupt_snapshots_skipped += 1,
            }
        }
        let segments = self.segments_from(from_seq)?;
        let replay = self.replay_segments(&segments)?;
        stats.wal_records = replay.entries.len();
        stats.bytes_recovered += replay.valid_bytes;
        stats.torn_tail_bytes = replay.dropped_bytes;
        Ok(Recovered {
            snapshot,
            wal: replay.entries,
            stats,
        })
    }
}

fn snapshot_name(seq: u64, epoch: u64) -> String {
    format!("snap-{seq:012}-e{epoch}.img")
}

fn wal_name(seq: u64) -> String {
    format!("wal-{seq:012}.log")
}

fn parse_wal_name(name: &str) -> Option<u64> {
    name.strip_prefix("wal-")?
        .strip_suffix(".log")?
        .parse()
        .ok()
}

fn parse_snapshot_name(name: &str) -> Option<(u64, u64)> {
    let rest = name.strip_prefix("snap-")?.strip_suffix(".img")?;
    let (seq, epoch) = rest.split_once("-e")?;
    Some((seq.parse().ok()?, epoch.parse().ok()?))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snapshot_with(tag: &str) -> Snapshot {
        let mut s = Snapshot::new();
        s.push_section("replica", tag.as_bytes().to_vec());
        s
    }

    #[test]
    fn append_then_recover_replays_everything() {
        let mut store = DocStore::in_memory();
        for i in 0..5u64 {
            store.append(0, format!("op {i}").as_bytes()).unwrap();
        }
        let recovered = store.recover().unwrap();
        assert!(recovered.snapshot.is_none());
        assert_eq!(recovered.wal.len(), 5);
        assert_eq!(recovered.stats.wal_records, 5);
        assert!(!recovered.stats.snapshot_hit);
        assert_eq!(recovered.stats.torn_tail_bytes, 0);
        assert_eq!(store.stats().wal_appends, 5);
    }

    #[test]
    fn checkpoint_truncates_the_wal() {
        let mut store = DocStore::in_memory();
        store.append(0, b"pre-epoch").unwrap();
        store.append(0, b"also pre").unwrap();
        store.checkpoint(1, &snapshot_with("epoch-1")).unwrap();
        assert_eq!(store.wal_len().unwrap(), 0);
        store.append(1, b"post-epoch").unwrap();

        let recovered = store.recover().unwrap();
        let (epoch, snapshot) = recovered.snapshot.expect("snapshot present");
        assert_eq!(epoch, 1);
        assert_eq!(snapshot.section("replica").unwrap(), b"epoch-1");
        assert_eq!(recovered.wal.len(), 1);
        assert!(recovered.wal.iter().all(|e| e.epoch >= 1));
        assert_eq!(store.stats().wal_truncations, 1);
    }

    #[test]
    fn newest_valid_snapshot_wins_and_old_ones_are_pruned() {
        let mut store = DocStore::in_memory();
        for epoch in 1..=4u64 {
            store
                .checkpoint(epoch, &snapshot_with(&format!("e{epoch}")))
                .unwrap();
        }
        // Only the newest plus the fallback window survive.
        assert_eq!(store.snapshot_epochs().unwrap(), vec![3, 4]);
        let recovered = store.recover().unwrap();
        assert_eq!(recovered.snapshot.unwrap().0, 4);
    }

    #[test]
    fn corrupt_newest_snapshot_falls_back_to_the_previous() {
        let mut backend = MemoryBackend::new();
        backend
            .write(&snapshot_name(0, 1), &snapshot_with("good").encode())
            .unwrap();
        let mut bad = snapshot_with("newer").encode();
        let last = bad.len() - 1;
        bad[last] ^= 0xFF;
        backend.write(&snapshot_name(1, 2), &bad).unwrap();

        let store = DocStore::new(backend).unwrap();
        let recovered = store.recover().unwrap();
        assert_eq!(recovered.stats.corrupt_snapshots_skipped, 1);
        let (epoch, snapshot) = recovered.snapshot.unwrap();
        assert_eq!(epoch, 1);
        assert_eq!(snapshot.section("replica").unwrap(), b"good");
    }

    #[test]
    fn torn_wal_tail_is_dropped_and_counted() {
        let mut store = DocStore::in_memory();
        store.append(0, b"whole record").unwrap();
        store.append(0, b"torn record").unwrap();
        // Simulate the crash mid-append by rewriting a truncated WAL.
        let mut log = Vec::new();
        wal::append_record(&mut log, 0, b"whole record");
        let mut torn = log.clone();
        wal::append_record(&mut torn, 0, b"torn record");
        torn.truncate(log.len() + 7);
        let mut backend = MemoryBackend::new();
        backend.write(&wal_name(0), &torn).unwrap();
        let store = DocStore::new(backend).unwrap();

        let recovered = store.recover().unwrap();
        assert_eq!(recovered.wal.len(), 1);
        assert_eq!(recovered.wal[0].payload, b"whole record");
        assert_eq!(recovered.stats.torn_tail_bytes, 7);
    }

    #[test]
    fn crash_between_snapshot_write_and_rotation_never_replays_folded_records() {
        // The checkpoint commit point is the snapshot write; everything
        // after it (segment rotation, pruning) may be lost to a crash. A
        // store left with the NEW snapshot and the OLD pre-checkpoint
        // segment must not replay those already-folded records on top of
        // the snapshot — they live in a lower-sequence segment and are
        // skipped wholesale.
        let mut pre_wal = Vec::new();
        wal::append_record(&mut pre_wal, 0, b"already folded into the snapshot");
        let mut backend = MemoryBackend::new();
        backend.write(&wal_name(0), &pre_wal).unwrap();
        backend
            .write(&snapshot_name(1, 1), &snapshot_with("epoch-1").encode())
            .unwrap();

        let store = DocStore::new(backend).unwrap();
        let recovered = store.recover().unwrap();
        assert_eq!(recovered.snapshot.as_ref().unwrap().0, 1);
        assert!(
            recovered.wal.is_empty(),
            "pre-checkpoint records must not be replayed: {recovered:?}"
        );

        // And appends after the reopen land in the snapshot's segment, so
        // they DO replay.
        let mut store = store;
        store.append(1, b"after the crash").unwrap();
        let recovered = store.recover().unwrap();
        assert_eq!(recovered.wal.len(), 1);
        assert_eq!(recovered.wal[0].payload, b"after the crash");
    }

    #[test]
    fn fallback_recovery_replays_both_surviving_segments_in_order() {
        // Newest snapshot corrupt: recovery falls back to the previous one
        // and must replay the fallback's segment followed by the newest
        // segment — the full redo chain from the older state.
        let mut seg1 = Vec::new();
        wal::append_record(&mut seg1, 0, b"between the snapshots");
        let mut seg2 = Vec::new();
        wal::append_record(&mut seg2, 0, b"after the newest");
        let mut bad = snapshot_with("newest").encode();
        let last = bad.len() - 1;
        bad[last] ^= 0xFF;
        let mut backend = MemoryBackend::new();
        backend
            .write(&snapshot_name(1, 0), &snapshot_with("older-good").encode())
            .unwrap();
        backend.write(&wal_name(1), &seg1).unwrap();
        backend.write(&snapshot_name(2, 0), &bad).unwrap();
        backend.write(&wal_name(2), &seg2).unwrap();

        let store = DocStore::new(backend).unwrap();
        let recovered = store.recover().unwrap();
        assert_eq!(recovered.stats.corrupt_snapshots_skipped, 1);
        assert_eq!(
            recovered.snapshot.as_ref().unwrap().1.section("replica"),
            Some(&b"older-good"[..])
        );
        assert_eq!(
            recovered
                .wal
                .iter()
                .map(|e| e.payload.as_slice())
                .collect::<Vec<_>>(),
            vec![&b"between the snapshots"[..], &b"after the newest"[..]],
            "redo chain spans both segments in order"
        );
    }

    #[test]
    fn reopening_continues_the_snapshot_sequence() {
        let mut backend = MemoryBackend::new();
        {
            let mut store = DocStore::new(backend.clone()).unwrap();
            store.checkpoint(1, &snapshot_with("first")).unwrap();
            // Clone back the mutated state (MemoryBackend is by-value).
            for name in store.backend.list().unwrap() {
                let bytes = store.backend.read(&name).unwrap().unwrap();
                backend.write(&name, &bytes).unwrap();
            }
        }
        let mut store = DocStore::new(backend).unwrap();
        store.checkpoint(2, &snapshot_with("second")).unwrap();
        assert_eq!(store.snapshot_epochs().unwrap(), vec![1, 2]);
    }

    #[test]
    fn snapshot_names_round_trip() {
        assert_eq!(parse_snapshot_name(&snapshot_name(7, 3)), Some((7, 3)));
        assert_eq!(parse_snapshot_name("wal.log"), None);
        assert_eq!(parse_snapshot_name("snap-xx-e1.img"), None);
    }
}
