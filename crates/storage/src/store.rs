//! The per-replica durable store: WAL segments plus a ring of epoch
//! snapshots.
//!
//! [`DocStore`] owns the naming, recovery and compaction policy on top of a
//! [`StorageBackend`]:
//!
//! * **append** — frame a payload as a WAL record (tagged with the replica's
//!   flatten epoch) and append it to the *active segment* `wal-<seq>.log`;
//! * **checkpoint** — write a verified [`Snapshot`] under a fresh sequence
//!   number, rotate to the WAL segment of that sequence, and prune
//!   snapshots (and the segments of pruned snapshots) beyond the fallback
//!   window. The flatten commitment of §4.2.1 makes the committed epoch the
//!   natural compaction point: the replication layer checkpoints on every
//!   flatten commit, so the records a recovery would replay are only
//!   post-epoch ones;
//! * **recover** — load the newest snapshot that passes hash verification
//!   (falling back to older ones, counting the corrupt), then replay the
//!   WAL segments **at or after that snapshot's sequence**; torn tails are
//!   dropped and reported.
//!
//! Keying segments by snapshot sequence is what makes a checkpoint
//! crash-safe without cross-file atomicity: records older than the chosen
//! snapshot live in lower-sequence segments and are skipped wholesale, so a
//! crash *between* the snapshot write and the rotation can never cause
//! already-folded records to be replayed on top of the new snapshot (which
//! would double-apply operations and corrupt the recovered vector clock).

use crate::backend::{MemoryBackend, StorageBackend, StorageError};
use crate::group::GroupWal;
use crate::snapshot::Snapshot;
use crate::wal::{self, WalEntry, WalReplay};
use treedoc_telemetry::{Counter, Histogram, Telemetry, TraceEvent, Tracer};

/// Snapshots kept after a checkpoint: the new one plus this many fallbacks.
const SNAPSHOT_FALLBACKS: usize = 1;

/// Counters of one `DocStore` *object*: they live with the store value, so
/// they survive the simulator's crash fault (where the store is detached
/// from the dying replica and handed to the recovered one) but reset when a
/// backend is reopened through [`DocStore::new`] after a real process
/// restart — the blobs persist, the bookkeeping does not.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// WAL records appended.
    pub wal_appends: u64,
    /// WAL bytes appended (framing included).
    pub wal_bytes: u64,
    /// Snapshots written.
    pub snapshots_written: u64,
    /// Checkpoints that actually retired log records (a checkpoint over an
    /// already-empty log does not count).
    pub wal_truncations: u64,
}

/// What a [`DocStore::recover`] pass found and salvaged.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryStats {
    /// Whether a valid snapshot was found.
    pub snapshot_hit: bool,
    /// Epoch of the recovered snapshot (0 when none).
    pub snapshot_epoch: u64,
    /// Snapshots that failed verification and were skipped.
    pub corrupt_snapshots_skipped: usize,
    /// WAL records replayed after the snapshot.
    pub wal_records: usize,
    /// Bytes recovered (snapshot body + valid WAL prefix).
    pub bytes_recovered: usize,
    /// WAL tail bytes dropped as torn or corrupt.
    pub torn_tail_bytes: usize,
}

/// The result of a recovery pass: the newest valid snapshot (if any), the
/// WAL tail to replay on top of it, and the accounting.
#[derive(Debug)]
pub struct Recovered {
    /// The newest snapshot that passed verification, with its epoch.
    pub snapshot: Option<(u64, Snapshot)>,
    /// Valid WAL records, in append order.
    pub wal: Vec<WalEntry>,
    /// What the pass found.
    pub stats: RecoveryStats,
}

/// Where a store's WAL records go: its own private segments, or a shard's
/// shared [`GroupWal`] (one queue, one segment write per flush, for every
/// document of the shard — see [`crate::group`]).
#[derive(Debug)]
enum WalSink {
    /// Private `wal-<seq>.log` segments in this store's own namespace.
    Private,
    /// The shard-wide group-commit WAL; `doc` tags this store's records.
    Group {
        /// Shared handle to the shard's WAL.
        wal: GroupWal,
        /// This document's identity inside the shared log.
        doc: String,
    },
}

/// Telemetry instruments of one store, resolved once at
/// [`DocStore::set_telemetry`] so the hot paths never touch the registry.
/// Defaults to the inert disabled handles.
#[derive(Debug, Clone, Default)]
struct StoreMetrics {
    append_micros: Histogram,
    checkpoint_micros: Histogram,
    recover_micros: Histogram,
    wal_appends: Counter,
    wal_bytes: Counter,
    snapshots_written: Counter,
    tracer: Tracer,
}

impl StoreMetrics {
    fn resolve(telemetry: &Telemetry) -> Self {
        StoreMetrics {
            append_micros: telemetry.histogram("store.append_micros"),
            checkpoint_micros: telemetry.histogram("store.checkpoint_micros"),
            recover_micros: telemetry.histogram("store.recover_micros"),
            wal_appends: telemetry.counter("store.wal_appends"),
            wal_bytes: telemetry.counter("store.wal_bytes"),
            snapshots_written: telemetry.counter("store.snapshots_written"),
            tracer: telemetry.tracer(),
        }
    }
}

/// A replica's durable store over a pluggable backend.
#[derive(Debug)]
pub struct DocStore {
    backend: Box<dyn StorageBackend>,
    /// Where WAL records go (private segments or a shared group WAL).
    sink: WalSink,
    /// Sequence of the active WAL segment (always the sequence of the
    /// newest snapshot written, or 0 before the first checkpoint). In group
    /// mode there are no private segments and this stays put.
    active_segment: u64,
    /// Bytes in the active segment, tracked in memory so a checkpoint can
    /// tell whether it retires anything without re-reading the log. In
    /// group mode this counts bytes logged since the last checkpoint.
    active_segment_bytes: u64,
    next_snapshot_seq: u64,
    stats: StoreStats,
    metrics: StoreMetrics,
}

impl DocStore {
    /// Opens a store over `backend`, continuing any snapshot/segment
    /// sequence already present (so reopening a directory keeps allocating
    /// fresh names and appends to the newest segment).
    pub fn new(backend: impl StorageBackend + 'static) -> Result<Self, StorageError> {
        let backend: Box<dyn StorageBackend> = Box::new(backend);
        let newest_snapshot = Self::snapshot_blobs(backend.as_ref())?
            .last()
            .map(|&(s, ..)| s);
        let newest_segment = Self::wal_segments(backend.as_ref())?.last().copied();
        let active_segment = newest_snapshot
            .unwrap_or(0)
            .max(newest_segment.unwrap_or(0));
        // A snapshot's sequence must be strictly greater than every segment
        // holding records it folds in, so the first checkpoint ever taken
        // gets sequence 1 (segment 0 is the pre-checkpoint log).
        let next_snapshot_seq = newest_snapshot
            .map(|s| s + 1)
            .unwrap_or(0)
            .max(active_segment + 1);
        let active_segment_bytes = backend
            .read(&wal_name(active_segment))?
            .map_or(0, |b| b.len() as u64);
        Ok(DocStore {
            backend,
            sink: WalSink::Private,
            active_segment,
            active_segment_bytes,
            next_snapshot_seq,
            stats: StoreStats::default(),
            metrics: StoreMetrics::default(),
        })
    }

    /// Opens a store whose WAL records go to a shard-shared [`GroupWal`]
    /// instead of private segments. `backend` is the document's own
    /// (namespaced) blob view — snapshots still live there — and `doc` is
    /// the identity tagging this store's records inside the shared log
    /// (the hosting node uses the namespace string). The document's replay
    /// cursor, embedded in its newest snapshot's name, is re-registered
    /// with the WAL so pruning can make progress.
    pub fn with_group_wal(
        backend: impl StorageBackend + 'static,
        wal: GroupWal,
        doc: &str,
    ) -> Result<Self, StorageError> {
        let backend: Box<dyn StorageBackend> = Box::new(backend);
        let snapshots = Self::snapshot_blobs(backend.as_ref())?;
        let next_snapshot_seq = snapshots.last().map(|&(s, ..)| s + 1).unwrap_or(1);
        // Register the OLDEST retained snapshot's cursor: a recovery may
        // fall back past a corrupt newest snapshot and replay from the
        // fallback's older cursor, so segments past it must survive.
        let cursor = snapshots.first().and_then(|&(_, _, c)| c).unwrap_or(0);
        wal.register(doc, cursor);
        Ok(DocStore {
            backend,
            sink: WalSink::Group {
                wal,
                doc: doc.to_string(),
            },
            active_segment: 0,
            active_segment_bytes: 0,
            next_snapshot_seq,
            stats: StoreStats::default(),
            metrics: StoreMetrics::default(),
        })
    }

    /// Points this store's instruments at `telemetry` (checkpoint/recover
    /// latency histograms, WAL counters, trace events). A disabled handle
    /// reverts them to no-ops.
    pub fn set_telemetry(&mut self, telemetry: &Telemetry) {
        self.metrics = StoreMetrics::resolve(telemetry);
    }

    /// A store over a fresh in-memory backend (tests and the simulator's
    /// crash/restart fault).
    pub fn in_memory() -> Self {
        DocStore::new(MemoryBackend::new()).expect("memory backend cannot fail")
    }

    /// Lifetime counters.
    pub fn stats(&self) -> StoreStats {
        self.stats
    }

    /// Snapshot blob names present, as `(sequence, epoch, group cursor)`
    /// sorted ascending by sequence. The cursor is `None` for private-mode
    /// snapshots (the plain `snap-<seq>-e<epoch>.img` names).
    fn snapshot_blobs(
        backend: &dyn StorageBackend,
    ) -> Result<Vec<(u64, u64, Option<u64>)>, StorageError> {
        let mut found = Vec::new();
        for name in backend.list()? {
            if let Some(parsed) = parse_snapshot_name(&name) {
                found.push(parsed);
            }
        }
        found.sort_unstable();
        Ok(found)
    }

    /// Epochs of the snapshots currently kept, oldest first.
    pub fn snapshot_epochs(&self) -> Result<Vec<u64>, StorageError> {
        Ok(Self::snapshot_blobs(self.backend.as_ref())?
            .into_iter()
            .map(|(_, epoch, _)| epoch)
            .collect())
    }

    /// WAL segment sequences present, sorted ascending.
    fn wal_segments(backend: &dyn StorageBackend) -> Result<Vec<u64>, StorageError> {
        let mut found = Vec::new();
        for name in backend.list()? {
            if let Some(seq) = parse_wal_name(&name) {
                found.push(seq);
            }
        }
        found.sort_unstable();
        Ok(found)
    }

    /// The segments a recovery starting from snapshot sequence `from_seq`
    /// must replay, in order.
    fn segments_from(&self, from_seq: u64) -> Result<Vec<u64>, StorageError> {
        Ok(Self::wal_segments(self.backend.as_ref())?
            .into_iter()
            .filter(|&seq| seq >= from_seq)
            .collect())
    }

    /// Replays the given segments in order, concatenating their valid
    /// record prefixes. A fault inside a non-final segment stops the replay
    /// there: records beyond a corruption point are not trustworthy even if
    /// later segments look healthy.
    fn replay_segments(&self, segments: &[u64]) -> Result<WalReplay, StorageError> {
        let mut combined = WalReplay {
            entries: Vec::new(),
            valid_bytes: 0,
            dropped_bytes: 0,
            fault: None,
        };
        for (i, &seq) in segments.iter().enumerate() {
            let bytes = self.backend.read(&wal_name(seq))?.unwrap_or_default();
            let mut replay = wal::replay(&bytes);
            combined.entries.append(&mut replay.entries);
            combined.valid_bytes += replay.valid_bytes;
            combined.dropped_bytes += replay.dropped_bytes;
            if replay.fault.is_some() {
                combined.fault = replay.fault;
                // Count the untouched later segments as dropped too.
                for &later in &segments[i + 1..] {
                    combined.dropped_bytes +=
                        self.backend.read(&wal_name(later))?.map_or(0, |b| b.len());
                }
                break;
            }
        }
        Ok(combined)
    }

    /// The newest snapshot sequence present by name (validity not checked;
    /// used to scope diagnostics the way a recovery would).
    fn newest_snapshot_seq(&self) -> Result<u64, StorageError> {
        Ok(Self::snapshot_blobs(self.backend.as_ref())?
            .last()
            .map(|&(seq, ..)| seq)
            .unwrap_or(0))
    }

    /// The group-WAL replay cursor of the newest snapshot present (0 when
    /// there is none, or when running in private mode).
    fn newest_snapshot_cursor(&self) -> Result<u64, StorageError> {
        Ok(Self::snapshot_blobs(self.backend.as_ref())?
            .last()
            .and_then(|&(_, _, cursor)| cursor)
            .unwrap_or(0))
    }

    /// Appends one WAL record carrying `payload`, tagged with the replica's
    /// current flatten `epoch` — to the active private segment, or (in
    /// group mode) to the shard's shared queue, where it becomes durable at
    /// the next group flush.
    pub fn append(&mut self, epoch: u64, payload: &[u8]) -> Result<(), StorageError> {
        let span = self.metrics.append_micros.start();
        let frame_len = match &self.sink {
            WalSink::Private => {
                let mut frame = Vec::with_capacity(wal::record_size(payload.len()));
                wal::append_record(&mut frame, epoch, payload);
                self.backend
                    .append(&wal_name(self.active_segment), &frame)?;
                frame.len() as u64
            }
            WalSink::Group { wal, doc } => {
                wal.enqueue(doc, epoch, payload);
                wal::record_size(payload.len()) as u64
            }
        };
        self.active_segment_bytes += frame_len;
        self.stats.wal_appends += 1;
        self.stats.wal_bytes += frame_len;
        self.metrics.wal_appends.inc();
        self.metrics.wal_bytes.add(frame_len);
        span.stop();
        Ok(())
    }

    /// The decoded WAL a recovery would replay right now — the segments at
    /// or after the newest snapshot (diagnostics and the compaction
    /// assertions of the test suite). In group mode: this document's
    /// flushed records past its newest cursor.
    pub fn wal_entries(&self) -> Result<WalReplay, StorageError> {
        match &self.sink {
            WalSink::Private => {
                let from = self.newest_snapshot_seq()?;
                let segments = self.segments_from(from)?;
                self.replay_segments(&segments)
            }
            WalSink::Group { wal, doc } => {
                let replay = wal.replay_for(doc, self.newest_snapshot_cursor()?)?;
                Ok(WalReplay {
                    valid_bytes: replay.bytes,
                    dropped_bytes: replay.torn_tail_bytes,
                    entries: replay.entries,
                    fault: None,
                })
            }
        }
    }

    /// Bytes of WAL a recovery would read right now (group mode: this
    /// document's flushed frame bytes past its newest cursor).
    pub fn wal_len(&self) -> Result<usize, StorageError> {
        match &self.sink {
            WalSink::Private => {
                let from = self.newest_snapshot_seq()?;
                let mut total = 0usize;
                for seq in self.segments_from(from)? {
                    total += self.backend.read(&wal_name(seq))?.map_or(0, |b| b.len());
                }
                Ok(total)
            }
            WalSink::Group { wal, doc } => {
                Ok(wal.replay_for(doc, self.newest_snapshot_cursor()?)?.bytes)
            }
        }
    }

    /// Writes `snapshot` as the checkpoint for `epoch`, rotates to that
    /// checkpoint's WAL segment (every record in earlier segments is now
    /// folded into the snapshot) and prunes snapshots — plus the segments
    /// of pruned snapshots — beyond the fallback window.
    ///
    /// Crash-safety: the snapshot write is the commit point. A crash before
    /// it recovers from the previous snapshot plus the still-active old
    /// segment; a crash anywhere after it recovers from the new snapshot,
    /// and the old segments are skipped by sequence — no record is ever
    /// replayed on top of a snapshot that already contains it.
    pub fn checkpoint(&mut self, epoch: u64, snapshot: &Snapshot) -> Result<(), StorageError> {
        let span = self.metrics.checkpoint_micros.start();
        // Did this checkpoint actually retire log records (as opposed to a
        // back-to-back checkpoint over an empty log)?
        let retired = self.active_segment_bytes > 0;
        let seq = self.next_snapshot_seq;
        self.next_snapshot_seq += 1;
        let cursor = match &self.sink {
            WalSink::Private => None,
            WalSink::Group { wal, .. } => {
                // Flush first: the cursor stored in the snapshot name must
                // never cover a record a crash could still lose, or LSNs
                // assigned after a restart would hide behind it.
                wal.flush()?;
                Some(wal.watermark())
            }
        };
        let blob = snapshot.encode();
        let blob_len = blob.len() as u64;
        self.backend
            .write(&snapshot_blob_name(seq, epoch, cursor), &blob)?;
        self.active_segment = seq;
        self.active_segment_bytes = 0;
        self.stats.snapshots_written += 1;
        if retired {
            self.stats.wal_truncations += 1;
        }
        let existing = Self::snapshot_blobs(self.backend.as_ref())?;
        if existing.len() > 1 + SNAPSHOT_FALLBACKS {
            let (pruned, retained) = existing.split_at(existing.len() - 1 - SNAPSHOT_FALLBACKS);
            let oldest_retained = retained.first().map(|&(s, ..)| s).unwrap_or(seq);
            for &(old_seq, old_epoch, old_cursor) in pruned {
                self.backend
                    .remove(&snapshot_blob_name(old_seq, old_epoch, old_cursor))?;
            }
            // Segments older than the oldest retained snapshot can never be
            // replayed again (every recovery starts at a retained snapshot).
            for old in Self::wal_segments(self.backend.as_ref())? {
                if old < oldest_retained {
                    self.backend.remove(&wal_name(old))?;
                }
            }
        }
        if let (WalSink::Group { wal, doc }, Some(cursor)) = (&self.sink, cursor) {
            // Group segments are shared: they are pruned by cursor floor,
            // not by snapshot sequence. A recovery falling back past the
            // newest snapshot replays from the FALLBACK's (older) cursor,
            // so only that oldest retained cursor may advance the floor.
            let oldest_retained_cursor = Self::snapshot_blobs(self.backend.as_ref())?
                .first()
                .and_then(|&(_, _, c)| c)
                .unwrap_or(cursor);
            wal.note_checkpoint(doc, oldest_retained_cursor)?;
        }
        let micros = span.stop();
        self.metrics.snapshots_written.inc();
        self.metrics.tracer.record_with(|| TraceEvent {
            epoch,
            bytes: blob_len,
            micros,
            ..TraceEvent::of("store.checkpoint")
        });
        Ok(())
    }

    /// Loads the newest snapshot that passes verification (skipping and
    /// counting corrupt ones) and replays the WAL segments at or after its
    /// sequence. A store with no snapshot at all yields `snapshot: None`
    /// and every segment.
    pub fn recover(&self) -> Result<Recovered, StorageError> {
        let span = self.metrics.recover_micros.start();
        let mut stats = RecoveryStats::default();
        let mut snapshot = None;
        let mut from_seq = 0u64;
        let mut from_cursor = 0u64;
        for (seq, epoch, cursor) in Self::snapshot_blobs(self.backend.as_ref())?
            .into_iter()
            .rev()
        {
            let Some(bytes) = self.backend.read(&snapshot_blob_name(seq, epoch, cursor))? else {
                continue;
            };
            match Snapshot::decode(&bytes) {
                Ok(decoded) => {
                    stats.snapshot_hit = true;
                    stats.snapshot_epoch = epoch;
                    stats.bytes_recovered += bytes.len();
                    snapshot = Some((epoch, decoded));
                    from_seq = seq;
                    from_cursor = cursor.unwrap_or(0);
                    break;
                }
                Err(_) => stats.corrupt_snapshots_skipped += 1,
            }
        }
        let replay = match &self.sink {
            WalSink::Private => {
                let segments = self.segments_from(from_seq)?;
                self.replay_segments(&segments)?
            }
            WalSink::Group { wal, doc } => {
                let group = wal.replay_for(doc, from_cursor)?;
                WalReplay {
                    valid_bytes: group.bytes,
                    dropped_bytes: group.torn_tail_bytes,
                    entries: group.entries,
                    fault: None,
                }
            }
        };
        stats.wal_records = replay.entries.len();
        stats.bytes_recovered += replay.valid_bytes;
        stats.torn_tail_bytes = replay.dropped_bytes;
        let micros = span.stop();
        self.metrics.tracer.record_with(|| TraceEvent {
            epoch: stats.snapshot_epoch,
            bytes: stats.bytes_recovered as u64,
            micros,
            ..TraceEvent::of("store.recover")
        });
        Ok(Recovered {
            snapshot,
            wal: replay.entries,
            stats,
        })
    }
}

/// Private-mode snapshot name (kept stable across releases).
fn snapshot_name(seq: u64, epoch: u64) -> String {
    format!("snap-{seq:012}-e{epoch}.img")
}

/// Snapshot blob name; group-mode snapshots carry the document's replay
/// cursor as a `-c<lsn>` suffix, making the cursor durable atomically with
/// the snapshot itself (the checkpoint commit point) — no separate cursor
/// blob, no cross-file atomicity to get wrong.
fn snapshot_blob_name(seq: u64, epoch: u64, cursor: Option<u64>) -> String {
    match cursor {
        None => snapshot_name(seq, epoch),
        Some(c) => format!("snap-{seq:012}-e{epoch}-c{c}.img"),
    }
}

fn wal_name(seq: u64) -> String {
    format!("wal-{seq:012}.log")
}

fn parse_wal_name(name: &str) -> Option<u64> {
    name.strip_prefix("wal-")?
        .strip_suffix(".log")?
        .parse()
        .ok()
}

fn parse_snapshot_name(name: &str) -> Option<(u64, u64, Option<u64>)> {
    let rest = name.strip_prefix("snap-")?.strip_suffix(".img")?;
    let (seq, epoch_part) = rest.split_once("-e")?;
    let (epoch, cursor) = match epoch_part.split_once("-c") {
        Some((epoch, cursor)) => (epoch, Some(cursor.parse().ok()?)),
        None => (epoch_part, None),
    };
    Some((seq.parse().ok()?, epoch.parse().ok()?, cursor))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snapshot_with(tag: &str) -> Snapshot {
        let mut s = Snapshot::new();
        s.push_section("replica", tag.as_bytes().to_vec());
        s
    }

    #[test]
    fn append_then_recover_replays_everything() {
        let mut store = DocStore::in_memory();
        for i in 0..5u64 {
            store.append(0, format!("op {i}").as_bytes()).unwrap();
        }
        let recovered = store.recover().unwrap();
        assert!(recovered.snapshot.is_none());
        assert_eq!(recovered.wal.len(), 5);
        assert_eq!(recovered.stats.wal_records, 5);
        assert!(!recovered.stats.snapshot_hit);
        assert_eq!(recovered.stats.torn_tail_bytes, 0);
        assert_eq!(store.stats().wal_appends, 5);
    }

    #[test]
    fn checkpoint_truncates_the_wal() {
        let mut store = DocStore::in_memory();
        store.append(0, b"pre-epoch").unwrap();
        store.append(0, b"also pre").unwrap();
        store.checkpoint(1, &snapshot_with("epoch-1")).unwrap();
        assert_eq!(store.wal_len().unwrap(), 0);
        store.append(1, b"post-epoch").unwrap();

        let recovered = store.recover().unwrap();
        let (epoch, snapshot) = recovered.snapshot.expect("snapshot present");
        assert_eq!(epoch, 1);
        assert_eq!(snapshot.section("replica").unwrap(), b"epoch-1");
        assert_eq!(recovered.wal.len(), 1);
        assert!(recovered.wal.iter().all(|e| e.epoch >= 1));
        assert_eq!(store.stats().wal_truncations, 1);
    }

    #[test]
    fn newest_valid_snapshot_wins_and_old_ones_are_pruned() {
        let mut store = DocStore::in_memory();
        for epoch in 1..=4u64 {
            store
                .checkpoint(epoch, &snapshot_with(&format!("e{epoch}")))
                .unwrap();
        }
        // Only the newest plus the fallback window survive.
        assert_eq!(store.snapshot_epochs().unwrap(), vec![3, 4]);
        let recovered = store.recover().unwrap();
        assert_eq!(recovered.snapshot.unwrap().0, 4);
    }

    #[test]
    fn corrupt_newest_snapshot_falls_back_to_the_previous() {
        let mut backend = MemoryBackend::new();
        backend
            .write(&snapshot_name(0, 1), &snapshot_with("good").encode())
            .unwrap();
        let mut bad = snapshot_with("newer").encode();
        let last = bad.len() - 1;
        bad[last] ^= 0xFF;
        backend.write(&snapshot_name(1, 2), &bad).unwrap();

        let store = DocStore::new(backend).unwrap();
        let recovered = store.recover().unwrap();
        assert_eq!(recovered.stats.corrupt_snapshots_skipped, 1);
        let (epoch, snapshot) = recovered.snapshot.unwrap();
        assert_eq!(epoch, 1);
        assert_eq!(snapshot.section("replica").unwrap(), b"good");
    }

    #[test]
    fn torn_wal_tail_is_dropped_and_counted() {
        let mut store = DocStore::in_memory();
        store.append(0, b"whole record").unwrap();
        store.append(0, b"torn record").unwrap();
        // Simulate the crash mid-append by rewriting a truncated WAL.
        let mut log = Vec::new();
        wal::append_record(&mut log, 0, b"whole record");
        let mut torn = log.clone();
        wal::append_record(&mut torn, 0, b"torn record");
        torn.truncate(log.len() + 7);
        let mut backend = MemoryBackend::new();
        backend.write(&wal_name(0), &torn).unwrap();
        let store = DocStore::new(backend).unwrap();

        let recovered = store.recover().unwrap();
        assert_eq!(recovered.wal.len(), 1);
        assert_eq!(recovered.wal[0].payload, b"whole record");
        assert_eq!(recovered.stats.torn_tail_bytes, 7);
    }

    #[test]
    fn crash_between_snapshot_write_and_rotation_never_replays_folded_records() {
        // The checkpoint commit point is the snapshot write; everything
        // after it (segment rotation, pruning) may be lost to a crash. A
        // store left with the NEW snapshot and the OLD pre-checkpoint
        // segment must not replay those already-folded records on top of
        // the snapshot — they live in a lower-sequence segment and are
        // skipped wholesale.
        let mut pre_wal = Vec::new();
        wal::append_record(&mut pre_wal, 0, b"already folded into the snapshot");
        let mut backend = MemoryBackend::new();
        backend.write(&wal_name(0), &pre_wal).unwrap();
        backend
            .write(&snapshot_name(1, 1), &snapshot_with("epoch-1").encode())
            .unwrap();

        let store = DocStore::new(backend).unwrap();
        let recovered = store.recover().unwrap();
        assert_eq!(recovered.snapshot.as_ref().unwrap().0, 1);
        assert!(
            recovered.wal.is_empty(),
            "pre-checkpoint records must not be replayed: {recovered:?}"
        );

        // And appends after the reopen land in the snapshot's segment, so
        // they DO replay.
        let mut store = store;
        store.append(1, b"after the crash").unwrap();
        let recovered = store.recover().unwrap();
        assert_eq!(recovered.wal.len(), 1);
        assert_eq!(recovered.wal[0].payload, b"after the crash");
    }

    #[test]
    fn fallback_recovery_replays_both_surviving_segments_in_order() {
        // Newest snapshot corrupt: recovery falls back to the previous one
        // and must replay the fallback's segment followed by the newest
        // segment — the full redo chain from the older state.
        let mut seg1 = Vec::new();
        wal::append_record(&mut seg1, 0, b"between the snapshots");
        let mut seg2 = Vec::new();
        wal::append_record(&mut seg2, 0, b"after the newest");
        let mut bad = snapshot_with("newest").encode();
        let last = bad.len() - 1;
        bad[last] ^= 0xFF;
        let mut backend = MemoryBackend::new();
        backend
            .write(&snapshot_name(1, 0), &snapshot_with("older-good").encode())
            .unwrap();
        backend.write(&wal_name(1), &seg1).unwrap();
        backend.write(&snapshot_name(2, 0), &bad).unwrap();
        backend.write(&wal_name(2), &seg2).unwrap();

        let store = DocStore::new(backend).unwrap();
        let recovered = store.recover().unwrap();
        assert_eq!(recovered.stats.corrupt_snapshots_skipped, 1);
        assert_eq!(
            recovered.snapshot.as_ref().unwrap().1.section("replica"),
            Some(&b"older-good"[..])
        );
        assert_eq!(
            recovered
                .wal
                .iter()
                .map(|e| e.payload.as_slice())
                .collect::<Vec<_>>(),
            vec![&b"between the snapshots"[..], &b"after the newest"[..]],
            "redo chain spans both segments in order"
        );
    }

    #[test]
    fn reopening_continues_the_snapshot_sequence() {
        let mut backend = MemoryBackend::new();
        {
            let mut store = DocStore::new(backend.clone()).unwrap();
            store.checkpoint(1, &snapshot_with("first")).unwrap();
            // Clone back the mutated state (MemoryBackend is by-value).
            for name in store.backend.list().unwrap() {
                let bytes = store.backend.read(&name).unwrap().unwrap();
                backend.write(&name, &bytes).unwrap();
            }
        }
        let mut store = DocStore::new(backend).unwrap();
        store.checkpoint(2, &snapshot_with("second")).unwrap();
        assert_eq!(store.snapshot_epochs().unwrap(), vec![1, 2]);
    }

    #[test]
    fn snapshot_names_round_trip() {
        assert_eq!(
            parse_snapshot_name(&snapshot_name(7, 3)),
            Some((7, 3, None))
        );
        assert_eq!(
            parse_snapshot_name(&snapshot_blob_name(7, 3, Some(42))),
            Some((7, 3, Some(42)))
        );
        assert_eq!(parse_snapshot_name("wal.log"), None);
        assert_eq!(parse_snapshot_name("snap-xx-e1.img"), None);
        assert_eq!(parse_snapshot_name("snap-000000000007-e3-cxx.img"), None);
    }

    mod group_mode {
        use super::*;
        use crate::backend::{NamespacedBackend, SharedBackend};
        use crate::group::GroupWal;

        fn shard() -> (SharedBackend, GroupWal) {
            let backend = SharedBackend::in_memory();
            let wal = GroupWal::open(backend.clone()).unwrap();
            (backend, wal)
        }

        fn doc_store(backend: &SharedBackend, wal: &GroupWal, ns: &str) -> DocStore {
            let view = NamespacedBackend::new(backend.clone(), ns).unwrap();
            DocStore::with_group_wal(view, wal.clone(), ns).unwrap()
        }

        #[test]
        fn group_recover_replays_only_this_documents_records() {
            let (backend, wal) = shard();
            let mut a = doc_store(&backend, &wal, "a");
            let mut b = doc_store(&backend, &wal, "b");
            a.append(0, b"a-one").unwrap();
            b.append(0, b"b-one").unwrap();
            a.append(0, b"a-two").unwrap();
            wal.flush().unwrap();

            let rec = a.recover().unwrap();
            assert_eq!(
                rec.wal
                    .iter()
                    .map(|e| e.payload.as_slice())
                    .collect::<Vec<_>>(),
                vec![&b"a-one"[..], &b"a-two"[..]]
            );
            assert_eq!(b.recover().unwrap().wal.len(), 1);
        }

        #[test]
        fn group_checkpoint_sets_a_cursor_that_survives_reopen() {
            let (backend, wal) = shard();
            let mut store = doc_store(&backend, &wal, "d");
            store.append(0, b"folded").unwrap();
            store.checkpoint(1, &snapshot_with("ck")).unwrap();
            store.append(1, b"tail").unwrap();
            wal.flush().unwrap();

            // Reopen the shard cold, as a node restart would.
            let wal2 = GroupWal::open(backend.clone()).unwrap();
            let store2 = doc_store(&backend, &wal2, "d");
            let rec = store2.recover().unwrap();
            assert_eq!(rec.snapshot.unwrap().0, 1);
            assert_eq!(rec.wal.len(), 1, "only the post-checkpoint tail");
            assert_eq!(rec.wal[0].payload, b"tail");
        }

        #[test]
        fn group_checkpoint_flushes_the_queue_first() {
            let (backend, wal) = shard();
            let mut store = doc_store(&backend, &wal, "d");
            store.append(0, b"queued").unwrap();
            assert_eq!(wal.pending_records(), 1);
            store.checkpoint(1, &snapshot_with("ck")).unwrap();
            assert_eq!(wal.pending_records(), 0, "checkpoint durably flushed");
            assert!(wal.watermark() >= 1);
        }

        #[test]
        fn group_wal_len_tracks_the_unfolded_tail() {
            let (backend, wal) = shard();
            let mut store = doc_store(&backend, &wal, "d");
            store.append(0, b"one").unwrap();
            wal.flush().unwrap();
            assert!(store.wal_len().unwrap() > 0);
            store.checkpoint(1, &snapshot_with("ck")).unwrap();
            assert_eq!(store.wal_len().unwrap(), 0);
        }
    }
}
