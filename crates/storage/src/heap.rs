//! The breadth-first ("binary heap") on-disk layout.
//!
//! The structure stream lists the tree level by level: the root first, then,
//! for every node present at the previous level, its two child places (a node
//! record or a marker byte). Records carry the node's plain slot, its
//! mini-nodes (disambiguator + atom reference each) and nothing else — atoms
//! themselves live in a separate atom table, as in the paper. Marker runs are
//! compressed with the RLE scheme of [`rle`](crate::rle).
//!
//! Subtrees hanging off a mini-node's private namespace (created by inserts
//! between mini-siblings, Fig. 4 of the paper) cannot be addressed by the
//! positional array; they are serialised in an explicit *overflow* section of
//! `(identifier, content)` records so that round-tripping is always lossless.

use std::fmt;

use bytes::{Buf, BufMut, Bytes, BytesMut};
use treedoc_core::{
    Atom, Content, Disambiguator, MajorNode, PathArena, PathElem, PosId, Sdis, Side, SiteId, Tree,
    Udis,
};

use crate::rle::{rle_compress, rle_decompress, MARKER};

/// Why a [`DiskImage`] failed to decode — each variant names the layer that
/// broke, so recovery failures are diagnosable instead of a bare `None`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeError {
    /// The structure stream ends before the layout it promises.
    TruncatedStructure,
    /// The RLE framing of the structure stream is malformed.
    BadRleRun,
    /// A record carries an unknown tag or state byte (or a structurally
    /// impossible slot, e.g. a mini-node on the root).
    BadTag,
    /// A slot references an atom index beyond the atom table.
    DanglingAtomRef,
    /// A content hash guarding the image did not match. Emitted by verified
    /// loaders (the snapshot manifest of the durability layer) rather than
    /// by the raw structure decoder.
    BadHash,
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::TruncatedStructure => write!(f, "structure stream is truncated"),
            DecodeError::BadRleRun => write!(f, "structure stream has a malformed RLE run"),
            DecodeError::BadTag => write!(f, "structure stream carries an invalid tag"),
            DecodeError::DanglingAtomRef => write!(f, "slot references a missing atom"),
            DecodeError::BadHash => write!(f, "content hash mismatch"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// Fixed-size binary encoding of a disambiguator, mirroring the byte budgets
/// used by the paper's evaluation (6 bytes for SDIS, 10 for UDIS).
pub trait DisCodec: Disambiguator {
    /// Appends exactly [`Disambiguator::ACCOUNTED_BYTES`] bytes.
    fn encode_dis(&self, out: &mut BytesMut);
    /// Reads the disambiguator back.
    fn decode_dis(input: &mut Bytes) -> Option<Self>;
}

impl DisCodec for Sdis {
    fn encode_dis(&self, out: &mut BytesMut) {
        out.put_slice(self.site().as_bytes());
    }

    fn decode_dis(input: &mut Bytes) -> Option<Self> {
        if input.remaining() < 6 {
            return None;
        }
        let mut raw = [0u8; 6];
        input.copy_to_slice(&mut raw);
        Some(Sdis::new(SiteId::from_bytes(raw)))
    }
}

impl DisCodec for Udis {
    fn encode_dis(&self, out: &mut BytesMut) {
        out.put_u32(self.counter());
        out.put_slice(self.site().as_bytes());
    }

    fn decode_dis(input: &mut Bytes) -> Option<Self> {
        if input.remaining() < 10 {
            return None;
        }
        let counter = input.get_u32();
        let mut raw = [0u8; 6];
        input.copy_to_slice(&mut raw);
        Some(Udis::new(counter, SiteId::from_bytes(raw)))
    }
}

/// Content states stored per slot.
const STATE_ABSENT: u8 = 0;
const STATE_LIVE: u8 = 1;
const STATE_TOMBSTONE: u8 = 2;
const STATE_GHOST: u8 = 3;

/// Tag opening a node record (must differ from [`MARKER`]).
const NODE_TAG: u8 = 0x01;

/// A serialised document: the structure stream (the "On-disk overhead" of
/// Table 1) plus the atom table that would live in a separate file.
#[derive(Debug, Clone)]
pub struct DiskImage<A> {
    /// RLE-compressed structure stream.
    pub structure: Vec<u8>,
    /// The atoms, in the order the structure references them.
    pub atoms: Vec<A>,
    /// Statistics gathered while encoding.
    pub stats: EncodeStats,
}

/// Size accounting of an encode pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EncodeStats {
    /// Nodes written to the positional array.
    pub heap_nodes: usize,
    /// Marker places written (before compression).
    pub markers: usize,
    /// Slots that had to go to the overflow section.
    pub overflow_slots: usize,
    /// Structure stream size before RLE compression.
    pub uncompressed_bytes: usize,
}

impl<A: Atom> DiskImage<A> {
    /// Size in bytes of the structure stream — the on-disk *overhead*
    /// relative to the document content (Table 1, "On-disk overhead").
    pub fn structure_bytes(&self) -> usize {
        self.structure.len()
    }

    /// Size in bytes of the atom table (the document content itself).
    pub fn atom_bytes(&self) -> usize {
        self.atoms.iter().map(|a| a.content_bytes()).sum()
    }

    /// Overhead relative to the document content size (Table 1, "% doc").
    pub fn overhead_ratio(&self) -> f64 {
        let doc = self.atom_bytes();
        if doc == 0 {
            0.0
        } else {
            self.structure_bytes() as f64 / doc as f64
        }
    }

    /// Serialises a tree.
    pub fn encode<D: DisCodec>(tree: &Tree<A, D>) -> Self {
        let mut atoms = Vec::with_capacity(tree.live_len());
        let mut stats = EncodeStats::default();
        let mut heap = BytesMut::new();
        let mut overflow = BytesMut::new();

        // The root record, followed level by level by the two child places of
        // every node emitted at the previous level.
        encode_major(
            tree.root(),
            &PosId::root(),
            &mut heap,
            &mut overflow,
            &mut atoms,
            &mut stats,
        );
        let mut parents: Vec<(&MajorNode<A, D>, PosId<D>)> = vec![(tree.root(), PosId::root())];
        while !parents.is_empty() {
            let mut children: Vec<(&MajorNode<A, D>, PosId<D>)> = Vec::new();
            for (node, pos) in &parents {
                for side in [Side::Left, Side::Right] {
                    match node.child(side) {
                        Some(child) => {
                            let child_pos = pos.child(PathElem::plain(side));
                            encode_major(
                                child,
                                &child_pos,
                                &mut heap,
                                &mut overflow,
                                &mut atoms,
                                &mut stats,
                            );
                            children.push((child, child_pos));
                        }
                        None => {
                            heap.put_u8(MARKER);
                            stats.markers += 1;
                        }
                    }
                }
            }
            parents = children;
        }

        let mut stream = BytesMut::new();
        stream.put_u32(overflow.len() as u32);
        stream.extend_from_slice(&heap);
        stream.extend_from_slice(&overflow);
        stats.uncompressed_bytes = stream.len();
        let structure = rle_compress(&stream);
        DiskImage {
            structure,
            atoms,
            stats,
        }
    }

    /// Reads a tree back from its serialised form, reporting *why* a corrupt
    /// image failed (truncation, bad RLE framing, bad tags, dangling atom
    /// references) so recovery paths can diagnose what they found on disk.
    pub fn decode<D: DisCodec>(&self) -> Result<Tree<A, D>, DecodeError> {
        let raw = rle_decompress(&self.structure).ok_or(DecodeError::BadRleRun)?;
        let mut input = Bytes::from(raw);
        if input.remaining() < 4 {
            return Err(DecodeError::TruncatedStructure);
        }
        let overflow_len = input.get_u32() as usize;
        if overflow_len > input.remaining() {
            return Err(DecodeError::TruncatedStructure);
        }
        let heap_len = input.remaining() - overflow_len;
        let mut heap = input.slice(..heap_len);
        let mut overflow = input.slice(heap_len..);

        let mut tree: Tree<A, D> = Tree::new();

        // Root record.
        decode_major(&mut heap, &self.atoms, &mut tree, &PosId::root())?;
        let mut parents: Vec<PosId<D>> = vec![PosId::root()];
        // Level by level: two places per parent emitted at the previous
        // level.
        while !parents.is_empty() && heap.has_remaining() {
            let mut children: Vec<PosId<D>> = Vec::new();
            for parent in &parents {
                for side in [Side::Left, Side::Right] {
                    if !heap.has_remaining() {
                        return Err(DecodeError::TruncatedStructure);
                    }
                    if heap.chunk()[0] == MARKER {
                        heap.advance(1);
                        continue;
                    }
                    let pos = parent.child(PathElem::plain(side));
                    decode_major(&mut heap, &self.atoms, &mut tree, &pos)?;
                    children.push(pos);
                }
            }
            parents = children;
        }

        // Overflow section: explicit (identifier, content) records. Unlike
        // the positional heap section, whose identifiers share chunks with
        // their parents by construction, each overflow record decodes to an
        // independent chain — intern them so equal prefixes are stored once
        // and later comparisons short-circuit on pointer identity.
        let mut arena: PathArena<D> = PathArena::new();
        while overflow.has_remaining() {
            let (id, content) = decode_overflow_record::<A, D>(&mut overflow, &self.atoms)?;
            tree.restore_slot(&arena.intern(&id), content);
        }

        tree.rebuild_counts();
        Ok(tree)
    }
}

/// Writes one major-node record (plain slot + minis); subtrees hanging off
/// mini-nodes are redirected to the overflow section.
fn encode_major<A: Atom, D: DisCodec>(
    node: &MajorNode<A, D>,
    pos: &PosId<D>,
    heap: &mut BytesMut,
    overflow: &mut BytesMut,
    atoms: &mut Vec<A>,
    stats: &mut EncodeStats,
) {
    stats.heap_nodes += 1;
    heap.put_u8(NODE_TAG);
    encode_content(node.plain(), heap, atoms);
    let minis = node.minis();
    heap.put_u8(minis.len().min(u8::MAX as usize) as u8);
    for mini in minis {
        mini.dis().encode_dis(heap);
        encode_content(mini.content(), heap, atoms);
        // Mini-namespace children cannot be expressed positionally: store
        // their whole subtree as explicit records.
        if let Some(mini_id) = mini_pos(pos, mini.dis()) {
            for side in [Side::Left, Side::Right] {
                if let Some(child) = mini.child(side) {
                    let child_pos = mini_id.child(PathElem::plain(side));
                    collect_overflow(child, &child_pos, overflow, atoms, stats);
                }
            }
        }
    }
}

/// Recursively serialises every occupied slot of a subtree as overflow
/// records (used for mini-namespace subtrees).
fn collect_overflow<A: Atom, D: DisCodec>(
    node: &MajorNode<A, D>,
    pos: &PosId<D>,
    overflow: &mut BytesMut,
    atoms: &mut Vec<A>,
    stats: &mut EncodeStats,
) {
    if node.plain().is_present() {
        encode_overflow_record(pos, node.plain(), overflow, atoms);
        stats.overflow_slots += 1;
    }
    for mini in node.minis() {
        let Some(mini_id) = mini_pos(pos, mini.dis()) else {
            continue;
        };
        if mini.content().is_present() {
            encode_overflow_record(&mini_id, mini.content(), overflow, atoms);
            stats.overflow_slots += 1;
        }
        for side in [Side::Left, Side::Right] {
            if let Some(child) = mini.child(side) {
                collect_overflow(
                    child,
                    &mini_id.child(PathElem::plain(side)),
                    overflow,
                    atoms,
                    stats,
                );
            }
        }
    }
    for side in [Side::Left, Side::Right] {
        if let Some(child) = node.child(side) {
            collect_overflow(
                child,
                &pos.child(PathElem::plain(side)),
                overflow,
                atoms,
                stats,
            );
        }
    }
}

fn encode_content<A: Atom>(content: &Content<A>, out: &mut BytesMut, atoms: &mut Vec<A>) {
    match content {
        Content::Absent => out.put_u8(STATE_ABSENT),
        Content::Live(a) => {
            out.put_u8(STATE_LIVE);
            out.put_u32(atoms.len() as u32);
            atoms.push(a.clone());
        }
        Content::Tombstone => out.put_u8(STATE_TOMBSTONE),
        Content::Ghost => out.put_u8(STATE_GHOST),
    }
}

fn decode_content<A: Atom>(input: &mut Bytes, atoms: &[A]) -> Result<Content<A>, DecodeError> {
    if !input.has_remaining() {
        return Err(DecodeError::TruncatedStructure);
    }
    match input.get_u8() {
        STATE_ABSENT => Ok(Content::Absent),
        STATE_LIVE => {
            if input.remaining() < 4 {
                return Err(DecodeError::TruncatedStructure);
            }
            let idx = input.get_u32() as usize;
            atoms
                .get(idx)
                .cloned()
                .map(Content::Live)
                .ok_or(DecodeError::DanglingAtomRef)
        }
        STATE_TOMBSTONE => Ok(Content::Tombstone),
        STATE_GHOST => Ok(Content::Ghost),
        _ => Err(DecodeError::BadTag),
    }
}

/// Reads one major-node record and installs its slots at `pos`.
fn decode_major<A: Atom, D: DisCodec>(
    input: &mut Bytes,
    atoms: &[A],
    tree: &mut Tree<A, D>,
    pos: &PosId<D>,
) -> Result<(), DecodeError> {
    if !input.has_remaining() {
        return Err(DecodeError::TruncatedStructure);
    }
    if input.get_u8() != NODE_TAG {
        return Err(DecodeError::BadTag);
    }
    let plain = decode_content(input, atoms)?;
    if !matches!(plain, Content::Absent) {
        tree.restore_slot(pos, plain);
    }
    if !input.has_remaining() {
        return Err(DecodeError::TruncatedStructure);
    }
    let mini_count = input.get_u8();
    for _ in 0..mini_count {
        let dis = D::decode_dis(input).ok_or(DecodeError::TruncatedStructure)?;
        let content = decode_content(input, atoms)?;
        let mini_id = mini_pos(pos, &dis).ok_or(DecodeError::BadTag)?;
        tree.restore_slot(&mini_id, content);
    }
    Ok(())
}

/// The identifier of mini-node `dis` at the major node `pos` (whose own last
/// element is plain). The root major node cannot hold minis.
fn mini_pos<D: Disambiguator>(pos: &PosId<D>, dis: &D) -> Option<PosId<D>> {
    let side = pos.last_side()?;
    Some(pos.parent()?.child_mini(side, dis.clone()))
}

fn encode_overflow_record<A: Atom, D: DisCodec>(
    id: &PosId<D>,
    content: &Content<A>,
    overflow: &mut BytesMut,
    atoms: &mut Vec<A>,
) {
    overflow.put_u16(id.depth() as u16);
    id.visit_elems_from(0, |side, dis| {
        let mut flags = 0u8;
        if side == Side::Right {
            flags |= 0x01;
        }
        if dis.is_some() {
            flags |= 0x02;
        }
        overflow.put_u8(flags);
        if let Some(d) = dis {
            d.encode_dis(overflow);
        }
    });
    encode_content(content, overflow, atoms);
}

fn decode_overflow_record<A: Atom, D: DisCodec>(
    input: &mut Bytes,
    atoms: &[A],
) -> Result<(PosId<D>, Content<A>), DecodeError> {
    if input.remaining() < 2 {
        return Err(DecodeError::TruncatedStructure);
    }
    let len = input.get_u16() as usize;
    let mut elems = Vec::with_capacity(len);
    for _ in 0..len {
        if !input.has_remaining() {
            return Err(DecodeError::TruncatedStructure);
        }
        let flags = input.get_u8();
        let side = if flags & 0x01 == 0 {
            Side::Left
        } else {
            Side::Right
        };
        let dis = if flags & 0x02 != 0 {
            Some(D::decode_dis(input).ok_or(DecodeError::TruncatedStructure)?)
        } else {
            None
        };
        elems.push(PathElem { side, dis });
    }
    let content = decode_content(input, atoms)?;
    Ok((PosId::from_elems(elems), content))
}

#[cfg(test)]
mod tests {
    use super::*;
    use treedoc_core::{SiteId, Treedoc, TreedocConfig};

    fn site(n: u64) -> SiteId {
        SiteId::from_u64(n)
    }

    fn slots<A: Atom, D: Disambiguator>(tree: &Tree<A, D>) -> Vec<(Vec<u8>, bool)> {
        let mut out = Vec::new();
        tree.for_each_slot(|s| {
            out.push((
                s.bits.iter().map(|b| b.bit()).collect(),
                s.content.is_live(),
            ));
        });
        out
    }

    #[test]
    fn round_trip_flattened_document() {
        let atoms: Vec<String> = (0..40).map(|i| format!("line {i}")).collect();
        let doc: Treedoc<String, Sdis> = Treedoc::from_atoms(site(1), &atoms);
        let image = DiskImage::encode(&doc.tree());
        let back: Tree<String, Sdis> = image.decode().unwrap();
        assert_eq!(back.to_vec(), atoms);
        assert_eq!(slots(&back), slots(&doc.tree()));
    }

    #[test]
    fn round_trip_edited_document_with_tombstones() {
        let mut doc: Treedoc<String, Sdis> = Treedoc::new(site(1));
        for i in 0..30 {
            doc.local_insert(i, format!("l{i}")).unwrap();
        }
        for _ in 0..10 {
            doc.local_delete(5).unwrap();
        }
        let image = DiskImage::encode(&doc.tree());
        let back: Tree<String, Sdis> = image.decode().unwrap();
        assert_eq!(back.to_vec(), doc.to_vec());
        assert_eq!(
            back.node_count(),
            doc.node_count(),
            "tombstones survive the round trip"
        );
        assert_eq!(slots(&back), slots(&doc.tree()));
    }

    #[test]
    fn round_trip_udis_document() {
        let mut doc: Treedoc<String, Udis> = Treedoc::new(site(7));
        for i in 0..20 {
            doc.local_insert(i, format!("u{i}")).unwrap();
        }
        doc.local_delete(3).unwrap();
        let image = DiskImage::encode(&doc.tree());
        let back: Tree<String, Udis> = image.decode().unwrap();
        assert_eq!(back.to_vec(), doc.to_vec());
        assert_eq!(slots(&back), slots(&doc.tree()));
    }

    #[test]
    fn round_trip_document_with_mini_siblings() {
        // Two replicas insert concurrently at the same place, then one more
        // atom lands between the resulting mini-siblings: its subtree must go
        // through the overflow section and still round-trip.
        let mut a: Treedoc<String, Sdis> = Treedoc::new(site(1));
        let mut b: Treedoc<String, Sdis> = Treedoc::new(site(2));
        let seed: Vec<_> = (0..4)
            .map(|i| a.local_insert(i, format!("s{i}")).unwrap())
            .collect();
        for op in &seed {
            b.apply(op).unwrap();
        }
        let oa = a.local_insert(2, "from-a".to_string()).unwrap();
        let ob = b.local_insert(2, "from-b".to_string()).unwrap();
        a.apply(&ob).unwrap();
        b.apply(&oa).unwrap();
        // Insert between the two concurrent atoms (they are adjacent now).
        let between = a.local_insert(3, "between".to_string()).unwrap();
        b.apply(&between).unwrap();
        assert_eq!(a.to_vec(), b.to_vec());

        let image = DiskImage::encode(&a.tree());
        let back: Tree<String, Sdis> = image.decode().unwrap();
        assert_eq!(back.to_vec(), a.to_vec());
        assert_eq!(back.node_count(), a.node_count());
    }

    #[test]
    fn flattened_storage_is_small() {
        let atoms: Vec<String> = (0..200)
            .map(|i| format!("some document line number {i}"))
            .collect();
        let doc: Treedoc<String, Sdis> = Treedoc::from_atoms(site(1), &atoms);
        let image = DiskImage::encode(&doc.tree());
        // A flattened document stores no disambiguators: a few bytes per node
        // (tag + state + atom ref) plus compressed markers.
        assert!(
            image.structure_bytes() < 10 * atoms.len(),
            "structure {} bytes for {} atoms",
            image.structure_bytes(),
            atoms.len()
        );
        assert!(image.overhead_ratio() < 0.5);
        assert_eq!(
            image.atom_bytes(),
            atoms.iter().map(|a| a.len()).sum::<usize>()
        );
        assert_eq!(image.stats.overflow_slots, 0);
    }

    #[test]
    fn unbalanced_document_costs_more_than_flattened() {
        let mut appended: Treedoc<String, Sdis> = Treedoc::new(site(1));
        for i in 0..100 {
            appended.local_insert(i, format!("line {i}")).unwrap();
        }
        let unbalanced = DiskImage::encode(&appended.tree());
        appended.flatten_all().unwrap();
        let flattened = DiskImage::encode(&appended.tree());
        assert!(
            flattened.structure_bytes() < unbalanced.structure_bytes(),
            "flattening must shrink the on-disk structure ({} vs {})",
            flattened.structure_bytes(),
            unbalanced.structure_bytes()
        );
    }

    #[test]
    fn balanced_document_round_trips() {
        let mut doc: Treedoc<String, Sdis> =
            Treedoc::with_config(site(2), TreedocConfig::balanced());
        for i in 0..64 {
            doc.local_insert(i, format!("b{i}")).unwrap();
        }
        let image = DiskImage::encode(&doc.tree());
        let back: Tree<String, Sdis> = image.decode().unwrap();
        assert_eq!(back.to_vec(), doc.to_vec());
    }

    #[test]
    fn corrupt_images_are_rejected_with_a_diagnosis() {
        let doc: Treedoc<String, Sdis> = Treedoc::from_atoms(site(1), &["a".to_string()]);
        let mut image = DiskImage::encode(&doc.tree());
        image.structure.truncate(1);
        assert!(matches!(
            image.decode::<Sdis>(),
            Err(DecodeError::BadRleRun | DecodeError::TruncatedStructure)
        ));
        // An empty structure is also rejected rather than panicking.
        image.structure.clear();
        assert_eq!(
            image.decode::<Sdis>().unwrap_err(),
            DecodeError::TruncatedStructure
        );
    }

    #[test]
    fn dangling_atom_references_are_diagnosed() {
        let doc: Treedoc<String, Sdis> =
            Treedoc::from_atoms(site(1), &["a".to_string(), "b".to_string()]);
        let mut image = DiskImage::encode(&doc.tree());
        // Drop the atom table: every live slot now points past the end.
        image.atoms.clear();
        assert_eq!(
            image.decode::<Sdis>().unwrap_err(),
            DecodeError::DanglingAtomRef
        );
    }

    #[test]
    fn unknown_state_bytes_are_diagnosed() {
        let doc: Treedoc<String, Sdis> = Treedoc::from_atoms(site(1), &["a".to_string()]);
        let mut image = DiskImage::encode(&doc.tree());
        // Decompress, corrupt the root record's tag, recompress.
        let mut raw = rle_decompress(&image.structure).unwrap();
        raw[4] = 0x7E; // the root NODE_TAG slot
        image.structure = rle_compress(&raw);
        assert_eq!(image.decode::<Sdis>().unwrap_err(), DecodeError::BadTag);
    }

    #[test]
    fn empty_document_round_trips() {
        let doc: Treedoc<String, Sdis> = Treedoc::new(site(1));
        let image = DiskImage::encode(&doc.tree());
        let back: Tree<String, Sdis> = image.decode().unwrap();
        assert!(back.is_empty());
    }
}
