//! Run-length encoding of marker runs.
//!
//! The breadth-first array contains long runs of "no node here" markers
//! (positions of the complete binary tree that hold no Treedoc node); the
//! paper compresses those runs with run-length encoding. The scheme used
//! here encodes a byte stream as a sequence of records:
//!
//! * `0x00, varint(n)` — a run of `n` marker bytes (`0xFF`),
//! * `0x01, varint(len), bytes…` — a literal chunk.
//!
//! Varints are LEB128 (7 bits per byte, high bit = continuation).

/// The marker byte standing for "no node at this position".
pub const MARKER: u8 = 0xFF;

const RUN_TAG: u8 = 0x00;
const LITERAL_TAG: u8 = 0x01;

/// Appends a LEB128 varint.
fn push_varint(out: &mut Vec<u8>, mut value: u64) {
    loop {
        let byte = (value & 0x7F) as u8;
        value >>= 7;
        if value == 0 {
            out.push(byte);
            break;
        }
        out.push(byte | 0x80);
    }
}

/// Reads a LEB128 varint, advancing `pos`. Returns `None` on truncated input.
fn read_varint(data: &[u8], pos: &mut usize) -> Option<u64> {
    let mut value = 0u64;
    let mut shift = 0u32;
    loop {
        let byte = *data.get(*pos)?;
        *pos += 1;
        value |= u64::from(byte & 0x7F) << shift;
        if byte & 0x80 == 0 {
            return Some(value);
        }
        shift += 7;
        if shift >= 64 {
            return None;
        }
    }
}

/// Compresses `data`, replacing runs of [`MARKER`] bytes by run records.
pub fn rle_compress(data: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(data.len() / 4 + 16);
    let mut i = 0;
    while i < data.len() {
        if data[i] == MARKER {
            let start = i;
            while i < data.len() && data[i] == MARKER {
                i += 1;
            }
            out.push(RUN_TAG);
            push_varint(&mut out, (i - start) as u64);
        } else {
            let start = i;
            while i < data.len() && data[i] != MARKER {
                i += 1;
            }
            out.push(LITERAL_TAG);
            push_varint(&mut out, (i - start) as u64);
            out.extend_from_slice(&data[start..i]);
        }
    }
    out
}

/// Decompresses a stream produced by [`rle_compress`]. Returns `None` if the
/// stream is malformed or truncated.
pub fn rle_decompress(data: &[u8]) -> Option<Vec<u8>> {
    let mut out = Vec::with_capacity(data.len() * 2);
    let mut pos = 0;
    while pos < data.len() {
        let tag = data[pos];
        pos += 1;
        match tag {
            RUN_TAG => {
                let n = read_varint(data, &mut pos)? as usize;
                out.resize(out.len() + n, MARKER);
            }
            LITERAL_TAG => {
                let n = read_varint(data, &mut pos)? as usize;
                if pos + n > data.len() {
                    return None;
                }
                out.extend_from_slice(&data[pos..pos + n]);
                pos += n;
            }
            _ => return None,
        }
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_simple() {
        let data = vec![1, 2, 3, MARKER, MARKER, MARKER, 4, MARKER, 5];
        let packed = rle_compress(&data);
        assert_eq!(rle_decompress(&packed).unwrap(), data);
    }

    #[test]
    fn long_marker_runs_shrink_dramatically() {
        let mut data = vec![7u8; 10];
        data.extend(std::iter::repeat_n(MARKER, 10_000));
        data.extend([9u8; 5]);
        let packed = rle_compress(&data);
        assert!(
            packed.len() < 40,
            "10k markers must pack into a few bytes, got {}",
            packed.len()
        );
        assert_eq!(rle_decompress(&packed).unwrap(), data);
    }

    #[test]
    fn empty_input() {
        assert!(rle_compress(&[]).is_empty());
        assert_eq!(rle_decompress(&[]).unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn all_markers_and_no_markers() {
        let markers = vec![MARKER; 300];
        assert_eq!(rle_decompress(&rle_compress(&markers)).unwrap(), markers);
        let plain: Vec<u8> = (0u8..200).collect();
        assert_eq!(rle_decompress(&rle_compress(&plain)).unwrap(), plain);
    }

    #[test]
    fn malformed_input_is_rejected() {
        assert!(rle_decompress(&[9]).is_none(), "unknown tag");
        assert!(
            rle_decompress(&[LITERAL_TAG, 5, 1, 2]).is_none(),
            "truncated literal"
        );
        assert!(rle_decompress(&[RUN_TAG]).is_none(), "missing run length");
        assert!(
            rle_decompress(&[RUN_TAG, 0x80]).is_none(),
            "truncated varint"
        );
    }

    #[test]
    fn varint_boundaries() {
        for n in [0u64, 1, 127, 128, 300, 16_383, 16_384, u32::MAX as u64] {
            let mut buf = Vec::new();
            push_varint(&mut buf, n);
            let mut pos = 0;
            assert_eq!(read_varint(&buf, &mut pos), Some(n));
            assert_eq!(pos, buf.len());
        }
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// Compression round-trips on arbitrary byte strings (markers
            /// included, since 0xFF can occur in payload bytes too).
            #[test]
            fn round_trips(data in proptest::collection::vec(any::<u8>(), 0..2000)) {
                let packed = rle_compress(&data);
                prop_assert_eq!(rle_decompress(&packed).unwrap(), data);
            }

            /// Marker-heavy inputs never expand by more than a small constant
            /// factor and shrink when runs dominate.
            #[test]
            fn marker_runs_compress(runs in proptest::collection::vec((any::<u8>(), 1usize..200), 1..20)) {
                let mut data = Vec::new();
                for (byte, len) in &runs {
                    if byte % 2 == 0 {
                        data.extend(std::iter::repeat_n(MARKER, *len));
                    } else {
                        data.extend(std::iter::repeat_n(*byte, *len));
                    }
                }
                let packed = rle_compress(&data);
                prop_assert_eq!(rle_decompress(&packed).unwrap(), data);
            }

            /// Round-trips hold when the input is assembled from chunks whose
            /// boundaries fall inside, at the start and at the end of MARKER
            /// runs — the layout the heap-array writer produces when a run of
            /// empty positions straddles its fixed-size chunks.
            #[test]
            fn marker_runs_at_chunk_boundaries(
                chunks in proptest::collection::vec(
                    (proptest::collection::vec(any::<u8>(), 0..32), 0usize..48),
                    1..12,
                ),
            ) {
                let mut data = Vec::new();
                for (literal, run_len) in &chunks {
                    // Each chunk ends in a marker run, so consecutive chunks
                    // merge runs across the boundary; literals may themselves
                    // contain 0xFF, splitting and re-joining runs arbitrarily.
                    data.extend_from_slice(literal);
                    data.extend(std::iter::repeat_n(MARKER, *run_len));
                }
                let packed = rle_compress(&data);
                prop_assert_eq!(rle_decompress(&packed).unwrap(), data);
            }
        }
    }
}
