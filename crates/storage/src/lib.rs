//! # treedoc-storage
//!
//! The on-disk format described in §5.2 of the Treedoc paper, plus the
//! durability layer built on top of it.
//!
//! > "In order to store a Treedoc on disk, we use a modified version of the
//! > well-known technique that represents a binary heap of depth *i* as an
//! > array of size 2^*i*. Nodes are stored from top to bottom, line by line,
//! > and nodes on the same line are stored left to right. Each array entry
//! > contains a disambiguator and a reference to the corresponding atom
//! > (stored in a separate file). For every node that has only a single
//! > descendant or no descendants, we fill the places with a special marker.
//! > To save space, we compress sequences of markers with run-length
//! > encoding."
//!
//! [`DiskImage::encode`] serialises a [`Tree`](treedoc_core::Tree) into
//! exactly that layout: a breadth-first *structure file* (entries = optional
//! disambiguator + atom reference, holes = run-length-encoded markers) plus a
//! separate *atom file*. The size of the structure file is the "On-disk
//! overhead" column of Table 1. [`DiskImage::decode`] reads the image back,
//! diagnosing corrupt images with a typed [`DecodeError`].
//!
//! Mini-node children live in their own namespaces and therefore do not fit
//! the plain positional array (the paper notes the case "does not occur in
//! our tests" because SVN and Wikipedia serialise their edits); they are
//! stored in an explicit overflow section so that round-tripping is always
//! lossless.
//!
//! ## Durability
//!
//! The paper's encoding says how a document looks on disk; the modules below
//! make a *replica* actually durable, so a crash loses neither the document
//! nor the replication state (vector clock, unacked send log) the
//! at-least-once and flatten-commitment machinery depends on:
//!
//! * [`backend`] — the pluggable [`StorageBackend`] blob store (in-memory
//!   and real-file implementations);
//! * [`wal`] — an append-only, length-prefixed, CRC-checked record log;
//!   torn or corrupt tails are detected and cleanly ignored on replay;
//! * [`snapshot`] — checkpoints as named sections behind a manifest of
//!   per-section content hashes with a merkle-style root, verified on load;
//! * [`store`] — [`DocStore`], which owns recovery (newest valid snapshot +
//!   WAL tail) and compaction (checkpoint on flatten commit, truncating the
//!   pre-epoch WAL — the committed epoch of §4.2.1 is the natural
//!   log-compaction point).
//!
//! ## Multi-document hosting
//!
//! A hosting node keeps many documents over one backend. Two pieces make
//! that shape first-class:
//!
//! * [`backend::NamespacedBackend`] — a per-document blob-namespace view
//!   over a shared, counting [`backend::SharedBackend`] (with
//!   [`backend::list_namespaces`] to rediscover hosted documents after a
//!   restart, and [`FileBackend::open_shard`] for the on-disk shard
//!   directory layout);
//! * [`group`] — the cross-document group-commit WAL: every document of a
//!   shard logs into one shared append queue, a flush writes the whole
//!   queue with a single backend segment append, and per-document replay
//!   cursors (durable in snapshot names) keep recovery isolated per
//!   document. [`DocStore::with_group_wal`] opens a store in that mode;
//!   its `append`/`checkpoint`/`recover` API is unchanged, so the
//!   replication layer's journaling works identically over either sink.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backend;
pub mod checksum;
pub mod group;
pub mod heap;
pub mod rle;
pub mod snapshot;
pub mod store;
pub mod wal;

pub use backend::{
    list_namespaces, reject_path_separators, FileBackend, MemoryBackend, NamespacedBackend,
    SharedBackend, SharedStats, StorageBackend, StorageError, NAMESPACE_SEPARATOR,
};
pub use checksum::{combine_hashes, content_hash64, crc32};
pub use group::{GroupReplay, GroupWal, GroupWalStats};
pub use heap::{DecodeError, DisCodec, DiskImage, EncodeStats};
pub use rle::{rle_compress, rle_decompress};
pub use snapshot::{Snapshot, SnapshotError};
pub use store::{DocStore, Recovered, RecoveryStats, StoreStats};
pub use wal::{TailFault, WalEntry, WalReplay};
