//! # treedoc-storage
//!
//! The on-disk format described in §5.2 of the Treedoc paper:
//!
//! > "In order to store a Treedoc on disk, we use a modified version of the
//! > well-known technique that represents a binary heap of depth *i* as an
//! > array of size 2^*i*. Nodes are stored from top to bottom, line by line,
//! > and nodes on the same line are stored left to right. Each array entry
//! > contains a disambiguator and a reference to the corresponding atom
//! > (stored in a separate file). For every node that has only a single
//! > descendant or no descendants, we fill the places with a special marker.
//! > To save space, we compress sequences of markers with run-length
//! > encoding."
//!
//! [`DiskImage::encode`] serialises a [`Tree`](treedoc_core::Tree) into
//! exactly that layout: a breadth-first *structure file* (entries = optional
//! disambiguator + atom reference, holes = run-length-encoded markers) plus a
//! separate *atom file*. The size of the structure file is the "On-disk
//! overhead" column of Table 1. [`DiskImage::decode`] reads the image back.
//!
//! Mini-node children live in their own namespaces and therefore do not fit
//! the plain positional array (the paper notes the case "does not occur in
//! our tests" because SVN and Wikipedia serialise their edits); they are
//! stored in an explicit overflow section so that round-tripping is always
//! lossless.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod heap;
pub mod rle;

pub use heap::{DisCodec, DiskImage, EncodeStats};
pub use rle::{rle_compress, rle_decompress};
