//! Checksums used by the durability layer.
//!
//! The implementations live in [`treedoc_core::hash`] — the single content
//! hashing layer shared by the run store's incremental merkle digest, the
//! snapshot manifest and the sync protocol. This module re-exports the three
//! functions the durability layer consumes, for two failure models:
//!
//! * [`crc32`] — CRC-32 (IEEE 802.3 polynomial), guarding every WAL record
//!   against torn writes and bit rot. A mismatch on replay marks the end of
//!   the valid log prefix.
//! * [`content_hash64`] — FNV-1a 64-bit content hash, used by the snapshot
//!   manifest: each section is hashed, and a root hash over the section
//!   hashes ([`combine_hashes`], merkle-style) pins the manifest itself, so
//!   a snapshot that passes verification is known byte-for-byte intact.

pub use treedoc_core::hash::{combine_hashes, content_hash64, crc32};

#[cfg(test)]
mod tests {
    use super::*;

    // The canonical vectors are pinned in `treedoc_core::hash`; these keep a
    // local tripwire so a re-export slip is caught at the storage boundary.
    #[test]
    fn reexports_keep_the_pinned_vectors() {
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(content_hash64(b"a"), 0xAF63_DC4C_8601_EC8C);
        let a = content_hash64(b"left");
        let b = content_hash64(b"right");
        assert_ne!(combine_hashes([a, b]), combine_hashes([b, a]));
    }
}
