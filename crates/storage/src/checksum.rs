//! Checksums used by the durability layer.
//!
//! Two flavours, for two failure models:
//!
//! * [`crc32`] — CRC-32 (IEEE 802.3 polynomial), guarding every WAL record
//!   against torn writes and bit rot. A mismatch on replay marks the end of
//!   the valid log prefix.
//! * [`content_hash64`] — FNV-1a 64-bit content hash, used by the snapshot
//!   manifest: each section is hashed, and a root hash over the section
//!   hashes (merkle-style) pins the manifest itself, so a snapshot that
//!   passes verification is known byte-for-byte intact.

/// The CRC-32 lookup table for the reflected IEEE polynomial `0xEDB88320`,
/// built at compile time.
const CRC32_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// CRC-32 (IEEE) of `data`.
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &byte in data {
        let idx = ((crc ^ byte as u32) & 0xFF) as usize;
        crc = (crc >> 8) ^ CRC32_TABLE[idx];
    }
    !crc
}

/// FNV-1a 64-bit offset basis.
const FNV_OFFSET: u64 = 0xCBF2_9CE4_8422_2325;
/// FNV-1a 64-bit prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;

/// FNV-1a 64-bit content hash of `data`.
pub fn content_hash64(data: &[u8]) -> u64 {
    let mut hash = FNV_OFFSET;
    for &byte in data {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

/// Combines an ordered list of child hashes into a parent hash (the
/// merkle-style root over a snapshot's section hashes).
pub fn combine_hashes(children: impl IntoIterator<Item = u64>) -> u64 {
    let mut hash = FNV_OFFSET;
    for child in children {
        for byte in child.to_le_bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(FNV_PRIME);
        }
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // The classic check value of CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn crc32_detects_single_bit_flips() {
        let data = b"the quick brown fox jumps over the lazy dog".to_vec();
        let reference = crc32(&data);
        for i in 0..data.len() {
            for bit in 0..8 {
                let mut flipped = data.clone();
                flipped[i] ^= 1 << bit;
                assert_ne!(crc32(&flipped), reference, "flip at byte {i} bit {bit}");
            }
        }
    }

    #[test]
    fn fnv_matches_known_vectors() {
        assert_eq!(content_hash64(b""), FNV_OFFSET);
        assert_eq!(content_hash64(b"a"), 0xAF63_DC4C_8601_EC8C);
    }

    #[test]
    fn combine_is_order_sensitive() {
        let a = content_hash64(b"left");
        let b = content_hash64(b"right");
        assert_ne!(combine_hashes([a, b]), combine_hashes([b, a]));
        assert_eq!(combine_hashes([a, b]), combine_hashes([a, b]));
    }
}
