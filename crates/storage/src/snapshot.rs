//! Epoch snapshots: named sections behind a hash-verified manifest.
//!
//! A snapshot is the durable form of a whole replica at one instant — the
//! §5.2 disk image of the tree plus whatever the replication layer needs to
//! resume (vector clock, flatten epoch, acknowledgement table, send log).
//! The storage layer does not interpret those sections; it stores each as a
//! named byte blob and guards the whole with a manifest:
//!
//! ```text
//! magic "TDOCSNP1"
//! section count: u32
//! per section:   name len u16 | name | body len u64 | content hash u64
//! root hash:     u64   (hash over the section hashes, merkle-style)
//! section bodies, in manifest order
//! ```
//!
//! (integers little-endian). On load every section's content hash and the
//! root hash are re-computed and verified, so recovery can trust a snapshot
//! completely or reject it completely — a rejected snapshot makes
//! [`DocStore`](crate::store::DocStore) fall back to the previous one.

use std::fmt;

use crate::checksum::{combine_hashes, content_hash64};

/// Magic bytes opening a snapshot blob.
const MAGIC: &[u8; 8] = b"TDOCSNP1";

/// Why a snapshot blob was rejected on load.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// The blob ends before the manifest or a section body does.
    Truncated,
    /// The blob does not start with the snapshot magic.
    BadMagic,
    /// A section's body does not match its manifest hash.
    SectionHash(String),
    /// The manifest's own root hash does not match the section hashes.
    RootHash,
    /// A section the reader requires is missing.
    MissingSection(&'static str),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Truncated => write!(f, "snapshot truncated"),
            SnapshotError::BadMagic => write!(f, "not a snapshot (bad magic)"),
            SnapshotError::SectionHash(name) => {
                write!(f, "snapshot section {name:?} failed its content hash")
            }
            SnapshotError::RootHash => write!(f, "snapshot manifest failed its root hash"),
            SnapshotError::MissingSection(name) => {
                write!(f, "snapshot is missing required section {name:?}")
            }
        }
    }
}

impl std::error::Error for SnapshotError {}

/// A snapshot under construction or freshly verified: ordered named
/// sections.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Snapshot {
    sections: Vec<(String, Vec<u8>)>,
}

impl Snapshot {
    /// An empty snapshot.
    pub fn new() -> Self {
        Snapshot::default()
    }

    /// Adds (or replaces) a section.
    pub fn push_section(&mut self, name: impl Into<String>, body: Vec<u8>) {
        let name = name.into();
        if let Some(existing) = self.sections.iter_mut().find(|(n, _)| *n == name) {
            existing.1 = body;
        } else {
            self.sections.push((name, body));
        }
    }

    /// The body of a section, `None` when absent.
    pub fn section(&self, name: &str) -> Option<&[u8]> {
        self.sections
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, b)| b.as_slice())
    }

    /// The body of a section the reader cannot proceed without.
    pub fn require(&self, name: &'static str) -> Result<&[u8], SnapshotError> {
        self.section(name)
            .ok_or(SnapshotError::MissingSection(name))
    }

    /// Section names, in manifest order.
    pub fn section_names(&self) -> impl Iterator<Item = &str> {
        self.sections.iter().map(|(n, _)| n.as_str())
    }

    /// Total body bytes across sections (manifest overhead excluded).
    pub fn body_bytes(&self) -> usize {
        self.sections.iter().map(|(_, b)| b.len()).sum()
    }

    /// The merkle-style root hash over the current sections.
    pub fn root_hash(&self) -> u64 {
        combine_hashes(self.sections.iter().map(|(name, body)| {
            combine_hashes([content_hash64(name.as_bytes()), content_hash64(body)])
        }))
    }

    /// Serialises the snapshot: manifest (with per-section content hashes and
    /// the root hash) followed by the section bodies.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64 + self.body_bytes());
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&(self.sections.len() as u32).to_le_bytes());
        for (name, body) in &self.sections {
            out.extend_from_slice(&(name.len() as u16).to_le_bytes());
            out.extend_from_slice(name.as_bytes());
            out.extend_from_slice(&(body.len() as u64).to_le_bytes());
            out.extend_from_slice(&content_hash64(body).to_le_bytes());
        }
        out.extend_from_slice(&self.root_hash().to_le_bytes());
        for (_, body) in &self.sections {
            out.extend_from_slice(body);
        }
        out
    }

    /// Parses and **verifies** a snapshot blob: every section hash and the
    /// root hash must match, otherwise the whole snapshot is rejected.
    pub fn decode(bytes: &[u8]) -> Result<Self, SnapshotError> {
        let mut pos = 0usize;
        let take = |pos: &mut usize, n: usize| -> Result<&[u8], SnapshotError> {
            if bytes.len() - *pos < n {
                return Err(SnapshotError::Truncated);
            }
            let slice = &bytes[*pos..*pos + n];
            *pos += n;
            Ok(slice)
        };
        if take(&mut pos, MAGIC.len())? != MAGIC {
            return Err(SnapshotError::BadMagic);
        }
        let count = u32::from_le_bytes(take(&mut pos, 4)?.try_into().expect("4 bytes")) as usize;
        let mut manifest: Vec<(String, usize, u64)> = Vec::with_capacity(count.min(1024));
        for _ in 0..count {
            let name_len =
                u16::from_le_bytes(take(&mut pos, 2)?.try_into().expect("2 bytes")) as usize;
            let name = String::from_utf8(take(&mut pos, name_len)?.to_vec())
                .map_err(|_| SnapshotError::BadMagic)?;
            let body_len =
                u64::from_le_bytes(take(&mut pos, 8)?.try_into().expect("8 bytes")) as usize;
            let hash = u64::from_le_bytes(take(&mut pos, 8)?.try_into().expect("8 bytes"));
            manifest.push((name, body_len, hash));
        }
        let root = u64::from_le_bytes(take(&mut pos, 8)?.try_into().expect("8 bytes"));
        let mut snapshot = Snapshot::new();
        for (name, body_len, hash) in manifest {
            let body = take(&mut pos, body_len)?.to_vec();
            if content_hash64(&body) != hash {
                return Err(SnapshotError::SectionHash(name));
            }
            snapshot.sections.push((name, body));
        }
        if snapshot.root_hash() != root {
            return Err(SnapshotError::RootHash);
        }
        Ok(snapshot)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Snapshot {
        let mut s = Snapshot::new();
        s.push_section("tree.structure", vec![1, 2, 3, 4, 5]);
        s.push_section("tree.atoms", b"[\"a\",\"b\"]".to_vec());
        s.push_section("replica", b"{\"epoch\":2}".to_vec());
        s
    }

    #[test]
    fn round_trips() {
        let snapshot = sample();
        let decoded = Snapshot::decode(&snapshot.encode()).unwrap();
        assert_eq!(decoded, snapshot);
        assert_eq!(decoded.section("tree.atoms").unwrap(), b"[\"a\",\"b\"]");
        assert_eq!(decoded.root_hash(), snapshot.root_hash());
    }

    #[test]
    fn push_replaces_existing_sections() {
        let mut s = sample();
        s.push_section("replica", b"{}".to_vec());
        assert_eq!(s.section_names().count(), 3);
        assert_eq!(s.section("replica").unwrap(), b"{}");
    }

    #[test]
    fn any_flipped_body_byte_is_caught() {
        let encoded = sample().encode();
        let bodies_start = encoded.len() - sample().body_bytes();
        for i in bodies_start..encoded.len() {
            let mut bad = encoded.clone();
            bad[i] ^= 0x01;
            match Snapshot::decode(&bad) {
                Err(SnapshotError::SectionHash(_)) => {}
                other => panic!("flip at {i}: expected SectionHash, got {other:?}"),
            }
        }
    }

    #[test]
    fn tampered_manifest_hash_is_caught_by_the_root() {
        let snapshot = sample();
        let encoded = snapshot.encode();
        // Forge a section hash *and* the matching body so the per-section
        // check passes — the root hash must still catch the substitution.
        let mut forged = Snapshot::new();
        for name in snapshot.section_names() {
            forged.push_section(name, snapshot.section(name).unwrap().to_vec());
        }
        forged.push_section("tree.atoms", b"[\"evil\"]".to_vec());
        let mut bad = forged.encode();
        // Splice the original root hash back in, simulating an attacker (or a
        // bug) that rewrote a section consistently but not the root.
        let root_pos = bad.len() - forged.body_bytes() - 8;
        let original_root_pos = encoded.len() - snapshot.body_bytes() - 8;
        bad[root_pos..root_pos + 8]
            .copy_from_slice(&encoded[original_root_pos..original_root_pos + 8]);
        assert_eq!(Snapshot::decode(&bad), Err(SnapshotError::RootHash));
    }

    #[test]
    fn truncations_are_rejected() {
        let encoded = sample().encode();
        for cut in 0..encoded.len() {
            assert!(
                Snapshot::decode(&encoded[..cut]).is_err(),
                "cut at {cut} must not decode"
            );
        }
    }

    #[test]
    fn wrong_magic_is_rejected() {
        let mut encoded = sample().encode();
        encoded[0] = b'X';
        assert_eq!(Snapshot::decode(&encoded), Err(SnapshotError::BadMagic));
    }

    #[test]
    fn missing_required_section_is_reported() {
        let s = sample();
        assert!(s.require("tree.structure").is_ok());
        assert_eq!(
            s.require("nope"),
            Err(SnapshotError::MissingSection("nope"))
        );
    }

    #[test]
    fn empty_snapshot_round_trips() {
        let s = Snapshot::new();
        assert_eq!(Snapshot::decode(&s.encode()).unwrap(), s);
    }
}
