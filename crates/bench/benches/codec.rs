//! Wire codec throughput: encode/decode round trips of the envelopes the
//! replication layer actually ships, per-op and batched, so a regression in
//! the hot serialisation path (or an accidental quadratic in the delta
//! encoder) shows up as a bench regression.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use treedoc_replication::{decode_envelope, encode_envelope, Envelope, OpBatch};

use bench::typing_session_entries;

type Op = treedoc_core::Op<String, treedoc_core::Sdis>;

fn bench_encode(c: &mut Criterion) {
    let entries = typing_session_entries(256);
    let per_op: Vec<Envelope<Op>> = entries
        .iter()
        .map(|(epoch, msg)| Envelope::Op {
            epoch: *epoch,
            msg: msg.clone(),
        })
        .collect();
    let batch = Envelope::OpBatch(OpBatch {
        entries: entries.clone(),
    });

    let mut group = c.benchmark_group("codec_encode");
    group.throughput(Throughput::Elements(entries.len() as u64));
    group.bench_function("per_op_256", |b| {
        b.iter(|| {
            let total: usize = per_op.iter().map(|env| encode_envelope(env).len()).sum();
            total
        });
    });
    group.bench_function("batch_256", |b| {
        b.iter(|| encode_envelope(&batch).len());
    });
    group.finish();
}

fn bench_decode(c: &mut Criterion) {
    let entries = typing_session_entries(256);
    let per_op: Vec<Vec<u8>> = entries
        .iter()
        .map(|(epoch, msg)| {
            encode_envelope(&Envelope::Op {
                epoch: *epoch,
                msg: msg.clone(),
            })
        })
        .collect();
    let batch = encode_envelope(&Envelope::OpBatch(OpBatch { entries }));

    let mut group = c.benchmark_group("codec_decode");
    group.throughput(Throughput::Elements(per_op.len() as u64));
    group.bench_function("per_op_256", |b| {
        b.iter(|| {
            for bytes in &per_op {
                let env: Envelope<Op> = decode_envelope(bytes).expect("round trip");
                assert!(matches!(env, Envelope::Op { .. }));
            }
        });
    });
    group.bench_function("batch_256", |b| {
        b.iter(|| {
            let env: Envelope<Op> = decode_envelope(&batch).expect("round trip");
            match env {
                Envelope::OpBatch(b) => assert_eq!(b.len(), 256),
                other => panic!("expected a batch, got {other:?}"),
            }
        });
    });
    group.finish();
}

criterion_group!(benches, bench_encode, bench_decode);
criterion_main!(benches);
