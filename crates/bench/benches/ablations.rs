//! Ablation benchmarks for the design choices called out in DESIGN.md:
//! balancing on/off, disambiguator design, flatten commitment protocol cost
//! and the multi-site simulation throughput.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use treedoc_commit::{run_three_phase, run_two_phase, FlattenProposal, TreedocParticipant};
use treedoc_core::{Sdis, SiteId, Treedoc, TreedocConfig, Udis};
use treedoc_sim::{run, Scenario};

fn bench_balancing_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_balancing");
    group.sample_size(15);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_millis(500));
    for (label, balancing) in [("unbalanced", false), ("balanced", true)] {
        group.bench_function(label, |b| {
            b.iter_batched(
                || {
                    let config = if balancing {
                        TreedocConfig::balanced()
                    } else {
                        TreedocConfig::default()
                    };
                    Treedoc::<String, Sdis>::with_config(SiteId::from_u64(1), config)
                },
                |mut doc| {
                    for k in 0..512 {
                        doc.local_insert(k, format!("line {k}")).unwrap();
                    }
                    doc
                },
                BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

fn bench_disambiguator_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_disambiguator");
    group.sample_size(15);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.bench_function("sdis_churn", |b| {
        b.iter_batched(
            || Treedoc::<String, Sdis>::new(SiteId::from_u64(1)),
            |mut doc| {
                for k in 0..256 {
                    doc.local_insert(doc.len().min(k), format!("x{k}")).unwrap();
                    if k % 2 == 0 && doc.len() > 1 {
                        doc.local_delete(0).unwrap();
                    }
                }
                doc
            },
            BatchSize::SmallInput,
        );
    });
    group.bench_function("udis_churn", |b| {
        b.iter_batched(
            || Treedoc::<String, Udis>::new(SiteId::from_u64(1)),
            |mut doc| {
                for k in 0..256 {
                    doc.local_insert(doc.len().min(k), format!("x{k}")).unwrap();
                    if k % 2 == 0 && doc.len() > 1 {
                        doc.local_delete(0).unwrap();
                    }
                }
                doc
            },
            BatchSize::SmallInput,
        );
    });
    group.finish();
}

fn bench_commit_protocols(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_commit");
    group.sample_size(15);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_millis(500));

    let proposal = FlattenProposal {
        proposer: SiteId::from_u64(1),
        subtree: Vec::new(),
        base_revision: 0,
        txn: 1,
    };
    let make_docs = || {
        (1..=5u64)
            .map(|s| {
                let mut d = Treedoc::<String, Sdis>::new(SiteId::from_u64(s));
                for k in 0..128 {
                    d.local_insert(k, format!("l{k}")).unwrap();
                }
                d
            })
            .collect::<Vec<_>>()
    };

    group.bench_function("two_phase_commit_5_replicas", |b| {
        b.iter_batched(
            make_docs,
            |mut docs| {
                let mut participants: Vec<_> =
                    docs.iter_mut().map(TreedocParticipant::new).collect();
                run_two_phase(&proposal, &mut participants)
            },
            BatchSize::SmallInput,
        );
    });
    group.bench_function("three_phase_commit_5_replicas", |b| {
        b.iter_batched(
            make_docs,
            |mut docs| {
                let mut participants: Vec<_> =
                    docs.iter_mut().map(TreedocParticipant::new).collect();
                run_three_phase(&proposal, &mut participants)
            },
            BatchSize::SmallInput,
        );
    });
    group.finish();
}

fn bench_simulation(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_simulation");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.bench_function("three_sites_300_ops", |b| {
        b.iter(|| {
            run(&Scenario {
                sites: 3,
                edits_per_site: 100,
                ..Default::default()
            })
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_balancing_ablation,
    bench_disambiguator_ablation,
    bench_commit_protocols,
    bench_simulation
);
criterion_main!(benches);
