//! Micro-benchmarks of the core CRDT operations: local inserts / deletes,
//! remote replay, identifier allocation and flatten.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use treedoc_core::{Sdis, SiteId, Treedoc, TreedocConfig, Udis};

fn seeded_doc(n: usize) -> Treedoc<String, Sdis> {
    let atoms: Vec<String> = (0..n).map(|i| format!("line {i}")).collect();
    Treedoc::from_atoms(SiteId::from_u64(1), &atoms)
}

fn bench_local_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("local_ops");
    group.sample_size(20);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_millis(500));

    group.bench_function("insert_middle_1k_doc", |b| {
        b.iter_batched(
            || seeded_doc(1024),
            |mut doc| {
                for k in 0..64 {
                    doc.local_insert(512 + k, format!("new {k}")).unwrap();
                }
                doc
            },
            BatchSize::SmallInput,
        );
    });

    group.bench_function("append_unbalanced_256", |b| {
        b.iter_batched(
            || Treedoc::<String, Sdis>::new(SiteId::from_u64(1)),
            |mut doc| {
                for k in 0..256 {
                    doc.local_insert(k, format!("a{k}")).unwrap();
                }
                doc
            },
            BatchSize::SmallInput,
        );
    });

    group.bench_function("append_balanced_256", |b| {
        b.iter_batched(
            || Treedoc::<String, Sdis>::with_config(SiteId::from_u64(1), TreedocConfig::balanced()),
            |mut doc| {
                for k in 0..256 {
                    doc.local_insert(k, format!("a{k}")).unwrap();
                }
                doc
            },
            BatchSize::SmallInput,
        );
    });

    group.bench_function("delete_from_1k_doc", |b| {
        b.iter_batched(
            || seeded_doc(1024),
            |mut doc| {
                for _ in 0..64 {
                    doc.local_delete(100).unwrap();
                }
                doc
            },
            BatchSize::SmallInput,
        );
    });

    group.finish();
}

fn bench_replay(c: &mut Criterion) {
    let mut group = c.benchmark_group("replay");
    group.sample_size(20);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_millis(500));

    // Pre-generate a batch of operations from one replica, then measure the
    // cost of replaying them at another.
    let mut source: Treedoc<String, Udis> = Treedoc::new(SiteId::from_u64(1));
    let ops: Vec<_> = (0..512)
        .map(|k| source.local_insert(k, format!("op {k}")).unwrap())
        .collect();

    group.bench_function("replay_512_inserts", |b| {
        b.iter_batched(
            || Treedoc::<String, Udis>::new(SiteId::from_u64(2)),
            |mut doc| {
                for op in &ops {
                    doc.apply(op).unwrap();
                }
                doc
            },
            BatchSize::SmallInput,
        );
    });

    group.finish();
}

fn bench_flatten(c: &mut Criterion) {
    let mut group = c.benchmark_group("flatten");
    group.sample_size(20);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_millis(500));

    group.bench_function("flatten_1k_doc_with_tombstones", |b| {
        b.iter_batched(
            || {
                let mut doc = seeded_doc(1024);
                for _ in 0..256 {
                    doc.local_delete(300).unwrap();
                }
                doc
            },
            |mut doc| {
                doc.flatten_all().unwrap();
                doc
            },
            BatchSize::SmallInput,
        );
    });

    group.finish();
}

criterion_group!(benches, bench_local_ops, bench_replay, bench_flatten);
criterion_main!(benches);
