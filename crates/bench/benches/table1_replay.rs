//! Timed version of the Table 1 grid on its LaTeX slice: one benchmark per
//! (document, flatten) cell, so regressions in the replay path or the flatten
//! heuristic show up as timing changes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use treedoc_trace::{latex_corpus, replay_treedoc, DisChoice, ReplayConfig};

fn bench_table1_cells(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1_latex");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_millis(500));

    for spec in latex_corpus() {
        let history = spec.generate();
        for flatten in [None, Some(2), Some(8)] {
            let label = match flatten {
                None => "no-flatten".to_string(),
                Some(k) => format!("flatten-{k}"),
            };
            group.bench_with_input(
                BenchmarkId::new(spec.name.clone(), label),
                &flatten,
                |b, &flatten| {
                    b.iter(|| {
                        replay_treedoc(
                            &history,
                            ReplayConfig {
                                dis: DisChoice::Sdis,
                                balancing: false,
                                flatten_every: flatten,
                            },
                        )
                    })
                },
            );
        }
    }

    group.finish();
}

criterion_group!(benches, bench_table1_cells);
criterion_main!(benches);
