//! Durability-layer benchmarks: WAL append throughput (the steady-state
//! write cost every logged edit pays) and cold-recovery latency as a
//! function of the operations logged since the last snapshot (the price of
//! infrequent checkpoints — the §4.2.1 compaction trade).

use bench::{crashed_store_with_ops, recover_crashed_store};
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use treedoc_storage::DocStore;

fn bench_wal_append(c: &mut Criterion) {
    let mut group = c.benchmark_group("wal_append");
    group.sample_size(20);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_millis(500));
    for payload in [64usize, 512] {
        let blob = vec![0xABu8; payload];
        group.bench_function(format!("{payload}B_x500"), |b| {
            b.iter_batched(
                DocStore::in_memory,
                |mut store| {
                    for _ in 0..500 {
                        store.append(0, &blob).expect("append cannot fail");
                    }
                    store
                },
                BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

fn bench_cold_recovery(c: &mut Criterion) {
    let mut group = c.benchmark_group("cold_recovery");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_millis(500));
    for ops in [50usize, 200, 800] {
        group.bench_function(format!("{ops}_ops_since_snapshot"), |b| {
            b.iter_batched(
                || crashed_store_with_ops(ops),
                |store| {
                    let (digest, report) = recover_crashed_store(store);
                    assert_eq!(report.wal_records_replayed, ops);
                    (digest, report)
                },
                BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

criterion_group!(benches, bench_wal_append, bench_cold_recovery);
criterion_main!(benches);
