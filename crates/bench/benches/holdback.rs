//! Hold-back queue throughput under a faulty network.
//!
//! Measures the causal delivery layer in isolation (per-sender queues vs the
//! adversarial schedule: 10% loss recovered by retransmission, 10%
//! duplication, full shuffle) and the end-to-end faulty scenario, so
//! regressions in either the data structure or the at-least-once recovery
//! loop show up as replay-speed regressions.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use treedoc_replication::testkit::{emit_history, faulty_schedule};
use treedoc_replication::{CausalBuffer, CausalMessage};
use treedoc_sim::{run, Scenario};

/// Builds `senders × per_sender` causally stamped messages and a faulty
/// delivery schedule over them, followed by the retransmission pass that
/// recovers the losses (and re-offers everything else as duplicates,
/// exercising the discard path).
fn schedule_with_retransmission(
    senders: usize,
    per_sender: usize,
    seed: u64,
) -> Vec<CausalMessage<u64>> {
    let history = emit_history(seed, senders, per_sender, 0.2);
    let mut schedule = faulty_schedule(&history, seed, 0.1, 0.1);
    schedule.extend(history);
    schedule
}

fn bench_holdback_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("holdback_faulty");
    group.sample_size(15);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_millis(500));
    for (label, senders, per_sender) in [("4x500", 4usize, 500usize), ("8x250", 8, 250)] {
        let schedule = schedule_with_retransmission(senders, per_sender, 0xFA017);
        let total = senders * per_sender;
        group.bench_function(label, |b| {
            b.iter_batched(
                CausalBuffer::new,
                |mut buf| {
                    let mut delivered = 0usize;
                    for m in &schedule {
                        delivered += buf.receive(m.clone()).len();
                    }
                    assert_eq!(delivered, total);
                    assert_eq!(buf.pending_len(), 0);
                    buf
                },
                BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

fn bench_faulty_scenario(c: &mut Criterion) {
    let mut group = c.benchmark_group("holdback_scenario");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_millis(500));
    let scenario = Scenario {
        sites: 4,
        edits_per_site: 40,
        ..Scenario::faulty()
    };
    group.bench_function("4_sites_10pct_loss_dup", |b| {
        b.iter(|| {
            let report = run(&scenario);
            assert!(report.converged);
            report
        });
    });
    group.finish();
}

criterion_group!(benches, bench_holdback_throughput, bench_faulty_scenario);
criterion_main!(benches);
