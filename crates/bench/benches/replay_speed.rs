//! The §5.2 CPU-cost claim: replaying a whole edit history is fast ("less
//! than 1.44 seconds for the 'Distributed Computing' Wikipedia entry").
//!
//! The full 870-revision twin is replayed once per sample, so the sample
//! count is kept small; the per-iteration time is the number to compare with
//! the paper's claim.

use criterion::{criterion_group, criterion_main, Criterion};
use treedoc_trace::{paper_corpus, replay_treedoc, DisChoice, ReplayConfig};

fn bench_replay_speed(c: &mut Criterion) {
    let mut group = c.benchmark_group("replay_speed");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_millis(500));

    // The least active LaTeX document: quick, gives a stable baseline.
    let acf = paper_corpus()
        .into_iter()
        .find(|s| s.name == "acf.tex")
        .unwrap()
        .generate();
    group.bench_function("acf_tex_sdis_no_flatten", |b| {
        b.iter(|| replay_treedoc(&acf, ReplayConfig::default()))
    });
    group.bench_function("acf_tex_sdis_flatten2", |b| {
        b.iter(|| {
            replay_treedoc(
                &acf,
                ReplayConfig {
                    flatten_every: Some(2),
                    ..ReplayConfig::default()
                },
            )
        })
    });

    // The most active document (the paper's 1.44 s reference point).
    let dc = paper_corpus()
        .into_iter()
        .find(|s| s.name == "Distributed Computing")
        .unwrap()
        .generate();
    group.bench_function("distributed_computing_sdis_no_flatten", |b| {
        b.iter(|| {
            replay_treedoc(
                &dc,
                ReplayConfig {
                    dis: DisChoice::Sdis,
                    balancing: false,
                    flatten_every: None,
                },
            )
        })
    });

    group.finish();
}

criterion_group!(benches, bench_replay_speed);
criterion_main!(benches);
