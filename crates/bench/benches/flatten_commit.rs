//! Benchmarks the distributed flatten commitment protocol — the cost the
//! paper could not evaluate ("We cannot yet evaluate the cost of a
//! distributed flatten") — as carried over the faulty simulated network:
//! full scenario runs per protocol, and the scripted coordinator-partition
//! schedule that contrasts blocked 2PC with non-blocking 3PC.

use criterion::{criterion_group, criterion_main, Criterion};
use treedoc_commit::CommitProtocol;
use treedoc_sim::partitioned_commit_demo;

fn bench_flatten_scenarios(c: &mut Criterion) {
    let mut group = c.benchmark_group("flatten_commit_scenario");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_millis(500));
    for protocol in [CommitProtocol::TwoPhase, CommitProtocol::ThreePhase] {
        let scenario = bench::flatten_scenario(protocol, 40);
        group.bench_function(protocol.label(), |b| {
            b.iter(|| {
                let report = bench::run_flatten_scenario(&scenario);
                assert!(report.converged);
                assert!(report.flatten_commits >= 1);
                report
            });
        });
    }
    group.finish();
}

fn bench_partitioned_commit(c: &mut Criterion) {
    let mut group = c.benchmark_group("flatten_commit_partition");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_millis(500));
    for protocol in [CommitProtocol::TwoPhase, CommitProtocol::ThreePhase] {
        group.bench_function(protocol.label(), |b| {
            b.iter(|| {
                let report = partitioned_commit_demo(protocol, 4, 2026);
                assert!(report.converged);
                report
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_flatten_scenarios, bench_partitioned_commit);
criterion_main!(benches);
