//! Regenerates **Table 1** of the paper: per-document measurements (PosID
//! sizes, node counts, memory overhead, tombstone fraction, on-disk overhead)
//! for flatten settings none / 1 / 2 / 8.
//!
//! Run with `cargo run -p bench --bin table1 --release`.
//! Pass `--json` to emit machine-readable output.

fn main() {
    let json = std::env::args().any(|a| a == "--json");
    let rows = bench::table1();
    if json {
        println!(
            "{}",
            serde_json::to_string_pretty(&rows).expect("serializable rows")
        );
        return;
    }
    println!("Table 1. Measurements (SDIS, no balancing). Paper: ICDCS'09, §5.");
    println!(
        "{:<24} {:>10} | {:>5} {:>7} | {:>6} {:>9} {:>8} {:>9} | {:>9} {:>7} | {:>8}",
        "Document",
        "Flatten",
        "Max",
        "Avg",
        "Nodes",
        "bytes",
        "MemOvhd",
        "%nonTomb",
        "disk B",
        "%doc",
        "elapsed"
    );
    for row in rows {
        println!(
            "{:<24} {:>10} | {:>5} {:>7.2} | {:>6} {:>9} {:>8.2} {:>8.2}% | {:>9} {:>6.2}% | {:>7.0?}",
            row.document,
            row.flatten,
            row.max_pos_id_bits,
            row.avg_pos_id_bits,
            row.nodes,
            row.node_bytes,
            row.mem_overhead,
            row.non_tombstone_pct,
            row.disk_bytes,
            row.disk_pct,
            row.elapsed,
        );
    }
    println!();
    println!(
        "§5.2 CPU-cost check: the most active document replays in the time shown in its rows above"
    );
    println!("(the paper reports < 1.44 s for the 870-revision Wikipedia entry).");
}
