//! The core document-speed trajectory: sequential-typing throughput (local
//! appends, remote replay, full trace replay) and memory-per-char of the
//! identifier index. These are the numbers the run-coalesced store is
//! expected to move by an order of magnitude; `BENCH_core.json` at the repo
//! root pins the committed baseline the CI `bench-regression` job diffs
//! against.
//!
//! Run with `cargo run -p bench --bin core_speed --release`
//! (add `--json` for machine-readable output, `--out PATH` to refresh the
//! committed baseline).

use bench::{
    core_memory_cases, core_scaling_curve, core_speed_cases, BenchArgs, CoreMemoryRow,
    CoreSpeedRow, ScalingRow,
};
use serde::Serialize;

/// Sequential-typing operations per timed case (override: `CORE_SPEED_OPS`).
const TYPING_OPS: usize = 20_000;
/// Characters in the memory-per-char documents (override: `CORE_MEMORY_CHARS`).
const MEMORY_CHARS: usize = 20_000;

/// Reads a scale override from the environment, so the same binary can
/// capture comparison points at sizes the slow side can actually finish.
fn scale(var: &str, default: usize) -> usize {
    std::env::var(var)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

#[derive(Serialize)]
struct Output {
    typing_ops: usize,
    memory_chars: usize,
    speed: Vec<CoreSpeedRow>,
    scaling: Vec<ScalingRow>,
    memory: Vec<CoreMemoryRow>,
}

fn main() {
    let args = BenchArgs::from_env();
    let typing_ops = scale("CORE_SPEED_OPS", TYPING_OPS);
    let memory_chars = scale("CORE_MEMORY_CHARS", MEMORY_CHARS);
    let speed = core_speed_cases(typing_ops);
    let scaling = core_scaling_curve();
    let memory = core_memory_cases(memory_chars);

    // Sanity-check before publishing an artifact: a zero-throughput row or an
    // empty document means the harness itself broke.
    for row in &speed {
        assert!(row.ops_per_sec > 0.0, "dead speed case: {row:?}");
    }
    for row in &scaling {
        assert!(row.nanos_per_op > 0.0, "dead scaling case: {row:?}");
    }
    for row in &memory {
        assert_eq!(row.live_atoms, memory_chars, "short document: {row:?}");
    }

    let out = Output {
        typing_ops,
        memory_chars,
        speed,
        scaling,
        memory,
    };
    if args.emit(&out) {
        return;
    }

    println!("Sequential-typing speed, {typing_ops} ops per case (best of 3):");
    println!(
        "{:>22} {:>10} {:>12} {:>14}",
        "case", "ops", "micros", "ops/sec"
    );
    for row in &out.speed {
        println!(
            "{:>22} {:>10} {:>12} {:>14.0}",
            row.case, row.ops, row.elapsed_micros, row.ops_per_sec
        );
    }

    println!();
    println!("Identifier-scaling curve (per-op cost must stay flat):");
    println!(
        "{:>26} {:>10} {:>12} {:>12}",
        "case", "ops", "micros", "ns/op"
    );
    for row in &out.scaling {
        println!(
            "{:>26} {:>10} {:>12} {:>12.0}",
            row.case, row.ops, row.elapsed_micros, row.nanos_per_op
        );
    }

    println!();
    println!("Memory per char, {memory_chars}-char documents:");
    println!(
        "{:>18} {:>10} {:>12} {:>12} {:>10} {:>8}",
        "case", "atoms", "index B", "B/char", "paper B", "height"
    );
    for row in &out.memory {
        println!(
            "{:>18} {:>10} {:>12} {:>12.1} {:>10} {:>8}",
            row.case,
            row.live_atoms,
            row.index_bytes,
            row.index_bytes_per_char,
            row.paper_model_bytes,
            row.height
        );
    }
}
