//! The anti-entropy vs retransmission experiment: recovery cost in encoded
//! wire bytes across loss rate × offline gap × mechanism. The baseline
//! re-ships unacked windows and broadcasts cumulative acks until every log
//! clears; anti-entropy walks merkle digests and ships only the missing
//! runs of cells, so it wins once losses (or an offline gap) make the
//! unacked windows large.
//!
//! Run with `cargo run -p bench --bin sync_cost --release`
//! (add `--json` for machine-readable output, `--out PATH` to refresh the
//! committed `BENCH_sync.json` baseline the CI `bench-regression` job
//! diffs against).

use bench::{sync_cost_grid, BenchArgs, SyncCostRow};
use serde::Serialize;

#[derive(Serialize)]
struct Output {
    sync_vs_retransmission: Vec<SyncCostRow>,
}

fn main() {
    let args = BenchArgs::from_env();
    let sync_vs_retransmission = sync_cost_grid(3, 60);

    // Sanity-check both output paths: a silently wrong artifact is worse
    // than a red job.
    for row in &sync_vs_retransmission {
        assert!(row.converged, "sync-cost cell diverged: {row:?}");
    }
    // The headline claim: at every lossy or gapped cell, anti-entropy's
    // digest walk costs fewer recovery bytes than the retransmission
    // baseline at the same coordinates.
    for sync in sync_vs_retransmission
        .iter()
        .filter(|r| r.anti_entropy && (r.drop_prob >= 0.05 || r.offline_gap))
    {
        let baseline = sync_vs_retransmission
            .iter()
            .find(|r| {
                !r.anti_entropy
                    && r.drop_prob == sync.drop_prob
                    && r.offline_gap == sync.offline_gap
            })
            .expect("every cell has a baseline twin");
        assert!(
            sync.recovery_bytes < baseline.recovery_bytes,
            "anti-entropy lost to retransmission: {sync:?} vs {baseline:?}"
        );
    }

    let out = Output {
        sync_vs_retransmission,
    };
    if args.emit(&out) {
        return;
    }
    let Output {
        sync_vs_retransmission,
    } = out;

    println!("Anti-entropy vs retransmission (3 sites, 60 edits/site, per-op envelopes):");
    println!(
        "{:>6} {:>8} {:>13} {:>6} {:>12} {:>12} {:>8} {:>8}",
        "loss", "offline", "mechanism", "ops", "rec bytes", "rec B/op", "digests", "runs"
    );
    for row in &sync_vs_retransmission {
        println!(
            "{:>5.0}% {:>8} {:>13} {:>6} {:>12} {:>12.1} {:>8} {:>8}",
            row.drop_prob * 100.0,
            if row.offline_gap { "gap" } else { "-" },
            if row.anti_entropy {
                "anti-entropy"
            } else {
                "retransmit"
            },
            row.ops,
            row.recovery_bytes,
            row.recovery_bytes_per_op,
            row.sync_digest_msgs,
            row.sync_run_msgs,
        );
    }
    println!();
    println!(
        "recovery bytes = retransmission + ack traffic (baseline) or digest\n\
         walk + cell runs (anti-entropy); lower is better. Initial op\n\
         broadcasts cost the same in both modes and are excluded."
    );
}
