//! Regenerates **Table 3** of the paper: the fraction of tombstones on the
//! LaTeX documents, with and without the §4.1 balancing strategies, for
//! flatten settings none / 8 / 2.
//!
//! Run with `cargo run -p bench --bin table3 --release`.

fn main() {
    let json = std::env::args().any(|a| a == "--json");
    let cells = bench::table3();
    if json {
        println!(
            "{}",
            serde_json::to_string_pretty(&cells).expect("serializable cells")
        );
        return;
    }
    println!("Table 3. Fraction of tombstones (LaTeX documents, SDIS).");
    println!("{:<12} {:>16} {:>16}", "", "no balancing", "balancing");
    for flatten in ["no-flatten", "flatten-8", "flatten-2"] {
        let pick = |balancing: bool| {
            cells
                .iter()
                .find(|c| c.flatten == flatten && c.balancing == balancing)
                .map(|c| c.tombstone_fraction * 100.0)
                .unwrap_or(f64::NAN)
        };
        println!(
            "{:<12} {:>15.1}% {:>15.1}%",
            flatten,
            pick(false),
            pick(true)
        );
    }
}
