//! Regenerates **Table 4** of the paper: SDIS versus UDIS identifier
//! overhead per atom and average PosID size on the LaTeX documents, with and
//! without balancing, for flatten settings none / 8 / 2.
//!
//! Run with `cargo run -p bench --bin table4 --release`.

fn main() {
    let json = std::env::args().any(|a| a == "--json");
    let cells = bench::table4();
    if json {
        println!(
            "{}",
            serde_json::to_string_pretty(&cells).expect("serializable cells")
        );
        return;
    }
    println!("Table 4. SDIS vs. UDIS (LaTeX documents); sizes in bits.");
    println!(
        "{:<12} {:<22} {:>12} {:>12} {:>12} {:>12}",
        "", "", "SDIS no-bal", "UDIS no-bal", "SDIS bal", "UDIS bal"
    );
    for flatten in ["no-flatten", "flatten-8", "flatten-2"] {
        let pick = |dis: &str, balancing: bool| {
            cells
                .iter()
                .find(|c| c.flatten == flatten && c.balancing == balancing && c.dis == dis)
                .cloned()
        };
        let cols = [
            pick("SDIS", false),
            pick("UDIS", false),
            pick("SDIS", true),
            pick("UDIS", true),
        ];
        let fmt = |f: &dyn Fn(&bench::GridCell) -> f64| {
            cols.iter()
                .map(|c| {
                    c.as_ref()
                        .map(|c| format!("{:>12.1}", f(c)))
                        .unwrap_or_else(|| format!("{:>12}", "-"))
                })
                .collect::<Vec<_>>()
                .join(" ")
        };
        println!(
            "{:<12} {:<22} {}",
            flatten,
            "overhead/atom",
            fmt(&|c: &bench::GridCell| c.overhead_per_atom_bits)
        );
        println!(
            "{:<12} {:<22} {}",
            "",
            "avg PosID size",
            fmt(&|c: &bench::GridCell| c.avg_pos_id_bits)
        );
    }
}
