//! Regenerates **Table 2** of the paper: the workload summary (revisions,
//! initial and final document length) of the replayed corpus.
//!
//! Run with `cargo run -p bench --bin table2 --release`.

fn main() {
    let json = std::env::args().any(|a| a == "--json");
    let rows = bench::table2();
    if json {
        println!(
            "{}",
            serde_json::to_string_pretty(&rows).expect("serializable rows")
        );
        return;
    }
    println!("Table 2. Summary of documents studied (synthetic twins of the paper's corpus).");
    println!(
        "{:<24} {:>10} {:>10} {:>10}",
        "Document", "revisions", "initial", "final"
    );
    for row in rows {
        println!(
            "{:<24} {:>10} {:>10} {:>10}",
            row.label, row.revisions, row.initial, row.final_len
        );
    }
}
