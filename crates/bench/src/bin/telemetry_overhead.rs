//! The observability layer's own cost: the sequential-typing `Replica`
//! stamp workload timed with telemetry absent, disabled (inert handle), and
//! enabled (live registry). The acceptance bound this bin asserts — and
//! `BENCH_telemetry.json` pins for the CI `bench-regression` job — is that
//! an enabled registry costs less than 5% on the hot path and a disabled
//! handle is indistinguishable from no telemetry at all.
//!
//! Run with `cargo run -p bench --bin telemetry_overhead --release`
//! (add `--json` for machine-readable output, `--out PATH` to refresh the
//! committed baseline, `--telemetry-out PATH` to dump the instruments the
//! enabled variant recorded).

use bench::{global_registry, telemetry_overhead_cases, BenchArgs, OverheadRow, OVERHEAD_TRIALS};
use serde::Serialize;

/// Stamped operations per trial (override: `TELEMETRY_OVERHEAD_OPS`).
const OPS: usize = 4_000;

/// Noise headroom on the disabled variant: best-of minimums still jitter a
/// little on shared runners, so "indistinguishable" is asserted as <4%.
const DISABLED_BOUND_PCT: f64 = 4.0;
/// The acceptance bound on the enabled variant.
const ENABLED_BOUND_PCT: f64 = 5.0;

#[derive(Serialize)]
struct Output {
    ops: usize,
    trials: usize,
    overhead: Vec<OverheadRow>,
}

fn main() {
    let args = BenchArgs::from_env();
    let ops = std::env::var("TELEMETRY_OVERHEAD_OPS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(OPS);
    let overhead = telemetry_overhead_cases(ops);

    // Sanity-check before publishing an artifact, on both output paths.
    let by_case = |case: &str| -> &OverheadRow {
        overhead
            .iter()
            .find(|r| r.case == case)
            .unwrap_or_else(|| panic!("variant {case} missing"))
    };
    let disabled = by_case("disabled");
    let enabled = by_case("enabled");
    assert!(
        disabled.overhead_pct < DISABLED_BOUND_PCT,
        "a disabled telemetry handle must be free on the stamp path: \
         {:.2}% overhead (bound {DISABLED_BOUND_PCT}%)",
        disabled.overhead_pct
    );
    assert!(
        enabled.overhead_pct < ENABLED_BOUND_PCT,
        "an enabled registry must stay under the acceptance bound on the \
         stamp path: {:.2}% overhead (bound {ENABLED_BOUND_PCT}%)",
        enabled.overhead_pct
    );
    // The enabled variant must actually have been observed, or the numbers
    // above measured nothing.
    let stamped = global_registry()
        .snapshot()
        .counter("replica.ops_stamped")
        .unwrap_or(0);
    assert!(
        stamped >= ops as u64,
        "enabled trials recorded {stamped} stamps, expected at least {ops}"
    );

    let out = Output {
        ops,
        trials: OVERHEAD_TRIALS,
        overhead,
    };
    if args.emit(&out) {
        return;
    }
    let Output { overhead, .. } = out;

    println!("Telemetry overhead ({ops} stamped ops, best of {OVERHEAD_TRIALS} trials):");
    println!(
        "{:>10} {:>12} {:>14} {:>10}",
        "case", "elapsed µs", "ops/sec", "overhead"
    );
    for row in &overhead {
        println!(
            "{:>10} {:>12} {:>14.0} {:>9.2}%",
            row.case, row.elapsed_micros, row.ops_per_sec, row.overhead_pct
        );
    }
    println!();
    println!(
        "baseline = no telemetry call at all; disabled = inert handle (one\n\
         None branch per instrument); enabled = live registry (atomic\n\
         counter + histogram record per op). Bounds asserted: disabled\n\
         <{DISABLED_BOUND_PCT}%, enabled <{ENABLED_BOUND_PCT}%."
    );
}
