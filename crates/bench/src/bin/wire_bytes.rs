//! The wire and storage overhead experiment: bytes-per-op of the binary
//! codec (per-op and batched) against the legacy JSON wire, the WAL size
//! under both record formats, and the batch-size × loss sweep over the
//! simulated faulty network — the §5.2 overhead evaluation applied to the
//! replication and durability hot paths.
//!
//! Run with `cargo run -p bench --bin wire_bytes --release`
//! (add `--json` for machine-readable output, `--out PATH` to refresh the
//! committed `BENCH_wire.json` baseline the CI `bench-regression` job
//! diffs against).

use bench::{
    wal_format_comparison, wire_cost_grid, wire_encoding_comparison, BenchArgs, WalFormatRow,
    WireCostRow, WireEncodingRow,
};
use serde::Serialize;

#[derive(Serialize)]
struct Output {
    encoding: Vec<WireEncodingRow>,
    wal_format: WalFormatRow,
    distributed: Vec<WireCostRow>,
}

fn main() {
    let args = BenchArgs::from_env();
    let encoding = wire_encoding_comparison(512, &[8, 32, 128]);
    let wal_format = wal_format_comparison(256);
    let distributed = wire_cost_grid(3, 60);

    // Sanity-check both output paths: a silently wrong artifact is worse
    // than a red job.
    for row in &distributed {
        assert!(row.converged, "wire-cost cell diverged: {row:?}");
    }
    assert!(
        wal_format.binary_bytes < wal_format.json_bytes,
        "binary WAL regressed past JSON: {wal_format:?}"
    );

    let out = Output {
        encoding,
        wal_format,
        distributed,
    };
    if args.emit(&out) {
        return;
    }
    let Output {
        encoding,
        wal_format,
        distributed,
    } = out;

    println!("Sequential-typing session, 512 ops, encoded wire cost:");
    println!(
        "{:>18} {:>12} {:>12}",
        "transport", "total bytes", "bytes/op"
    );
    for row in &encoding {
        println!(
            "{:>18} {:>12} {:>12.1}",
            row.transport, row.total_bytes, row.bytes_per_op
        );
    }

    println!();
    println!(
        "WAL size, {} logged edits: JSON v1 {} B, binary v2 {} B ({}x smaller)",
        wal_format.records,
        wal_format.json_bytes,
        wal_format.binary_bytes,
        (wal_format.ratio * 10.0).round() / 10.0
    );

    println!();
    println!("Distributed sweep (3 sites, 60 edits/site, measured on the wire):");
    println!(
        "{:>6} {:>6} {:>6} {:>12} {:>10} {:>10} {:>9}",
        "batch", "loss", "ops", "net bytes", "bytes/op", "messages", "batches"
    );
    for row in &distributed {
        println!(
            "{:>6} {:>6} {:>6} {:>12} {:>10.1} {:>10} {:>9}",
            row.batch_max_ops,
            row.drop_prob,
            row.ops,
            row.network_bytes,
            row.bytes_per_op,
            row.messages_delivered,
            row.op_batches_sent
        );
    }
}
