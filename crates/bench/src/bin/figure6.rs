//! Regenerates **Figure 6** of the paper: the evolution of the total number
//! of nodes and of non-tombstone nodes over the lifetime of `acf.tex`
//! (flatten heuristic every 2 revisions, as in the paper's plot).
//!
//! Run with `cargo run -p bench --bin figure6 --release`.
//! Pass `--csv` to emit a CSV series suitable for plotting, or
//! `--flatten <k|none>` to change the flatten setting.

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let csv = args.iter().any(|a| a == "--csv");
    let flatten = match args.iter().position(|a| a == "--flatten") {
        Some(i) => match args.get(i + 1).map(String::as_str) {
            Some("none") => None,
            Some(k) => Some(
                k.parse::<usize>()
                    .expect("--flatten takes a number or 'none'"),
            ),
            None => Some(2),
        },
        None => Some(2),
    };
    let report = bench::figure6(flatten);
    if csv {
        println!("revision,total_nodes,non_tombstone_nodes");
        for p in &report.timeline {
            println!("{},{},{}", p.revision, p.total_nodes, p.live_nodes);
        }
        return;
    }
    println!(
        "Figure 6. Variation of the number of nodes for acf.tex ({}).",
        match flatten {
            None => "no flattening".to_string(),
            Some(k) => format!("flatten every {k} revisions"),
        }
    );
    println!(
        "{:>8} {:>12} {:>16}",
        "revision", "total nodes", "non-tombstones"
    );
    let max_nodes = report
        .timeline
        .iter()
        .map(|p| p.total_nodes)
        .max()
        .unwrap_or(1)
        .max(1);
    for p in &report.timeline {
        let bar_len = (p.total_nodes * 40) / max_nodes;
        let live_len = (p.live_nodes * 40) / max_nodes;
        let mut bar = String::new();
        for i in 0..40 {
            bar.push(if i < live_len {
                '#'
            } else if i < bar_len {
                '.'
            } else {
                ' '
            });
        }
        println!(
            "{:>8} {:>12} {:>16}  |{}|",
            p.revision, p.total_nodes, p.live_nodes, bar
        );
    }
    println!();
    println!("'#' = live atoms, '.' = tombstones; drops in the '.' region are flatten rounds.");
}
