//! Regenerates **Table 5** of the paper: the ratio of total position-
//! identifier sizes, Logoot versus Treedoc/UDIS without flattening.
//!
//! Run with `cargo run -p bench --bin table5 --release`.

fn main() {
    let json = std::env::args().any(|a| a == "--json");
    let rows = bench::table5();
    if json {
        println!(
            "{}",
            serde_json::to_string_pretty(&rows).expect("serializable rows")
        );
        return;
    }
    println!("Table 5. Comparing Treedoc (UDIS, no flatten) vs. Logoot: PosID sizes.");
    println!(
        "{:<24} {:>14} {:>14} {:>10}",
        "Document", "Treedoc bytes", "Logoot bytes", "ratio"
    );
    for row in rows {
        println!(
            "{:<24} {:>14} {:>14} {:>10.1}",
            row.document, row.treedoc_bytes, row.logoot_bytes, row.ratio
        );
    }
    println!();
    println!("(The paper reports ratios between 1.8 and 3.9; see EXPERIMENTS.md for how the");
    println!(" ratio depends on the Logoot per-level digit base, which the paper leaves open.)");
}
