//! The crash-recovery cost experiment: WAL append throughput and cold
//! restart latency versus operations-since-snapshot — the compaction story
//! the paper implies (flatten as the natural clean-up point, §4.2.1) but
//! never measures.
//!
//! Run with `cargo run -p bench --bin recovery --release`
//! (add `--json` for machine-readable output, `--out PATH` to refresh the
//! committed `BENCH_recovery.json` baseline the CI `bench-regression` job
//! diffs against).

use bench::{recovery_cost_grid, wal_append_throughput, BenchArgs, RecoveryCostRow, WalAppendRow};
use serde::Serialize;

#[derive(Serialize)]
struct Output {
    wal_append: Vec<WalAppendRow>,
    recovery: Vec<RecoveryCostRow>,
}

fn main() {
    let args = BenchArgs::from_env();
    let wal_append: Vec<WalAppendRow> = [64usize, 256, 1024]
        .iter()
        .map(|&payload| wal_append_throughput(2_000, payload))
        .collect();
    // Record size grows with identifier length (append-only unbalanced
    // trees deepen linearly), so the WAL grows superlinearly in ops — worth
    // showing, but 800 is enough to see the curve without slowing CI.
    let recovery = recovery_cost_grid(&[0, 50, 200, 800]);
    // Sanity-check the grid on BOTH output paths: the CI artifact job runs
    // --json, and a silently wrong artifact is worse than a red job.
    for row in &recovery {
        assert_eq!(
            row.wal_records_replayed, row.ops_since_snapshot,
            "recovery replayed the wrong number of records: {row:?}"
        );
    }

    let out = Output {
        wal_append,
        recovery,
    };
    if args.emit(&out) {
        return;
    }
    let Output {
        wal_append,
        recovery,
    } = out;

    println!("WAL append throughput (in-memory backend, 2000 records):");
    println!("{:>10} {:>14} {:>14}", "payload", "appends/s", "MB/s");
    for row in &wal_append {
        println!(
            "{:>9}B {:>14.0} {:>14.2}",
            row.payload_bytes,
            row.appends_per_sec,
            row.bytes_per_sec / 1.0e6
        );
    }

    println!();
    println!("Cold recovery latency vs. operations since the last snapshot:");
    println!(
        "{:>6} {:>10} {:>9} {:>11} {:>12} {:>14}",
        "ops", "wal bytes", "replayed", "read bytes", "recover µs", "edit cost µs"
    );
    for row in &recovery {
        let edit_cost = row
            .logged_edit_micros
            .map_or("n/a".to_string(), |c| format!("{c:.1}"));
        println!(
            "{:>6} {:>10} {:>9} {:>11} {:>12} {:>14}",
            row.ops_since_snapshot,
            row.wal_bytes,
            row.wal_records_replayed,
            row.recovered_bytes,
            row.recover_micros,
            edit_cost
        );
    }
}
