//! The multi-document hosting experiment: Zipf-popularity user sessions
//! over a large document population on one `HostingNode`, swept across
//! resident-set sizes. Reports op-latency percentiles (the p99 carries the
//! cold fault-in cost), resident memory against the hosted population,
//! group-commit segment-append counts, and post-crash restart/refill times.
//! `BENCH_node.json` at the repo root pins the committed baseline the CI
//! `bench-regression` job diffs against.
//!
//! Run with `cargo run -p bench --bin node_hosting --release`
//! (add `--json` for machine-readable output, `--out PATH` to refresh the
//! committed baseline).

use bench::{hosting_sweep, BenchArgs, HostingRow};
use serde::Serialize;

/// Hosted document population (override: `NODE_HOSTING_DOCS`).
const DOCUMENTS: usize = 1500;
/// User sessions driven through the node (override: `NODE_HOSTING_SESSIONS`).
const SESSIONS: usize = 400;
/// Resident-set capacities swept.
const RESIDENTS: [usize; 3] = [16, 64, 256];

fn scale(var: &str, default: usize) -> usize {
    std::env::var(var)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

#[derive(Serialize)]
struct Output {
    documents: usize,
    sessions: usize,
    hosting: Vec<HostingRow>,
}

fn main() {
    let args = BenchArgs::from_env();
    let documents = scale("NODE_HOSTING_DOCS", DOCUMENTS);
    let sessions = scale("NODE_HOSTING_SESSIONS", SESSIONS);
    let hosting = hosting_sweep(documents, sessions, &RESIDENTS);

    // Sanity-check before publishing an artifact: the hosting claims must
    // hold at every sweep point, on both output paths.
    for row in &hosting {
        assert!(
            row.hosted_docs >= row.max_resident.min(row.hosted_docs),
            "dead workload: {row:?}"
        );
        assert!(
            row.segment_appends < row.ops,
            "group commit must keep segment appends under one per op: {row:?}"
        );
        assert!(
            row.op_p99_micros >= row.op_p50_micros,
            "bad percentiles: {row:?}"
        );
    }
    // Smaller resident sets must not hold more memory than larger ones.
    for pair in hosting.windows(2) {
        assert!(
            pair[0].resident_bytes <= pair[1].resident_bytes * 2,
            "resident memory should grow with capacity: {pair:?}"
        );
    }

    let out = Output {
        documents,
        sessions,
        hosting,
    };
    if args.emit(&out) {
        return;
    }
    let Output { hosting, .. } = out;

    println!("Multi-document hosting ({documents} docs, {sessions} Zipf sessions, 4 shards):");
    println!(
        "{:>14} {:>7} {:>9} {:>9} {:>12} {:>9} {:>9} {:>9} {:>11} {:>11}",
        "case",
        "hosted",
        "p50 µs",
        "p99 µs",
        "res. bytes",
        "evicts",
        "faults",
        "appends",
        "restart µs",
        "refill µs"
    );
    for row in &hosting {
        println!(
            "{:>14} {:>7} {:>9} {:>9} {:>12} {:>9} {:>9} {:>9} {:>11} {:>11}",
            row.case,
            row.hosted_docs,
            row.op_p50_micros,
            row.op_p99_micros,
            row.resident_bytes,
            row.evictions,
            row.fault_ins,
            row.segment_appends,
            row.restart_micros,
            row.refill_micros
        );
    }
}
