//! The distributed-flatten cost experiment the paper leaves unevaluated
//! ("We cannot yet evaluate the cost of a distributed flatten", §4.2.1):
//! 2PC and 3PC flatten commitment carried as real messages over the lossy,
//! partitioned simulated network, plus the scripted coordinator-partition
//! comparison (blocked 2PC versus non-blocking 3PC).
//!
//! Run with `cargo run -p bench --bin flatten_commit --release`
//! (add `--json` for machine-readable output, `--out PATH` to refresh the
//! committed `BENCH_flatten.json` baseline the CI `bench-regression` job
//! diffs against).

use bench::BenchArgs;
use serde::Serialize;

#[derive(Serialize)]
struct Output {
    grid: Vec<bench::FlattenCostRow>,
    partition_comparison: Vec<treedoc_sim::PartitionedCommitReport>,
}

fn main() {
    let args = BenchArgs::from_env();
    let grid = bench::distributed_flatten_grid(4, 60);
    let partition_comparison = bench::partition_comparison(4, 2026);

    // Sanity-check before publishing an artifact, not only on the table
    // path: a diverged cell must fail the baseline refresh too.
    for row in &grid {
        assert!(row.converged, "cell diverged: {row:?}");
    }
    for report in &partition_comparison {
        assert!(report.converged, "demo diverged: {report:?}");
    }

    let out = Output {
        grid,
        partition_comparison,
    };
    if args.emit(&out) {
        return;
    }
    let Output {
        grid,
        partition_comparison,
    } = out;

    println!("Distributed flatten commitment cost (4 sites, 60 edits/site).");
    println!(
        "{:<5} {:>6} {:>10} {:>9} {:>8} {:>7} {:>9} {:>9} {:>8} {:>9} {:>10}",
        "proto",
        "drop",
        "partition",
        "proposals",
        "commits",
        "aborts",
        "msgs",
        "bytes",
        "rounds",
        "blocked",
        "unilateral"
    );
    for row in &grid {
        println!(
            "{:<5} {:>6.2} {:>10} {:>9} {:>8} {:>7} {:>9} {:>9} {:>8} {:>9} {:>10}",
            row.protocol,
            row.drop_prob,
            row.partition,
            row.proposals,
            row.commits,
            row.aborts,
            row.protocol_messages,
            row.protocol_bytes,
            row.commit_rounds,
            row.blocked_rounds,
            row.unilateral_commits
        );
    }

    println!();
    println!("Coordinator partitioned after every participant promised to commit:");
    println!(
        "{:<5} {:>22} {:>10} {:>9} {:>9} {:>8}",
        "proto", "committed-in-partition", "blocked", "msgs", "bytes", "rounds"
    );
    for report in &partition_comparison {
        println!(
            "{:<5} {:>22} {:>10} {:>9} {:>9} {:>8}",
            report.protocol.label(),
            format!("{}/{}", report.committed_during_partition, report.sites - 1),
            report.blocked_ticks,
            report.protocol_messages,
            report.protocol_bytes,
            report.commit_rounds
        );
    }
}
