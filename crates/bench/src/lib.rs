//! Shared experiment runners for the benchmark harness.
//!
//! Every table and figure of the paper's evaluation (§5) has a runner here;
//! the `src/bin/*` binaries print them in a paper-like layout and the
//! Criterion benches reuse the same runners for timing. See EXPERIMENTS.md at
//! the workspace root for the experiment-by-experiment comparison with the
//! published numbers.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::Duration;

use serde::Serialize;

use treedoc_commit::CommitProtocol;
use treedoc_sim::{
    partitioned_commit_demo, run as run_scenario, run_hosting_with, HostingScenario, Scenario,
    ScenarioMatrix,
};
use treedoc_telemetry::{Registry, Telemetry};
use treedoc_trace::{
    latex_corpus, paper_corpus, replay_logoot, replay_treedoc, DisChoice, DocumentSpec,
    ReplayConfig, ReplayReport,
};

/// The flatten settings evaluated in Table 1 (none, or every 1 / 2 / 8
/// revisions).
pub const TABLE1_FLATTEN: [Option<usize>; 4] = [None, Some(1), Some(2), Some(8)];

/// The flatten settings evaluated in Tables 3 and 4.
pub const TABLE34_FLATTEN: [Option<usize>; 3] = [None, Some(8), Some(2)];

/// Formats a flatten setting the way the paper labels it.
pub fn flatten_label(flatten: Option<usize>) -> String {
    match flatten {
        None => "no-flatten".to_string(),
        Some(k) => format!("flatten-{k}"),
    }
}

/// One row of Table 1.
#[derive(Debug, Clone, Serialize)]
pub struct Table1Row {
    /// Document name.
    pub document: String,
    /// Flatten setting label.
    pub flatten: String,
    /// Maximum PosID size (bits).
    pub max_pos_id_bits: usize,
    /// Average PosID size (bits).
    pub avg_pos_id_bits: f64,
    /// Number of Treedoc nodes (tombstones included).
    pub nodes: usize,
    /// In-memory node bytes (26 bytes per node, §5.2).
    pub node_bytes: usize,
    /// In-memory overhead relative to the document size.
    pub mem_overhead: f64,
    /// Percentage of non-tombstone nodes.
    pub non_tombstone_pct: f64,
    /// On-disk structure bytes.
    pub disk_bytes: usize,
    /// On-disk overhead as a percentage of the document size.
    pub disk_pct: f64,
    /// Replay wall-clock time.
    pub elapsed: Duration,
}

/// Runs the Table 1 grid: every corpus document under SDIS, no balancing,
/// with each flatten setting.
pub fn table1() -> Vec<Table1Row> {
    let mut rows = Vec::new();
    for spec in paper_corpus() {
        let history = spec.generate();
        for flatten in TABLE1_FLATTEN {
            let config = ReplayConfig {
                dis: DisChoice::Sdis,
                balancing: false,
                flatten_every: flatten,
            };
            let report = replay_treedoc(&history, config);
            rows.push(table1_row(&spec, flatten, &report));
        }
    }
    rows
}

/// Builds one Table 1 row from a replay report.
pub fn table1_row(spec: &DocumentSpec, flatten: Option<usize>, report: &ReplayReport) -> Table1Row {
    Table1Row {
        document: spec.name.clone(),
        flatten: flatten_label(flatten),
        max_pos_id_bits: report.final_stats.pos_ids.max_bits,
        avg_pos_id_bits: report.avg_pos_id_bits(),
        nodes: report.final_stats.total_nodes,
        node_bytes: report.memory_bytes(),
        mem_overhead: report.memory_overhead_ratio(),
        non_tombstone_pct: report.non_tombstone_fraction() * 100.0,
        disk_bytes: report.disk_overhead_bytes,
        disk_pct: report.disk_overhead_ratio() * 100.0,
        elapsed: report.elapsed,
    }
}

/// One row of Table 2 (workload summary).
#[derive(Debug, Clone, Serialize)]
pub struct Table2Row {
    /// Row label (average / least active / most active / per document).
    pub label: String,
    /// Number of revisions.
    pub revisions: usize,
    /// Atoms in the first revision.
    pub initial: usize,
    /// Atoms in the final revision.
    pub final_len: usize,
}

/// Runs Table 2: the per-document summaries plus the aggregate rows the paper
/// prints (average, least active, most active).
pub fn table2() -> Vec<Table2Row> {
    let histories: Vec<_> = paper_corpus().iter().map(|s| s.generate()).collect();
    let mut rows: Vec<Table2Row> = histories
        .iter()
        .map(|h| Table2Row {
            label: h.name.clone(),
            revisions: h.revision_count(),
            initial: h.initial_len(),
            final_len: h.final_len(),
        })
        .collect();
    let n = histories.len().max(1);
    let avg = Table2Row {
        label: "average".into(),
        revisions: histories.iter().map(|h| h.revision_count()).sum::<usize>() / n,
        initial: histories.iter().map(|h| h.initial_len()).sum::<usize>() / n,
        final_len: histories.iter().map(|h| h.final_len()).sum::<usize>() / n,
    };
    let least = histories.iter().min_by_key(|h| h.revision_count()).unwrap();
    let most = histories.iter().max_by_key(|h| h.revision_count()).unwrap();
    rows.push(avg);
    rows.push(Table2Row {
        label: "less active".into(),
        revisions: least.revision_count(),
        initial: least.initial_len(),
        final_len: least.final_len(),
    });
    rows.push(Table2Row {
        label: "most active".into(),
        revisions: most.revision_count(),
        initial: most.initial_len(),
        final_len: most.final_len(),
    });
    rows
}

/// One cell of Table 3 (tombstone fraction) / Table 4 (identifier overhead).
#[derive(Debug, Clone, Serialize)]
pub struct GridCell {
    /// Flatten setting label.
    pub flatten: String,
    /// Whether the §4.1 balancing strategies were enabled.
    pub balancing: bool,
    /// Disambiguator design label (Table 4 only; Table 3 uses SDIS).
    pub dis: String,
    /// Fraction of tombstones over stored nodes, aggregated over the LaTeX
    /// documents (Table 3).
    pub tombstone_fraction: f64,
    /// Identifier overhead per live atom, in bits (Table 4).
    pub overhead_per_atom_bits: f64,
    /// Average identifier size over stored nodes, in bits (Table 4).
    pub avg_pos_id_bits: f64,
}

/// Runs the Table 3 grid: tombstone fraction on the LaTeX documents with and
/// without balancing, for each flatten setting (SDIS).
pub fn table3() -> Vec<GridCell> {
    grid(DisChoice::Sdis)
}

/// Runs the Table 4 grid: SDIS versus UDIS identifier overhead on the LaTeX
/// documents, with and without balancing, for each flatten setting.
pub fn table4() -> Vec<GridCell> {
    let mut cells = grid(DisChoice::Sdis);
    cells.extend(grid(DisChoice::Udis));
    cells
}

fn grid(dis: DisChoice) -> Vec<GridCell> {
    let histories: Vec<_> = latex_corpus().iter().map(|s| s.generate()).collect();
    let mut cells = Vec::new();
    for flatten in TABLE34_FLATTEN {
        for balancing in [false, true] {
            let config = ReplayConfig {
                dis,
                balancing,
                flatten_every: flatten,
            };
            let mut total_nodes = 0usize;
            let mut live = 0usize;
            let mut total_bits = 0usize;
            for history in &histories {
                let report = replay_treedoc(history, config);
                total_nodes += report.final_stats.total_nodes;
                live += report.final_stats.live_atoms;
                total_bits += report.final_stats.pos_ids.total_bits;
            }
            cells.push(GridCell {
                flatten: flatten_label(flatten),
                balancing,
                dis: match dis {
                    DisChoice::Sdis => "SDIS".into(),
                    DisChoice::Udis => "UDIS".into(),
                },
                tombstone_fraction: if total_nodes == 0 {
                    0.0
                } else {
                    (total_nodes - live) as f64 / total_nodes as f64
                },
                overhead_per_atom_bits: if live == 0 {
                    0.0
                } else {
                    total_bits as f64 / live as f64
                },
                avg_pos_id_bits: if total_nodes == 0 {
                    0.0
                } else {
                    total_bits as f64 / total_nodes as f64
                },
            });
        }
    }
    cells
}

/// One row of Table 5 (Logoot versus Treedoc identifier sizes).
#[derive(Debug, Clone, Serialize)]
pub struct Table5Row {
    /// Document name.
    pub document: String,
    /// Total Treedoc (UDIS, no flatten) identifier bytes over live atoms.
    pub treedoc_bytes: usize,
    /// Total Logoot identifier bytes.
    pub logoot_bytes: usize,
    /// The ratio reported by the paper (Logoot / Treedoc).
    pub ratio: f64,
}

/// Runs Table 5: total position-identifier size of Logoot versus
/// Treedoc/UDIS without flattening, per document.
pub fn table5() -> Vec<Table5Row> {
    let mut rows = Vec::new();
    for spec in paper_corpus() {
        let history = spec.generate();
        let treedoc = replay_treedoc(
            &history,
            ReplayConfig {
                dis: DisChoice::Udis,
                balancing: false,
                flatten_every: None,
            },
        );
        let logoot = replay_logoot(&history);
        let treedoc_bytes = treedoc.live_pos_id_bytes();
        let logoot_bytes = logoot.total_id_bytes();
        rows.push(Table5Row {
            document: spec.name.clone(),
            treedoc_bytes,
            logoot_bytes,
            ratio: if treedoc_bytes == 0 {
                0.0
            } else {
                logoot_bytes as f64 / treedoc_bytes as f64
            },
        });
    }
    rows
}

/// The Figure 6 time series: total nodes and non-tombstone nodes per revision
/// for the `acf.tex` twin.
pub fn figure6(flatten_every: Option<usize>) -> ReplayReport {
    let spec = paper_corpus()
        .into_iter()
        .find(|s| s.name == "acf.tex")
        .expect("acf.tex is part of the corpus");
    let history = spec.generate();
    replay_treedoc(
        &history,
        ReplayConfig {
            dis: DisChoice::Sdis,
            balancing: false,
            flatten_every,
        },
    )
}

/// Replay of the most active document (the "Distributed Computing" twin),
/// used for the §5.2 CPU-cost claim ("less than 1.44 seconds").
pub fn replay_most_active() -> ReplayReport {
    let spec = paper_corpus()
        .into_iter()
        .find(|s| s.name == "Distributed Computing")
        .expect("corpus contains the most active document");
    let history = spec.generate();
    replay_treedoc(&history, ReplayConfig::default())
}

/// One row of the distributed-flatten cost experiment: the protocol cost of
/// §4.2.1's commitment, which the paper could not evaluate ("We cannot yet
/// evaluate the cost of a distributed flatten").
#[derive(Debug, Clone, Serialize)]
pub struct FlattenCostRow {
    /// Protocol label (`2pc` / `3pc`).
    pub protocol: String,
    /// Loss probability of the cell.
    pub drop_prob: f64,
    /// Whether the mid-run coordinator partition was active.
    pub partition: bool,
    /// Proposals initiated.
    pub proposals: usize,
    /// Proposals committed.
    pub commits: usize,
    /// Proposals aborted (concurrent edits, missing votes).
    pub aborts: usize,
    /// Commitment messages on the wire (retransmissions included).
    pub protocol_messages: u64,
    /// Encoded bytes of that traffic.
    pub protocol_bytes: usize,
    /// Coordinator protocol rounds summed over proposals.
    pub commit_rounds: u64,
    /// Ticks replicas spent locked in the prepared state.
    pub blocked_rounds: u64,
    /// 3PC unilateral terminations while the coordinator was unreachable.
    pub unilateral_commits: u64,
    /// Whether every replica converged (content, epoch, locks, queues).
    pub converged: bool,
}

/// Runs the distributed-flatten cost grid: loss × partition × protocol over
/// the faulty simulated network, one row per cell.
pub fn distributed_flatten_grid(sites: usize, edits_per_site: usize) -> Vec<FlattenCostRow> {
    let matrix = ScenarioMatrix::flatten_commitment(Scenario {
        sites,
        edits_per_site,
        ..Scenario::default()
    });
    matrix
        .run()
        .into_iter()
        .map(|(scenario, report)| FlattenCostRow {
            protocol: scenario.flatten_protocol.label().to_string(),
            drop_prob: scenario.drop_prob,
            partition: scenario.partition_first_site,
            proposals: report.flatten_proposals,
            commits: report.flatten_commits,
            aborts: report.flatten_aborts,
            protocol_messages: report.protocol_messages,
            protocol_bytes: report.protocol_bytes,
            commit_rounds: report.commit_rounds,
            blocked_rounds: report.flatten_blocked_rounds,
            unilateral_commits: report.unilateral_commits,
            converged: report.converged,
        })
        .collect()
}

/// The scripted coordinator-partition comparison (blocked 2PC versus
/// non-blocking 3PC), re-exported for the `flatten_commit` binary and bench.
pub fn partition_comparison(sites: usize, seed: u64) -> Vec<treedoc_sim::PartitionedCommitReport> {
    [CommitProtocol::TwoPhase, CommitProtocol::ThreePhase]
        .into_iter()
        .map(|protocol| partitioned_commit_demo(protocol, sites, seed))
        .collect()
}

/// One faulty flatten-commitment scenario, exposed for the Criterion bench.
pub fn flatten_scenario(protocol: CommitProtocol, edits_per_site: usize) -> Scenario {
    Scenario {
        sites: 4,
        edits_per_site,
        ..Scenario::flatten_faulty(protocol)
    }
}

/// Runs one scenario (re-export of [`treedoc_sim::run`] so the bench harness
/// only needs this crate).
pub fn run_flatten_scenario(scenario: &Scenario) -> treedoc_sim::SimReport {
    run_scenario(scenario)
}

// ---------------------------------------------------------------------------
// Crash recovery cost (durability subsystem)
// ---------------------------------------------------------------------------

type RecoveryDoc = treedoc_core::Treedoc<String, treedoc_core::Sdis>;

/// Builds a durable replica that has performed `ops` logged edits since its
/// attach-time checkpoint, then "crashes" it: the replica object is dropped
/// and its detached [`DocStore`](treedoc_storage::DocStore) — snapshot plus
/// `ops` WAL records — is returned.
pub fn crashed_store_with_ops(ops: usize) -> treedoc_storage::DocStore {
    crashed_store_with_ops_timed(ops).0
}

/// [`crashed_store_with_ops`] plus the wall time of the **edit loop alone**
/// (document edit + stamp + WAL append per op; the seed-document build and
/// the attach-time baseline checkpoint are excluded so the per-edit figure
/// is a real marginal cost).
fn crashed_store_with_ops_timed(ops: usize) -> (treedoc_storage::DocStore, Duration) {
    let site = treedoc_core::SiteId::from_u64(1);
    let seed: Vec<String> = (0..50).map(|i| format!("seed line {i}")).collect();
    let mut replica = treedoc_replication::Replica::new(site, RecoveryDoc::from_atoms(site, &seed));
    replica
        .attach_store(treedoc_storage::DocStore::in_memory())
        .expect("in-memory attach cannot fail");
    let edit_start = std::time::Instant::now();
    for k in 0..ops {
        let len = replica.doc().len();
        let op = replica
            .doc_mut()
            .local_insert(len, format!("logged edit {k}"))
            .expect("append in range");
        let _ = replica.stamp(op);
    }
    let edits = edit_start.elapsed();
    (replica.detach_store().expect("store attached"), edits)
}

/// Cold recovery from a crashed store; returns the recovered digest and the
/// recovery report (used by the Criterion bench and the `recovery` binary).
pub fn recover_crashed_store(
    store: treedoc_storage::DocStore,
) -> (u64, treedoc_replication::RecoveryReport) {
    let (replica, report) = treedoc_replication::Replica::<RecoveryDoc>::recover(store)
        .expect("recovery from a healthy store succeeds");
    (replica.digest(), report)
}

/// One cell of the recovery-cost experiment: cold-restart latency versus the
/// number of operations logged since the last snapshot — the compaction
/// trade the paper implies (§4.2.1 flatten as clean-up point) but never
/// measures.
#[derive(Debug, Clone, Serialize)]
pub struct RecoveryCostRow {
    /// Logged operations since the last checkpoint.
    pub ops_since_snapshot: usize,
    /// WAL size on "disk" at crash time.
    pub wal_bytes: usize,
    /// WAL records the recovery replayed.
    pub wal_records_replayed: usize,
    /// Bytes read back (snapshot + WAL prefix).
    pub recovered_bytes: usize,
    /// Cold-recovery wall time, microseconds (best of three).
    pub recover_micros: u64,
    /// Mean marginal cost of one logged edit (document edit + stamp + WAL
    /// append), microseconds; `None` for the zero-ops row.
    pub logged_edit_micros: Option<f64>,
}

/// Runs the recovery-cost grid over the given ops-since-snapshot points.
pub fn recovery_cost_grid(points: &[usize]) -> Vec<RecoveryCostRow> {
    points
        .iter()
        .map(|&ops| {
            let (probe, edits) = crashed_store_with_ops_timed(ops);
            let wal_bytes = probe.wal_len().expect("wal readable");
            let mut probe = Some(probe);
            let mut best: Option<(Duration, treedoc_replication::RecoveryReport)> = None;
            for _ in 0..3 {
                let store = probe.take().unwrap_or_else(|| crashed_store_with_ops(ops));
                let t = std::time::Instant::now();
                let (_, report) = recover_crashed_store(store);
                let elapsed = t.elapsed();
                if best.as_ref().is_none_or(|(b, _)| elapsed < *b) {
                    best = Some((elapsed, report));
                }
            }
            let (elapsed, report) = best.expect("three attempts ran");
            RecoveryCostRow {
                ops_since_snapshot: ops,
                wal_bytes,
                wal_records_replayed: report.wal_records_replayed,
                recovered_bytes: report.bytes_recovered,
                recover_micros: elapsed.as_micros() as u64,
                logged_edit_micros: (ops > 0).then(|| edits.as_micros() as f64 / ops as f64),
            }
        })
        .collect()
}

/// WAL raw append throughput for a given payload size.
#[derive(Debug, Clone, Serialize)]
pub struct WalAppendRow {
    /// Payload bytes per record.
    pub payload_bytes: usize,
    /// Records appended.
    pub records: usize,
    /// Appends per second against the in-memory backend.
    pub appends_per_sec: f64,
    /// Resulting log bytes per second.
    pub bytes_per_sec: f64,
}

/// Measures raw [`DocStore::append`](treedoc_storage::DocStore::append)
/// throughput (framing + CRC + backend write).
pub fn wal_append_throughput(records: usize, payload_bytes: usize) -> WalAppendRow {
    let mut store = treedoc_storage::DocStore::in_memory();
    let payload = vec![0xABu8; payload_bytes];
    let t = std::time::Instant::now();
    for _ in 0..records {
        store.append(0, &payload).expect("append cannot fail");
    }
    let secs = t.elapsed().as_secs_f64().max(1e-9);
    WalAppendRow {
        payload_bytes,
        records,
        appends_per_sec: records as f64 / secs,
        bytes_per_sec: store.wal_len().expect("wal readable") as f64 / secs,
    }
}

// ---------------------------------------------------------------------------
// Wire and storage overhead (binary codec + batched delta replication)
// ---------------------------------------------------------------------------

use treedoc_replication::{encode_envelope, CausalMessage, Envelope, OpBatch, Replica, WalCodec};

type WireDoc = treedoc_core::Treedoc<String, treedoc_core::Sdis>;
type WireOp = treedoc_core::Op<String, treedoc_core::Sdis>;

/// One `(epoch, stamped message)` pair, the unit both the per-op and the
/// batched wire paths ship.
pub type WireEntry = (u64, CausalMessage<WireOp>);

/// Builds the canonical sequential-typing workload: one replica appending
/// `ops` short lines, every operation stamped. Sequential edits produce the
/// deeply shared identifier prefixes the paper's traces exhibit (§5), which
/// is exactly what the batch delta encoding exploits.
pub fn typing_session_entries(ops: usize) -> Vec<WireEntry> {
    let site = treedoc_core::SiteId::from_u64(1);
    let mut replica = Replica::new(site, WireDoc::new(site));
    (0..ops)
        .map(|k| {
            let len = replica.doc().len();
            let op = replica
                .doc_mut()
                .local_insert(len, format!("typed line {k}"))
                .expect("append in range");
            (0u64, replica.stamp(op))
        })
        .collect()
}

/// Encoded cost of one transport choice over the typing workload.
#[derive(Debug, Clone, Serialize)]
pub struct WireEncodingRow {
    /// Transport label (`json-per-op`, `binary-per-op`, `binary-batch-N`).
    pub transport: String,
    /// Operations shipped.
    pub ops: usize,
    /// Total encoded bytes.
    pub total_bytes: usize,
    /// Bytes per operation.
    pub bytes_per_op: f64,
}

/// Encodes the same `ops`-operation typing session through every transport
/// generation: the legacy JSON wire (one envelope per op), the binary codec
/// per op, and the binary codec with batching at each of `batch_sizes`.
pub fn wire_encoding_comparison(ops: usize, batch_sizes: &[usize]) -> Vec<WireEncodingRow> {
    let entries = typing_session_entries(ops);
    let row = |transport: String, total_bytes: usize| WireEncodingRow {
        transport,
        ops,
        total_bytes,
        bytes_per_op: total_bytes as f64 / ops.max(1) as f64,
    };
    let mut rows = Vec::new();

    let json: usize = entries
        .iter()
        .map(|(epoch, msg)| {
            let env: Envelope<WireOp> = Envelope::Op {
                epoch: *epoch,
                msg: msg.clone(),
            };
            serde_json::to_string(&env)
                .expect("envelopes serialise")
                .len()
        })
        .sum();
    rows.push(row("json-per-op".into(), json));

    let binary: usize = entries
        .iter()
        .map(|(epoch, msg)| {
            encode_envelope(&Envelope::Op {
                epoch: *epoch,
                msg: msg.clone(),
            })
            .len()
        })
        .sum();
    rows.push(row("binary-per-op".into(), binary));

    for &batch in batch_sizes {
        let batched: usize = entries
            .chunks(batch.max(1))
            .map(|chunk| {
                encode_envelope(&Envelope::OpBatch(OpBatch {
                    entries: chunk.to_vec(),
                }))
                .len()
            })
            .sum();
        rows.push(row(format!("binary-batch-{batch}"), batched));
    }
    rows
}

/// WAL size of the same logged session under both record formats.
#[derive(Debug, Clone, Serialize)]
pub struct WalFormatRow {
    /// Stamped operations journaled.
    pub records: usize,
    /// WAL bytes with JSON (v1) records.
    pub json_bytes: usize,
    /// WAL bytes with binary (v2) records.
    pub binary_bytes: usize,
    /// `json_bytes / binary_bytes`.
    pub ratio: f64,
}

/// Journals an identical `ops`-edit session through a [`WalCodec::JsonV1`]
/// and a [`WalCodec::BinaryV2`] store and compares the resulting WAL sizes
/// (frame headers included — this is what would sit on disk).
pub fn wal_format_comparison(ops: usize) -> WalFormatRow {
    let wal_len = |codec: WalCodec| -> usize {
        let site = treedoc_core::SiteId::from_u64(1);
        let mut replica = Replica::new(site, WireDoc::new(site));
        replica
            .attach_store_with(treedoc_storage::DocStore::in_memory(), codec)
            .expect("in-memory attach cannot fail");
        for k in 0..ops {
            let len = replica.doc().len();
            let op = replica
                .doc_mut()
                .local_insert(len, format!("typed line {k}"))
                .expect("append in range");
            let _ = replica.stamp(op);
        }
        let store = replica.detach_store().expect("store attached");
        store.wal_len().expect("wal readable")
    };
    let json_bytes = wal_len(WalCodec::JsonV1);
    let binary_bytes = wal_len(WalCodec::BinaryV2);
    WalFormatRow {
        records: ops,
        json_bytes,
        binary_bytes,
        ratio: json_bytes as f64 / binary_bytes.max(1) as f64,
    }
}

/// One cell of the distributed wire-cost sweep: batch size × loss over the
/// simulated faulty network, with the byte counters measured by the codec
/// (see [`treedoc_sim::SimReport`]).
#[derive(Debug, Clone, Serialize)]
pub struct WireCostRow {
    /// Batch flush threshold of the cell (1 = per-op envelopes).
    pub batch_max_ops: usize,
    /// Loss probability of the cell.
    pub drop_prob: f64,
    /// Operations generated across all sites.
    pub ops: usize,
    /// Encoded operation-envelope bytes on the wire (per link crossed,
    /// retransmissions included).
    pub network_bytes: usize,
    /// `network_bytes / ops`.
    pub bytes_per_op: f64,
    /// Envelopes the network delivered.
    pub messages_delivered: u64,
    /// Batch envelopes shipped.
    pub op_batches_sent: u64,
    /// Bytes of the retransmission share.
    pub retransmission_bytes: usize,
    /// Whether the cell converged.
    pub converged: bool,
}

/// Runs the batch-size × loss sweep ([`ScenarioMatrix::batching`]) and
/// returns one row per cell.
pub fn wire_cost_grid(sites: usize, edits_per_site: usize) -> Vec<WireCostRow> {
    let matrix = ScenarioMatrix::batching(Scenario {
        sites,
        edits_per_site,
        ..Scenario::default()
    });
    matrix
        .run()
        .into_iter()
        .map(|(scenario, report)| WireCostRow {
            batch_max_ops: scenario.batch_max_ops,
            drop_prob: scenario.drop_prob,
            ops: report.ops_generated,
            network_bytes: report.network_bytes,
            bytes_per_op: report.network_bytes as f64 / report.ops_generated.max(1) as f64,
            messages_delivered: report.messages_delivered,
            op_batches_sent: report.op_batches_sent,
            retransmission_bytes: report.retransmission_bytes,
            converged: report.converged,
        })
        .collect()
}

/// One cell of the anti-entropy vs retransmission sweep: loss rate ×
/// offline gap × recovery mechanism, recovery cost measured in encoded
/// bytes by the wire codec (see [`ScenarioMatrix::sync_vs_retransmission`]).
#[derive(Debug, Clone, Serialize)]
pub struct SyncCostRow {
    /// Loss probability of the cell.
    pub drop_prob: f64,
    /// Whether site 1 spent the run from round 2 onward offline.
    pub offline_gap: bool,
    /// `true` = state-based anti-entropy, `false` = at-least-once
    /// retransmission.
    pub anti_entropy: bool,
    /// Operations generated across all sites.
    pub ops: usize,
    /// Encoded operation-envelope bytes on the wire (initial broadcasts
    /// plus retransmissions).
    pub network_bytes: usize,
    /// What the recovery mechanism itself cost: `retransmission_bytes +
    /// ack_bytes` for the baseline, `sync_bytes` for anti-entropy.
    pub recovery_bytes: usize,
    /// `recovery_bytes / ops`.
    pub recovery_bytes_per_op: f64,
    /// Digest-walk messages ([`treedoc_sim::SimReport::sync_digest_msgs`]).
    pub sync_digest_msgs: u64,
    /// Leaf cell-exchange messages.
    pub sync_run_msgs: u64,
    /// Cells integrated by sync sessions.
    pub sync_cells: u64,
    /// Messages re-sent by the baseline.
    pub retransmissions: u64,
    /// Whether the cell converged.
    pub converged: bool,
}

/// Runs the loss × offline-gap × mechanism sweep
/// ([`ScenarioMatrix::sync_vs_retransmission`]) and returns one row per
/// cell — the experiment behind the "anti-entropy vs retransmission"
/// EXPERIMENTS section.
///
/// Each cell runs over its own telemetry [`Registry`]; the sync and
/// recovery byte/message figures are read back from the registry snapshot
/// (the `sim.*` instruments mirrored at the wire boundary) rather than the
/// report's private counters, and every cell registry is folded into
/// [`global_registry`] for the `--telemetry-out` dump.
pub fn sync_cost_grid(sites: usize, edits_per_site: usize) -> Vec<SyncCostRow> {
    let matrix = ScenarioMatrix::sync_vs_retransmission(Scenario {
        sites,
        edits_per_site,
        ..Scenario::default()
    });
    let mut registries: Vec<Registry> = Vec::new();
    let cells = matrix.run_with(|_| {
        let registry = Registry::new();
        let handle = registry.handle();
        registries.push(registry);
        handle
    });
    cells
        .into_iter()
        .zip(registries)
        .map(|((scenario, report), registry)| {
            let snapshot = registry.snapshot();
            global_registry().merge_from(&registry);
            let counter = |name: &str| snapshot.counter(name).unwrap_or(0);
            let recovery_bytes = if scenario.anti_entropy {
                counter("sim.sync_bytes") as usize
            } else {
                (counter("sim.retransmission_bytes") + counter("sim.ack_bytes")) as usize
            };
            SyncCostRow {
                drop_prob: scenario.drop_prob,
                offline_gap: scenario.offline.is_some(),
                anti_entropy: scenario.anti_entropy,
                ops: report.ops_generated,
                network_bytes: report.network_bytes,
                recovery_bytes,
                recovery_bytes_per_op: recovery_bytes as f64 / report.ops_generated.max(1) as f64,
                sync_digest_msgs: counter("sim.sync_digest_msgs"),
                sync_run_msgs: counter("sim.sync_run_msgs"),
                sync_cells: counter("sim.sync_cells"),
                retransmissions: report.retransmissions,
                converged: report.converged,
            }
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Core document speed and memory-per-char (run-coalescing trajectory)
// ---------------------------------------------------------------------------

/// One timed case of the `core_speed` benchmark: a sequential-typing or
/// replay workload over the document core, reported as throughput.
#[derive(Debug, Clone, Serialize)]
pub struct CoreSpeedRow {
    /// Case label.
    pub case: String,
    /// Operations (or replayed revisions) executed.
    pub ops: usize,
    /// Wall time, microseconds (best of `CORE_SPEED_TRIALS`).
    pub elapsed_micros: u64,
    /// Operations per second.
    pub ops_per_sec: f64,
}

/// One point of the identifier-scaling curve: a sequential-typing workload
/// at a given document size, reported as *per-op* cost so a superlinear
/// identifier representation shows up as a rising column, not a subtly bent
/// total.
#[derive(Debug, Clone, Serialize)]
pub struct ScalingRow {
    /// Case label, `<workload>_<ops>`.
    pub case: String,
    /// Operations executed.
    pub ops: usize,
    /// Wall time, microseconds (best of `CORE_SPEED_TRIALS`).
    pub elapsed_micros: u64,
    /// Per-operation cost in nanoseconds — flat across sizes for an O(1)
    /// amortised hot path.
    pub nanos_per_op: f64,
}

/// One memory-per-char case of the `core_speed` benchmark.
#[derive(Debug, Clone, Serialize)]
pub struct CoreMemoryRow {
    /// Case label.
    pub case: String,
    /// Live atoms in the final document.
    pub live_atoms: usize,
    /// Occupied tree slots.
    pub total_nodes: usize,
    /// Measured index heap bytes ([`Treedoc::index_bytes`]).
    pub index_bytes: usize,
    /// `index_bytes / live_atoms`.
    pub index_bytes_per_char: f64,
    /// Paper model (26 B/node) bytes, for continuity with Table 1.
    pub paper_model_bytes: usize,
    /// Tree height of the final document.
    pub height: usize,
}

/// Trials per timed case; the best run is reported (same policy as
/// [`recovery_cost_grid`]).
pub const CORE_SPEED_TRIALS: usize = 3;

/// The process-wide telemetry registry the bench runners aggregate into:
/// every runner that drives an instrumented subsystem folds its per-run
/// registry in with [`Registry::merge_from`], and
/// [`BenchArgs::emit_telemetry`] dumps the combined snapshot.
pub fn global_registry() -> &'static Registry {
    static GLOBAL: std::sync::OnceLock<Registry> = std::sync::OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

/// Parses the shared bench-binary CLI surface: `--json` switches to
/// machine-readable stdout, `--out PATH` additionally writes that JSON to
/// `PATH` (the committed `BENCH_*.json` baselines at the repo root), and
/// `--telemetry-out PATH` writes the aggregated [`global_registry`]
/// snapshot as JSON.
#[derive(Debug, Default, Clone)]
pub struct BenchArgs {
    /// Print machine-readable JSON instead of the paper-style tables.
    pub json: bool,
    /// Baseline file to (over)write with the JSON output.
    pub out: Option<String>,
    /// File to (over)write with the aggregated telemetry snapshot.
    pub telemetry_out: Option<String>,
}

impl BenchArgs {
    /// Reads the process arguments.
    pub fn from_env() -> Self {
        let mut args = BenchArgs::default();
        let mut iter = std::env::args().skip(1);
        while let Some(arg) = iter.next() {
            match arg.as_str() {
                "--json" => args.json = true,
                "--out" => args.out = iter.next(),
                "--telemetry-out" => args.telemetry_out = iter.next(),
                _ => {}
            }
        }
        args
    }

    /// Serialises `value`, prints it when `--json` was given and writes it to
    /// the `--out` baseline when one was named. Also flushes the telemetry
    /// snapshot when `--telemetry-out` was named, so every bin's output flow
    /// carries its instrument dump.
    pub fn emit<T: Serialize>(&self, value: &T) -> bool {
        self.emit_telemetry();
        if !self.json && self.out.is_none() {
            return false;
        }
        let json = serde_json::to_string_pretty(value).expect("serializable output");
        if let Some(path) = &self.out {
            std::fs::write(path, format!("{json}\n")).expect("baseline file writable");
        }
        if self.json {
            println!("{json}");
        }
        self.json
    }

    /// Writes the aggregated [`global_registry`] snapshot to the
    /// `--telemetry-out` path, when one was named.
    pub fn emit_telemetry(&self) {
        if let Some(path) = &self.telemetry_out {
            let json = global_registry().snapshot().to_json();
            std::fs::write(path, format!("{json}\n")).expect("telemetry snapshot file writable");
        }
    }
}

use treedoc_core::Treedoc;

fn best_of<T>(run: impl FnMut() -> T) -> (T, Duration) {
    best_of_n(CORE_SPEED_TRIALS, run)
}

fn best_of_n<T>(trials: usize, mut run: impl FnMut() -> T) -> (T, Duration) {
    let mut best: Option<(T, Duration)> = None;
    for _ in 0..trials.max(1) {
        let t = std::time::Instant::now();
        let out = run();
        let elapsed = t.elapsed();
        if best.as_ref().is_none_or(|(_, b)| elapsed < *b) {
            best = Some((out, elapsed));
        }
    }
    best.expect("at least one trial ran")
}

fn speed_row(case: &str, ops: usize, elapsed: Duration) -> CoreSpeedRow {
    CoreSpeedRow {
        case: case.to_string(),
        ops,
        elapsed_micros: elapsed.as_micros() as u64,
        ops_per_sec: ops as f64 / elapsed.as_secs_f64().max(1e-9),
    }
}

fn memory_row<D: treedoc_core::Disambiguator + treedoc_core::HasSource>(
    case: &str,
    doc: &Treedoc<String, D>,
) -> CoreMemoryRow {
    let stats = doc.stats();
    let index_bytes = doc.index_bytes();
    CoreMemoryRow {
        case: case.to_string(),
        live_atoms: stats.live_atoms,
        total_nodes: stats.total_nodes,
        index_bytes,
        index_bytes_per_char: index_bytes as f64 / stats.live_atoms.max(1) as f64,
        paper_model_bytes: stats.total_nodes * 26,
        height: stats.height,
    }
}

/// Runs the sequential-typing speed cases: local appends (the `crdt_ops`
/// `append_unbalanced` shape at scale), remote replay of a one-site typing
/// session (the `replay_512_inserts` shape at scale), and the full
/// most-active-document trace replay (the `replay_speed` reference point).
pub fn core_speed_cases(typing_ops: usize) -> Vec<CoreSpeedRow> {
    let mut rows = Vec::new();

    let site = treedoc_core::SiteId::from_u64(1);
    let (_, elapsed) = best_of(|| {
        let mut doc: Treedoc<String, treedoc_core::Sdis> = Treedoc::new(site);
        for k in 0..typing_ops {
            doc.local_insert(k, format!("a{k}")).expect("append");
        }
        doc
    });
    rows.push(speed_row("local_append_sdis", typing_ops, elapsed));

    let (_, elapsed) = best_of(|| {
        let mut doc: Treedoc<String, treedoc_core::Udis> = Treedoc::new(site);
        for k in 0..typing_ops {
            doc.local_insert(k, format!("a{k}")).expect("append");
        }
        doc
    });
    rows.push(speed_row("local_append_udis", typing_ops, elapsed));

    let mut source: Treedoc<String, treedoc_core::Udis> = Treedoc::new(site);
    let ops: Vec<_> = (0..typing_ops)
        .map(|k| source.local_insert(k, format!("a{k}")).expect("append"))
        .collect();
    let (_, elapsed) = best_of(|| {
        let mut doc: Treedoc<String, treedoc_core::Udis> =
            Treedoc::new(treedoc_core::SiteId::from_u64(2));
        for op in &ops {
            doc.apply(op).expect("replay");
        }
        doc
    });
    rows.push(speed_row("remote_replay_udis", typing_ops, elapsed));

    let (report, _) = best_of(replay_most_active);
    rows.push(speed_row(
        "replay_most_active",
        report.inserts + report.deletes,
        report.elapsed,
    ));

    rows
}

/// Document sizes of the identifier-scaling curve ([`core_scaling_curve`]).
pub const SCALING_SIZES: [usize; 3] = [2_000, 20_000, 100_000];

/// Runs the identifier-scaling curve: sequential typing (SDIS local appends)
/// and remote replay (UDIS) at each of [`SCALING_SIZES`], reporting per-op
/// nanoseconds. With owned-`Vec` identifiers every derived id cloned the
/// whole path, so per-op cost grew linearly with document depth; the chunked
/// shared representation must keep these columns flat.
pub fn core_scaling_curve() -> Vec<ScalingRow> {
    let site = treedoc_core::SiteId::from_u64(1);
    let mut rows = Vec::new();
    for &n in &SCALING_SIZES {
        let (_, elapsed) = best_of(|| {
            let mut doc: Treedoc<String, treedoc_core::Sdis> = Treedoc::new(site);
            for k in 0..n {
                doc.local_insert(k, format!("a{k}")).expect("append");
            }
            doc
        });
        rows.push(scaling_row("local_append_sdis", n, elapsed));

        let mut source: Treedoc<String, treedoc_core::Udis> = Treedoc::new(site);
        let ops: Vec<_> = (0..n)
            .map(|k| source.local_insert(k, format!("a{k}")).expect("append"))
            .collect();
        let (_, elapsed) = best_of(|| {
            let mut doc: Treedoc<String, treedoc_core::Udis> =
                Treedoc::new(treedoc_core::SiteId::from_u64(2));
            for op in &ops {
                doc.apply(op).expect("replay");
            }
            doc
        });
        rows.push(scaling_row("remote_replay_udis", n, elapsed));
    }
    rows
}

fn scaling_row(workload: &str, ops: usize, elapsed: Duration) -> ScalingRow {
    ScalingRow {
        case: format!("{workload}_{ops}"),
        ops,
        elapsed_micros: elapsed.as_micros() as u64,
        nanos_per_op: elapsed.as_nanos() as f64 / ops.max(1) as f64,
    }
}

/// Runs the memory-per-char cases: a pure sequential-typing document (the
/// run-coalescing best case) and a flattened equivalent.
pub fn core_memory_cases(chars: usize) -> Vec<CoreMemoryRow> {
    let site = treedoc_core::SiteId::from_u64(1);
    let mut rows = Vec::new();

    let mut typed: Treedoc<String, treedoc_core::Sdis> = Treedoc::new(site);
    for k in 0..chars {
        typed.local_insert(k, "x".to_string()).expect("append");
    }
    rows.push(memory_row("sequential_typing", &typed));

    let atoms: Vec<String> = (0..chars).map(|_| "x".to_string()).collect();
    let exploded: Treedoc<String, treedoc_core::Sdis> = Treedoc::from_atoms(site, &atoms);
    rows.push(memory_row("flattened", &exploded));

    rows
}

// ---------------------------------------------------------------------------
// Telemetry overhead (the observability layer's own cost)
// ---------------------------------------------------------------------------

/// One variant of the `telemetry_overhead` bench: the sequential-typing
/// stamp workload with telemetry absent, disabled, or enabled.
#[derive(Debug, Clone, Serialize)]
pub struct OverheadRow {
    /// Variant label (`baseline` / `disabled` / `enabled`).
    pub case: String,
    /// Operations stamped.
    pub ops: usize,
    /// Wall time, microseconds (best of [`OVERHEAD_TRIALS`]).
    pub elapsed_micros: u64,
    /// Operations per second.
    pub ops_per_sec: f64,
    /// Slowdown against the baseline variant, percent (negative values are
    /// measurement noise; the baseline row is 0 by construction).
    pub overhead_pct: f64,
}

/// Trials per overhead variant; best-of minimums are far more stable than
/// means for a sub-5% comparison.
pub const OVERHEAD_TRIALS: usize = 9;

fn overhead_typing_run(ops: usize, telemetry: Option<&Telemetry>) -> u64 {
    let site = treedoc_core::SiteId::from_u64(1);
    let mut replica = Replica::new(site, WireDoc::new(site));
    if let Some(telemetry) = telemetry {
        replica.set_telemetry(telemetry);
    }
    for k in 0..ops {
        let len = replica.doc().len();
        let op = replica
            .doc_mut()
            .local_insert(len, format!("typed line {k}"))
            .expect("append in range");
        let _ = replica.stamp(op);
    }
    replica.digest()
}

/// Measures what the telemetry layer itself costs on the hot `Replica`
/// stamp path: the same `ops`-operation sequential-typing session with no
/// telemetry call at all (`baseline`), an inert handle (`disabled` — one
/// `None` branch per instrument hit), and a live registry (`enabled` —
/// atomic counters plus a histogram record per op). The `enabled` row's
/// `overhead_pct` is the figure the acceptance bound (<5%) pins.
///
/// Trials are interleaved round-robin across the three variants (taking
/// each variant's best) so clock-frequency or load drift over the bench's
/// lifetime cannot masquerade as overhead of whichever variant ran last.
pub fn telemetry_overhead_cases(ops: usize) -> Vec<OverheadRow> {
    let registry = Registry::new();
    let enabled_handle = registry.handle();
    let disabled_handle = Telemetry::disabled();
    let variants: [Option<&Telemetry>; 3] = [None, Some(&disabled_handle), Some(&enabled_handle)];
    let mut best = [Duration::MAX; 3];
    for _ in 0..OVERHEAD_TRIALS {
        for (slot, telemetry) in variants.iter().enumerate() {
            let t = std::time::Instant::now();
            overhead_typing_run(ops, *telemetry);
            best[slot] = best[slot].min(t.elapsed());
        }
    }
    let [baseline, disabled, enabled] = best;
    global_registry().merge_from(&registry);

    let row = |case: &str, elapsed: Duration| OverheadRow {
        case: case.to_string(),
        ops,
        elapsed_micros: elapsed.as_micros() as u64,
        ops_per_sec: ops as f64 / elapsed.as_secs_f64().max(1e-9),
        overhead_pct: (elapsed.as_secs_f64() - baseline.as_secs_f64())
            / baseline.as_secs_f64().max(1e-9)
            * 100.0,
    };
    vec![
        row("baseline", baseline),
        row("disabled", disabled),
        row("enabled", enabled),
    ]
}

/// One row of the multi-document hosting sweep (`node_hosting` bin): a
/// Zipf-popularity session workload at one resident-set size.
#[derive(Debug, Clone, Serialize)]
pub struct HostingRow {
    /// Row label (`resident-<capacity>`).
    pub case: String,
    /// Documents in the hosted population.
    pub documents: usize,
    /// Resident-set capacity.
    pub max_resident: usize,
    /// Documents the workload actually touched.
    pub hosted_docs: usize,
    /// Operations served.
    pub ops: u64,
    /// Median op service latency, µs.
    pub op_p50_micros: u64,
    /// 99th-percentile op service latency, µs (cold fault-ins live here).
    pub op_p99_micros: u64,
    /// In-memory index bytes of the resident set at the end of the run.
    pub resident_bytes: u64,
    /// Cold evictions performed.
    pub evictions: u64,
    /// Fault-ins from the store.
    pub fault_ins: u64,
    /// Backend segment appends (group commit: ~shards × commits, not ~ops).
    pub segment_appends: u64,
    /// Post-crash restart (shard scan + rediscovery), µs.
    pub restart_micros: u64,
    /// Post-crash working-set refill (`max_resident` fault-ins), µs.
    pub refill_micros: u64,
}

/// Runs the hosting workload once per resident-set size over a fixed
/// document population and session schedule.
///
/// Each sweep point runs over its own telemetry [`Registry`] (the latency
/// percentiles in the report come from the node's `node.op_micros`
/// histogram); the op count is read back from the registry snapshot and the
/// registry is folded into [`global_registry`] for the `--telemetry-out`
/// dump.
pub fn hosting_sweep(documents: usize, sessions: usize, residents: &[usize]) -> Vec<HostingRow> {
    residents
        .iter()
        .map(|&max_resident| {
            let scenario = HostingScenario {
                documents,
                sessions,
                max_resident,
                ..HostingScenario::default()
            };
            let registry = Registry::new();
            let report = run_hosting_with(&scenario, &registry.handle());
            let snapshot = registry.snapshot();
            global_registry().merge_from(&registry);
            HostingRow {
                case: format!("resident-{max_resident}"),
                documents,
                max_resident,
                hosted_docs: report.hosted_docs,
                ops: snapshot.counter("node.ops").unwrap_or(0),
                op_p50_micros: report.op_p50_micros,
                op_p99_micros: report.op_p99_micros,
                resident_bytes: report.resident_bytes,
                evictions: report.evictions,
                fault_ins: report.fault_ins,
                segment_appends: report.segment_appends,
                restart_micros: report.restart_micros,
                refill_micros: report.refill_micros,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distributed_flatten_grid_converges_and_reports_costs() {
        let rows = distributed_flatten_grid(3, 20);
        assert_eq!(rows.len(), 8);
        for row in &rows {
            assert!(row.converged, "{row:?}");
            assert!(row.commits >= 1, "{row:?}");
            assert!(row.protocol_messages > 0, "{row:?}");
        }
        let msgs = |p: &str| -> u64 {
            rows.iter()
                .filter(|r| r.protocol == p)
                .map(|r| r.protocol_messages)
                .sum()
        };
        assert!(msgs("2pc") > 0 && msgs("3pc") > 0);
    }

    #[test]
    fn labels() {
        assert_eq!(flatten_label(None), "no-flatten");
        assert_eq!(flatten_label(Some(2)), "flatten-2");
    }

    #[test]
    fn recovery_grid_replays_exactly_the_logged_ops() {
        let rows = recovery_cost_grid(&[0, 15]);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].wal_records_replayed, 0);
        assert_eq!(rows[0].wal_bytes, 0);
        assert_eq!(rows[1].wal_records_replayed, 15);
        assert!(rows[1].wal_bytes > 0);
        assert!(rows[1].recovered_bytes > rows[0].recovered_bytes);
    }

    #[test]
    fn wal_append_throughput_is_positive() {
        let row = wal_append_throughput(100, 64);
        assert!(row.appends_per_sec > 0.0);
        assert!(row.bytes_per_sec > 0.0);
        assert_eq!(row.records, 100);
    }

    #[test]
    fn crashed_store_recovers_to_the_same_digest() {
        let store = crashed_store_with_ops(25);
        let again = crashed_store_with_ops(25);
        let (d1, r1) = recover_crashed_store(store);
        let (d2, _) = recover_crashed_store(again);
        assert_eq!(d1, d2, "recovery is deterministic");
        assert_eq!(r1.wal_records_replayed, 25);
        assert!(r1.snapshot_hit);
    }

    #[test]
    fn batched_binary_beats_the_per_op_json_baseline() {
        // The acceptance criterion: the batched binary path measurably cuts
        // bytes-per-op against the per-op JSON wire this workspace used to
        // ship (and the un-batched binary codec sits in between).
        let rows = wire_encoding_comparison(256, &[32]);
        let by_label = |label: &str| {
            rows.iter()
                .find(|r| r.transport == label)
                .unwrap_or_else(|| panic!("row {label} missing"))
                .bytes_per_op
        };
        let json = by_label("json-per-op");
        let binary = by_label("binary-per-op");
        let batched = by_label("binary-batch-32");
        assert!(
            binary * 2.0 < json,
            "binary per-op must at least halve the JSON wire: {binary} vs {json}"
        );
        assert!(
            batched * 2.0 < binary,
            "delta-encoded batches must at least halve the per-op binary \
             cost on sequential typing: {batched} vs {binary}"
        );
    }

    #[test]
    fn binary_wal_is_smaller_than_json_wal() {
        let row = wal_format_comparison(64);
        assert!(
            row.binary_bytes < row.json_bytes,
            "binary WAL must be smaller: {row:?}"
        );
        assert!(row.ratio > 2.0, "expected a >2x WAL saving: {row:?}");
    }

    #[test]
    fn wire_cost_grid_converges_and_batching_helps() {
        let rows = wire_cost_grid(3, 30);
        assert_eq!(rows.len(), 2 * 4);
        for row in &rows {
            assert!(row.converged, "{row:?}");
        }
        let clean_per_op = rows
            .iter()
            .find(|r| r.drop_prob == 0.0 && r.batch_max_ops == 1)
            .unwrap();
        let clean_batched = rows
            .iter()
            .find(|r| r.drop_prob == 0.0 && r.batch_max_ops == 64)
            .unwrap();
        assert!(
            clean_batched.bytes_per_op < clean_per_op.bytes_per_op,
            "{clean_batched:?} vs {clean_per_op:?}"
        );
    }

    #[test]
    fn table2_has_per_document_and_aggregate_rows() {
        let rows = table2();
        assert_eq!(rows.len(), 6 + 3);
        let most = rows.iter().find(|r| r.label == "most active").unwrap();
        assert_eq!(most.revisions, 870);
        let least = rows.iter().find(|r| r.label == "less active").unwrap();
        assert_eq!(least.revisions, 51);
    }
}
