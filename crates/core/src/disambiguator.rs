//! Disambiguators (§3.3 of the paper).
//!
//! When two sites concurrently insert an atom at the same tree position, the
//! resulting mini-nodes share a major node and are told apart — and ordered —
//! by a *disambiguator*. The paper studies two designs:
//!
//! * **UDIS** ([`Udis`]): a `(counter, site)` pair. Every identifier ever
//!   produced is globally unique, so a deleted node can be discarded
//!   immediately (no tombstones) — at the price of a larger identifier.
//! * **SDIS** ([`Sdis`]): the site identifier alone. Cheaper, but reusing a
//!   position after a delete could produce two different atoms with the same
//!   identifier; deleted nodes must therefore be kept as *tombstones*.
//!
//! The deletion policy is tied to the disambiguator type through
//! [`Disambiguator::DISCARD_ON_DELETE`], so a `Treedoc<_, Udis>` garbage
//! collects eagerly while a `Treedoc<_, Sdis>` accumulates tombstones until a
//! structural clean-up (`flatten`) removes them.

use std::fmt::{self, Debug};
use std::hash::Hash;

use serde::{de::DeserializeOwned, Deserialize, Serialize};

use crate::hash::{ContentHash, Hasher64};
use crate::site::{SiteId, SITE_ID_BYTES};

/// Number of bytes of the UDIS per-site counter, per the paper's evaluation
/// ("4 bytes for the UDIS counter").
pub const UDIS_COUNTER_BYTES: usize = 4;

/// A disambiguator tells apart mini-nodes created by concurrent inserts at
/// the same tree position, and orders them (§3.1, §3.3).
///
/// Implementations must provide a total order; the order is arbitrary but
/// must be the same at every site (it is derived from plain data, so it is).
pub trait Disambiguator:
    Clone + Eq + Ord + Hash + Debug + Send + Sync + Serialize + DeserializeOwned + ContentHash + 'static
{
    /// Whether a deleted node may be discarded immediately (`true`, UDIS) or
    /// must be kept as a tombstone (`false`, SDIS). See §3.3 of the paper.
    const DISCARD_ON_DELETE: bool;

    /// Size in bytes charged per disambiguator by the overhead model,
    /// following the constants used in the paper's evaluation (§5).
    const ACCOUNTED_BYTES: usize;

    /// The site that generated this disambiguator.
    fn site(&self) -> SiteId;

    /// The disambiguator this site's source would hand out immediately after
    /// `self`, or `None` when that is not derivable from `self` alone.
    ///
    /// This is what lets the run-coalesced store ([`crate::run::RunTree`])
    /// recognise an Algorithm-1 append/prepend chain without storing one
    /// identifier per atom: SDIS sources are constant, UDIS sources count up
    /// by one per allocation.
    fn sequential_next(&self) -> Option<Self> {
        self.sequential_nth(1)
    }

    /// The disambiguator `n` sequential allocations after `self`, if
    /// derivable (see [`Disambiguator::sequential_next`]).
    fn sequential_nth(&self, n: usize) -> Option<Self>;
}

/// A *unique* disambiguator (§3.3.1): a `(counter, site)` pair where the
/// counter is a per-site persistent counter.
///
/// Ordered by `(counter, site)` exactly as in the paper:
/// `(c1, s1) < (c2, s2)  iff  c1 < c2 ∨ (c1 = c2 ∧ s1 < s2)`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Udis {
    counter: u32,
    site: SiteId,
}

impl Udis {
    /// Creates a UDIS disambiguator from a counter value and a site.
    pub const fn new(counter: u32, site: SiteId) -> Self {
        Udis { counter, site }
    }

    /// The per-site counter component.
    pub const fn counter(&self) -> u32 {
        self.counter
    }
}

impl Disambiguator for Udis {
    const DISCARD_ON_DELETE: bool = true;
    const ACCOUNTED_BYTES: usize = SITE_ID_BYTES + UDIS_COUNTER_BYTES;

    fn site(&self) -> SiteId {
        self.site
    }

    fn sequential_nth(&self, n: usize) -> Option<Self> {
        let step = u32::try_from(n).ok()?;
        let counter = self.counter.checked_add(step)?;
        Some(Udis::new(counter, self.site))
    }
}

impl ContentHash for Udis {
    fn feed(&self, hasher: &mut Hasher64) {
        hasher.write_u32(self.counter);
        self.site.feed(hasher);
    }
}

impl fmt::Debug for Udis {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Display for Udis {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}#{}", self.site, self.counter)
    }
}

/// A *site* disambiguator (§3.3.2): the site identifier alone.
///
/// Two different atoms inserted by the same site could collide on the same
/// identifier if nodes were discarded, so deletes leave tombstones behind.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Sdis {
    site: SiteId,
}

impl Sdis {
    /// Creates an SDIS disambiguator for a site.
    pub const fn new(site: SiteId) -> Self {
        Sdis { site }
    }
}

impl Disambiguator for Sdis {
    const DISCARD_ON_DELETE: bool = false;
    const ACCOUNTED_BYTES: usize = SITE_ID_BYTES;

    fn site(&self) -> SiteId {
        self.site
    }

    fn sequential_nth(&self, _n: usize) -> Option<Self> {
        // An SDIS source hands out the same value forever.
        Some(*self)
    }
}

impl ContentHash for Sdis {
    fn feed(&self, hasher: &mut Hasher64) {
        self.site.feed(hasher);
    }
}

impl fmt::Debug for Sdis {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Display for Sdis {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.site)
    }
}

/// Allocates fresh disambiguators for the local site.
///
/// A [`Treedoc`](crate::Treedoc) owns one of these; every local insert draws
/// the disambiguator for the new atom from it.
pub trait DisSource {
    /// The disambiguator type produced.
    type Dis: Disambiguator;

    /// Returns the next disambiguator for a locally initiated insert.
    fn next_dis(&mut self) -> Self::Dis;

    /// The site this source allocates on behalf of.
    fn site(&self) -> SiteId;

    /// Tells the source that `dis` — one of *its own* earlier allocations —
    /// has been replayed from a durable log. Stateful sources (UDIS) must
    /// advance past it so post-recovery inserts never reuse an identifier;
    /// stateless sources (SDIS) ignore it.
    fn observe_replayed(&mut self, dis: &Self::Dis) {
        let _ = dis;
    }
}

/// Disambiguator source for [`Udis`]: a per-site persistent counter.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct UdisSource {
    site: SiteId,
    counter: u32,
}

impl UdisSource {
    /// Creates a source starting at counter 0.
    pub const fn new(site: SiteId) -> Self {
        UdisSource { site, counter: 0 }
    }

    /// Current value of the counter (the next UDIS issued will use it).
    pub const fn counter(&self) -> u32 {
        self.counter
    }
}

impl DisSource for UdisSource {
    type Dis = Udis;

    fn next_dis(&mut self) -> Udis {
        let d = Udis::new(self.counter, self.site);
        self.counter += 1;
        d
    }

    fn site(&self) -> SiteId {
        self.site
    }

    fn observe_replayed(&mut self, dis: &Udis) {
        // Uniqueness of UDIS identifiers depends on the counter never
        // revisiting a value already issued; a replayed allocation proves the
        // counter had passed it.
        self.counter = self.counter.max(dis.counter().saturating_add(1));
    }
}

/// Disambiguator source for [`Sdis`]: always the site identifier.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SdisSource {
    site: SiteId,
}

impl SdisSource {
    /// Creates a source for the given site.
    pub const fn new(site: SiteId) -> Self {
        SdisSource { site }
    }
}

impl DisSource for SdisSource {
    type Dis = Sdis;

    fn next_dis(&mut self) -> Sdis {
        Sdis::new(self.site)
    }

    fn site(&self) -> SiteId {
        self.site
    }
}

/// Ties a disambiguator type to its canonical source, so `Treedoc<A, D>` can
/// construct the right source from just a [`SiteId`].
pub trait HasSource: Disambiguator {
    /// The source type that allocates this kind of disambiguator.
    type Source: DisSource<Dis = Self> + Clone + Debug + Send + Sync + 'static;

    /// Builds a fresh source for the given site.
    fn source(site: SiteId) -> Self::Source;
}

impl HasSource for Udis {
    type Source = UdisSource;

    fn source(site: SiteId) -> UdisSource {
        UdisSource::new(site)
    }
}

impl HasSource for Sdis {
    type Source = SdisSource;

    fn source(site: SiteId) -> SdisSource {
        SdisSource::new(site)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn udis_order_is_counter_then_site() {
        let a = Udis::new(0, SiteId::from_u64(9));
        let b = Udis::new(1, SiteId::from_u64(1));
        let c = Udis::new(1, SiteId::from_u64(2));
        assert!(a < b, "lower counter wins regardless of site");
        assert!(b < c, "equal counters fall back to site order");
    }

    #[test]
    fn sdis_order_is_site_order() {
        let a = Sdis::new(SiteId::from_u64(1));
        let b = Sdis::new(SiteId::from_u64(2));
        assert!(a < b);
        assert_eq!(a, Sdis::new(SiteId::from_u64(1)));
    }

    #[test]
    fn accounted_sizes_match_paper_constants() {
        // §5: 6 bytes for site identifiers, 4 bytes for the UDIS counter.
        assert_eq!(Sdis::ACCOUNTED_BYTES, 6);
        assert_eq!(Udis::ACCOUNTED_BYTES, 10);
    }

    #[test]
    fn deletion_policy_matches_design() {
        // Read through a binding so the policy flags are exercised as values
        // (the direct form trips clippy::assertions_on_constants).
        let policies = [Udis::DISCARD_ON_DELETE, Sdis::DISCARD_ON_DELETE];
        assert_eq!(policies, [true, false]);
    }

    #[test]
    fn udis_source_is_monotonic_and_unique() {
        let mut src = UdisSource::new(SiteId::from_u64(3));
        let issued: Vec<Udis> = (0..100).map(|_| src.next_dis()).collect();
        for w in issued.windows(2) {
            assert!(w[0] < w[1]);
        }
        assert_eq!(src.counter(), 100);
    }

    #[test]
    fn udis_source_advances_past_replayed_allocations() {
        // A recovered replica replays its own inserts from the WAL; the
        // source must never re-issue a counter it sees go by.
        let mut src = UdisSource::new(SiteId::from_u64(3));
        src.observe_replayed(&Udis::new(41, SiteId::from_u64(3)));
        assert_eq!(src.counter(), 42);
        // Observing something older must not move the counter backwards.
        src.observe_replayed(&Udis::new(7, SiteId::from_u64(3)));
        assert_eq!(src.counter(), 42);
        assert_eq!(src.next_dis(), Udis::new(42, SiteId::from_u64(3)));
    }

    #[test]
    fn sdis_source_is_constant() {
        let mut src = SdisSource::new(SiteId::from_u64(3));
        assert_eq!(src.next_dis(), src.next_dis());
        assert_eq!(src.site(), SiteId::from_u64(3));
    }

    #[test]
    fn display_forms() {
        let u = Udis::new(5, SiteId::from_u64(2));
        assert_eq!(u.to_string(), "s2#5");
        let s = Sdis::new(SiteId::from_u64(2));
        assert_eq!(s.to_string(), "s2");
    }
}
