//! The user-facing replica object: [`Treedoc`].
//!
//! A `Treedoc<A, D>` is one replica of the shared buffer. Local edits are
//! expressed by *index* (like a plain text buffer) and return the [`Op`] that
//! must be shipped — in causal (happened-before) order — to every other
//! replica, where it is replayed with [`Treedoc::apply`]. Because the data
//! type is a CRDT, replicas that have applied the same set of operations hold
//! the same document, whatever the interleaving of concurrent operations.
//!
//! The type parameter `D` picks the disambiguator design of §3.3 ([`Udis`] or
//! [`Sdis`]) and with it the deletion policy (eager discard vs. tombstones).
//! [`TreedocConfig`] toggles the §4.1 balancing strategies.
//!
//! [`Udis`]: crate::Udis
//! [`Sdis`]: crate::Sdis

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::alloc::{balanced_append, batch_subtree_ids, new_pos_id, Neighbours};
use crate::atom::Atom;
use crate::disambiguator::{DisSource, Disambiguator, HasSource};
use crate::error::{Error, Result};
use crate::flatten::FlattenOutcome;
use crate::node::Content;
use crate::ops::Op;
use crate::path::{PosId, Side};
use crate::run::RunTree;
use crate::site::SiteId;
use crate::stats::DocStats;
use crate::tree::Tree;

/// Tuning knobs for a replica.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TreedocConfig {
    /// Enable the §4.1 balancing strategies: grown append subtrees and
    /// minimal subtrees for batch inserts. Without it, identifiers are
    /// allocated exactly as by Algorithm 1 (which degenerates into long
    /// paths for append-heavy workloads).
    pub balancing: bool,
}

impl TreedocConfig {
    /// Configuration with the balancing strategies enabled.
    pub fn balanced() -> Self {
        TreedocConfig { balancing: true }
    }
}

/// One replica of the shared edit buffer.
///
/// Atoms are held in a run-coalesced store ([`RunTree`]): contiguous
/// same-site sequential insertions occupy a single run, so sequential typing
/// costs `O(1)` amortised per character instead of one tree node each. The
/// per-atom [`Tree`] view can still be materialised with
/// [`tree`](Self::tree) for algorithms and formats that need it.
#[derive(Debug, Clone)]
pub struct Treedoc<A, D: HasSource> {
    store: RunTree<A, D>,
    source: D::Source,
    config: TreedocConfig,
    /// Revision counter used to stamp tree regions for the cold-subtree
    /// flatten heuristic. Advanced by the embedding application (e.g. once
    /// per replayed revision) through [`Treedoc::next_revision`].
    revision: u64,
    /// Plain positions reserved by the last grown append subtree (§4.1);
    /// consumed by subsequent appends while they remain free.
    reserved_appends: Vec<PosId<D>>,
}

impl<A: Atom, D: Disambiguator + HasSource> Treedoc<A, D> {
    /// Creates an empty replica owned by `site`.
    pub fn new(site: SiteId) -> Self {
        Self::with_config(site, TreedocConfig::default())
    }

    /// Creates an empty replica with an explicit configuration.
    pub fn with_config(site: SiteId, config: TreedocConfig) -> Self {
        Treedoc {
            store: RunTree::new(),
            source: D::source(site),
            config,
            revision: 0,
            reserved_appends: Vec::new(),
        }
    }

    /// Creates a replica whose initial content is `atoms`, stored in the
    /// canonical (metadata-free) `explode` layout. Every replica constructed
    /// this way from the same atoms holds identical identifiers, so it can be
    /// used as the common starting point of a cooperative session.
    pub fn from_atoms(site: SiteId, atoms: &[A]) -> Self {
        Self::from_atoms_with_config(site, atoms, TreedocConfig::default())
    }

    /// [`from_atoms`](Self::from_atoms) with an explicit configuration.
    pub fn from_atoms_with_config(site: SiteId, atoms: &[A], config: TreedocConfig) -> Self {
        let mut doc = Self::with_config(site, config);
        doc.store = RunTree::from_exploded(atoms.to_vec());
        doc
    }

    /// Reassembles a replica from durably stored parts: a decoded tree (e.g.
    /// from a [`DiskImage`](../../treedoc_storage/struct.DiskImage.html)),
    /// the disambiguator source and the revision counter as they were when
    /// the snapshot was taken.
    ///
    /// The §4.1 append-reservation cache is *not* part of the durable state:
    /// a recovered replica simply re-grows its next append subtree, which
    /// affects identifier length, never correctness.
    pub fn from_parts(
        tree: Tree<A, D>,
        source: D::Source,
        config: TreedocConfig,
        revision: u64,
    ) -> Self {
        Treedoc {
            store: RunTree::from_tree(&tree),
            source,
            config,
            revision,
            reserved_appends: Vec::new(),
        }
    }

    /// The disambiguator source, exposed so the durability layer can persist
    /// its state (the UDIS counter must survive a crash or uniqueness is
    /// lost).
    pub fn dis_source(&self) -> &D::Source {
        &self.source
    }

    /// Tells the replica that `op` — an operation *it initiated itself* — is
    /// being replayed from a durable log rather than re-executed. Keeps the
    /// disambiguator source ahead of every identifier it ever issued (see
    /// [`DisSource::observe_replayed`]).
    pub fn note_replayed_local(&mut self, op: &Op<A, D>) {
        if let Op::Insert { id, .. } = op {
            let site = self.site();
            let source = &mut self.source;
            id.visit_elems_from(0, |_, dis| {
                if let Some(dis) = dis {
                    if dis.site() == site {
                        source.observe_replayed(dis);
                    }
                }
            });
        }
    }

    // ------------------------------------------------------------------
    // Reading
    // ------------------------------------------------------------------

    /// Number of (live) atoms in the document.
    pub fn len(&self) -> usize {
        self.store.live_len()
    }

    /// `true` when the document holds no atom.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The atom at `index`, if any.
    pub fn get(&self, index: usize) -> Option<&A> {
        self.store.atom_at(index)
    }

    /// All atoms in document order.
    pub fn to_vec(&self) -> Vec<A> {
        self.store.to_vec()
    }

    /// Atoms paired with their position identifiers, in document order.
    pub fn to_identified_vec(&self) -> Vec<(PosId<D>, A)> {
        self.store.to_identified_vec()
    }

    /// The identifier of the `index`-th atom, if any.
    pub fn id_at(&self, index: usize) -> Option<PosId<D>> {
        self.store.id_of_live_index(index)
    }

    /// The site owning this replica.
    pub fn site(&self) -> SiteId {
        self.source.site()
    }

    /// Materialises the per-atom identifier tree equivalent to the current
    /// run-coalesced store. This walks every cell (`O(n · depth)`), so it is
    /// meant for snapshots, structural analysis and interop — not for the
    /// edit path.
    pub fn tree(&self) -> Tree<A, D> {
        self.store.to_tree()
    }

    /// Read access to the run-coalesced store.
    pub fn store(&self) -> &RunTree<A, D> {
        &self.store
    }

    /// The replica's configuration.
    pub fn config(&self) -> TreedocConfig {
        self.config
    }

    /// Number of occupied tree slots (live atoms, tombstones and ghosts).
    pub fn node_count(&self) -> usize {
        self.store.node_count()
    }

    /// Height of the identifier tree.
    pub fn height(&self) -> usize {
        self.store.height()
    }

    /// Measures the overhead statistics of §5 for this replica, in `O(1)`
    /// from the store's cached aggregates.
    pub fn stats(&self) -> DocStats {
        self.store.stats()
    }

    /// Estimated heap footprint of the identifier index (run patterns, cell
    /// vectors, live bitmaps and tree nodes) — the measured memory-per-char
    /// numerator tracked by the `core_speed` benchmark.
    pub fn index_bytes(&self) -> usize {
        self.store.index_bytes()
    }

    /// Checks the internal invariants of the identifier tree.
    pub fn check_invariants(&self) -> Result<(), String> {
        self.store.check_invariants()
    }

    // ------------------------------------------------------------------
    // State-based sync (anti-entropy)
    // ------------------------------------------------------------------

    /// Incremental merkle digest of the whole document state — every stored
    /// cell (live, tombstone and ghost) in document order. `O(1)` from the
    /// store's cached root aggregate; replicas that applied the same
    /// operation set agree on it regardless of how their stores fragmented.
    pub fn merkle_digest(&self) -> u64 {
        self.store.digest()
    }

    /// Integrates cells received through state-based anti-entropy (see
    /// [`RunTree::integrate_cell`] for the precedence rules and the SDIS
    /// soundness caveat). All cells are stamped with one fresh revision.
    /// Returns how many cells actually changed the store.
    ///
    /// Incoming identifiers decoded from a peer's transfer carry chunk chains
    /// independent of anything already stored; they are interned through a
    /// per-call [`crate::arena::PathArena`] so cells of one transfer share
    /// their common prefixes before entering the store.
    pub fn integrate_cells(
        &mut self,
        cells: impl IntoIterator<Item = (PosId<D>, Content<A>)>,
    ) -> Result<usize> {
        let rev = self.next_revision();
        let mut arena = crate::arena::PathArena::new();
        let mut changed = 0;
        for (id, content) in cells {
            if self
                .store
                .integrate_cell(&arena.intern(&id), content, rev)?
            {
                changed += 1;
            }
        }
        Ok(changed)
    }

    /// Replaces this replica's content with `donor`'s while keeping the
    /// local identity (site, disambiguator source) — the late-joiner
    /// bootstrap: a brand-new site adopts a snapshot transferred from any
    /// peer and can edit immediately under its own site, with no identifier
    /// collisions because its disambiguator source is untouched.
    ///
    /// The revision counter takes the maximum of both sides so the cold-
    /// subtree flatten heuristic never sees time move backwards; the local
    /// configuration is kept (it only shapes local allocation heuristics).
    pub fn adopt_state(&mut self, donor: Treedoc<A, D>) {
        self.store = donor.store;
        self.revision = self.revision.max(donor.revision);
        self.reserved_appends.clear();
    }

    // ------------------------------------------------------------------
    // Revisions (drives the cold-subtree flatten heuristic)
    // ------------------------------------------------------------------

    /// Current revision number.
    pub fn revision(&self) -> u64 {
        self.revision
    }

    /// Starts a new revision: subsequent edits are stamped with the new
    /// revision number, which the cold-subtree heuristic of
    /// [`flatten_cold`](Self::flatten_cold) uses to find quiescent regions.
    pub fn next_revision(&mut self) -> u64 {
        self.revision += 1;
        self.revision
    }

    // ------------------------------------------------------------------
    // Local edits (initiator side)
    // ------------------------------------------------------------------

    /// Inserts `atom` so that it becomes the `index`-th atom of the document
    /// (`index` may equal [`len`](Self::len) to append). Returns the
    /// operation to broadcast to the other replicas.
    pub fn local_insert(&mut self, index: usize, atom: A) -> Result<Op<A, D>> {
        let len = self.len();
        if index > len {
            return Err(Error::IndexOutOfBounds { index, len });
        }
        let id = self.allocate_id(index, len)?;
        self.store.insert(&id, atom.clone(), self.revision)?;
        Ok(Op::Insert { id, atom })
    }

    /// Inserts a run of consecutive atoms starting at `index`. With balancing
    /// enabled the run is laid out as a minimal complete subtree (§4.1 /
    /// §5.1), which keeps identifiers short; otherwise this is equivalent to
    /// repeated [`local_insert`](Self::local_insert) calls.
    pub fn local_insert_batch(&mut self, index: usize, atoms: &[A]) -> Result<Vec<Op<A, D>>> {
        let len = self.len();
        if index > len {
            return Err(Error::IndexOutOfBounds { index, len });
        }
        if atoms.is_empty() {
            return Ok(Vec::new());
        }
        if !self.config.balancing || atoms.len() == 1 {
            let mut ops = Vec::with_capacity(atoms.len());
            for (k, atom) in atoms.iter().enumerate() {
                ops.push(self.local_insert(index + k, atom.clone())?);
            }
            return Ok(ops);
        }
        let (before, after) = self.neighbours(index, len);
        let ids = batch_subtree_ids(
            Neighbours::new(before.as_ref(), after.as_ref()),
            atoms.len(),
            || self.source.next_dis(),
        );
        let mut ops = Vec::with_capacity(atoms.len());
        for (id, atom) in ids.into_iter().zip(atoms.iter().cloned()) {
            self.store.insert(&id, atom.clone(), self.revision)?;
            ops.push(Op::Insert { id, atom });
        }
        Ok(ops)
    }

    /// Deletes the `index`-th atom. Returns the operation to broadcast.
    pub fn local_delete(&mut self, index: usize) -> Result<Op<A, D>> {
        let id = self
            .store
            .id_of_live_index(index)
            .ok_or(Error::IndexOutOfBounds {
                index,
                len: self.len(),
            })?;
        self.store.delete(&id, self.revision)?;
        Ok(Op::Delete { id })
    }

    /// Replaces the `index`-th atom (modelled, as in §5, by a delete followed
    /// by an insert of the new value). Returns both operations.
    pub fn local_replace(&mut self, index: usize, atom: A) -> Result<[Op<A, D>; 2]> {
        let delete = self.local_delete(index)?;
        let insert = self.local_insert(index, atom)?;
        Ok([delete, insert])
    }

    // ------------------------------------------------------------------
    // Replay (remote side)
    // ------------------------------------------------------------------

    /// Replays an operation received from another replica. Operations must be
    /// delivered in an order compatible with happened-before (the
    /// `treedoc-replication` crate provides such a delivery layer); under
    /// that condition replay never fails and all replicas converge.
    pub fn apply(&mut self, op: &Op<A, D>) -> Result<()> {
        match op {
            Op::Insert { id, atom } => self.store.insert(id, atom.clone(), self.revision),
            Op::Delete { id } => {
                self.store.delete(id, self.revision)?;
                Ok(())
            }
        }
    }

    /// Replays a batch of operations.
    pub fn apply_all<'a>(&mut self, ops: impl IntoIterator<Item = &'a Op<A, D>>) -> Result<()>
    where
        A: 'a,
        D: 'a,
    {
        for op in ops {
            self.apply(op)?;
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Structural clean-up (§4.2)
    // ------------------------------------------------------------------

    /// Compacts the subtree rooted at the plain bit path `bits` (see
    /// [`RunTree::flatten_region`](crate::run::RunTree::flatten_region)).
    /// In a distributed setting this must only be
    /// called after the commitment protocol of §4.2.1 has succeeded (see the
    /// `treedoc-commit` crate); replaying it at every replica at the same
    /// causal point keeps them convergent because the transformation is
    /// deterministic.
    pub fn flatten(&mut self, bits: &[Side]) -> Result<FlattenOutcome> {
        self.reserved_appends.clear();
        self.store.flatten_region(bits)
    }

    /// Compacts the whole document.
    pub fn flatten_all(&mut self) -> Result<FlattenOutcome> {
        self.flatten(&[])
    }

    /// Applies the cold-region heuristic of §5.1: flattens every maximal
    /// subtree that has not been modified since `threshold_rev` and holds at
    /// least `min_live` atoms. Returns one outcome per flattened subtree.
    pub fn flatten_cold(&mut self, threshold_rev: u64, min_live: usize) -> Vec<FlattenOutcome> {
        // Cheap run-level gate: if even the least recently touched run is
        // hotter than the threshold, no region can possibly be cold, and the
        // per-atom materialisation below is skipped entirely.
        if self.store.is_empty() || self.store.min_hot_rev() > threshold_rev {
            return Vec::new();
        }
        let cold = self
            .store
            .to_tree()
            .find_cold_subtrees(threshold_rev, min_live);
        let mut outcomes = Vec::with_capacity(cold.len());
        for bits in cold {
            if let Ok(outcome) = self.flatten(&bits) {
                outcomes.push(outcome);
            }
        }
        outcomes
    }

    // ------------------------------------------------------------------
    // Identifier allocation
    // ------------------------------------------------------------------

    /// The full-tree neighbours of the insertion gap at `index`.
    fn neighbours(&self, index: usize, _len: usize) -> (Option<PosId<D>>, Option<PosId<D>>) {
        if index == 0 {
            (None, self.store.first_slot())
        } else {
            let before = self
                .store
                .id_of_live_index(index - 1)
                .expect("index validated by caller");
            let after = self.store.successor_slot(&before);
            (Some(before), after)
        }
    }

    fn allocate_id(&mut self, index: usize, len: usize) -> Result<PosId<D>> {
        let (before, after) = self.neighbours(index, len);
        // Balanced append (§4.1): when appending past the last occupied slot,
        // reuse a slot reserved by the last grown subtree, or grow a new one.
        if self.config.balancing && after.is_none() {
            if let Some(before) = before.as_ref() {
                if let Some(id) = self.reserved_or_grown_append(before) {
                    return Ok(id);
                }
            }
        }
        Ok(new_pos_id(
            Neighbours::new(before.as_ref(), after.as_ref()),
            self.source.next_dis(),
        ))
    }

    /// Pops the next valid reserved append slot, growing a fresh subtree when
    /// the reservation is exhausted or stale.
    fn reserved_or_grown_append(&mut self, before: &PosId<D>) -> Option<PosId<D>> {
        loop {
            if self.reserved_appends.is_empty() {
                let grown = balanced_append(before, self.store.height().max(1));
                self.reserved_appends = grown.slots;
                if self.reserved_appends.is_empty() {
                    return None;
                }
            }
            let slot = self.reserved_appends.remove(0);
            let candidate = attach_dis(&slot, self.source.next_dis());
            if &candidate > before && self.store.get(&candidate).is_none() {
                return Some(candidate);
            }
            // The slot went stale (an intervening edit used or bypassed it).
            // Try the rest of the reservation; if none is left, fall back to
            // plain Algorithm 1 allocation rather than growing immediately,
            // so interleaved non-append edits cannot force runaway growth.
            if self.reserved_appends.is_empty() {
                return None;
            }
        }
    }
}

/// Attaches a disambiguator to a plain position, producing the identifier of
/// the mini-node that will hold the atom.
fn attach_dis<D: Disambiguator>(plain: &PosId<D>, dis: D) -> PosId<D> {
    match plain.last_side() {
        // Replace the final element with its disambiguated counterpart; the
        // shared prefix is reused, so this is O(1) regardless of depth.
        Some(side) => plain
            .parent()
            .expect("non-root identifier has a parent")
            .child_mini(side, dis),
        None => plain.child_mini(Side::Left, dis),
    }
}

impl<A, D> fmt::Display for Treedoc<A, D>
where
    A: Atom + fmt::Display,
    D: Disambiguator + HasSource,
{
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for atom in self.to_vec() {
            write!(f, "{atom}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disambiguator::{Sdis, Udis};

    type SDoc = Treedoc<char, Sdis>;
    type UDoc = Treedoc<char, Udis>;

    fn site(n: u64) -> SiteId {
        SiteId::from_u64(n)
    }

    fn type_text(doc: &mut SDoc, text: &str) -> Vec<Op<char, Sdis>> {
        text.chars()
            .enumerate()
            .map(|(i, c)| doc.local_insert(doc.len().min(i), c).unwrap())
            .collect()
    }

    #[test]
    fn basic_editing() {
        let mut doc = SDoc::new(site(1));
        assert!(doc.is_empty());
        type_text(&mut doc, "hello");
        assert_eq!(doc.to_string(), "hello");
        assert_eq!(doc.len(), 5);
        doc.local_insert(5, '!').unwrap();
        doc.local_insert(0, '>').unwrap();
        assert_eq!(doc.to_string(), ">hello!");
        doc.local_delete(0).unwrap();
        doc.local_delete(5).unwrap();
        assert_eq!(doc.to_string(), "hello");
        doc.check_invariants().unwrap();
    }

    #[test]
    fn out_of_bounds_edits_error() {
        let mut doc = SDoc::new(site(1));
        assert!(matches!(
            doc.local_insert(1, 'x'),
            Err(Error::IndexOutOfBounds { .. })
        ));
        assert!(matches!(
            doc.local_delete(0),
            Err(Error::IndexOutOfBounds { .. })
        ));
        doc.local_insert(0, 'a').unwrap();
        assert!(doc.local_insert(1, 'b').is_ok());
        assert!(matches!(
            doc.local_delete(5),
            Err(Error::IndexOutOfBounds { .. })
        ));
    }

    #[test]
    fn replay_reaches_same_state() {
        let mut alice = SDoc::new(site(1));
        let mut bob = SDoc::new(site(2));
        let ops = type_text(&mut alice, "treedoc");
        for op in &ops {
            bob.apply(op).unwrap();
        }
        assert_eq!(alice.to_string(), bob.to_string());
        let del = alice.local_delete(3).unwrap();
        bob.apply(&del).unwrap();
        assert_eq!(alice.to_string(), bob.to_string());
    }

    #[test]
    fn concurrent_inserts_commute() {
        let mut alice = SDoc::new(site(1));
        let mut bob = SDoc::new(site(2));
        let seed = type_text(&mut alice, "ad");
        for op in &seed {
            bob.apply(op).unwrap();
        }
        // Both replicas insert concurrently between 'a' and 'd'.
        let a_op = alice.local_insert(1, 'b').unwrap();
        let b_op = bob.local_insert(1, 'c').unwrap();
        alice.apply(&b_op).unwrap();
        bob.apply(&a_op).unwrap();
        assert_eq!(alice.to_string(), bob.to_string());
        assert_eq!(alice.len(), 4);
        // The relative order of the concurrent atoms is decided by the
        // disambiguators, identically at both replicas.
        let text = alice.to_string();
        assert!(text == "abcd" || text == "acbd");
    }

    #[test]
    fn concurrent_delete_and_insert_commute() {
        let mut alice = SDoc::new(site(1));
        let mut bob = SDoc::new(site(2));
        for op in type_text(&mut alice, "abc") {
            bob.apply(&op).unwrap();
        }
        let del = alice.local_delete(1).unwrap(); // alice deletes 'b'
        let ins = bob.local_insert(2, 'x').unwrap(); // bob inserts after 'b'
        alice.apply(&ins).unwrap();
        bob.apply(&del).unwrap();
        assert_eq!(alice.to_string(), bob.to_string());
        assert_eq!(alice.to_string(), "axc");
    }

    #[test]
    fn concurrent_deletes_of_same_atom_are_idempotent() {
        let mut alice = SDoc::new(site(1));
        let mut bob = SDoc::new(site(2));
        for op in type_text(&mut alice, "abc") {
            bob.apply(&op).unwrap();
        }
        let d1 = alice.local_delete(1).unwrap();
        let d2 = bob.local_delete(1).unwrap();
        assert_eq!(d1, d2, "both replicas delete the same identifier");
        alice.apply(&d2).unwrap();
        bob.apply(&d1).unwrap();
        assert_eq!(alice.to_string(), "ac");
        assert_eq!(bob.to_string(), "ac");
    }

    #[test]
    fn udis_discards_deleted_nodes_sdis_keeps_tombstones() {
        let mut sdoc = SDoc::new(site(1));
        let mut udoc = UDoc::new(site(1));
        for i in 0..10 {
            sdoc.local_insert(i, 'x').unwrap();
            udoc.local_insert(i, 'x').unwrap();
        }
        for _ in 0..5 {
            sdoc.local_delete(0).unwrap();
            udoc.local_delete(0).unwrap();
        }
        assert_eq!(sdoc.len(), 5);
        assert_eq!(udoc.len(), 5);
        assert!(sdoc.node_count() > sdoc.len(), "SDIS keeps tombstones");
        assert!(
            udoc.node_count() <= sdoc.node_count(),
            "UDIS discards eagerly so it never stores more nodes"
        );
        assert_eq!(sdoc.stats().tombstones, 5);
        assert_eq!(udoc.stats().tombstones, 0);
    }

    #[test]
    fn from_atoms_starts_metadata_free() {
        let atoms: Vec<char> = "abcdefghij".chars().collect();
        let doc = SDoc::from_atoms(site(1), &atoms);
        assert_eq!(doc.to_string(), "abcdefghij");
        let stats = doc.stats();
        assert_eq!(stats.total_nodes, stats.live_atoms);
        assert_eq!(
            stats.pos_ids.max_bits, 3,
            "plain paths of a 10-atom complete tree"
        );
        // Two replicas built from the same atoms interoperate directly.
        let mut a = SDoc::from_atoms(site(1), &atoms);
        let mut b = SDoc::from_atoms(site(2), &atoms);
        let op = a.local_insert(5, 'X').unwrap();
        b.apply(&op).unwrap();
        assert_eq!(a.to_string(), b.to_string());
    }

    #[test]
    fn replace_is_delete_plus_insert() {
        let mut doc = SDoc::new(site(1));
        type_text(&mut doc, "abc");
        let [del, ins] = doc.local_replace(1, 'X').unwrap();
        assert!(del.is_delete());
        assert!(ins.is_insert());
        assert_eq!(doc.to_string(), "aXc");
    }

    #[test]
    fn append_heavy_editing_unbalanced_grows_linearly() {
        let mut doc = SDoc::new(site(1));
        for i in 0..64 {
            doc.local_insert(i, 'x').unwrap();
        }
        // Without balancing each append deepens the right spine.
        assert!(
            doc.height() >= 64,
            "height {} should be linear",
            doc.height()
        );
    }

    #[test]
    fn append_heavy_editing_balanced_stays_logarithmic() {
        let mut doc = Treedoc::<char, Sdis>::with_config(site(1), TreedocConfig::balanced());
        for i in 0..256 {
            doc.local_insert(i, 'x').unwrap();
        }
        assert_eq!(doc.len(), 256);
        assert!(
            doc.height() <= 40,
            "balanced appends keep the tree shallow (got height {})",
            doc.height()
        );
        doc.check_invariants().unwrap();
        // Content order is still correct.
        assert_eq!(doc.to_vec(), vec!['x'; 256]);
    }

    #[test]
    fn batch_insert_uses_minimal_subtree() {
        let mut doc = Treedoc::<char, Sdis>::with_config(site(1), TreedocConfig::balanced());
        doc.local_insert(0, 'a').unwrap();
        doc.local_insert(1, 'z').unwrap();
        let middle: Vec<char> = "bcdefghijklm".chars().collect();
        let ops = doc.local_insert_batch(1, &middle).unwrap();
        assert_eq!(ops.len(), middle.len());
        assert_eq!(doc.to_string(), "abcdefghijklmz");
        // A minimal subtree for 12 atoms has depth 4; identifiers stay short.
        let stats = doc.stats();
        assert!(stats.pos_ids.max_bits <= 1 + 4 + 2 + 48 + 48);
        doc.check_invariants().unwrap();
        // Replaying the batch elsewhere produces the same document.
        let mut other = SDoc::new(site(2));
        other
            .apply(&Op::Insert {
                id: doc.id_at(0).unwrap(),
                atom: 'a',
            })
            .unwrap();
        other
            .apply(&Op::Insert {
                id: doc.id_at(13).unwrap(),
                atom: 'z',
            })
            .unwrap();
        for op in &ops {
            other.apply(op).unwrap();
        }
        assert_eq!(other.to_string(), doc.to_string());
    }

    #[test]
    fn flatten_shortens_identifiers_and_drops_tombstones() {
        let mut doc = SDoc::new(site(1));
        for i in 0..50 {
            doc.local_insert(i, 'x').unwrap();
        }
        for _ in 0..20 {
            doc.local_delete(10).unwrap();
        }
        let before = doc.stats();
        assert!(before.tombstones > 0);
        let outcome = doc.flatten_all().unwrap();
        assert!(matches!(outcome, FlattenOutcome::Flattened { .. }));
        let after = doc.stats();
        assert_eq!(after.tombstones, 0);
        assert_eq!(after.total_nodes, 30);
        assert!(after.pos_ids.max_bits < before.pos_ids.max_bits);
        assert_eq!(doc.len(), 30);
        doc.check_invariants().unwrap();
    }

    #[test]
    fn flatten_cold_only_touches_quiescent_regions() {
        let mut doc = SDoc::new(site(1));
        for i in 0..32 {
            doc.local_insert(i, 'x').unwrap();
        }
        doc.next_revision();
        // New edits concentrate at the *beginning* of the document, so the
        // long appended tail from revision 0 goes quiescent.
        for _ in 0..8 {
            doc.local_insert(0, 'y').unwrap();
        }
        let before_nodes = doc.node_count();
        let before_height = doc.height();
        let outcomes = doc.flatten_cold(0, 2);
        assert!(
            !outcomes.is_empty(),
            "some cold region should have been found"
        );
        assert_eq!(doc.len(), 40, "content unchanged");
        assert!(doc.node_count() <= before_nodes);
        assert!(
            doc.height() < before_height,
            "the cold spine should have been compacted"
        );
        doc.check_invariants().unwrap();
    }

    #[test]
    fn revision_counter_advances() {
        let mut doc = SDoc::new(site(1));
        assert_eq!(doc.revision(), 0);
        assert_eq!(doc.next_revision(), 1);
        assert_eq!(doc.next_revision(), 2);
        assert_eq!(doc.revision(), 2);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        /// A random local edit script.
        #[derive(Debug, Clone)]
        enum Edit {
            Insert(usize, char),
            Delete(usize),
        }

        fn arb_edits(n: usize) -> impl Strategy<Value = Vec<Edit>> {
            proptest::collection::vec(
                prop_oneof![
                    (any::<usize>(), proptest::char::range('a', 'z'))
                        .prop_map(|(i, c)| Edit::Insert(i, c)),
                    any::<usize>().prop_map(Edit::Delete),
                ],
                0..n,
            )
        }

        fn apply_edits(doc: &mut SDoc, edits: &[Edit]) -> Vec<Op<char, Sdis>> {
            let mut ops = Vec::new();
            for e in edits {
                match e {
                    Edit::Insert(i, c) => {
                        let idx = i % (doc.len() + 1);
                        ops.push(doc.local_insert(idx, *c).unwrap());
                    }
                    Edit::Delete(i) => {
                        if !doc.is_empty() {
                            ops.push(doc.local_delete(i % doc.len()).unwrap());
                        }
                    }
                }
            }
            ops
        }

        proptest! {
            /// Two replicas that exchange concurrent edit batches converge,
            /// whatever the batches and whichever order the batches are
            /// applied in.
            #[test]
            fn concurrent_batches_converge(
                seed in proptest::collection::vec(proptest::char::range('a', 'z'), 0..20),
                edits_a in arb_edits(15),
                edits_b in arb_edits(15),
            ) {
                let mut alice = SDoc::from_atoms(site(1), &seed);
                let mut bob = SDoc::from_atoms(site(2), &seed);
                let ops_a = apply_edits(&mut alice, &edits_a);
                let ops_b = apply_edits(&mut bob, &edits_b);
                for op in &ops_b { alice.apply(op).unwrap(); }
                for op in &ops_a { bob.apply(op).unwrap(); }
                prop_assert_eq!(alice.to_vec(), bob.to_vec());
                prop_assert!(alice.check_invariants().is_ok());
                prop_assert!(bob.check_invariants().is_ok());
            }

            /// The local edit API behaves like a plain vector (sequential
            /// specification).
            #[test]
            fn matches_vector_semantics(edits in arb_edits(40)) {
                let mut doc = SDoc::new(site(1));
                let mut model: Vec<char> = Vec::new();
                for e in &edits {
                    match e {
                        Edit::Insert(i, c) => {
                            let idx = i % (model.len() + 1);
                            model.insert(idx, *c);
                            doc.local_insert(idx, *c).unwrap();
                        }
                        Edit::Delete(i) => {
                            if !model.is_empty() {
                                let idx = i % model.len();
                                model.remove(idx);
                                doc.local_delete(idx).unwrap();
                            }
                        }
                    }
                }
                prop_assert_eq!(doc.to_vec(), model);
            }

            /// Balancing does not change the sequential semantics, only the
            /// identifier shapes.
            #[test]
            fn balanced_matches_vector_semantics(edits in arb_edits(40)) {
                let mut doc = Treedoc::<char, Sdis>::with_config(site(1), TreedocConfig::balanced());
                let mut model: Vec<char> = Vec::new();
                for e in &edits {
                    match e {
                        Edit::Insert(i, c) => {
                            let idx = i % (model.len() + 1);
                            model.insert(idx, *c);
                            doc.local_insert(idx, *c).unwrap();
                        }
                        Edit::Delete(i) => {
                            if !model.is_empty() {
                                let idx = i % model.len();
                                model.remove(idx);
                                doc.local_delete(idx).unwrap();
                            }
                        }
                    }
                }
                prop_assert_eq!(doc.to_vec(), model);
                prop_assert!(doc.check_invariants().is_ok());
            }

            /// Flatten at an arbitrary point of an edit history preserves the
            /// document content and removes every tombstone.
            #[test]
            fn flatten_preserves_content(edits in arb_edits(40)) {
                let mut doc = SDoc::new(site(1));
                apply_edits(&mut doc, &edits);
                let before = doc.to_vec();
                doc.flatten_all().unwrap();
                prop_assert_eq!(doc.to_vec(), before);
                prop_assert_eq!(doc.stats().tombstones, 0);
                prop_assert_eq!(doc.node_count(), doc.len());
            }
        }
    }
}
