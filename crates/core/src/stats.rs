//! Overhead accounting (§5 of the paper).
//!
//! The evaluation of the paper reports, per document and per configuration:
//!
//! * maximum and average PosID length in bits (Table 1 "PosID", Table 4
//!   "avg PosID size"),
//! * the number of Treedoc nodes, the memory they occupy and the overhead
//!   relative to the document size (Table 1 "Nodes"),
//! * the fraction of non-tombstone nodes (Table 1 "% non-Tomb", Table 3),
//! * the identifier overhead per live atom (Table 4 "overhead/atom"),
//! * the on-disk overhead (Table 1, computed by the `treedoc-storage` crate).
//!
//! [`DocStats::measure`] walks a [`Tree`] once and fills in everything except
//! the on-disk numbers. The in-memory model follows the constants spelled out
//! in §5.2: a tree node costs 26 bytes (subtree counter, two child pointers,
//! a disambiguator and an atom pointer on a 32-bit JVM); an alternative model
//! reflecting this Rust implementation's actual struct sizes is also
//! provided for reference.

use serde::{Deserialize, Serialize};

use crate::atom::Atom;
use crate::disambiguator::Disambiguator;
use crate::node::Content;
use crate::tree::Tree;

/// Per-node memory cost model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MemoryModel {
    /// The paper's model (§5.2): 26 bytes per tree node.
    PaperTreeNode,
    /// A `(atom, PosID)` couple list: each node costs its identifier size
    /// (the atom itself is not overhead).
    CoupleList,
    /// The actual size of this implementation's node structures.
    RustTreeNode,
}

impl MemoryModel {
    /// Bytes charged for one node whose identifier occupies `pos_id_bits`.
    pub fn node_bytes<D: Disambiguator>(&self, pos_id_bits: usize) -> usize {
        match self {
            // §5.2: counter + two pointers + disambiguator + atom pointer.
            MemoryModel::PaperTreeNode => 26,
            MemoryModel::CoupleList => pos_id_bits.div_ceil(8),
            MemoryModel::RustTreeNode => {
                // Two Option<Box<_>> children (8 bytes each on 64-bit), the
                // cached counters (2 × 8), the content discriminant plus atom
                // pointer (16) and the disambiguator.
                8 + 8 + 16 + 16 + D::ACCOUNTED_BYTES
            }
        }
    }
}

/// Distribution of position-identifier sizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct PosIdStats {
    /// Largest identifier, in bits.
    pub max_bits: usize,
    /// Sum of identifier sizes over all occupied slots, in bits.
    pub total_bits: usize,
    /// Sum of identifier sizes over live atoms only, in bits.
    pub live_bits: usize,
    /// Number of occupied slots the totals are taken over.
    pub nodes: usize,
    /// Number of live atoms.
    pub live: usize,
}

impl PosIdStats {
    /// Average identifier size over all occupied slots (tombstones included,
    /// as in Table 1), in bits.
    pub fn avg_bits(&self) -> f64 {
        if self.nodes == 0 {
            0.0
        } else {
            self.total_bits as f64 / self.nodes as f64
        }
    }

    /// Average identifier size over live atoms only, in bits.
    pub fn avg_live_bits(&self) -> f64 {
        if self.live == 0 {
            0.0
        } else {
            self.live_bits as f64 / self.live as f64
        }
    }

    /// Identifier overhead per live atom in bits: the cost of storing every
    /// identifier (tombstones included) divided by the number of live atoms
    /// (Table 4 "overhead/atom").
    pub fn overhead_per_atom_bits(&self) -> f64 {
        if self.live == 0 {
            0.0
        } else {
            self.total_bits as f64 / self.live as f64
        }
    }
}

/// A full measurement of a document replica (everything in Table 1 except the
/// on-disk column, which needs the serialised form).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DocStats {
    /// Live atoms.
    pub live_atoms: usize,
    /// Occupied slots (live + tombstones + ghosts).
    pub total_nodes: usize,
    /// Tombstones (SDIS deletions awaiting clean-up).
    pub tombstones: usize,
    /// Ghost nodes (UDIS structural leftovers).
    pub ghosts: usize,
    /// Identifier size distribution.
    pub pos_ids: PosIdStats,
    /// Document content size in bytes (sum of live atom contents).
    pub document_bytes: usize,
    /// Height of the identifier tree.
    pub height: usize,
}

impl DocStats {
    /// Measures a tree.
    pub fn measure<A: Atom, D: Disambiguator>(tree: &Tree<A, D>) -> Self {
        let mut stats = DocStats {
            live_atoms: 0,
            total_nodes: 0,
            tombstones: 0,
            ghosts: 0,
            pos_ids: PosIdStats::default(),
            document_bytes: 0,
            height: tree.height(),
        };
        tree.for_each_slot(|slot| {
            let bits = slot.pos_id_bits();
            stats.total_nodes += 1;
            stats.pos_ids.nodes += 1;
            stats.pos_ids.total_bits += bits;
            stats.pos_ids.max_bits = stats.pos_ids.max_bits.max(bits);
            match slot.content {
                Content::Live(a) => {
                    stats.live_atoms += 1;
                    stats.pos_ids.live += 1;
                    stats.pos_ids.live_bits += bits;
                    stats.document_bytes += a.content_bytes();
                }
                Content::Tombstone => stats.tombstones += 1,
                Content::Ghost => stats.ghosts += 1,
                Content::Absent => {}
            }
        });
        stats
    }

    /// Fraction of occupied slots that still hold a live atom
    /// (Table 1 "% non-Tomb", Table 3 reports `1 -` this value).
    pub fn non_tombstone_fraction(&self) -> f64 {
        if self.total_nodes == 0 {
            1.0
        } else {
            self.live_atoms as f64 / self.total_nodes as f64
        }
    }

    /// Fraction of occupied slots that are tombstones (Table 3).
    pub fn tombstone_fraction(&self) -> f64 {
        if self.total_nodes == 0 {
            0.0
        } else {
            (self.total_nodes - self.live_atoms) as f64 / self.total_nodes as f64
        }
    }

    /// In-memory overhead in bytes under the given model (Table 1 "Nodes /
    /// bytes").
    pub fn memory_bytes<D: Disambiguator>(&self, model: MemoryModel) -> usize {
        match model {
            MemoryModel::CoupleList => self.pos_ids.total_bits.div_ceil(8),
            other => self.total_nodes * other.node_bytes::<D>(0),
        }
    }

    /// In-memory overhead relative to the document content size
    /// (Table 1 "Mem ovhd").
    pub fn memory_overhead_ratio<D: Disambiguator>(&self, model: MemoryModel) -> f64 {
        if self.document_bytes == 0 {
            0.0
        } else {
            self.memory_bytes::<D>(model) as f64 / self.document_bytes as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disambiguator::{Sdis, Udis};
    use crate::flatten::explode;
    use crate::path::{PathElem, PosId, Side};
    use crate::site::SiteId;
    use crate::tree::Tree;

    fn sd(n: u64) -> Sdis {
        Sdis::new(SiteId::from_u64(n))
    }

    fn sid(desc: &[(u8, Option<u64>)]) -> PosId<Sdis> {
        PosId::from_elems(
            desc.iter()
                .map(|&(bit, dis)| PathElem {
                    side: Side::from_bit(bit),
                    dis: dis.map(sd),
                })
                .collect(),
        )
    }

    #[test]
    fn flattened_document_has_zero_identifier_overhead() {
        let atoms: Vec<String> = (0..50).map(|i| format!("line {i}")).collect();
        let tree: Tree<String, Sdis> = explode(&atoms);
        let stats = DocStats::measure(&tree);
        assert_eq!(stats.live_atoms, 50);
        assert_eq!(stats.total_nodes, 50);
        assert_eq!(stats.tombstones, 0);
        assert_eq!(stats.non_tombstone_fraction(), 1.0);
        // Plain bit paths only: at most ⌈log₂ 51⌉ = 6 bits each.
        assert!(stats.pos_ids.max_bits <= 6);
        assert!(stats.pos_ids.avg_bits() <= 6.0);
        assert_eq!(
            stats.document_bytes,
            atoms.iter().map(|a| a.len()).sum::<usize>()
        );
    }

    #[test]
    fn tombstones_are_counted() {
        let mut tree: Tree<char, Sdis> = Tree::new();
        tree.insert(&sid(&[]), 'a', 1).unwrap();
        tree.insert(&sid(&[(1, Some(1))]), 'b', 1).unwrap();
        tree.insert(&sid(&[(1, None), (1, Some(1))]), 'c', 1)
            .unwrap();
        tree.delete(&sid(&[(1, Some(1))]), 2).unwrap();
        let stats = DocStats::measure(&tree);
        assert_eq!(stats.live_atoms, 2);
        assert_eq!(stats.total_nodes, 3);
        assert_eq!(stats.tombstones, 1);
        assert!((stats.tombstone_fraction() - 1.0 / 3.0).abs() < 1e-9);
        assert!((stats.non_tombstone_fraction() - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn pos_id_sizes_follow_disambiguator_size() {
        // One atom with an SDIS identifier of depth 2: 2 bits + 48 bits.
        let mut stree: Tree<char, Sdis> = Tree::new();
        stree
            .insert(&sid(&[(1, None), (0, Some(1))]), 'x', 1)
            .unwrap();
        let s = DocStats::measure(&stree);
        assert_eq!(s.pos_ids.max_bits, 50);

        // The same shape with UDIS costs 2 + 80 bits.
        let mut utree: Tree<char, Udis> = Tree::new();
        let uid = PosId::from_elems(vec![
            PathElem::plain(Side::Right),
            PathElem::mini(Side::Left, Udis::new(0, SiteId::from_u64(1))),
        ]);
        utree.insert(&uid, 'x', 1).unwrap();
        let u = DocStats::measure(&utree);
        assert_eq!(u.pos_ids.max_bits, 82);
    }

    #[test]
    fn overhead_per_atom_counts_tombstones() {
        let mut tree: Tree<char, Sdis> = Tree::new();
        tree.insert(&sid(&[]), 'a', 1).unwrap();
        tree.insert(&sid(&[(1, Some(1))]), 'b', 1).unwrap();
        tree.delete(&sid(&[(1, Some(1))]), 2).unwrap();
        let stats = DocStats::measure(&tree);
        // Total identifier bits: 0 (root) + 49 (tombstone) over 1 live atom.
        assert_eq!(stats.pos_ids.overhead_per_atom_bits(), 49.0);
        assert_eq!(stats.pos_ids.avg_bits(), 24.5);
        assert_eq!(stats.pos_ids.avg_live_bits(), 0.0);
    }

    #[test]
    fn memory_models() {
        let atoms: Vec<String> = (0..10).map(|i| format!("{i}")).collect();
        let tree: Tree<String, Sdis> = explode(&atoms);
        let stats = DocStats::measure(&tree);
        assert_eq!(
            stats.memory_bytes::<Sdis>(MemoryModel::PaperTreeNode),
            10 * 26
        );
        // The couple-list model charges only identifier bytes; plain ids of a
        // 10-atom exploded tree are at most 4 bits each.
        assert!(stats.memory_bytes::<Sdis>(MemoryModel::CoupleList) <= 10);
        assert!(stats.memory_bytes::<Sdis>(MemoryModel::RustTreeNode) > 10 * 26);
        assert!(stats.memory_overhead_ratio::<Sdis>(MemoryModel::PaperTreeNode) > 0.0);
    }

    #[test]
    fn empty_tree_stats() {
        let tree: Tree<char, Sdis> = Tree::new();
        let stats = DocStats::measure(&tree);
        assert_eq!(stats.live_atoms, 0);
        assert_eq!(stats.total_nodes, 0);
        assert_eq!(stats.non_tombstone_fraction(), 1.0);
        assert_eq!(stats.tombstone_fraction(), 0.0);
        assert_eq!(stats.pos_ids.avg_bits(), 0.0);
        assert_eq!(
            stats.memory_overhead_ratio::<Sdis>(MemoryModel::PaperTreeNode),
            0.0
        );
    }
}
