//! Error type shared by the crate.

use std::fmt;

use crate::path::PosIdRepr;

/// Result alias used throughout `treedoc-core`.
pub type Result<T, E = Error> = std::result::Result<T, E>;

/// Errors produced by Treedoc operations.
///
/// The CRDT is designed so that *replayed* operations cannot fail at remote
/// sites (§2.2 of the paper); errors therefore only arise from misuse of the
/// local API (out-of-range indices, unknown identifiers) or from structural
/// operations such as `flatten` that are allowed to abort.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum Error {
    /// An index-based edit referred to a position outside the document.
    IndexOutOfBounds {
        /// The offending index.
        index: usize,
        /// The number of (live) atoms in the document.
        len: usize,
    },
    /// A delete or lookup referred to a position identifier that does not
    /// name a live atom in this replica.
    UnknownPosId {
        /// Printable form of the identifier.
        id: PosIdRepr,
    },
    /// An insert replay referred to an identifier that already holds a live
    /// atom (identifier uniqueness would be violated).
    DuplicatePosId {
        /// Printable form of the identifier.
        id: PosIdRepr,
    },
    /// A `flatten` was attempted on a subtree that does not exist.
    NoSuchSubtree {
        /// Bit path of the requested subtree root.
        bits: Vec<u8>,
    },
    /// A `flatten` aborted because a concurrent edit touched the subtree
    /// (edits take precedence over structural clean-up, §4.2.1).
    FlattenAborted {
        /// Human-readable reason recorded by the voting participant.
        reason: String,
    },
    /// A stored document could not be decoded.
    Corrupt(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::IndexOutOfBounds { index, len } => {
                write!(
                    f,
                    "index {index} out of bounds for document of length {len}"
                )
            }
            Error::UnknownPosId { id } => write!(f, "unknown position identifier {id}"),
            Error::DuplicatePosId { id } => {
                write!(f, "position identifier {id} already holds a live atom")
            }
            Error::NoSuchSubtree { bits } => {
                write!(f, "no subtree rooted at bit path {bits:?}")
            }
            Error::FlattenAborted { reason } => write!(f, "flatten aborted: {reason}"),
            Error::Corrupt(msg) => write!(f, "corrupt document encoding: {msg}"),
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = Error::IndexOutOfBounds { index: 7, len: 3 };
        assert!(e.to_string().contains('7'));
        assert!(e.to_string().contains('3'));

        let e = Error::FlattenAborted {
            reason: "concurrent edit".into(),
        };
        assert!(e.to_string().contains("concurrent edit"));

        let e = Error::NoSuchSubtree { bits: vec![0, 1] };
        assert!(e.to_string().contains("[0, 1]"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Error>();
    }
}
